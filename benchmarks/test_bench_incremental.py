"""Incremental-engine slide sweep — the O(new-beacons) claim, measured.

The incremental engine's promise is that a detection's cost follows the
*new* beacons since the previous detection, not the window length.
This benchmark makes that claim falsifiable: the same 10-identity
beacon stream (an attacker trio plus seven independents, 10 Hz, 20 s
windows) is detected on four schedules whose consecutive windows slide
by 0.5 s, 1 s, 2.5 s and 5 s, under the exact kernel engine and the
incremental engine.  For every schedule the two engines must flag the
same Sybil pairs in every detection; the exact engine's per-detection
cost is flat across schedules (window-proportional), while the
incremental engine relaxes ~2x fewer DP cells at every slide and its
*same-run throughput falls as the slide grows* — the signature of
new-beacon-proportional cost (envelope slides and bound reuse are
cheapest when most of the window carries over; the DP-cell count
itself is quantized by the abandon-checkpoint stride, so the cleaner
monotone signal is wall-clock, compared within the one run).

Writes ``BENCH_incremental.json`` at the repo root; a committed
reference lives under ``benchmarks/baselines/`` and the
``bench-regression`` CI job diffs the two.  The abandon/carry counters
assume the native C backend (CI runners and any machine with a C
toolchain); without one the engine's small-batch dispatch differs and
``python -m repro.bench_compare`` will report counter drift.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.core.detector import DetectorConfig
from repro.core.pipeline import OnlineVoiceprint, OnlineVoiceprintConfig
from repro.eval.reporting import render_table
from repro.obs.metrics import MetricsRegistry

_REPO_ROOT = Path(__file__).resolve().parent.parent
_OUT_PATH = _REPO_ROOT / "BENCH_incremental.json"

_DURATION_S = 60.0
_RATE_HZ = 10.0
_FIRST_DETECTION_S = 20.0  # one full observation window accumulated
_N_INDEPENDENT = 7  # + the attacker's three identities = 10 heard
#: Seconds consecutive detection windows slide by, smallest first.
_SLIDES_S = (0.5, 1.0, 2.5, 5.0)

_CONFIGS = {
    "exact": {
        "pairwise_engine": True,
        "pairwise_cache_size": 0,
        "pairwise_pruning": False,
    },
    "incremental": {
        "pairwise_engine": True,
        "pairwise_cache_size": 256,
        "pairwise_pruning": False,
        "pairwise_incremental": True,
    },
}


def _beacon_stream():
    """(timestamp, identity, rssi) tuples for the synthetic scenario."""
    rng = np.random.default_rng(4321)
    n = int(_DURATION_S * _RATE_HZ)
    t = np.arange(n) / _RATE_HZ
    shared = (
        -70.0
        + 5.0 * np.sin(2 * np.pi * t / 15.0)
        + np.cumsum(rng.normal(0.0, 0.4, n))
    )
    streams = {}
    for name, offset in (("mal", 0.0), ("syb1", 4.0), ("syb2", -3.0)):
        streams[name] = shared + offset + rng.normal(0.0, 0.3, n)
    for i in range(_N_INDEPENDENT):
        streams[f"veh{i:02d}"] = (
            -75.0
            + 6.0 * np.sin(2 * np.pi * t / (9.0 + i) + rng.uniform(0.0, 6.0))
            + np.cumsum(rng.normal(0.0, 0.5, n))
        )
    names = sorted(streams)
    for index, timestamp in enumerate(t):
        for name in names:
            yield float(timestamp), name, float(streams[name][index])


def _run(config_name, slide_s):
    registry = MetricsRegistry(enabled=True)
    pipeline = OnlineVoiceprint(
        max_range_m=650.0,
        detector_config=DetectorConfig(**_CONFIGS[config_name]),
        # Periodic detection is pushed past the run so the forced
        # schedule below fully controls how far each window slides.
        config=OnlineVoiceprintConfig(detection_period_s=10_000.0),
        registry=registry,
    )
    schedule = list(
        np.arange(_FIRST_DETECTION_S, _DURATION_S + 1e-9, slide_s)
    )
    flagged = []
    start = time.perf_counter()
    for timestamp, identity, rssi in _beacon_stream():
        while schedule and timestamp >= schedule[0]:
            now = schedule.pop(0)
            flagged.append(pipeline.force_detection(now).sybil_pairs)
        pipeline.on_beacon(identity, timestamp, rssi)
    wall_s = time.perf_counter() - start
    detections = len(flagged)
    pairs = int(registry.counter("detector.pairs_compared").value)
    cells = int(registry.counter("detector.dtw_cells").value)
    record = {
        "wall_ms": round(wall_s * 1000.0, 1),
        "detections": detections,
        "pairs": pairs,
        "pairs_per_s": round(pairs / wall_s, 1),
        "dtw_cells": cells,
        "cells_per_detection": round(cells / detections, 1),
        "pairs_incremental": int(
            registry.counter("detector.pairs_incremental").value
        ),
        "pairs_abandoned": int(
            registry.counter("detector.pairs_abandoned").value
        ),
        "envelope_updates": int(
            registry.counter("detector.envelope_updates").value
        ),
        "cells_saved": int(registry.counter("detector.cells_saved").value),
    }
    return record, flagged


def test_bench_incremental(once, benchmark):
    def run_all():
        return {
            slide: {name: _run(name, slide) for name in _CONFIGS}
            for slide in _SLIDES_S
        }

    outcomes = once(benchmark, run_all)

    slides = {}
    for slide, by_config in outcomes.items():
        exact_record, exact_flags = by_config["exact"]
        inc_record, inc_flags = by_config["incremental"]
        # Bit-equality acceptance: same flag sets in every detection.
        assert inc_flags == exact_flags, f"slide {slide}s diverged"
        slides[f"{slide:g}s"] = {
            "exact": exact_record,
            "incremental": inc_record,
            "cells_ratio": round(
                exact_record["dtw_cells"] / inc_record["dtw_cells"], 2
            ),
        }

    payload = {
        "workload": {
            "identities": _N_INDEPENDENT + 3,
            "duration_s": _DURATION_S,
            "beacon_rate_hz": _RATE_HZ,
            "first_detection_s": _FIRST_DETECTION_S,
        },
        "slides": slides,
    }
    _OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    table = render_table(
        [
            "slide",
            "detections",
            "exact cells/det",
            "incr cells/det",
            "ratio",
            "carried",
            "abandoned",
        ],
        [
            (
                key,
                entry["incremental"]["detections"],
                entry["exact"]["cells_per_detection"],
                entry["incremental"]["cells_per_detection"],
                entry["cells_ratio"],
                entry["incremental"]["pairs_incremental"],
                entry["incremental"]["pairs_abandoned"],
            )
            for key, entry in slides.items()
        ],
        title=f"incremental engine — slide sweep (-> {_OUT_PATH.name})",
    )
    print("\n" + table)
    benchmark.extra_info["table"] = table

    exact_per_det = [
        slides[f"{slide:g}s"]["exact"]["cells_per_detection"]
        for slide in _SLIDES_S
    ]
    ratios = [slides[f"{slide:g}s"]["cells_ratio"] for slide in _SLIDES_S]
    pps = [
        slides[f"{slide:g}s"]["incremental"]["pairs_per_s"]
        for slide in _SLIDES_S
    ]
    exact_pps = [
        slides[f"{slide:g}s"]["exact"]["pairs_per_s"] for slide in _SLIDES_S
    ]
    # The exact engine's per-detection cost is flat across schedules:
    # window-proportional, blind to how far the window slid.
    assert max(exact_per_det) <= 1.05 * min(exact_per_det), exact_per_det
    # The incremental engine relaxes well under half the DP cells at
    # every slide (observed ~1.9-2.1x on the committed baseline) and
    # abandons/slides envelopes at every schedule.
    assert all(ratio >= 1.5 for ratio in ratios), ratios
    for slide in _SLIDES_S:
        record = slides[f"{slide:g}s"]["incremental"]
        assert record["pairs_abandoned"] > 0, slide
        assert record["envelope_updates"] > 0, slide
    # New-beacon-proportional wall-clock, judged within the one run so
    # host speed cancels: the smallest slide (5 new beacons/detection)
    # must out-run the largest (50), and every slide must beat the
    # exact engine handily.
    assert pps[0] > 1.15 * pps[-1], pps
    assert all(inc > 2.0 * ex for inc, ex in zip(pps, exact_pps)), (
        pps,
        exact_pps,
    )
