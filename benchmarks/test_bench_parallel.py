"""Parallel evaluation benchmark — serial vs sharded grid wall-time.

Drives an 8-cell Fig. 11-style grid (4 densities x 2 seeded runs, each
cell simulating a highway scenario and replaying Voiceprint over its
verifiers) twice through ``repro.eval.parallel.run_tasks``: once
serially, once on a 4-process pool.  The run writes
``BENCH_parallel.json`` at the repo root with the grid's deterministic
outcome counts and both wall times.

Acceptance criteria:

* the parallel grid's per-cell outcome lists are **identical** to the
  serial ones — always asserted, on any host;
* wall-clock speedup >= 2x on 4 workers — asserted only on hosts with
  at least 4 CPUs (a single-core container cannot speed anything up;
  the measured speedup and the host's CPU count are recorded honestly
  either way).
"""

import json
import os
import time
from pathlib import Path

from repro.core.thresholds import ConstantThreshold
from repro.eval.parallel import TaskSpec, run_tasks
from repro.eval.reporting import render_table
from repro.eval.runner import run_voiceprint
from repro.obs.metrics import MetricsRegistry
from repro.sim.scenario import ScenarioConfig
from repro.sim.simulator import HighwaySimulator

_REPO_ROOT = Path(__file__).resolve().parent.parent
_OUT_PATH = _REPO_ROOT / "BENCH_parallel.json"

_SIM_TIME_S = 30.0
_DENSITIES = (10.0, 20.0, 30.0, 40.0)
_RUNS_PER_DENSITY = 2
_RECORDED_NODES = 4
_VERIFIERS = 2
_WORKERS = 4
_SPEEDUP_FLOOR = 2.0
_MIN_CPUS_FOR_SPEEDUP = 4


def _grid_cell(density, run_seed):
    """One grid cell: simulate the scenario and replay Voiceprint."""
    config = ScenarioConfig(sim_time_s=_SIM_TIME_S, seed=run_seed).with_density(
        density
    )
    result = HighwaySimulator(config, recorded_nodes=_RECORDED_NODES).run()
    return run_voiceprint(
        result,
        ConstantThreshold(0.05),
        verifiers=result.recorded_nodes[:_VERIFIERS],
        workers=1,
    )


def _tasks():
    tasks = []
    run_seed = 100
    for density in _DENSITIES:
        for _ in range(_RUNS_PER_DENSITY):
            run_seed += 1
            tasks.append(
                TaskSpec(
                    key=f"d{density:g}:s{run_seed}",
                    fn=_grid_cell,
                    args=(density, run_seed),
                )
            )
    return tasks


def _drive(workers):
    registry = MetricsRegistry(enabled=True)
    start = time.perf_counter()
    results = run_tasks(_tasks(), workers=workers, registry=registry)
    wall_s = time.perf_counter() - start
    return results, wall_s


def test_bench_parallel(once, benchmark):
    def run_both():
        serial = _drive(workers=1)
        parallel = _drive(workers=_WORKERS)
        return serial, parallel

    (serial_results, serial_s), (parallel_results, parallel_s) = once(
        benchmark, run_both
    )

    # Identity acceptance: sharding must never change a single outcome.
    assert parallel_results == serial_results, "parallel grid diverged from serial"

    outcomes = [o for task_key in sorted(serial_results) for o in serial_results[task_key]]
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    cpu_count = os.cpu_count() or 1
    payload = {
        "workload": {
            "cells": len(serial_results),
            "sim_time_s": _SIM_TIME_S,
            "runs_per_density": _RUNS_PER_DENSITY,
            "verifiers_per_cell": _VERIFIERS,
            "workers": _WORKERS,
            "cpu_count": cpu_count,
        },
        "grid": {
            "n_outcomes": len(outcomes),
            "true_flagged_total": sum(o.true_flagged for o in outcomes),
            "false_flagged_total": sum(o.false_flagged for o in outcomes),
        },
        "timing": {
            "serial_wall_ms": round(serial_s * 1000.0, 1),
            "parallel_wall_ms": round(parallel_s * 1000.0, 1),
            "speedup": round(speedup, 2),
        },
    }
    _OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    table = render_table(
        ["quantity", "value"],
        [
            ("grid cells", len(serial_results)),
            ("outcomes", len(outcomes)),
            ("serial wall ms", payload["timing"]["serial_wall_ms"]),
            (f"{_WORKERS}-worker wall ms", payload["timing"]["parallel_wall_ms"]),
            ("speedup", payload["timing"]["speedup"]),
            ("host CPUs", cpu_count),
        ],
        title=f"parallel grid sweep (-> {_OUT_PATH.name})",
    )
    print("\n" + table)
    benchmark.extra_info["table"] = table

    if cpu_count >= _MIN_CPUS_FOR_SPEEDUP:
        assert speedup >= _SPEEDUP_FLOOR, (
            f"expected >= {_SPEEDUP_FLOOR}x speedup on {cpu_count} CPUs, "
            f"measured {speedup:.2f}x"
        )
