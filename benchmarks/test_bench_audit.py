"""Audit-trail overhead benchmark — recording must stay under 5 %.

Runs a compare-dominated detection workload (all-pairs DTW over fresh
random RSSI series each round, 30 s windows at 10 Hz — the CLI's
default period regime) and gates the decision-audit layer's hot-path
overhead: provenance capture in the engine plus bundle construction in
the in-memory ring.

The measurement discipline mirrors ``test_bench_profile.py``: rounds
alternate baseline / audited so both modes sample the same host noise,
each round is timed with ``time.process_time`` (spans all threads, so
any recording work is charged no matter where it runs), the per-mode
minimum recovers the quiet-host cost, and the whole measurement
retries up to ``_ATTEMPTS`` times — noise passes on a retry, a real
overhead regression fails every attempt.

Only the in-memory ring mode gates: it is the always-on shape of the
audit layer, and the one the ``<5 %`` acceptance bound covers.  The
disk-streaming mode (``--audit-out``) additionally pays JSONL
serialisation and a flushed write per detection; its cost is measured
and reported in the payload for trend-watching but does not gate.

The run writes ``BENCH_audit.json`` at the repo root for the
``bench_compare`` regression gate.  Audit *evidence* counts
(detections, pair records) are deterministic replays of the seeded
workload and gate at the deterministic tolerance; timings are
host-dependent and skipped in CI.

Acceptance criteria (asserted on any host):

* in-memory auditing adds < 5 % to the detection workload;
* every audited round yields exactly one bundle with all
  ``C(identities, 2)`` pair records — recording drops nothing;
* the disk stream holds one JSONL line per audited detection.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.core.detector import DetectorConfig, VoiceprintDetector
from repro.core.thresholds import ConstantThreshold
from repro.core.timeseries import RSSITimeSeries
from repro.eval.reporting import render_table
from repro.obs.audit import default_audit_log, start_default, stop_default

_REPO_ROOT = Path(__file__).resolve().parent.parent
_OUT_PATH = _REPO_ROOT / "BENCH_audit.json"

_IDENTITIES = 24
_SAMPLES_PER_SERIES = 300
_OBSERVATION_TIME_S = 30.0
_ROUNDS_PER_MODE = 30
_DISK_ROUNDS = 6
_WARMUP_ROUNDS = 2
_ATTEMPTS = 3
_OVERHEAD_CEILING_PCT = 5.0
_PAIRS_PER_ROUND = _IDENTITIES * (_IDENTITIES - 1) // 2


def _loaded_detector(seed: int) -> VoiceprintDetector:
    """A detector over fresh random series (cache-cold every round)."""
    rng = np.random.default_rng(seed)
    config = DetectorConfig(observation_time=_OBSERVATION_TIME_S)
    detector = VoiceprintDetector(
        threshold=ConstantThreshold(0.05), config=config
    )
    times = np.linspace(0.0, _OBSERVATION_TIME_S, _SAMPLES_PER_SERIES)
    for index in range(_IDENTITIES):
        series = RSSITimeSeries(f"v{index:03d}")
        rssi = -70.0 + np.cumsum(
            rng.normal(0.0, 0.8, _SAMPLES_PER_SERIES)
        )
        for t, value in zip(times, rssi):
            series.append(float(t), float(value))
        detector.load_series(series)
    return detector


def _timed_detect(detector: VoiceprintDetector) -> float:
    """CPU seconds for one detect() call; series loading not charged."""
    start = time.process_time()
    detector.detect(density=40.0, now=_OBSERVATION_TIME_S)
    return time.process_time() - start


def test_bench_audit(once, benchmark, tmp_path):
    assert default_audit_log() is None, "bench expects auditing off"

    def run_alternating():
        baseline_cpu, audited_cpu = [], []
        detections = pairs = 0
        for index in range(_WARMUP_ROUNDS):  # warm numpy/DTW caches
            _timed_detect(_loaded_detector(9000 + index))
        for index in range(2 * _ROUNDS_PER_MODE):
            detector = _loaded_detector(index)
            audited = index % 2 == 1
            if audited:
                start_default(out=None)
            cpu = _timed_detect(detector)
            if audited:
                log = stop_default()
                audited_cpu.append(cpu)
                detections += log.detections
                pairs += log.pairs_recorded
            else:
                baseline_cpu.append(cpu)
        return baseline_cpu, audited_cpu, detections, pairs

    def measure_best_attempt():
        best = None
        for _attempt in range(_ATTEMPTS):
            baseline_cpu, audited_cpu, detections, pairs = run_alternating()
            overhead = (
                100.0
                * (min(audited_cpu) - min(baseline_cpu))
                / min(baseline_cpu)
            )
            result = (
                overhead,
                min(baseline_cpu),
                min(audited_cpu),
                detections,
                pairs,
            )
            if best is None or overhead < best[0]:
                best = result
            if overhead < _OVERHEAD_CEILING_PCT:
                break

        # Disk-streaming mode: one log across the rounds, first round
        # is warmup (pays the lazy file open), timings info-only.
        stream_path = tmp_path / "bench_audit.jsonl"
        start_default(out=str(stream_path))
        disk_cpu = [
            _timed_detect(_loaded_detector(5000 + index))
            for index in range(1 + _DISK_ROUNDS)
        ][1:]
        disk_log = stop_default()
        stream_lines = sum(
            1
            for line in stream_path.read_text(encoding="utf-8").splitlines()
            if line
        )
        return (*best, min(disk_cpu), disk_log.detections, stream_lines)

    (
        overhead_pct,
        base_cpu,
        audit_cpu,
        detections,
        pairs,
        disk_cpu,
        disk_detections,
        stream_lines,
    ) = once(benchmark, measure_best_attempt)

    disk_overhead_pct = 100.0 * (disk_cpu - base_cpu) / base_cpu

    payload = {
        "workload": {
            "identities": _IDENTITIES,
            "samples_per_series": _SAMPLES_PER_SERIES,
            "rounds_per_mode": _ROUNDS_PER_MODE,
        },
        "audit": {
            "detections": detections,
            "pairs": pairs,
            "stream_lines": stream_lines,
        },
        "timing": {
            "baseline_cpu_ms": round(base_cpu * 1000.0, 1),
            "audited_cpu_ms": round(audit_cpu * 1000.0, 1),
            "disk_cpu_ms": round(disk_cpu * 1000.0, 1),
            "overhead_pct": round(overhead_pct, 2),
            "disk_overhead_pct": round(disk_overhead_pct, 2),
        },
    }
    _OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    table = render_table(
        ["quantity", "value"],
        [
            ("baseline cpu ms", payload["timing"]["baseline_cpu_ms"]),
            ("audited cpu ms", payload["timing"]["audited_cpu_ms"]),
            ("overhead %", payload["timing"]["overhead_pct"]),
            ("disk cpu ms", payload["timing"]["disk_cpu_ms"]),
            ("disk overhead %", payload["timing"]["disk_overhead_pct"]),
            ("bundles", detections),
            ("pair records", pairs),
        ],
        title=f"audit overhead (-> {_OUT_PATH.name})",
    )
    print("\n" + table)
    benchmark.extra_info["table"] = table

    assert detections == _ROUNDS_PER_MODE, (
        f"expected one bundle per audited round, got {detections}"
    )
    assert pairs == _ROUNDS_PER_MODE * _PAIRS_PER_ROUND, (
        f"expected {_PAIRS_PER_ROUND} pair records per round, got {pairs}"
    )
    assert stream_lines == disk_detections == 1 + _DISK_ROUNDS, (
        f"disk stream should hold one line per detection, got "
        f"{stream_lines} lines / {disk_detections} detections"
    )
    assert overhead_pct < _OVERHEAD_CEILING_PCT, (
        f"audit overhead {overhead_pct:.2f}% exceeds "
        f"{_OVERHEAD_CEILING_PCT}%"
    )
