"""E4 — regenerate Fig. 9 (the DTW worked example)."""

from repro.eval.experiments import run_dtw_example
from repro.eval.reporting import render_table


def test_bench_fig09_dtw_example(once, benchmark):
    result = once(benchmark, run_dtw_example)
    table = render_table(
        ["quantity", "value"],
        [
            ("X", "{1, 1, 4, 1, 1}"),
            ("Y", "{2, 2, 2, 4, 2, 2}"),
            ("DTW distance (Eqs. 3-6, squared cost)", result.squared_distance),
            ("DTW distance (absolute cost)", result.absolute_distance),
            ("Fig. 9's printed value", result.paper_claimed),
            ("warp path", " ".join(map(str, result.path))),
        ],
        title="Fig. 9 — DTW worked example (the figure's 9 does not follow "
        "from the printed equations; both standard costs give 5)",
    )
    print("\n" + table)
    benchmark.extra_info["table"] = table
    assert result.squared_distance == 5.0
    assert not result.matches_paper
