"""Profiler overhead benchmark — sampling must stay under 5 %.

Runs a compare-dominated detection workload (all-pairs DTW over fresh
random RSSI series each round, so the pair cache cannot collapse the
work) and gates the sampling profiler's overhead at the default rate.

Measuring a single-digit-percent slowdown on a shared runner needs
care: per-round CPU time wobbles multiplicatively (co-tenant cache and
frequency pressure) in bursts of tens of percent, and the host's
"quiet speed" drifts over hundreds of milliseconds.  Block designs
(all baseline rounds, then all profiled rounds) confound that drift
with the treatment, so instead:

* rounds **alternate** baseline / profiled, so both modes sample the
  same noise environment at ~30 ms granularity;
* each round is timed individually with ``time.process_time`` (spans
  all threads, so the sampler's own burn is charged) and the per-mode
  **minimum** is compared — bursty noise only inflates round times, so
  the min recovers the quiet-host cost of each mode, while the
  sampler's overhead is uniform (several samples per round) and
  survives in the min.

The profiler itself is started/stopped outside the timed region of
each profiled round; its sample statistics accumulate across rounds.
Even the min-of comparison can be unlucky when the host's quiet
windows are shorter than a round pair, so the measurement retries up
to ``_ATTEMPTS`` times and gates on the best attempt: noise passes on
a retry, while a genuine overhead regression fails every attempt.
The run writes ``BENCH_profile.json`` at the repo root for the
``bench_compare`` regression gate.

Acceptance criteria (asserted on any host):

* sampling at the default hz adds < 5 % to the workload;
* >= 90 % of busy samples are attributed to a known pipeline phase;
* ``compare`` dominates the phase breakdown on this all-pairs workload.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.core.detector import DetectorConfig, VoiceprintDetector
from repro.core.thresholds import ConstantThreshold
from repro.core.timeseries import RSSITimeSeries
from repro.eval.reporting import render_table
from repro.obs.profiling import DEFAULT_HZ, start_default, stop_default
from repro.obs.trace import default_tracer

_REPO_ROOT = Path(__file__).resolve().parent.parent
_OUT_PATH = _REPO_ROOT / "BENCH_profile.json"

_IDENTITIES = 24
_SAMPLES_PER_SERIES = 200
_ROUNDS_PER_MODE = 50
_WARMUP_ROUNDS = 3
_ATTEMPTS = 3
_OVERHEAD_CEILING_PCT = 5.0
_ATTRIBUTED_FLOOR_PCT = 90.0


def _detect_round(seed: int) -> int:
    """One all-pairs detection over fresh random series (cache-cold)."""
    rng = np.random.default_rng(seed)
    config = DetectorConfig(observation_time=20.0)
    detector = VoiceprintDetector(
        threshold=ConstantThreshold(0.05), config=config
    )
    times = np.linspace(0.0, 20.0, _SAMPLES_PER_SERIES)
    # Feeding the detector is the collection phase; the span is a no-op
    # while the tracer is disabled (the baseline rounds).
    with default_tracer().span("collect"):
        for index in range(_IDENTITIES):
            series = RSSITimeSeries(f"v{index}")
            rssi = -70.0 + np.cumsum(rng.normal(0.0, 0.8, _SAMPLES_PER_SERIES))
            for t, value in zip(times, rssi):
                series.append(float(t), float(value))
            detector.load_series(series)
    report = detector.detect(density=40.0, now=20.0)
    return len(report.compared_ids)


def test_bench_profile(once, benchmark):
    tracer = default_tracer()
    assert not tracer.enabled, "bench expects the production default"

    def run_alternating():
        baseline_cpu, profiled_cpu = [], []
        baseline_wall, profiled_wall = [], []
        phases, samples, idle, attributed = {}, 0, 0, 0
        for index in range(_WARMUP_ROUNDS):  # warm numpy/DTW caches
            _detect_round(9000 + index)
        for index in range(2 * _ROUNDS_PER_MODE):
            profiled = index % 2 == 1
            if profiled:
                profiler = start_default(hz=DEFAULT_HZ)
            cpu = time.process_time()
            wall = time.perf_counter()
            _detect_round(index)
            cpu = time.process_time() - cpu
            wall = time.perf_counter() - wall
            if profiled:
                stop_default()
                tracer.disable()
                profiled_cpu.append(cpu)
                profiled_wall.append(wall)
                samples += profiler.samples_total
                idle += profiler.idle_samples
                attributed += profiler.attributed_samples
                for phase, count in profiler.phase_breakdown().items():
                    phases[phase] = phases.get(phase, 0) + count
            else:
                baseline_cpu.append(cpu)
                baseline_wall.append(wall)
        return (
            baseline_cpu,
            profiled_cpu,
            baseline_wall,
            profiled_wall,
            phases,
            samples,
            idle,
            attributed,
        )

    def measure_best_attempt():
        best = None
        for attempt in range(_ATTEMPTS):
            (
                baseline_cpu,
                profiled_cpu,
                baseline_wall,
                profiled_wall,
                phases,
                samples,
                idle,
                attributed,
            ) = run_alternating()
            overhead = 100.0 * (min(profiled_cpu) - min(baseline_cpu)) / min(
                baseline_cpu
            )
            result = (
                overhead,
                min(baseline_cpu),
                min(profiled_cpu),
                min(baseline_wall),
                min(profiled_wall),
                phases,
                samples,
                idle,
                attributed,
            )
            if best is None or overhead < best[0]:
                best = result
            if overhead < _OVERHEAD_CEILING_PCT:
                break
        return best

    (
        overhead_pct,
        base_cpu,
        prof_cpu,
        base_wall,
        prof_wall,
        phases,
        samples,
        idle,
        attributed,
    ) = once(benchmark, measure_best_attempt)

    attributed_pct = 100.0 * attributed / samples if samples else 0.0
    compare_pct = 100.0 * phases.get("compare", 0) / samples if samples else 0.0

    payload = {
        "workload": {
            "identities": _IDENTITIES,
            "samples_per_series": _SAMPLES_PER_SERIES,
            "rounds_per_mode": _ROUNDS_PER_MODE,
            "hz": DEFAULT_HZ,
        },
        "profile": {
            "samples": samples,
            "idle_samples": idle,
            "attributed_pct": round(attributed_pct, 1),
            "compare_pct": round(compare_pct, 1),
        },
        "timing": {
            "baseline_cpu_ms": round(base_cpu * 1000.0, 1),
            "profiled_cpu_ms": round(prof_cpu * 1000.0, 1),
            "baseline_wall_ms": round(base_wall * 1000.0, 1),
            "profiled_wall_ms": round(prof_wall * 1000.0, 1),
            "overhead_pct": round(overhead_pct, 2),
        },
    }
    _OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    table = render_table(
        ["quantity", "value"],
        [
            ("baseline cpu ms", payload["timing"]["baseline_cpu_ms"]),
            ("profiled cpu ms", payload["timing"]["profiled_cpu_ms"]),
            ("overhead %", payload["timing"]["overhead_pct"]),
            ("busy samples", samples),
            ("attributed %", payload["profile"]["attributed_pct"]),
            ("compare %", payload["profile"]["compare_pct"]),
        ],
        title=f"profiler overhead (-> {_OUT_PATH.name})",
    )
    print("\n" + table)
    benchmark.extra_info["table"] = table

    assert samples > 0, "sampler took no samples over the profiled rounds"
    assert attributed_pct >= _ATTRIBUTED_FLOOR_PCT, (
        f"only {attributed_pct:.1f}% of samples attributed to a known phase"
    )
    assert compare_pct > 50.0, (
        f"compare should dominate the all-pairs workload, got {compare_pct:.1f}%"
    )
    assert overhead_pct < _OVERHEAD_CEILING_PCT, (
        f"sampling overhead {overhead_pct:.2f}% exceeds "
        f"{_OVERHEAD_CEILING_PCT}%"
    )
