"""Watchtower overhead benchmark — TSDB + drift must stay under 5 %.

Runs the same compare-dominated detection workload as
``test_bench_audit.py`` (all-pairs DTW over fresh random RSSI series
each round) with a full telemetry stack attached — enabled registry,
one Snapshotter tick per detection — and gates what ``--watch-record``
*adds* on top of that: the :class:`~repro.obs.tsdb.TimeSeriesDB`
per-tick fold plus the :class:`~repro.obs.drift.DriftMonitor`'s
CUSUM/Page–Hinkley updates and SLO burn windows.

Measurement discipline mirrors the other overhead gates: rounds
alternate baseline (snapshotter only) / watched (snapshotter + TSDB +
drift) so both modes sample the same host noise, each round is timed
with ``time.process_time``, the per-mode minimum recovers the
quiet-host cost, and the whole measurement retries up to ``_ATTEMPTS``
times — noise passes on a retry, a real overhead regression fails
every attempt.

The run writes ``BENCH_watch.json`` at the repo root for the
``bench_compare`` regression gate.  Tick / series / alert counts are
deterministic replays of the seeded workload and gate at the
deterministic tolerance; timings are host-dependent and skipped in CI.

Acceptance criteria (asserted on any host):

* TSDB + drift add < 5 % to the snapshotted detection workload;
* every watched round folds exactly one tick, and the store retains
  the detector's rate/gauge/histogram-derived series;
* the steady seeded workload trips zero drift alerts (a drift alert
  here would mean the detectors false-positive on stationary data).
"""

import itertools
import json
import time
from pathlib import Path

import numpy as np

from repro.core.detector import DetectorConfig, VoiceprintDetector
from repro.core.thresholds import ConstantThreshold
from repro.core.timeseries import RSSITimeSeries
from repro.eval.reporting import render_table
from repro.obs.drift import DriftMonitor
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import Snapshotter
from repro.obs.tsdb import TimeSeriesDB

_REPO_ROOT = Path(__file__).resolve().parent.parent
_OUT_PATH = _REPO_ROOT / "BENCH_watch.json"

_IDENTITIES = 24
_SAMPLES_PER_SERIES = 300
_OBSERVATION_TIME_S = 30.0
_ROUNDS_PER_MODE = 30
_WARMUP_ROUNDS = 2
_ATTEMPTS = 3
_OVERHEAD_CEILING_PCT = 5.0


def _loaded_detector(
    seed: int, registry: MetricsRegistry
) -> VoiceprintDetector:
    """A detector over fresh random series (cache-cold every round)."""
    rng = np.random.default_rng(seed)
    config = DetectorConfig(observation_time=_OBSERVATION_TIME_S)
    detector = VoiceprintDetector(
        threshold=ConstantThreshold(0.05), config=config, registry=registry
    )
    times = np.linspace(0.0, _OBSERVATION_TIME_S, _SAMPLES_PER_SERIES)
    for index in range(_IDENTITIES):
        series = RSSITimeSeries(f"v{index:03d}")
        rssi = -70.0 + np.cumsum(
            rng.normal(0.0, 0.8, _SAMPLES_PER_SERIES)
        )
        for t, value in zip(times, rssi):
            series.append(float(t), float(value))
        detector.load_series(series)
    return detector


class _Stack:
    """One mode's registry + snapshotter (+ optional TSDB/drift)."""

    def __init__(self, watched: bool) -> None:
        self.registry = MetricsRegistry()
        self.tsdb = TimeSeriesDB() if watched else None
        self.drift = (
            DriftMonitor(registry=self.registry, health=None)
            if watched
            else None
        )
        # 1s-spaced injected clock: every tick has dt=1, so rates (and
        # hence the TSDB/drift input surface) are deterministic.
        self.snapshotter = Snapshotter(
            registry=self.registry,
            interval_s=1.0,
            tsdb=self.tsdb,
            drift=self.drift,
            clock=itertools.count(0.0, 1.0).__next__,
        )

    def timed_round(self, seed: int) -> float:
        """CPU seconds for one detect + snapshot tick."""
        detector = _loaded_detector(seed, self.registry)
        start = time.process_time()
        detector.detect(density=40.0, now=_OBSERVATION_TIME_S)
        self.snapshotter.tick()
        return time.process_time() - start


def test_bench_watch(once, benchmark):
    def run_alternating():
        baseline = _Stack(watched=False)
        watched = _Stack(watched=True)
        for index in range(_WARMUP_ROUNDS):  # warm numpy/DTW caches
            _Stack(watched=False).timed_round(9000 + index)
        baseline_cpu, watched_cpu = [], []
        for index in range(2 * _ROUNDS_PER_MODE):
            if index % 2 == 1:
                watched_cpu.append(watched.timed_round(index))
            else:
                baseline_cpu.append(baseline.timed_round(index))
        return baseline_cpu, watched_cpu, watched

    def measure_best_attempt():
        best = None
        for _attempt in range(_ATTEMPTS):
            baseline_cpu, watched_cpu, stack = run_alternating()
            overhead = (
                100.0
                * (min(watched_cpu) - min(baseline_cpu))
                / min(baseline_cpu)
            )
            result = (overhead, min(baseline_cpu), min(watched_cpu), stack)
            if best is None or overhead < best[0]:
                best = result
            if overhead < _OVERHEAD_CEILING_PCT:
                break
        return best

    overhead_pct, base_cpu, watch_cpu, stack = once(
        benchmark, measure_best_attempt
    )

    assert stack.tsdb is not None and stack.drift is not None
    series = len(stack.tsdb.series_names())
    payload = {
        "workload": {
            "identities": _IDENTITIES,
            "samples_per_series": _SAMPLES_PER_SERIES,
            "rounds_per_mode": _ROUNDS_PER_MODE,
        },
        "watch": {
            "ticks": stack.snapshotter.ticks,
            "series": series,
            "tsdb_samples": stack.tsdb.samples,
            "drift_alerts": len(stack.drift.alerts),
        },
        "timing": {
            "baseline_cpu_ms": round(base_cpu * 1000.0, 1),
            "watched_cpu_ms": round(watch_cpu * 1000.0, 1),
            "overhead_pct": round(overhead_pct, 2),
        },
    }
    _OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    table = render_table(
        ["quantity", "value"],
        [
            ("baseline cpu ms", payload["timing"]["baseline_cpu_ms"]),
            ("watched cpu ms", payload["timing"]["watched_cpu_ms"]),
            ("overhead %", payload["timing"]["overhead_pct"]),
            ("ticks", payload["watch"]["ticks"]),
            ("series", series),
            ("tsdb samples", payload["watch"]["tsdb_samples"]),
            ("drift alerts", payload["watch"]["drift_alerts"]),
        ],
        title=f"watchtower overhead (-> {_OUT_PATH.name})",
    )
    print("\n" + table)
    benchmark.extra_info["table"] = table

    assert stack.snapshotter.ticks == _ROUNDS_PER_MODE, (
        f"expected one tick per watched round, got {stack.snapshotter.ticks}"
    )
    assert series > 0, "TSDB retained no series from the workload"
    assert len(stack.drift.alerts) == 0, (
        f"steady workload tripped {len(stack.drift.alerts)} drift alert(s): "
        f"{stack.drift.alerts[:3]}"
    )
    assert overhead_pct < _OVERHEAD_CEILING_PCT, (
        f"watchtower overhead {overhead_pct:.2f}% exceeds "
        f"{_OVERHEAD_CEILING_PCT}%"
    )
