"""Shared benchmark fixtures.

Each benchmark regenerates one of the paper's tables or figures and
prints it (run with ``pytest benchmarks/ --benchmark-only -s`` to see
the tables inline).  Timings are collected with a single round — these
are experiment harnesses, not micro-benchmarks; the timing numbers
document the cost of regenerating each artefact.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under the benchmark clock."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once():
    return run_once
