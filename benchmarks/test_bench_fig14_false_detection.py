"""E9 — regenerate Fig. 14 (the red-light false positive analysis)."""

from repro.eval.experiments import run_fig14
from repro.eval.reporting import render_table


def test_bench_fig14_false_detection(once, benchmark):
    result = once(
        benchmark,
        run_fig14,
        duration_s=420.0,
        detection_period_s=30.0,
    )
    table = render_table(
        ["quantity", "value"],
        [
            ("stationary detection periods", len(result.stationary_periods)),
            ("moving detection periods", len(result.moving_periods)),
            ("D(malicious, node 2) stationary", result.node2_distance_stationary),
            ("D(malicious, node 2) moving", result.node2_distance_moving),
            ("FP periods (single-period rule)", result.false_positives_single),
            ("FP periods while stationary", result.false_positives_stationary),
            ("FP periods while moving", result.false_positives_moving),
            ("FP-period rate stationary", result.fp_rate_stationary()),
            ("FP-period rate moving", result.fp_rate_moving()),
            ("FP periods (multi-period confirmation)", result.false_positives_confirmed),
        ],
        title="Fig. 14 — red-light false positive (paper: the stationary "
        "convoy produces the false positive; confirmation over periods "
        "prunes it)",
    )
    print("\n" + table)
    benchmark.extra_info["table"] = table

    # The urban route must actually park the convoy at some point.
    assert len(result.stationary_periods) >= 1
    assert len(result.moving_periods) >= 2
    # The paper's mechanism: false positives concentrate in the
    # stationary periods — while moving, the voiceprints separate.
    stationary_rate = result.fp_rate_stationary()
    moving_rate = result.fp_rate_moving()
    assert stationary_rate is not None and moving_rate is not None
    assert stationary_rate >= moving_rate
    # The suggested multi-period confirmation prunes the transients and
    # never makes things worse.
    assert result.false_positives_confirmed <= result.false_positives_single
