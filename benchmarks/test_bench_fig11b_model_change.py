"""E7 — regenerate Fig. 11b (DR/FPR vs density under model change)."""

import pytest

from repro.eval.experiments import run_boundary_training, run_fig11, run_fig11b
from repro.eval.reporting import render_table
from repro.sim.scenario import ScenarioConfig


@pytest.fixture(scope="module")
def boundary():
    return run_boundary_training(
        densities_vhls_per_km=(10, 30, 50, 80, 100),
        base_config=ScenarioConfig(sim_time_s=60.0),
        seed=100,
    ).line


def test_bench_fig11b_model_change(once, benchmark, boundary):
    def both_panels():
        static = run_fig11(
            boundary,
            densities_vhls_per_km=(10, 40, 80),
            model_change=False,
            runs_per_density=1,
            base_config=ScenarioConfig(sim_time_s=60.0),
            recorded_nodes=8,
            verifiers_per_run=3,
            seed=600,
        )
        changed = run_fig11b(
            boundary,
            densities_vhls_per_km=(10, 40, 80),
            runs_per_density=1,
            base_config=ScenarioConfig(sim_time_s=60.0),
            recorded_nodes=8,
            verifiers_per_run=3,
            seed=600,
        )
        return static, changed

    static, changed = once(benchmark, both_panels)
    table = render_table(
        ["density", "method", "model", "DR", "FPR"],
        [
            (
                r.density_vhls_per_km,
                r.method,
                "changing" if r.model_change else "static",
                r.detection_rate,
                r.false_positive_rate,
            )
            for r in static + changed
        ],
        title="Fig. 11b — periodic model change (paper: CPVSAD collapses, "
        "Voiceprint almost immune)",
    )
    print("\n" + table)
    benchmark.extra_info["table"] = table

    def mean(rows, method, key):
        vals = [
            getattr(r, key)
            for r in rows
            if r.method == method and getattr(r, key) is not None
        ]
        return sum(vals) / len(vals)

    # CPVSAD's false positives explode when the channel departs from
    # its assumed model; Voiceprint's metrics barely move.
    assert mean(changed, "cpvsad", "false_positive_rate") > (
        mean(static, "cpvsad", "false_positive_rate") + 0.1
    )
    vp_dr_shift = abs(
        mean(changed, "voiceprint", "detection_rate")
        - mean(static, "voiceprint", "detection_rate")
    )
    assert vp_dr_shift < 0.15
    vp_fpr_shift = abs(
        mean(changed, "voiceprint", "false_positive_rate")
        - mean(static, "voiceprint", "false_positive_rate")
    )
    assert vp_fpr_shift < 0.12
