"""E3 — regenerate Figs. 6-7 / Observation 3 (Sybil voiceprint similarity)."""

from repro.eval.experiments import run_observation3
from repro.eval.reporting import render_table


def test_bench_fig06_07_observation3(once, benchmark):
    results = once(benchmark, run_observation3, duration_s=180.0)
    rows = []
    for result in results:
        label = {"4": "normal node 1 (ahead, Fig. 6)", "3": "normal node 3 (behind, Fig. 7)"}[
            result.recorder
        ]
        rows.append(
            (
                label,
                result.max_within_sybil(),
                result.min_cross(),
                result.min_cross() / max(result.max_within_sybil(), 1e-12),
            )
        )
    table = render_table(
        ["recorder", "max within-attacker D", "min cross D", "margin"],
        rows,
        title="Figs. 6-7 / Observation 3 — per-step DTW distances "
        "(margin > 1: every same-radio pair beats every cross pair)",
    )
    print("\n" + table)
    benchmark.extra_info["table"] = table
    for result in results:
        assert result.max_within_sybil() < result.min_cross()
