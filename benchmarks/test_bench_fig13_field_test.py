"""E8 — regenerate Fig. 13 (field test across four environments)."""

from repro.eval.experiments import run_fig13
from repro.eval.reporting import render_table


def test_bench_fig13_field_test(once, benchmark):
    areas = once(
        benchmark,
        run_fig13,
        duration_s=300.0,
        detection_period_s=60.0,
    )
    table = render_table(
        ["environment", "periods", "DR", "FPR", "FP periods"],
        [
            (
                a.environment,
                len(a.detections),
                a.detection_rate,
                a.false_positive_rate,
                a.n_false_positive_periods,
            )
            for a in areas
        ],
        title="Fig. 13 — field test at normal node 3, constant threshold "
        "(paper: DR 100%, FPR 0.95% — one red-light false positive)",
    )
    print("\n" + table)
    benchmark.extra_info["table"] = table

    assert {a.environment for a in areas} == {"campus", "rural", "urban", "highway"}
    for area in areas:
        assert area.detection_rate is not None
        # Paper: 100% DR everywhere; allow a period's slack on the
        # synthetic channel.
        assert area.detection_rate > 0.75
    # Moving-dominated environments stay false-positive-free; only the
    # urban drive (red lights) may produce the paper's FP class.
    for area in areas:
        if area.environment in ("rural", "highway"):
            assert area.false_positive_rate in (None, 0.0) or (
                area.false_positive_rate < 0.15
            )
