"""E12 — regenerate the design-choice ablations."""

from repro.eval.experiments import run_ablations
from repro.eval.reporting import render_table


def test_bench_ablations(once, benchmark):
    rows = once(benchmark, run_ablations, duration_s=120.0)
    table = render_table(
        ["group", "variant", "sybil max D", "other min D", "margin", "note"],
        [
            (r.group, r.variant, r.sybil_max, r.other_min, r.margin, r.note)
            for r in rows
        ],
        title="E12 — design ablations on the field-test scenario "
        "(margin > 1: perfect Sybil/neighbour separation)",
    )
    print("\n" + table)
    benchmark.extra_info["table"] = table

    by_variant = {(r.group, r.variant): r for r in rows}

    # Eq. 7's raison d'etre: raw spoofed-power streams break; centering
    # restores the similarity.
    assert (
        by_variant[("normalisation", "none")].margin
        < by_variant[("normalisation", "center-only")].margin
    )
    assert by_variant[("normalisation", "common-scale z-score")].margin > 1.0

    # The warp band: tighter bands never help the Sybil pairs less than
    # unbounded warping helps coincidental look-alikes.
    banded = [r for r in rows if r.group == "dtw-band" and r.variant.startswith("band")]
    assert all(r.margin > 1.0 for r in banded)

    # The paper's declared limitation: per-packet power control
    # destroys the voiceprint.
    smart = [r for r in rows if r.group == "smart-attacker"][0]
    best = max(r.margin for r in rows if r.group == "normalisation")
    assert smart.margin < best
