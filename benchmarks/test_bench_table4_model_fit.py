"""E2 — regenerate Table IV (dual-slope fits per environment)."""

from repro.eval.experiments import run_table4
from repro.eval.reporting import render_table


def test_bench_table4_model_fit(once, benchmark):
    rows = once(benchmark, run_table4, n_samples=4000)
    table = render_table(
        ["environment", "dc true/fit", "g1 true/fit", "g2 true/fit",
         "s1 true/fit", "s2 true/fit"],
        [
            (
                r.environment,
                f"{r.dc_true:.0f}/{r.dc_fit:.0f}",
                f"{r.gamma1_true:.2f}/{r.gamma1_fit:.2f}",
                f"{r.gamma2_true:.2f}/{r.gamma2_fit:.2f}",
                f"{r.sigma1_true:.1f}/{r.sigma1_fit:.1f}",
                f"{r.sigma2_true:.1f}/{r.sigma2_fit:.1f}",
            )
            for r in rows
        ],
        title="Table IV — dual-slope parameters (generating vs refitted)",
    )
    print("\n" + table)
    benchmark.extra_info["table"] = table
    for row in rows:
        assert abs(row.gamma1_fit - row.gamma1_true) < 0.3
        assert abs(row.gamma2_fit - row.gamma2_true) < 0.8
        assert abs(row.dc_fit - row.dc_true) / row.dc_true < 0.35
    # Observation 2's ordering must survive the refit: urban breaks
    # earliest and shadows hardest.
    fits = {row.environment: row for row in rows}
    assert fits["urban"].dc_fit < fits["rural"].dc_fit < fits["campus"].dc_fit
