"""E13 — future work: SCH beacon rates vs observation time."""

from repro.eval.experiments import run_beacon_rate_study
from repro.eval.reporting import render_table


def test_bench_beacon_rate(once, benchmark):
    rows = once(
        benchmark,
        run_beacon_rate_study,
        beacon_rates_hz=(10.0, 50.0),
        observation_times_s=(2.0, 5.0, 10.0, 20.0),
        duration_s=120.0,
    )
    table = render_table(
        ["rate Hz", "obs time s", "samples", "sybil max D", "other min D", "margin"],
        [
            (
                r.beacon_rate_hz,
                r.observation_time_s,
                r.samples_per_series,
                r.sybil_max,
                r.other_min,
                r.margin,
            )
            for r in rows
        ],
        title="E13 — SCH beacon-rate future work (paper: higher SCH rates "
        "should buy shorter observation times)",
    )
    print("\n" + table)
    benchmark.extra_info["table"] = table

    def shortest_perfect(rate):
        times = [
            r.observation_time_s
            for r in rows
            if r.beacon_rate_hz == rate and r.margin > 1.0
        ]
        return min(times) if times else None

    cch = shortest_perfect(10.0)
    sch = shortest_perfect(50.0)
    assert cch is not None
    assert sch is not None
    # The future-work premise: a 5x rate never needs a LONGER window,
    # and typically needs a shorter one.
    assert sch <= cch
