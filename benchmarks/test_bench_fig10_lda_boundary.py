"""E5 — regenerate Fig. 10 (training the decision boundary)."""

from repro.eval.experiments import run_boundary_training
from repro.eval.reporting import render_table
from repro.sim.scenario import ScenarioConfig


def test_bench_fig10_lda_boundary(once, benchmark):
    result = once(
        benchmark,
        run_boundary_training,
        densities_vhls_per_km=(10, 30, 50, 80, 100),
        base_config=ScenarioConfig(sim_time_s=60.0),
        seed=100,
    )
    table = render_table(
        ["quantity", "value"],
        [
            ("trained slope k", result.line.k),
            ("trained intercept b", result.line.b),
            ("paper's k (their NS-2 channel)", result.paper_line[0]),
            ("paper's b (their NS-2 channel)", result.paper_line[1]),
            ("Sybil-pair training points", result.n_positive),
            ("other training points", result.n_negative),
            ("training TPR under line", result.training_tpr),
            ("training FPR under line", result.training_fpr),
        ],
        title="Fig. 10 — density-adaptive decision boundary "
        "(absolute k/b are channel-dependent; structure must match)",
    )
    print("\n" + table)
    benchmark.extra_info["table"] = table
    # Structure claims: a usable separating line exists.
    assert result.n_positive > 50
    assert result.training_tpr > 0.3
    assert result.training_fpr < 0.02
    assert result.line.threshold_at(10.0) > 0.0
    assert result.line.threshold_at(100.0) > 0.0
