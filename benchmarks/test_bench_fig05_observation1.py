"""E1 — regenerate Fig. 5 / Observation 1 (model-based ranging errors)."""

from repro.eval.experiments import run_observation1
from repro.eval.reporting import render_table


def test_bench_fig05_observation1(once, benchmark):
    rows = once(benchmark, run_observation1, duration_s=300.0)
    table = render_table(
        ["period", "n", "mean dBm", "std dB", "true m", "FSPL m", "two-ray m"],
        [
            (
                r.label,
                r.n_samples,
                r.mean_dbm,
                r.std_db,
                r.true_distance_m,
                r.fspl_estimate_m,
                r.trgp_estimate_m,
            )
            for r in rows
        ],
        title="Fig. 5 / Observation 1 — RSSI distributions and ranging estimates "
        "(paper: 140 m ranged as 281.5/171.2 m FSPL, 263.9/205.8 m TRGP)",
    )
    print("\n" + table)
    benchmark.extra_info["table"] = table
    # Shape claims: sessions differ (temporal variation) and ranging is
    # grossly wrong under both predefined models.
    stationary = rows[:2]
    assert stationary[0].mean_dbm != stationary[1].mean_dbm
    for row in stationary:
        assert row.fspl_error_m / row.true_distance_m > 0.2
        assert row.trgp_error_m / row.true_distance_m > 0.2
