"""E6 — regenerate Fig. 11a (DR/FPR vs density, static channel)."""

import pytest

from repro.eval.experiments import run_boundary_training, run_fig11a
from repro.eval.reporting import render_table
from repro.sim.scenario import ScenarioConfig


@pytest.fixture(scope="module")
def boundary():
    return run_boundary_training(
        densities_vhls_per_km=(10, 30, 50, 80, 100),
        base_config=ScenarioConfig(sim_time_s=60.0),
        seed=100,
    ).line


def test_bench_fig11a_static_model(once, benchmark, boundary):
    rows = once(
        benchmark,
        run_fig11a,
        boundary,
        densities_vhls_per_km=(10, 40, 80),
        runs_per_density=1,
        base_config=ScenarioConfig(sim_time_s=60.0),
        recorded_nodes=8,
        verifiers_per_run=3,
        seed=500,
    )
    table = render_table(
        ["density", "method", "DR", "FPR", "node-periods"],
        [
            (
                r.density_vhls_per_km,
                r.method,
                r.detection_rate,
                r.false_positive_rate,
                r.n_outcomes,
            )
            for r in rows
        ],
        title="Fig. 11a — static model (paper: both methods ~90% DR, "
        "FPR under 10%; CPVSAD improves with density, Voiceprint declines)",
    )
    print("\n" + table)
    benchmark.extra_info["table"] = table

    vp = {r.density_vhls_per_km: r for r in rows if r.method == "voiceprint"}
    cp = {r.density_vhls_per_km: r for r in rows if r.method == "cpvsad"}
    # Both methods detect a solid share of Sybil identities everywhere.
    assert min(r.detection_rate for r in vp.values()) > 0.4
    assert min(r.detection_rate for r in cp.values()) > 0.4
    # Voiceprint's DR does not *peak* at the densest point (channel
    # collisions), mirroring the paper's declining trend.  The sweep is
    # small (single run per density), so the comparison is against the
    # best sparser density rather than point-to-point.
    sparser_best = max(
        r.detection_rate for d, r in vp.items() if d < max(vp)
    )
    assert vp[max(vp)].detection_rate <= sparser_best + 0.15
    # CPVSAD keeps its false positives bounded when its model is right.
    assert max(r.false_positive_rate for r in cp.values()) < 0.2
