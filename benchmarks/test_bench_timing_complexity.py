"""E10 — regenerate the Section VI-B computational-cost estimate."""

from repro.eval.experiments import run_timing
from repro.eval.reporting import render_table


def test_bench_timing_complexity(once, benchmark):
    result = once(benchmark, run_timing, pair_repeats=100)
    rows = [("pair comparison (200 samples)", result.pair_ms, result.paper_pair_ms)]
    for count, ms in zip(result.neighbours, result.full_detection_ms):
        paper = result.paper_80_ms if count == 80 else None
        rows.append((f"full detection, {count} neighbours", ms, paper))
    table = render_table(
        ["operation", "measured ms", "paper ms"],
        rows,
        title="Section VI-B — comparison cost (paper hardware: 300 MHz MIPS "
        "running compiled code; ours: CPython on the host — scaling, not "
        "absolute time, is the claim)",
    )
    print("\n" + table)
    benchmark.extra_info["table"] = table

    # The affordability claim: the paper's extreme case (80 neighbours)
    # fits comfortably inside one 20 s detection period.
    assert result.within_detection_period(20.0)
    # Quadratic neighbour scaling: 80 neighbours ~ 3160 pairs vs
    # 40 neighbours ~ 780 pairs -> about 4x.
    by_count = dict(zip(result.neighbours, result.full_detection_ms))
    ratio = by_count[80] / by_count[40]
    assert 2.0 < ratio < 8.0
