"""Pairwise-engine benchmark — the PR-2 performance trajectory seed.

Replays one online-pipeline workload (an attacker trio plus independent
neighbours, 10 Hz beacons, a detection every 5 s plus one same-window
recheck and four *sliding* rechecks per period — the app-triggered
event-messaging pattern where each recheck's window has slid by ~10 new
beacons) through five comparison-phase configurations:

* ``naive``       — the legacy per-pair scalar loop,
* ``kernel``      — the engine's vectorised/batched kernels, no reuse,
* ``cached``      — kernels plus the incremental pair cache,
* ``full``        — kernels, cache, and bound-cascade pruning,
* ``incremental`` — kernels, cache, sliding envelopes, carried
  verdicts, and early-abandon DTW (priced by the new beacons).

Every configuration must flag exactly the same Sybil pairs in every
period (the engine's bit-equality contract); the run writes
``BENCH_pairwise.json`` at the repo root with pairs/sec, cache-hit rate
and DTW cells relaxed/saved per configuration, and asserts the
acceptance criteria: the full engine relaxes >= 4x fewer DP cells than
the naive loop on this recheck-heavy workload, and the incremental
engine sustains >= 3x the committed-baseline cached throughput
(absolute anchor, see ``_BASELINE_CACHED_PPS``) while also beating the
same-run cached configuration.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.core.detector import DetectorConfig
from repro.core.pipeline import OnlineVoiceprint, OnlineVoiceprintConfig
from repro.eval.reporting import render_table
from repro.obs.metrics import MetricsRegistry

_REPO_ROOT = Path(__file__).resolve().parent.parent
_OUT_PATH = _REPO_ROOT / "BENCH_pairwise.json"

_DURATION_S = 120.0
_RATE_HZ = 10.0
_DETECTION_PERIOD_S = 5.0
_N_INDEPENDENT = 11  # + the attacker's three identities = 14 heard
#: Sliding recheck offsets after each periodic detection (seconds); the
#: window has slid by ~offset * rate new beacons at each one.
_SLIDING_RECHECKS_S = (1.0, 2.0, 3.0, 4.0)

#: The ``cached`` configuration's pairs_per_s in the committed baseline
#: (``benchmarks/baselines/BENCH_pairwise.json`` before incremental
#: mode landed) — the PR's acceptance anchor.  An absolute anchor,
#: rather than the same-run cached figure, so the incremental target
#: cannot be met by the cached configuration merely running slower on
#: the recheck-heavy workload.
_BASELINE_CACHED_PPS = 4744.5

_CONFIGS = {
    "naive": {"pairwise_engine": False},
    "kernel": {
        "pairwise_engine": True,
        "pairwise_cache_size": 0,
        "pairwise_pruning": False,
    },
    "cached": {
        "pairwise_engine": True,
        "pairwise_cache_size": 256,
        "pairwise_pruning": False,
    },
    "full": {
        "pairwise_engine": True,
        "pairwise_cache_size": 256,
        "pairwise_pruning": True,
    },
    "incremental": {
        "pairwise_engine": True,
        "pairwise_cache_size": 256,
        "pairwise_pruning": False,
        "pairwise_incremental": True,
    },
}


def _beacon_stream():
    """(timestamp, identity, rssi) tuples for the synthetic scenario."""
    rng = np.random.default_rng(1234)
    n = int(_DURATION_S * _RATE_HZ)
    t = np.arange(n) / _RATE_HZ
    shared = (
        -70.0
        + 5.0 * np.sin(2 * np.pi * t / 15.0)
        + np.cumsum(rng.normal(0.0, 0.4, n))
    )
    streams = {}
    for name, offset in (("mal", 0.0), ("syb1", 4.0), ("syb2", -3.0)):
        streams[name] = shared + offset + rng.normal(0.0, 0.3, n)
    for i in range(_N_INDEPENDENT):
        streams[f"veh{i:02d}"] = (
            -75.0
            + 6.0 * np.sin(2 * np.pi * t / (9.0 + i) + rng.uniform(0.0, 6.0))
            + np.cumsum(rng.normal(0.0, 0.5, n))
        )
    names = sorted(streams)
    for index, timestamp in enumerate(t):
        for name in names:
            yield float(timestamp), name, float(streams[name][index])


def _run_config(name):
    registry = MetricsRegistry(enabled=True)
    pipeline = OnlineVoiceprint(
        max_range_m=650.0,
        detector_config=DetectorConfig(**_CONFIGS[name]),
        config=OnlineVoiceprintConfig(detection_period_s=_DETECTION_PERIOD_S),
        registry=registry,
    )
    flagged = []
    detections = 0
    pending: list = []
    start = time.perf_counter()
    for timestamp, identity, rssi in _beacon_stream():
        while pending and timestamp >= pending[0]:
            # A sliding recheck: the window has slid by the beacons
            # that arrived since the last detection — this is where the
            # incremental engine's envelopes/carries/early-abandon pay.
            pending.pop(0)
            recheck = pipeline.force_detection(timestamp)
            flagged.append(recheck.sybil_pairs)
            detections += 1
        report = pipeline.on_beacon(identity, timestamp, rssi)
        if report is not None:
            # An application-triggered recheck of the same window (the
            # paper's event-triggered messaging): identical series, so
            # a cache (or a carry) answers it without relaxing a single
            # DP cell.
            recheck = pipeline.force_detection(report.timestamp)
            flagged.append((report.sybil_pairs, recheck.sybil_pairs))
            detections += 2
            pending = [report.timestamp + dt for dt in _SLIDING_RECHECKS_S]
    wall_s = time.perf_counter() - start
    pairs = int(registry.counter("detector.pairs_compared").value)
    record = {
        "wall_ms": round(wall_s * 1000.0, 1),
        "detections": detections,
        "pairs": pairs,
        "pairs_per_s": round(pairs / wall_s, 1),
        "pairs_exact": int(registry.counter("detector.pairs_exact").value),
        "pairs_pruned": int(registry.counter("detector.pairs_pruned").value),
        "pairs_incremental": int(
            registry.counter("detector.pairs_incremental").value
        ),
        "pairs_abandoned": int(
            registry.counter("detector.pairs_abandoned").value
        ),
        "envelope_updates": int(
            registry.counter("detector.envelope_updates").value
        ),
        "cache_hits": int(registry.counter("detector.cache_hits").value),
        "hit_rate": round(
            registry.counter("detector.cache_hits").value / pairs, 3
        ),
        "dtw_cells": int(registry.counter("detector.dtw_cells").value),
        "cells_saved": int(registry.counter("detector.cells_saved").value),
    }
    return record, flagged


def test_bench_pairwise(once, benchmark):
    def run_all():
        return {name: _run_config(name) for name in _CONFIGS}

    outcomes = once(benchmark, run_all)
    records = {name: record for name, (record, _) in outcomes.items()}

    # Bit-equality acceptance: every configuration flags exactly the
    # same Sybil pairs as the naive loop, in every detection period.
    reference = outcomes["naive"][1]
    for name, (_, flagged) in outcomes.items():
        assert flagged == reference, f"{name} diverged from the naive flag sets"

    naive_cells = records["naive"]["dtw_cells"]
    full_cells = records["full"]["dtw_cells"]
    records["full"]["cells_ratio_vs_naive"] = round(naive_cells / full_cells, 1)
    payload = {
        "workload": {
            "identities": _N_INDEPENDENT + 3,
            "duration_s": _DURATION_S,
            "beacon_rate_hz": _RATE_HZ,
            "detection_period_s": _DETECTION_PERIOD_S,
            "rechecks_per_period": 1 + len(_SLIDING_RECHECKS_S),
            "sliding_rechecks_per_period": len(_SLIDING_RECHECKS_S),
        },
        "configs": records,
    }
    _OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    table = render_table(
        [
            "config",
            "wall ms",
            "pairs/s",
            "hit rate",
            "pruned",
            "carried",
            "abandoned",
            "DTW cells",
        ],
        [
            (
                name,
                record["wall_ms"],
                record["pairs_per_s"],
                record["hit_rate"],
                record["pairs_pruned"],
                record["pairs_incremental"],
                record["pairs_abandoned"],
                record["dtw_cells"],
            )
            for name, record in records.items()
        ],
        title=f"pairwise engine — sliding-recheck workload (-> {_OUT_PATH.name})",
    )
    print("\n" + table)
    benchmark.extra_info["table"] = table

    # Acceptance criterion: >= 4x fewer DP cells relaxed end-to-end.
    # (The sliding rechecks add near-identical windows whose bounds are
    # genuinely tight, so the cascade prunes a little less than on the
    # periodic-only workload, where the ratio was >= 5x.)
    assert naive_cells >= 4 * full_cells, (naive_cells, full_cells)
    # The cache alone must absorb the same-window recheck share of the
    # workload (1 of the 6 detections per period; sliding rechecks miss).
    assert records["cached"]["hit_rate"] >= 0.15
    # The incremental engine must turn the sliding rechecks into carried
    # or cheaply-decided pairs: >= 3x the committed-baseline cached
    # throughput — an absolute bar — and faster than cached in-run.
    assert (
        records["incremental"]["pairs_per_s"] >= 3.0 * _BASELINE_CACHED_PPS
    ), (records["incremental"]["pairs_per_s"], _BASELINE_CACHED_PPS)
    assert (
        records["incremental"]["pairs_per_s"]
        > records["cached"]["pairs_per_s"]
    ), (records["incremental"]["pairs_per_s"], records["cached"]["pairs_per_s"])
    assert records["incremental"]["pairs_incremental"] > 0
    assert records["incremental"]["envelope_updates"] > 0
