"""Pairwise-engine benchmark — the PR-2 performance trajectory seed.

Replays one online-pipeline workload (an attacker trio plus independent
neighbours, 10 Hz beacons, a detection every 5 s plus one app-triggered
recheck per period) through four comparison-phase configurations:

* ``naive``  — the legacy per-pair scalar loop,
* ``kernel`` — the engine's vectorised/batched kernels, no reuse,
* ``cached`` — kernels plus the incremental pair cache,
* ``full``   — kernels, cache, and bound-cascade pruning.

Every configuration must flag exactly the same Sybil pairs in every
period (the engine's bit-equality contract); the run writes
``BENCH_pairwise.json`` at the repo root with pairs/sec, cache-hit rate
and DTW cells relaxed/saved per configuration, and asserts the
acceptance criterion: the full engine relaxes >= 5x fewer DP cells than
the naive loop on this workload.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.core.detector import DetectorConfig
from repro.core.pipeline import OnlineVoiceprint, OnlineVoiceprintConfig
from repro.eval.reporting import render_table
from repro.obs.metrics import MetricsRegistry

_REPO_ROOT = Path(__file__).resolve().parent.parent
_OUT_PATH = _REPO_ROOT / "BENCH_pairwise.json"

_DURATION_S = 120.0
_RATE_HZ = 10.0
_DETECTION_PERIOD_S = 5.0
_N_INDEPENDENT = 11  # + the attacker's three identities = 14 heard

_CONFIGS = {
    "naive": {"pairwise_engine": False},
    "kernel": {
        "pairwise_engine": True,
        "pairwise_cache_size": 0,
        "pairwise_pruning": False,
    },
    "cached": {
        "pairwise_engine": True,
        "pairwise_cache_size": 256,
        "pairwise_pruning": False,
    },
    "full": {
        "pairwise_engine": True,
        "pairwise_cache_size": 256,
        "pairwise_pruning": True,
    },
}


def _beacon_stream():
    """(timestamp, identity, rssi) tuples for the synthetic scenario."""
    rng = np.random.default_rng(1234)
    n = int(_DURATION_S * _RATE_HZ)
    t = np.arange(n) / _RATE_HZ
    shared = (
        -70.0
        + 5.0 * np.sin(2 * np.pi * t / 15.0)
        + np.cumsum(rng.normal(0.0, 0.4, n))
    )
    streams = {}
    for name, offset in (("mal", 0.0), ("syb1", 4.0), ("syb2", -3.0)):
        streams[name] = shared + offset + rng.normal(0.0, 0.3, n)
    for i in range(_N_INDEPENDENT):
        streams[f"veh{i:02d}"] = (
            -75.0
            + 6.0 * np.sin(2 * np.pi * t / (9.0 + i) + rng.uniform(0.0, 6.0))
            + np.cumsum(rng.normal(0.0, 0.5, n))
        )
    names = sorted(streams)
    for index, timestamp in enumerate(t):
        for name in names:
            yield float(timestamp), name, float(streams[name][index])


def _run_config(name):
    registry = MetricsRegistry(enabled=True)
    pipeline = OnlineVoiceprint(
        max_range_m=650.0,
        detector_config=DetectorConfig(**_CONFIGS[name]),
        config=OnlineVoiceprintConfig(detection_period_s=_DETECTION_PERIOD_S),
        registry=registry,
    )
    flagged = []
    start = time.perf_counter()
    for timestamp, identity, rssi in _beacon_stream():
        report = pipeline.on_beacon(identity, timestamp, rssi)
        if report is not None:
            # An application-triggered recheck of the same window (the
            # paper's event-triggered messaging): identical series, so
            # a cache answers it without relaxing a single DP cell.
            recheck = pipeline.force_detection(report.timestamp)
            flagged.append((report.sybil_pairs, recheck.sybil_pairs))
    wall_s = time.perf_counter() - start
    pairs = int(registry.counter("detector.pairs_compared").value)
    record = {
        "wall_ms": round(wall_s * 1000.0, 1),
        "detections": 2 * len(flagged),
        "pairs": pairs,
        "pairs_per_s": round(pairs / wall_s, 1),
        "pairs_exact": int(registry.counter("detector.pairs_exact").value),
        "pairs_pruned": int(registry.counter("detector.pairs_pruned").value),
        "cache_hits": int(registry.counter("detector.cache_hits").value),
        "hit_rate": round(
            registry.counter("detector.cache_hits").value / pairs, 3
        ),
        "dtw_cells": int(registry.counter("detector.dtw_cells").value),
        "cells_saved": int(registry.counter("detector.cells_saved").value),
    }
    return record, flagged


def test_bench_pairwise(once, benchmark):
    def run_all():
        return {name: _run_config(name) for name in _CONFIGS}

    outcomes = once(benchmark, run_all)
    records = {name: record for name, (record, _) in outcomes.items()}

    # Bit-equality acceptance: every configuration flags exactly the
    # same Sybil pairs as the naive loop, in every detection period.
    reference = outcomes["naive"][1]
    for name, (_, flagged) in outcomes.items():
        assert flagged == reference, f"{name} diverged from the naive flag sets"

    naive_cells = records["naive"]["dtw_cells"]
    full_cells = records["full"]["dtw_cells"]
    records["full"]["cells_ratio_vs_naive"] = round(naive_cells / full_cells, 1)
    payload = {
        "workload": {
            "identities": _N_INDEPENDENT + 3,
            "duration_s": _DURATION_S,
            "beacon_rate_hz": _RATE_HZ,
            "detection_period_s": _DETECTION_PERIOD_S,
            "rechecks_per_period": 1,
        },
        "configs": records,
    }
    _OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    table = render_table(
        ["config", "wall ms", "pairs/s", "hit rate", "pruned", "DTW cells"],
        [
            (
                name,
                record["wall_ms"],
                record["pairs_per_s"],
                record["hit_rate"],
                record["pairs_pruned"],
                record["dtw_cells"],
            )
            for name, record in records.items()
        ],
        title=f"pairwise engine — online workload (-> {_OUT_PATH.name})",
    )
    print("\n" + table)
    benchmark.extra_info["table"] = table

    # Acceptance criterion: >= 5x fewer DP cells relaxed end-to-end.
    assert naive_cells >= 5 * full_cells, (naive_cells, full_cells)
    # The cache alone must absorb the recheck half of the workload.
    assert records["cached"]["hit_rate"] >= 0.5
