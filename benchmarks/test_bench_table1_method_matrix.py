"""E11 — regenerate Table I (RSSI-method comparison matrix)."""

from repro.eval.experiments import run_table1
from repro.eval.reporting import render_table


def test_bench_table1_method_matrix(once, benchmark):
    rows = once(benchmark, run_table1)
    table = render_table(
        ["method", "RPM", "C/D", "C/I", "SoI", "mobility", "implemented"],
        [
            (
                r.method,
                r.propagation_model,
                r.centralisation,
                r.cooperation,
                r.needs_infrastructure,
                r.mobility,
                r.implemented,
            )
            for r in rows
        ],
        title="Table I — comparisons of RSSI-based detection methods",
    )
    print("\n" + table)
    benchmark.extra_info["table"] = table

    voiceprint = [r for r in rows if r.method == "Voiceprint"][0]
    assert voiceprint.propagation_model == "Model-free"
    assert voiceprint.cooperation == "I"
    assert not voiceprint.needs_infrastructure
    assert len(rows) == 8
