"""Streaming service throughput benchmark — the ``repro serve`` gate.

Feeds a seeded 100-observer synthetic fleet (each observer hears 4
legitimate identities plus a 3-identity Sybil cluster, all beaconing
at 10 Hz) through a sharded :class:`~repro.serve.DetectionService`
as fast as the queues accept, then:

* gates sustained ingest throughput at ``_THROUGHPUT_FLOOR`` beacons/s
  (the ISSUE's 10k/s floor — measured end-to-end: submit through
  flush, detections included);
* reports ingest-to-verdict latency (p50/p99 over every published
  report, wall clock from ``submit`` of the triggering beacon to
  publication);
* replays every observer's stream through a serial batch
  :class:`~repro.core.pipeline.OnlineVoiceprint` and asserts the
  service's reports are **byte-identical** (``verdicts_match``) — the
  concurrency must be a pure parallelisation.

Counts (beacons, observers, reports, shed, flagged observers,
verdicts_match) are deterministic replays of the seeded fleet and gate
at the deterministic tolerance in ``bench_compare``; throughput and
latency are host-dependent timings, skipped in CI.  Like the other
timing gates, the measurement retries up to ``_ATTEMPTS`` times so a
noisy host passes on a retry while a real regression fails every
attempt.
"""

import json
import time
from collections import defaultdict
from pathlib import Path

from repro.core.pipeline import OnlineVoiceprint
from repro.eval.reporting import render_table
from repro.obs.metrics import MetricsRegistry
from repro.serve import DetectionService, ServiceConfig, synthetic_fleet

_REPO_ROOT = Path(__file__).resolve().parent.parent
_OUT_PATH = _REPO_ROOT / "BENCH_serve.json"

_OBSERVERS = 100
_LEGIT = 4
_SYBIL = 3
_DURATION_S = 30.0
_BEACON_HZ = 10.0
_SHARDS = 4
_SEED = 7
_ATTEMPTS = 3
_THROUGHPUT_FLOOR = 10_000.0  # beacons/s, end-to-end


def _percentile(sorted_values, q):
    if not sorted_values:
        return 0.0
    rank = q / 100.0 * (len(sorted_values) - 1)
    low = int(rank)
    high = min(low + 1, len(sorted_values) - 1)
    frac = rank - low
    return sorted_values[low] * (1 - frac) + sorted_values[high] * frac


def _run_service(events, config):
    """One full ingest: returns (wall_s, shed, report_events)."""
    service = DetectionService(config, registry=MetricsRegistry())
    subscription = service.subscribe("bench", depth=65536)
    service.start()
    start = time.perf_counter()
    for event in events:
        service.submit(event)
    service.flush(timeout=600.0)
    wall_s = time.perf_counter() - start
    service.stop()
    shed = service.stats()["shed"]
    return wall_s, shed, subscription.drain()


def _replay_batch(events, config):
    """Serial per-observer reference replay (the byte-identity oracle)."""
    per_observer = defaultdict(list)
    for event in events:
        per_observer[event.observer].append(event)
    reports = {}
    for observer, observer_events in per_observer.items():
        pipeline = OnlineVoiceprint(
            max_range_m=config.max_range_m,
            detector_config=config.detector_config,
            config=config.pipeline_config,
        )
        out = []
        for event in observer_events:
            report = pipeline.on_beacon(event.identity, event.t, event.rssi_dbm)
            if report is not None:
                out.append(report)
        reports[observer] = out
    return reports


def test_bench_serve(once, benchmark):
    events = synthetic_fleet(
        observers=_OBSERVERS,
        legit=_LEGIT,
        sybil=_SYBIL,
        duration_s=_DURATION_S,
        beacon_hz=_BEACON_HZ,
        seed=_SEED,
    )
    config = ServiceConfig(shards=_SHARDS)

    def measure_best_attempt():
        best = None
        for _attempt in range(_ATTEMPTS):
            wall_s, shed, report_events = _run_service(events, config)
            throughput = len(events) / wall_s
            if best is None or throughput > best[0]:
                best = (throughput, wall_s, shed, report_events)
            if throughput >= _THROUGHPUT_FLOOR:
                break
        return best

    throughput, wall_s, shed, report_events = once(
        benchmark, measure_best_attempt
    )

    served = defaultdict(list)
    latencies = []
    for report_event in report_events:
        served[report_event.observer].append(report_event.report)
        latencies.append(report_event.latency_ms)
    latencies.sort()

    batch = _replay_batch(events, config)
    verdicts_match = int(
        set(served) == set(batch)
        and all(served[observer] == batch[observer] for observer in batch)
    )
    flagged_observers = sum(
        1
        for reports in batch.values()
        if any(report.sybil_ids for report in reports)
    )

    payload = {
        "workload": {
            "beacons": len(events),
            "observers": _OBSERVERS,
            "identities_per_observer": _LEGIT + _SYBIL,
            "beacon_hz": _BEACON_HZ,
            "duration_s": _DURATION_S,
            "shards": _SHARDS,
        },
        "serve": {
            "reports": len(report_events),
            "shed": shed,
            "flagged_observers": flagged_observers,
            "verdicts_match": verdicts_match,
        },
        "timing": {
            "ingest_wall_ms": round(wall_s * 1000.0, 1),
            "beacons_per_s": round(throughput, 0),
            "p50_ingest_to_verdict_ms": round(
                _percentile(latencies, 50.0), 2
            ),
            "p99_ingest_to_verdict_ms": round(
                _percentile(latencies, 99.0), 2
            ),
        },
    }
    _OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    table = render_table(
        ["quantity", "value"],
        [
            ("beacons", payload["workload"]["beacons"]),
            ("observers", _OBSERVERS),
            ("reports", payload["serve"]["reports"]),
            ("shed", shed),
            ("throughput (beacons/s)", payload["timing"]["beacons_per_s"]),
            ("ingest wall ms", payload["timing"]["ingest_wall_ms"]),
            ("p50 ingest-to-verdict ms",
             payload["timing"]["p50_ingest_to_verdict_ms"]),
            ("p99 ingest-to-verdict ms",
             payload["timing"]["p99_ingest_to_verdict_ms"]),
            ("flagged observers", flagged_observers),
            ("verdicts match batch", verdicts_match),
        ],
        title=f"streaming service throughput (-> {_OUT_PATH.name})",
    )
    print("\n" + table)
    benchmark.extra_info["table"] = table

    assert verdicts_match == 1, (
        "service reports diverged from the serial batch replay"
    )
    assert shed == 0, f"block-policy ingest shed {shed} beacons"
    assert len(report_events) >= _OBSERVERS, (
        f"expected >= 1 report per observer, got {len(report_events)}"
    )
    assert flagged_observers >= int(0.9 * _OBSERVERS), (
        f"only {flagged_observers}/{_OBSERVERS} observers flagged their "
        "Sybil cluster"
    )
    assert throughput >= _THROUGHPUT_FLOOR, (
        f"sustained {throughput:,.0f} beacons/s, floor is "
        f"{_THROUGHPUT_FLOOR:,.0f}"
    )
