"""Lineage overhead benchmark — tracing must stay under 5 %.

Runs the BENCH_serve workload (a seeded 100-observer synthetic fleet
through a sharded :class:`~repro.serve.DetectionService`) twice per
attempt — lineage off, then lineage on at the default 1 % tail
sample — and:

* gates the throughput cost of tracing at ``_OVERHEAD_CEILING_PCT``
  (the ISSUE's <5 % budget: context minting, queue propagation, span
  listening and tail-retention, measured end-to-end submit→flush);
* asserts verdicts stay **byte-identical** with tracing on
  (``verdicts_match`` — lineage observes the pipeline, never steers
  it);
* asserts every retained trace's disjoint stage cuts sum to its
  recorded ingest-to-verdict latency (``stage_sum_ok``) and that every
  flagged verdict's trace was retained (``traces_flagged`` — the
  tail-based sampler never drops the traces that matter).

``traces_flagged`` and ``stage_sum_ok`` are deterministic replays of
the seeded fleet and gate at the deterministic tolerance in
``bench_compare``; the throughputs and ``overhead_pct`` are
host-dependent timings, skipped in CI.  Like the profiler's overhead
gate, the measurement retries up to ``_ATTEMPTS`` times so a noisy
host passes on a retry while a real regression fails every attempt.
"""

import json
import time
from collections import defaultdict
from pathlib import Path

from repro.eval.reporting import render_table
from repro.obs.lineage import start_lineage, stop_lineage
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import default_tracer
from repro.serve import DetectionService, ServiceConfig, synthetic_fleet

_REPO_ROOT = Path(__file__).resolve().parent.parent
_OUT_PATH = _REPO_ROOT / "BENCH_trace.json"

_OBSERVERS = 100
_LEGIT = 4
_SYBIL = 3
_DURATION_S = 30.0
_BEACON_HZ = 10.0
_SHARDS = 4
_SEED = 7
_ATTEMPTS = 3
_OVERHEAD_CEILING_PCT = 5.0
_SAMPLE = 0.01
_CAPACITY = 4096  # > total verdicts: flagged traces must never evict
_STAGE_SUM_TOLERANCE_MS = 0.05


def _run_service(events, config):
    """One full ingest; returns (wall_s, report_events)."""
    service = DetectionService(config, registry=MetricsRegistry())
    subscription = service.subscribe("bench", depth=65536)
    service.start()
    start = time.perf_counter()
    for event in events:
        service.submit(event)
    service.flush(timeout=600.0)
    wall_s = time.perf_counter() - start
    service.stop()
    return wall_s, subscription.drain()


def _run_traced(events, config):
    """Same ingest with the process-global lineage installed; returns
    (wall_s, report_events, lineage_stats, retained_records)."""
    tracer_was_enabled = default_tracer().enabled
    registry = MetricsRegistry()
    registry.enable()
    lineage = start_lineage(
        capacity=_CAPACITY, sample=_SAMPLE, registry=registry
    )
    try:
        wall_s, report_events = _run_service(events, config)
        stats = lineage.stats()
        records = lineage.records
    finally:
        stop_lineage()
        if not tracer_was_enabled:
            default_tracer().disable()
    return wall_s, report_events, stats, records


def _by_observer(report_events):
    grouped = defaultdict(list)
    for event in report_events:
        grouped[event.observer].append(event.report)
    return grouped


def test_bench_trace(once, benchmark):
    events = synthetic_fleet(
        observers=_OBSERVERS,
        legit=_LEGIT,
        sybil=_SYBIL,
        duration_s=_DURATION_S,
        beacon_hz=_BEACON_HZ,
        seed=_SEED,
    )
    config = ServiceConfig(shards=_SHARDS)

    def measure_best_attempt():
        best = None
        for _attempt in range(_ATTEMPTS):
            base_wall, base_reports = _run_service(events, config)
            traced_wall, traced_reports, stats, records = _run_traced(
                events, config
            )
            base_tput = len(events) / base_wall
            traced_tput = len(events) / traced_wall
            overhead = 100.0 * (base_tput - traced_tput) / base_tput
            candidate = (
                overhead,
                base_tput,
                traced_tput,
                base_reports,
                traced_reports,
                stats,
                records,
            )
            if best is None or overhead < best[0]:
                best = candidate
            if overhead < _OVERHEAD_CEILING_PCT:
                break
        return best

    (
        overhead_pct,
        base_tput,
        traced_tput,
        base_reports,
        traced_reports,
        stats,
        records,
    ) = once(benchmark, measure_best_attempt)

    verdicts_match = int(
        _by_observer(traced_reports) == _by_observer(base_reports)
    )
    flagged_verdicts = sum(
        1 for event in traced_reports if event.report.sybil_pairs
    )
    traces_flagged = sum(1 for record in records if record["flagged"])
    stage_sum_ok = int(
        all(
            abs(
                record["stages"]["ingest_enqueue"]
                + record["stages"]["queue_wait"]
                + record["stages"]["detect"]
                - record["latency_ms"]
            )
            <= _STAGE_SUM_TOLERANCE_MS
            for record in records
        )
    )

    payload = {
        "workload": {
            "beacons": len(events),
            "observers": _OBSERVERS,
            "identities_per_observer": _LEGIT + _SYBIL,
            "beacon_hz": _BEACON_HZ,
            "duration_s": _DURATION_S,
            "shards": _SHARDS,
        },
        "lineage": {
            "reports": len(traced_reports),
            "traces_flagged": traces_flagged,
            "stage_sum_ok": stage_sum_ok,
            "verdicts_match": verdicts_match,
            "retained": stats["retained"],
            "completed": stats["completed"],
        },
        "timing": {
            "baseline_beacons_per_s": round(base_tput, 0),
            "traced_beacons_per_s": round(traced_tput, 0),
            "overhead_pct": round(overhead_pct, 2),
        },
    }
    _OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    table = render_table(
        ["quantity", "value"],
        [
            ("beacons", payload["workload"]["beacons"]),
            ("reports", payload["lineage"]["reports"]),
            ("baseline beacons/s",
             payload["timing"]["baseline_beacons_per_s"]),
            ("traced beacons/s",
             payload["timing"]["traced_beacons_per_s"]),
            ("overhead %", payload["timing"]["overhead_pct"]),
            ("traces retained", stats["retained"]),
            ("flagged verdicts / traces",
             f"{flagged_verdicts} / {traces_flagged}"),
            ("stage sums hold", stage_sum_ok),
            ("verdicts match baseline", verdicts_match),
        ],
        title=f"lineage tracing overhead (-> {_OUT_PATH.name})",
    )
    print("\n" + table)
    benchmark.extra_info["table"] = table

    assert verdicts_match == 1, (
        "verdicts diverged with lineage tracing on"
    )
    assert traces_flagged == flagged_verdicts, (
        f"{flagged_verdicts} flagged verdicts but only {traces_flagged} "
        "flagged traces retained — tail sampling dropped the traces "
        "that matter"
    )
    assert stage_sum_ok == 1, (
        "stage cuts do not sum to the recorded ingest-to-verdict latency"
    )
    assert overhead_pct < _OVERHEAD_CEILING_PCT, (
        f"lineage costs {overhead_pct:.2f}% throughput, ceiling is "
        f"{_OVERHEAD_CEILING_PCT:.1f}%"
    )
