"""Sybil attack models (paper Section IV-A).

A *malicious node* is one physical vehicle that broadcasts under its own
identity plus several fabricated ones (*Sybil nodes*), each with a
forged position and — per Assumption 3 — possibly its own (constant)
transmission power.  The paper's simulations give each malicious node
3–6 Sybil identities with initial powers drawn from 17–23 dBm.

The paper's future-work section names the one attack Voiceprint cannot
handle: *power control*, where the attacker modulates TX power packet by
packet to scramble the RSSI shape.  :class:`PerPacketRandomPower`
implements that smart attacker so the limitation can be measured
(ablation E12) rather than asserted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Protocol, Tuple

import numpy as np

__all__ = [
    "PowerPolicy",
    "ConstantPower",
    "PerPacketRandomPower",
    "RandomWalkPower",
    "SybilIdentity",
    "SybilAttacker",
]

Point = Tuple[float, float]


class PowerPolicy(Protocol):
    """Per-identity transmit-power schedule."""

    def power_dbm(self, t: float, rng: np.random.Generator) -> float:
        """TX power for a packet sent at time ``t``."""
        ...


@dataclass(frozen=True)
class ConstantPower:
    """Assumption 3's honest-after-setup policy: pick once, hold forever."""

    dbm: float

    def power_dbm(self, t: float, rng: np.random.Generator) -> float:
        return self.dbm


@dataclass(frozen=True)
class PerPacketRandomPower:
    """The future-work smart attacker: a fresh power for every packet.

    Violates Assumption 3 on purpose; breaks the Z-score's shift/scale
    cancellation because the injected variation is *not* constant.
    """

    low_dbm: float
    high_dbm: float

    def __post_init__(self) -> None:
        if self.high_dbm < self.low_dbm:
            raise ValueError(
                f"power range is inverted: [{self.low_dbm}, {self.high_dbm}]"
            )

    def power_dbm(self, t: float, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low_dbm, self.high_dbm))


@dataclass(frozen=True)
class RandomWalkPower:
    """A gentler smart attacker: power drifts by a bounded step per packet.

    Harder to spot than :class:`PerPacketRandomPower` (the series stays
    smooth) yet still defeats a constant-offset normalisation — the
    middle ground the ablations probe.
    """

    initial_dbm: float
    step_db: float = 0.5
    low_dbm: float = 10.0
    high_dbm: float = 30.0

    def __post_init__(self) -> None:
        if self.step_db < 0:
            raise ValueError(f"step must be non-negative, got {self.step_db}")
        if not self.low_dbm <= self.initial_dbm <= self.high_dbm:
            raise ValueError(
                f"initial power {self.initial_dbm} outside "
                f"[{self.low_dbm}, {self.high_dbm}]"
            )

    def power_dbm(self, t: float, rng: np.random.Generator) -> float:
        # Deterministic-in-t drift would correlate across identities, so
        # the walk is re-drawn per call; state lives in the RNG stream.
        offset = float(rng.uniform(-self.step_db, self.step_db))
        return float(np.clip(self.initial_dbm + offset, self.low_dbm, self.high_dbm))


@dataclass(frozen=True)
class SybilIdentity:
    """One fabricated identity.

    Attributes:
        identity: The forged identifier broadcast in beacons.
        power: TX power schedule for this identity.
        claimed_offset: Fabricated position offset relative to the
            attacker's true position — the claimed location the beacons
            carry.  The RSSI, of course, keeps matching the *true*
            position; that mismatch is what position-verification
            baselines look for, and what the forged offset hides from
            naive plausibility checks.
    """

    identity: str
    power: PowerPolicy
    claimed_offset: Point

    def claimed_position(self, true_position: Point) -> Point:
        """The position this identity claims, given the radio's truth."""
        return (
            true_position[0] + self.claimed_offset[0],
            true_position[1] + self.claimed_offset[1],
        )


@dataclass
class SybilAttacker:
    """The attack plan of one malicious vehicle.

    Attributes:
        node_id: The attacker's own (legitimate-looking) identity.
        own_power: TX power policy for the attacker's own beacons.
        identities: The fabricated Sybil identities.
    """

    node_id: str
    own_power: PowerPolicy
    identities: List[SybilIdentity] = field(default_factory=list)

    @property
    def sybil_ids(self) -> Tuple[str, ...]:
        """The fabricated identifiers (excluding the attacker's own)."""
        return tuple(s.identity for s in self.identities)

    @property
    def all_ids(self) -> Tuple[str, ...]:
        """Every identity this radio transmits under."""
        return (self.node_id,) + self.sybil_ids

    @classmethod
    def generate(
        cls,
        node_id: str,
        rng: np.random.Generator,
        n_sybils_range: Tuple[int, int] = (3, 6),
        power_range_dbm: Tuple[float, float] = (17.0, 23.0),
        claimed_offset_range_m: float = 250.0,
        min_claimed_offset_m: float = 50.0,
        smart_power: bool = False,
    ) -> "SybilAttacker":
        """Roll a paper-style attacker.

        Args:
            node_id: The attacker's physical identity.
            rng: Seeded generator (all draws come from it).
            n_sybils_range: Inclusive range for the Sybil count
                (paper: 3–6).
            power_range_dbm: Initial powers are uniform in this range
                (paper: 17–23 dBm) and then constant — unless
                ``smart_power``.
            claimed_offset_range_m: Fabricated positions fall within
                this longitudinal distance of the attacker.
            min_claimed_offset_m: Minimum longitudinal stand-off of a
                fabricated position from the attacker.
            smart_power: Use the future-work per-packet power-control
                attack instead of constant powers.
        """
        lo, hi = n_sybils_range
        if not 1 <= lo <= hi:
            raise ValueError(f"bad Sybil count range: {n_sybils_range}")
        n = int(rng.integers(lo, hi + 1))
        own = ConstantPower(float(rng.uniform(*power_range_dbm)))
        identities = []
        for index in range(n):
            if smart_power:
                power: PowerPolicy = PerPacketRandomPower(*power_range_dbm)
            else:
                power = ConstantPower(float(rng.uniform(*power_range_dbm)))
            # Fabricated positions keep a minimum stand-off from the
            # attacker: a fake vehicle claiming to sit on the attacker's
            # roof would defeat the purpose of a distinct identity.
            magnitude = float(
                rng.uniform(min_claimed_offset_m, claimed_offset_range_m)
            )
            offset_x = magnitude * (1.0 if rng.uniform() < 0.5 else -1.0)
            offset_y = float(rng.uniform(-3.6, 3.6))
            identities.append(
                SybilIdentity(
                    identity=f"{node_id}#sybil{index + 1}",
                    power=power,
                    claimed_offset=(offset_x, offset_y),
                )
            )
        return cls(node_id=node_id, own_power=own, identities=identities)
