"""Attack models: Sybil identity fabrication and power strategies."""

from .sybil import (
    ConstantPower,
    PerPacketRandomPower,
    PowerPolicy,
    RandomWalkPower,
    SybilAttacker,
    SybilIdentity,
)

__all__ = [
    "ConstantPower",
    "PerPacketRandomPower",
    "PowerPolicy",
    "RandomWalkPower",
    "SybilAttacker",
    "SybilIdentity",
]
