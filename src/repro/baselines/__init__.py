"""Baseline Sybil detectors the paper compares against (Table I).

* :class:`CpvsadDetector` — the Fig. 11 comparator: cooperative
  position verification under an assumed shadowing model (Yu 2013).
* :class:`BouassidaDetector` — independent RSSI-variation interval
  check (Bouassida 2009).
* :class:`DemirbasDetector` — cooperative RSSI-ratio matching
  (Demirbas & Song 2006).
* :class:`ChenDetector` — centralised landmark distribution testing
  (Chen 2010).
* :class:`XiaoDetector` — cooperative multilateration against claimed
  positions, with attacker localisation (Xiao 2006).
* :class:`WangDetector` — Rayleigh-robust RSSI-ratio matching
  (Wang 2007).
* :class:`CrsdDetector` — cooperative relative-distance grouping with
  suspect-set intersection (Lv 2008, CRSD).

With these, every row of the paper's Table I is implemented.

Each module's docstring records the scheme's assumptions — propagation
model, cooperation, infrastructure — which is how the Table I method
matrix is regenerated from code (bench E11).
"""

from .bouassida import BouassidaConfig, BouassidaDetector
from .chen import ChenConfig, ChenDetector
from .crsd import CrsdConfig, CrsdDetector
from .cpvsad import CpvsadConfig, CpvsadDetector, IdentityClaim, WitnessReport
from .demirbas import DemirbasConfig, DemirbasDetector
from .wang import WangConfig, WangDetector
from .xiao import XiaoConfig, XiaoDetector, XiaoResult

#: Table I rows regenerated from code metadata: method label →
#: (radio propagation model, centralised/decentralised,
#:  cooperative/independent, needs infrastructure, mobility class).
METHOD_MATRIX = {
    "Demirbas [14]": ("Free space", "D", "C", False, "Static"),
    "Wang [15]": ("Rayleigh fading", "D", "C", False, "Static"),
    "Lv [16]": ("Two-ray ground", "D", "C", False, "Static"),
    "Bouassida [17]": ("Friis free space", "D", "I", False, "Low mobility"),
    "Chen [18]": ("Shadowing", "C", "-", True, "Static"),
    "Xiao [20]": ("Shadowing", "D", "C", True, "High mobility"),
    "Yu [19] (CPVSAD)": ("Shadowing", "D", "C", True, "High mobility"),
    "Voiceprint": ("Model-free", "D", "I", False, "High mobility"),
}

__all__ = [
    "BouassidaConfig",
    "BouassidaDetector",
    "ChenConfig",
    "ChenDetector",
    "CrsdConfig",
    "CrsdDetector",
    "WangConfig",
    "WangDetector",
    "CpvsadConfig",
    "CpvsadDetector",
    "IdentityClaim",
    "WitnessReport",
    "DemirbasConfig",
    "DemirbasDetector",
    "XiaoConfig",
    "XiaoDetector",
    "XiaoResult",
    "METHOD_MATRIX",
]
