"""CPVSAD — Cooperative Position Verification based Sybil Attack
Detection (Yu, Xu & Xiao, JPDC 2013), the paper's Fig. 11 comparator.

CPVSAD verifies each heard identity's *claimed position*: the verifier
and a set of *witnesses* (neighbouring vehicles holding RSU-issued
position certificates, selected from the opposite traffic flow) each
report the mean RSSI they measured for the claimed identity.  Under the
assumed log-normal shadowing model, the RSSI an observer should see is
Gaussian around the model prediction at the *claimed* distance; a
significance test (α = 0.05) on the joint discrepancy rejects
identities whose claims do not match physics.

The two properties the Fig. 11 comparison depends on fall out directly:

* more witnesses (denser traffic) → more test power → detection rate
  *rises* with density — opposite to Voiceprint;
* the test plugs in a *predefined* model; when the true channel departs
  from it (Fig. 11b's periodic parameter change), predictions go
  systematically wrong and the detector collapses.

The implementation is simulation-agnostic: callers hand it
:class:`IdentityClaim` / :class:`WitnessReport` records; the adapter
that extracts those from a :class:`~repro.sim.simulator.SimulationResult`
lives in :mod:`repro.eval.experiments`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from scipy.stats import chi2

from ..radio.base import LinkBudget
from ..radio.shadowing import LogNormalShadowingModel

__all__ = ["WitnessReport", "IdentityClaim", "CpvsadConfig", "CpvsadDetector"]

Point = Tuple[float, float]


@dataclass(frozen=True)
class WitnessReport:
    """One observer's RSSI summary for one claimed identity.

    Attributes:
        observer_id: Verifier or witness identifier.
        observer_xy: The observer's (certified) position at the
            verification instant.
        mean_rssi_dbm: Mean RSSI the observer measured for the identity
            over the observation window.
        n_samples: Number of RSSI samples behind the mean.
        predicted_mean_dbm: Optional window-averaged model prediction.
            Vehicles move hundreds of metres during a 10 s window, so a
            mean RSSI must be tested against the *mean* predicted RSSI
            along the claimed and observer trajectories; when omitted,
            the detector falls back to the endpoint-geometry prediction
            (adequate only for near-static scenes).
    """

    observer_id: str
    observer_xy: Point
    mean_rssi_dbm: float
    n_samples: int
    predicted_mean_dbm: Optional[float] = None


@dataclass(frozen=True)
class IdentityClaim:
    """A claimed identity under verification.

    Attributes:
        identity: The claimed identifier.
        claimed_xy: Position the identity's beacons assert.
    """

    identity: str
    claimed_xy: Point


@dataclass(frozen=True)
class CpvsadConfig:
    """CPVSAD tunables (paper Section V-C settings).

    Attributes:
        sigma_db: Shadowing deviation the detector *assumes* (3.9 dB).
        significance: Test significance level α (0.05).
        min_observers: Claims seen by fewer observers are not testable
            and pass unflagged (the cooperative method's blind spot in
            sparse traffic).
        min_samples: Observers with fewer samples are ignored.
        effective_samples_cap: Shadowing is temporally correlated, so a
            10 s window does not carry 100 independent RSSI draws; the
            per-observer sample count is capped here when converting to
            the test statistic's variance.  The default (2) reflects
            the ~two independent shadowing states a 10 s window spans
            at a ~5 s coherence time.
        power_tolerance_db: Half-width of the legal TX-power range the
            detector tolerates as a common residual offset (Table V:
            17–23 dBm around 20 → 3 dB).  A common offset beyond this
            cannot be explained by power choice and contributes an
            absolute term to the statistic — the term that makes the
            test feel a propagation-model change (which shifts *all*
            predictions together).
        min_mean_rssi_dbm: Observers whose window mean sits close to
            the RX sensitivity floor are censored (they only decode the
            lucky strong packets) and report biased means; they are
            excluded below this level.
    """

    sigma_db: float = 3.9
    significance: float = 0.05
    min_observers: int = 2
    min_samples: int = 5
    effective_samples_cap: int = 2
    power_tolerance_db: float = 3.0
    min_mean_rssi_dbm: float = -88.0

    def __post_init__(self) -> None:
        if self.sigma_db <= 0:
            raise ValueError(f"sigma must be positive, got {self.sigma_db}")
        if not 0.0 < self.significance < 1.0:
            raise ValueError(
                f"significance must be in (0, 1), got {self.significance}"
            )
        if self.min_observers < 1:
            raise ValueError(f"min_observers must be >= 1, got {self.min_observers}")


class CpvsadDetector:
    """Position-verification Sybil detector with a predefined model.

    Args:
        assumed_budget: Link budget the detector assumes every sender
            uses (it cannot know spoofed per-identity powers — one of
            the scheme's structural weaknesses).
        assumed_model: The *predefined* propagation model used for RSSI
            predictions.  Any object with a ``path_loss_db(distance)``
            method works; pass the initial channel model for the
            "detector knows the static channel" configuration of
            Fig. 11a.
        config: Test parameters.
    """

    def __init__(
        self,
        assumed_budget: LinkBudget,
        assumed_model=None,
        config: Optional[CpvsadConfig] = None,
    ) -> None:
        self.assumed_budget = assumed_budget
        self.assumed_model = assumed_model or LogNormalShadowingModel(
            path_loss_exponent=2.0, sigma_db=3.9
        )
        self.config = config or CpvsadConfig()

    # ------------------------------------------------------------------
    def predicted_rssi(self, distance_m: float) -> float:
        """Model-predicted mean RSSI at a distance under the assumptions."""
        distance_m = max(distance_m, 1.0)
        return self.assumed_budget.received_dbm(
            self.assumed_model.path_loss_db(distance_m)
        )

    def claim_statistic(
        self,
        claim: IdentityClaim,
        reports: Sequence[WitnessReport],
    ) -> Optional[Tuple[float, int]]:
        """Chi-square statistic of a claim against observer reports.

        Senders may use unknown (possibly spoofed) TX powers, so the
        raw residual ``r_o = mean_o − predicted_o`` contains a common
        unknown offset; the test therefore scores the *spread* of the
        residuals around their mean,

        ``statistic = Σ_o ((r_o − r̄) / (σ / √n_eff))²  ~  χ²_{k−1}``,

        which is invariant to any constant power offset but blows up
        whenever the claimed position bends the per-observer predictions
        differently from the truth — or whenever the assumed model
        diverges from the real channel (Fig. 11b's failure mode).

        Returns:
            ``(statistic, degrees_of_freedom)`` or ``None`` when too few
            observers qualify.
        """
        config = self.config
        residuals = []
        weights = []
        cx, cy = claim.claimed_xy
        for report in reports:
            if report.n_samples < config.min_samples:
                continue
            if report.mean_rssi_dbm < config.min_mean_rssi_dbm:
                continue  # censored near the sensitivity floor
            if report.predicted_mean_dbm is not None:
                predicted = report.predicted_mean_dbm
            else:
                distance = math.hypot(
                    report.observer_xy[0] - cx, report.observer_xy[1] - cy
                )
                predicted = self.predicted_rssi(distance)
            n_eff = min(report.n_samples, config.effective_samples_cap)
            residuals.append(report.mean_rssi_dbm - predicted)
            weights.append(math.sqrt(n_eff) / config.sigma_db)
        k = len(residuals)
        if k < max(config.min_observers, 2):
            return None
        mean_residual = sum(residuals) / k
        statistic = sum(
            ((r - mean_residual) * w) ** 2 for r, w in zip(residuals, weights)
        )
        # Absolute term: a common residual beyond the legal TX-power
        # spread cannot be explained away and indicts either the claim
        # or — Fig. 11b's case — the assumed model itself.
        excess = max(0.0, abs(mean_residual) - config.power_tolerance_db)
        mean_weight = sum(weights) / k
        statistic += (excess * mean_weight * math.sqrt(k)) ** 2
        return statistic, k

    def is_sybil(
        self,
        claim: IdentityClaim,
        reports: Sequence[WitnessReport],
    ) -> bool:
        """Whether the claim is rejected at the configured significance.

        Untestable claims (too few observers) are *not* flagged — the
        scheme cannot accuse without evidence, which is exactly why its
        detection rate suffers in sparse traffic.
        """
        outcome = self.claim_statistic(claim, reports)
        if outcome is None:
            return False
        statistic, dof = outcome
        p_value = float(chi2.sf(statistic, dof))
        return p_value < self.config.significance
