"""Wang et al.'s Rayleigh-robust RSSI-ratio scheme (WiCOM 2007).

The same idea as Demirbas & Song — the dB difference of the RSSIs two
receivers measure for one transmission cancels the unknown TX power and
fingerprints the transmitter's position — but engineered for a Rayleigh
fading channel, where individual samples swing by tens of dB and a
plain mean is dominated by deep fades.

Robustifications relative to :class:`~repro.baselines.demirbas.DemirbasDetector`:

* the per-receiver-pair fingerprint is the **median** of per-beacon dB
  differences over *time-matched* samples (same beacon seen at both
  receivers), not a difference of window means;
* the match tolerance accounts for the fading-induced spread of the
  median (shrinking with the number of matched samples).

Still cooperative and static-world (Table I): the fingerprint is only
meaningful while the transmitter barely moves, so callers evaluate it
over short windows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..core.timeseries import RSSITimeSeries

__all__ = ["WangConfig", "WangDetector"]


@dataclass(frozen=True)
class WangConfig:
    """Rayleigh-robust ratio-matching parameters.

    Attributes:
        base_tolerance_db: Match tolerance for an infinitely long
            series; the effective tolerance widens by
            ``fading_spread_db / sqrt(n_matched)``.
        fading_spread_db: Assumed per-sample fading deviation feeding
            the median's standard error (Rayleigh power in dB has
            ~5.6 dB deviation).
        min_matched_samples: Time-matched beacons required per
            (receiver pair, identity).
        match_window_s: Two samples at different receivers are "the
            same beacon" when their timestamps differ by less.
        min_matching_pairs: Receiver pairs that must agree.
    """

    base_tolerance_db: float = 1.5
    fading_spread_db: float = 5.6
    min_matched_samples: int = 10
    match_window_s: float = 0.02
    min_matching_pairs: int = 1

    def __post_init__(self) -> None:
        if self.base_tolerance_db <= 0:
            raise ValueError(
                f"tolerance must be positive, got {self.base_tolerance_db}"
            )
        if self.min_matched_samples < 2:
            raise ValueError(
                f"need >= 2 matched samples, got {self.min_matched_samples}"
            )
        if self.match_window_s <= 0:
            raise ValueError(
                f"match window must be positive, got {self.match_window_s}"
            )

    def tolerance_db(self, n_matched: int) -> float:
        """Effective tolerance after median noise for ``n`` samples."""
        # Median standard error ~ 1.253 * sigma / sqrt(n).
        return self.base_tolerance_db + 1.253 * self.fading_spread_db / math.sqrt(
            max(n_matched, 1)
        )


class WangDetector:
    """Flag identity pairs whose robust RSSI ratios match everywhere."""

    def __init__(self, config: Optional[WangConfig] = None) -> None:
        self.config = config or WangConfig()

    def _matched_differences(
        self, first: RSSITimeSeries, second: RSSITimeSeries
    ) -> np.ndarray:
        """dB differences of time-matched samples of one identity at
        two receivers."""
        t1, v1 = first.timestamps, first.values
        t2, v2 = second.timestamps, second.values
        if t1.size == 0 or t2.size == 0:
            return np.empty(0)
        indices = np.searchsorted(t2, t1)
        diffs: List[float] = []
        for i, t in enumerate(t1):
            for j in (indices[i] - 1, indices[i]):
                if 0 <= j < t2.size and abs(t2[j] - t) <= self.config.match_window_s:
                    diffs.append(float(v1[i] - v2[j]))
                    break
        return np.asarray(diffs)

    def fingerprint(
        self, first: RSSITimeSeries, second: RSSITimeSeries
    ) -> Optional[Tuple[float, int]]:
        """(median dB difference, matched count) for one identity at a
        receiver pair; ``None`` when too few beacons match."""
        diffs = self._matched_differences(first, second)
        if diffs.size < self.config.min_matched_samples:
            return None
        return float(np.median(diffs)), int(diffs.size)

    def sybil_pairs(
        self,
        observations: Dict[str, Dict[str, RSSITimeSeries]],
    ) -> Set[Tuple[str, str]]:
        """Identity pairs whose fingerprints agree at every testable
        receiver pair (and at least ``min_matching_pairs`` of them).

        Args:
            observations: ``receiver → identity → series`` over one
                short window.
        """
        receivers = sorted(observations)
        matches: Dict[Tuple[str, str], int] = {}
        testable: Dict[Tuple[str, str], int] = {}
        for r1, r2 in combinations(receivers, 2):
            map1, map2 = observations[r1], observations[r2]
            fingerprints: Dict[str, Tuple[float, int]] = {}
            for identity in set(map1) & set(map2):
                fp = self.fingerprint(map1[identity], map2[identity])
                if fp is not None:
                    fingerprints[identity] = fp
            for a, b in combinations(sorted(fingerprints), 2):
                key = (a, b)
                testable[key] = testable.get(key, 0) + 1
                median_a, n_a = fingerprints[a]
                median_b, n_b = fingerprints[b]
                tolerance = self.config.tolerance_db(min(n_a, n_b))
                if abs(median_a - median_b) <= tolerance:
                    matches[key] = matches.get(key, 0) + 1
        return {
            pair
            for pair, count in matches.items()
            if count >= self.config.min_matching_pairs
            and count == testable[pair]
        }

    def sybil_ids(
        self, observations: Dict[str, Dict[str, RSSITimeSeries]]
    ) -> Set[str]:
        """Union of identities appearing in any flagged pair."""
        return {
            identity
            for pair in self.sybil_pairs(observations)
            for identity in pair
        }
