"""Lv et al.'s CRSD — Cooperative RSSI-based Sybil Detection (CIS 2008).

CRSD never computes absolute positions: each cooperating node inverts a
two-ray-ground model to estimate its *relative distance* to every heard
identity, groups identities whose estimated distances are suspiciously
close (a Sybil attacker's streams all come from one radio, so one
distance), and broadcasts its suspect groups; the final verdict takes
the intersection of the groups received from all cooperators.

A single node's distance clustering is hopelessly ambiguous — every
identity on a ring around the receiver shares a distance — which is why
the *intersection* across observers at different vantage points is the
scheme's entire substance: only truly co-located transmitters stay
grouped from every viewpoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, Optional, Set, Tuple

from ..core.timeseries import RSSITimeSeries
from ..radio.base import LinkBudget
from ..radio.inverse import invert_two_ray
from ..radio.two_ray import TwoRayGroundModel

__all__ = ["CrsdConfig", "CrsdDetector"]


@dataclass(frozen=True)
class CrsdConfig:
    """Relative-distance grouping parameters.

    Attributes:
        distance_tolerance_m: Two identities whose estimated distances
            differ by less are grouped at one observer.
        min_samples: Samples needed per (observer, identity) series.
        min_observers: Observers whose groups must all contain a pair
            before it is declared Sybil (the intersection).
    """

    distance_tolerance_m: float = 25.0
    min_samples: int = 10
    min_observers: int = 2

    def __post_init__(self) -> None:
        if self.distance_tolerance_m <= 0:
            raise ValueError(
                f"tolerance must be positive, got {self.distance_tolerance_m}"
            )
        if self.min_observers < 2:
            raise ValueError(
                f"the intersection needs >= 2 observers, got {self.min_observers}"
            )


class CrsdDetector:
    """Intersection-of-suspect-groups Sybil detection.

    Args:
        assumed_budget: Link budget assumed for every sender.
        assumed_model: The predefined two-ray-ground model inverted for
            relative distances (the scheme's Table I assumption).
        config: Grouping parameters.
    """

    def __init__(
        self,
        assumed_budget: LinkBudget,
        assumed_model: Optional[TwoRayGroundModel] = None,
        config: Optional[CrsdConfig] = None,
    ) -> None:
        self.assumed_budget = assumed_budget
        self.assumed_model = assumed_model or TwoRayGroundModel()
        self.config = config or CrsdConfig()

    def relative_distance(self, series: RSSITimeSeries) -> Optional[float]:
        """One observer's distance estimate for one identity."""
        if len(series) < self.config.min_samples:
            return None
        try:
            return invert_two_ray(
                series.mean(), self.assumed_budget, self.assumed_model
            )
        except ValueError:
            return None

    def suspect_pairs_at(
        self, series_map: Dict[str, RSSITimeSeries]
    ) -> Set[Tuple[str, str]]:
        """One observer's local suspect groups, as identity pairs."""
        distances: Dict[str, float] = {}
        for identity, series in series_map.items():
            estimate = self.relative_distance(series)
            if estimate is not None:
                distances[identity] = estimate
        return {
            (a, b)
            for a, b in combinations(sorted(distances), 2)
            if abs(distances[a] - distances[b]) <= self.config.distance_tolerance_m
        }

    def sybil_pairs(
        self, observations: Dict[str, Dict[str, RSSITimeSeries]]
    ) -> Set[Tuple[str, str]]:
        """Pairs suspected by at least ``min_observers`` observers *and*
        by every observer able to test them (the intersection rule).

        Args:
            observations: ``receiver → identity → series`` over one
                window, from the cooperating nodes.
        """
        suspected: Dict[Tuple[str, str], int] = {}
        testable: Dict[Tuple[str, str], int] = {}
        for receiver, series_map in observations.items():
            usable = {
                identity
                for identity, series in series_map.items()
                if self.relative_distance(series) is not None
            }
            local = self.suspect_pairs_at(series_map)
            for pair in combinations(sorted(usable), 2):
                testable[pair] = testable.get(pair, 0) + 1
                if pair in local:
                    suspected[pair] = suspected.get(pair, 0) + 1
        return {
            pair
            for pair, count in suspected.items()
            if count >= self.config.min_observers and count == testable[pair]
        }

    def sybil_ids(
        self, observations: Dict[str, Dict[str, RSSITimeSeries]]
    ) -> Set[str]:
        """Union of identities appearing in any flagged pair."""
        return {
            identity
            for pair in self.sybil_pairs(observations)
            for identity in pair
        }
