"""Chen et al.'s centralised distribution test (IEEE TVT 2010).

A trusted *landmark* (RSU in the VANET setting) records every RSSI it
measures per identity and runs a two-sample statistical test on each
identity pair: pairs whose RSSI *distributions* are statistically
indistinguishable are transmitting from (almost) the same place with
the same power — Sybil siblings.

We use the two-sample Kolmogorov–Smirnov test.  Note the inverted test
logic relative to CPVSAD: here a *high* p-value (failure to distinguish
the distributions) is the attack signal.  The scheme is centralised
(Table I) — a single observer with global coverage — and assumes a
static network; its per-window behaviour on moving vehicles is part of
what the ablation bench contrasts against Voiceprint.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, Optional, Set, Tuple

from scipy.stats import ks_2samp

from ..core.timeseries import RSSITimeSeries

__all__ = ["ChenConfig", "ChenDetector"]


@dataclass(frozen=True)
class ChenConfig:
    """Distribution-test parameters.

    Attributes:
        similarity_pvalue: Pairs whose K–S p-value exceeds this are
            considered to share a distribution (flagged).
        min_samples: Minimum samples per identity series.
    """

    similarity_pvalue: float = 0.2
    min_samples: int = 20

    def __post_init__(self) -> None:
        if not 0.0 < self.similarity_pvalue < 1.0:
            raise ValueError(
                f"similarity p-value must be in (0, 1), got {self.similarity_pvalue}"
            )
        if self.min_samples < 2:
            raise ValueError(f"min_samples must be >= 2, got {self.min_samples}")


class ChenDetector:
    """Landmark-side Sybil detection by RSSI-distribution similarity."""

    def __init__(self, config: Optional[ChenConfig] = None) -> None:
        self.config = config or ChenConfig()

    def pair_pvalue(
        self, first: RSSITimeSeries, second: RSSITimeSeries
    ) -> float:
        """K–S p-value for 'these two series share a distribution'."""
        result = ks_2samp(first.values, second.values)
        return float(result.pvalue)

    def sybil_pairs(
        self, series_map: Dict[str, RSSITimeSeries]
    ) -> Set[Tuple[str, str]]:
        """Identity pairs the landmark cannot statistically tell apart.

        Args:
            series_map: identity → series, all observed by the landmark
                over one window.
        """
        usable = {
            identity: series
            for identity, series in series_map.items()
            if len(series) >= self.config.min_samples
        }
        flagged: Set[Tuple[str, str]] = set()
        for a, b in combinations(sorted(usable), 2):
            if self.pair_pvalue(usable[a], usable[b]) > self.config.similarity_pvalue:
                flagged.add((a, b))
        return flagged

    def sybil_ids(self, series_map: Dict[str, RSSITimeSeries]) -> Set[str]:
        """Union of identities appearing in any flagged pair."""
        return {
            identity
            for pair in self.sybil_pairs(series_map)
            for identity in pair
        }
