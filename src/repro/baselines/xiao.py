"""Xiao, Yu & Gao's Sybil detection-and-localisation scheme (DIWANS 2006).

The ancestor of CPVSAD: witnesses report the RSSI they measured for a
claimed identity; the verifier inverts an assumed shadowing model to
turn each report into a distance estimate, multilaterates the sender's
*physical* position from those distances, and flags the identity when
the estimate sits too far from the claimed position.  Unlike CPVSAD's
hypothesis test, this scheme commits to an explicit position estimate —
which is also its selling point: a detected Sybil identity comes with a
localisation of the attacker's radio.

Multilateration here is a Gauss–Newton refinement of the weighted
centroid seed; with the noisy, model-mismatched distance estimates RSSI
inversion produces, anything fancier is false precision.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..radio.base import LinkBudget
from ..radio.inverse import invert_log_distance
from ..radio.shadowing import LogNormalShadowingModel
from .cpvsad import IdentityClaim, WitnessReport

__all__ = ["XiaoConfig", "XiaoResult", "XiaoDetector"]

Point = Tuple[float, float]


@dataclass(frozen=True)
class XiaoConfig:
    """Localisation-test parameters.

    Attributes:
        position_tolerance_m: Claims farther than this from the
            estimated position are flagged.  The tolerance absorbs both
            the claimant's honest GPS error and the localisation error
            RSSI inversion leaves behind.
        min_observers: Multilateration needs at least three distances
            for a 2-D fix.
        min_samples: Observers with fewer samples are ignored.
        gauss_newton_steps: Refinement iterations.
    """

    position_tolerance_m: float = 120.0
    min_observers: int = 3
    min_samples: int = 5
    gauss_newton_steps: int = 8

    def __post_init__(self) -> None:
        if self.position_tolerance_m <= 0:
            raise ValueError(
                f"tolerance must be positive, got {self.position_tolerance_m}"
            )
        if self.min_observers < 3:
            raise ValueError(
                f"2-D multilateration needs >= 3 observers, got {self.min_observers}"
            )


@dataclass(frozen=True)
class XiaoResult:
    """One claim's verification outcome.

    Attributes:
        identity: The verified identity.
        estimated_xy: Multilaterated transmitter position.
        claimed_xy: The position the beacons asserted.
        error_m: Distance between estimate and claim.
        is_sybil: Whether the claim was rejected.
    """

    identity: str
    estimated_xy: Point
    claimed_xy: Point
    error_m: float
    is_sybil: bool


class XiaoDetector:
    """Position-estimation Sybil detector (cooperative, model-based).

    Args:
        assumed_budget: Link budget assumed for every sender.
        assumed_model: Predefined log-distance model for RSSI→distance.
        config: Localisation-test parameters.
    """

    def __init__(
        self,
        assumed_budget: LinkBudget,
        assumed_model: Optional[LogNormalShadowingModel] = None,
        config: Optional[XiaoConfig] = None,
    ) -> None:
        self.assumed_budget = assumed_budget
        self.assumed_model = assumed_model or LogNormalShadowingModel(
            path_loss_exponent=2.0, sigma_db=3.9
        )
        self.config = config or XiaoConfig()

    # ------------------------------------------------------------------
    def _distance_estimates(
        self, reports: Sequence[WitnessReport]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(observer positions (k,2), estimated distances (k,))."""
        positions: List[Point] = []
        distances: List[float] = []
        for report in reports:
            if report.n_samples < self.config.min_samples:
                continue
            try:
                d = invert_log_distance(
                    report.mean_rssi_dbm, self.assumed_budget, self.assumed_model
                )
            except ValueError:
                continue
            positions.append(report.observer_xy)
            distances.append(d)
        return np.asarray(positions, dtype=float), np.asarray(distances, dtype=float)

    def localize(
        self, reports: Sequence[WitnessReport]
    ) -> Optional[Point]:
        """Multilaterate the transmitter position from witness reports.

        Returns ``None`` when too few usable reports exist.
        """
        positions, distances = self._distance_estimates(reports)
        if positions.shape[0] < self.config.min_observers:
            return None
        # Seed: inverse-distance weighted centroid — closer witnesses
        # carry more information per dB of noise.
        weights = 1.0 / np.maximum(distances, 1.0)
        estimate = (positions * weights[:, None]).sum(axis=0) / weights.sum()
        for _ in range(self.config.gauss_newton_steps):
            deltas = estimate[None, :] - positions
            ranges = np.hypot(deltas[:, 0], deltas[:, 1])
            ranges = np.maximum(ranges, 1e-6)
            residuals = ranges - distances
            jacobian = deltas / ranges[:, None]
            try:
                step, *_ = np.linalg.lstsq(jacobian, residuals, rcond=None)
            except np.linalg.LinAlgError:
                break
            estimate = estimate - step
            if float(np.hypot(step[0], step[1])) < 1e-3:
                break
        return (float(estimate[0]), float(estimate[1]))

    def verify(
        self,
        claim: IdentityClaim,
        reports: Sequence[WitnessReport],
    ) -> Optional[XiaoResult]:
        """Verify one claim; ``None`` when the claim is untestable."""
        estimate = self.localize(reports)
        if estimate is None:
            return None
        error = math.hypot(
            estimate[0] - claim.claimed_xy[0], estimate[1] - claim.claimed_xy[1]
        )
        return XiaoResult(
            identity=claim.identity,
            estimated_xy=estimate,
            claimed_xy=claim.claimed_xy,
            error_m=error,
            is_sybil=error > self.config.position_tolerance_m,
        )

    def is_sybil(
        self, claim: IdentityClaim, reports: Sequence[WitnessReport]
    ) -> bool:
        """Boolean verdict (untestable claims pass, as in CPVSAD)."""
        result = self.verify(claim, reports)
        return bool(result and result.is_sybil)
