"""Demirbas & Song's cooperative RSSI-ratio scheme (WOWMOM 2006).

Originally proposed for static sensor networks: a single RSSI value
depends on unknown TX power, but the *ratio* (dB difference) of the
RSSIs two receivers measure for the same transmission cancels the TX
power and depends only on the transmitter's position relative to the
two receivers.  Two identities whose dB differences match at several
receiver pairs are therefore transmitting from the same place — a Sybil
pair.

This is the conceptual ancestor of Voiceprint (compare signals, not
claims), but it is cooperative (needs multiple receivers' simultaneous
measurements) and, in a mobile network, the "position fingerprint"
changes continuously, which is why the original scheme is listed as
*static-only* in Table I.  We evaluate it over short windows where
motion is small.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, Optional, Set, Tuple


from ..core.timeseries import RSSITimeSeries

__all__ = ["DemirbasConfig", "DemirbasDetector"]


@dataclass(frozen=True)
class DemirbasConfig:
    """Ratio-matching parameters.

    Attributes:
        match_tolerance_db: Two identities whose mean dB differences
            agree within this tolerance at a receiver pair "match" there.
        min_matching_pairs: Receiver pairs that must agree before a pair
            of identities is declared Sybil.
        min_samples: Minimum samples per (receiver, identity) series.
    """

    match_tolerance_db: float = 2.0
    min_matching_pairs: int = 1
    min_samples: int = 5

    def __post_init__(self) -> None:
        if self.match_tolerance_db <= 0:
            raise ValueError(
                f"tolerance must be positive, got {self.match_tolerance_db}"
            )
        if self.min_matching_pairs < 1:
            raise ValueError(
                f"min_matching_pairs must be >= 1, got {self.min_matching_pairs}"
            )


class DemirbasDetector:
    """Flag identity pairs with matching RSSI ratios across receivers."""

    def __init__(self, config: Optional[DemirbasConfig] = None) -> None:
        self.config = config or DemirbasConfig()

    def _mean_table(
        self,
        observations: Dict[str, Dict[str, RSSITimeSeries]],
    ) -> Dict[str, Dict[str, float]]:
        """receiver → identity → mean RSSI, filtered by sample count."""
        table: Dict[str, Dict[str, float]] = {}
        for receiver, series_map in observations.items():
            row = {}
            for identity, series in series_map.items():
                if len(series) >= self.config.min_samples:
                    row[identity] = series.mean()
            table[receiver] = row
        return table

    def sybil_pairs(
        self,
        observations: Dict[str, Dict[str, RSSITimeSeries]],
    ) -> Set[Tuple[str, str]]:
        """Identity pairs whose ratios match at enough receiver pairs.

        Args:
            observations: ``receiver → identity → series`` over one
                short window (motion within the window blurs the
                position fingerprint).

        Returns:
            Unordered identity pairs flagged as co-located.
        """
        table = self._mean_table(observations)
        receivers = sorted(table)
        matches: Dict[Tuple[str, str], int] = {}
        testable: Dict[Tuple[str, str], int] = {}
        for r1, r2 in combinations(receivers, 2):
            row1, row2 = table[r1], table[r2]
            common = sorted(set(row1) & set(row2))
            diffs = {i: row1[i] - row2[i] for i in common}
            for a, b in combinations(common, 2):
                key = (a, b)
                testable[key] = testable.get(key, 0) + 1
                if abs(diffs[a] - diffs[b]) <= self.config.match_tolerance_db:
                    matches[key] = matches.get(key, 0) + 1
        return {
            pair
            for pair, count in matches.items()
            if count >= self.config.min_matching_pairs
            and count == testable[pair]  # every testable pair must agree
        }

    def sybil_ids(
        self,
        observations: Dict[str, Dict[str, RSSITimeSeries]],
    ) -> Set[str]:
        """Union of identities appearing in any flagged pair."""
        return {
            identity
            for pair in self.sybil_pairs(observations)
            for identity in pair
        }
