"""Bouassida et al.'s independent RSSI-variation check (IJNS 2009).

The only *independent* RSSI baseline in the paper's Table I: a receiver
checks whether each identity's successive RSSI variations "fall into a
reasonable interval".  The reasonable interval follows from physics —
between two beacons the sender and receiver can close or open at most
``2 * v_max * dt`` metres, which under the assumed (Friis) model bounds
how fast the mean RSSI may change; shadowing adds a noise margin.

Identities whose series jump around faster than any physical motion
could explain — e.g. a Sybil identity whose spoofed power the attacker
adjusts, or whose claimed trajectory is inconsistent — are flagged.
The scheme is weak against the paper's attacker (constant per-identity
power produces physically plausible series), which Table I's comparison
and our ablation bench make measurable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.timeseries import RSSITimeSeries

__all__ = ["BouassidaConfig", "BouassidaDetector"]


@dataclass(frozen=True)
class BouassidaConfig:
    """Variation-check parameters.

    Attributes:
        max_speed_mps: Maximum plausible relative closing speed.
        path_loss_exponent: Assumed (Friis-like) exponent for converting
            motion into dB change.
        min_distance_m: Closest plausible approach; the dB-per-metre
            slope of a log-distance model diverges at 0, so the bound is
            evaluated no closer than this.
        noise_margin_db: Extra allowance per step for fading/shadowing.
        violation_fraction: Fraction of implausible steps above which an
            identity is flagged.
        min_samples: Series shorter than this are not judged.
    """

    max_speed_mps: float = 60.0
    path_loss_exponent: float = 2.0
    min_distance_m: float = 10.0
    noise_margin_db: float = 6.0
    violation_fraction: float = 0.05
    min_samples: int = 10

    def __post_init__(self) -> None:
        if self.max_speed_mps <= 0:
            raise ValueError(f"max speed must be positive, got {self.max_speed_mps}")
        if self.min_distance_m <= 0:
            raise ValueError(
                f"min distance must be positive, got {self.min_distance_m}"
            )
        if not 0.0 <= self.violation_fraction <= 1.0:
            raise ValueError(
                f"violation fraction must be in [0, 1], got {self.violation_fraction}"
            )


class BouassidaDetector:
    """Flag identities whose RSSI varies faster than physics allows."""

    def __init__(self, config: Optional[BouassidaConfig] = None) -> None:
        self.config = config or BouassidaConfig()

    def max_step_db(self, dt_s: float) -> float:
        """Largest plausible RSSI change over ``dt_s`` seconds.

        A relative displacement of ``2 * v_max * dt`` at the closest
        plausible range changes a log-distance RSSI by at most
        ``10 * gamma * log10(1 + d_move / d_min)``; the noise margin is
        added on top.
        """
        if dt_s <= 0:
            raise ValueError(f"dt must be positive, got {dt_s}")
        config = self.config
        d_move = 2.0 * config.max_speed_mps * dt_s
        slope = 10.0 * config.path_loss_exponent * math.log10(
            1.0 + d_move / config.min_distance_m
        )
        return slope + config.noise_margin_db

    def violation_rate(self, series: RSSITimeSeries) -> float:
        """Fraction of successive steps exceeding the plausible bound."""
        if len(series) < 2:
            return 0.0
        times = series.timestamps
        values = series.values
        dts = np.diff(times)
        steps = np.abs(np.diff(values))
        violations = 0
        for dt, step in zip(dts, steps):
            if dt <= 0:
                continue
            if step > self.max_step_db(float(dt)):
                violations += 1
        return violations / len(steps)

    def is_sybil(self, series: RSSITimeSeries) -> bool:
        """Whether one identity's series fails the variation check."""
        if len(series) < self.config.min_samples:
            return False
        return self.violation_rate(series) > self.config.violation_fraction
