"""Voiceprint: RSSI-based Sybil attack detection for VANETs.

A full reproduction of *"Voiceprint: A Novel Sybil Attack Detection
Method Based on RSSI for VANETs"* (Yao et al., DSN 2017): the detection
algorithm itself plus every substrate the paper's evaluation needs —
radio propagation models, a highway VANET simulator with a CSMA/CA MAC,
Sybil attack models, the CPVSAD comparison baseline, and the experiment
harness that regenerates each table and figure.

Quickstart::

    from repro import VoiceprintDetector

    detector = VoiceprintDetector()
    for timestamp, identity, rssi in received_beacons:
        detector.observe(identity, timestamp, rssi)
    report = detector.detect(density=40.0)   # vehicles/km
    print(sorted(report.sybil_ids))

See ``examples/`` for runnable end-to-end scenarios and DESIGN.md for
the system inventory.
"""

from . import obs
from .core import (
    ConstantThreshold,
    DecisionLine,
    DetectionReport,
    DetectorConfig,
    LinearThreshold,
    MultiPeriodConfirmer,
    RSSITimeSeries,
    VoiceprintDetector,
    dtw,
    dtw_distance,
    fastdtw,
    fastdtw_distance,
    fit_decision_line,
)
from .sim import (
    FieldTestConfig,
    HighwaySimulator,
    ScenarioConfig,
    SimulationResult,
    run_field_test,
)

__version__ = "1.0.0"

__all__ = [
    "obs",
    "ConstantThreshold",
    "DecisionLine",
    "DetectionReport",
    "DetectorConfig",
    "LinearThreshold",
    "MultiPeriodConfirmer",
    "RSSITimeSeries",
    "VoiceprintDetector",
    "dtw",
    "dtw_distance",
    "fastdtw",
    "fastdtw_distance",
    "fit_decision_line",
    "FieldTestConfig",
    "HighwaySimulator",
    "ScenarioConfig",
    "SimulationResult",
    "run_field_test",
    "__version__",
]
