"""The streaming detection service — fleet-scale Voiceprint online.

The paper's detector is strictly per-verifier (Section IV: every
vehicle judges only its own RSSI observations).  That independence is
what makes it shard cleanly: a fleet collector receiving
``(observer, identity, t, rssi)`` beacon events can partition the
stream by *observer* and run one completely isolated
:class:`~repro.core.pipeline.OnlineVoiceprint` per observer, with no
cross-shard communication at all.

:class:`DetectionService` does exactly that:

* :meth:`submit` routes each event to one of ``shards`` worker
  threads by a stable hash of the observer id.  Each shard owns a
  :class:`~repro.serve.qos.BoundedQueue` (policy ``"block"`` for
  lossless backpressure or ``"shed"`` for bounded-latency loss, both
  counted) and a private ``{observer: OnlineVoiceprint}`` table.
* Because each observer's events land on exactly one shard and the
  queue is FIFO, every observer's pipeline sees its beacons in the
  same order a serial batch replay would — so the emitted
  :class:`~repro.core.detector.DetectionReport` objects are
  **byte-identical** to batch replay, per observer.  The acceptance
  test asserts this with ``==`` on the frozen report dataclass.
* Finished reports are published on a :class:`~repro.serve.qos.ReportBus`
  with per-subscriber QoS; each carries the wall-clock
  ingest-to-verdict latency of the beacon that triggered it
  (``serve.ingest_to_verdict_ms`` histogram).

Shard workers arm the detector's single-writer ownership guard, so any
accidental cross-thread mutation of shard state raises instead of
corrupting buffers, and stamp ``audit_identity`` per observer so audit
bundles from concurrent shards don't race over the process-global
audit context.

When :func:`~repro.obs.lineage.start_lineage` has installed the
process-global lineage *before* :meth:`DetectionService.start`, every
submitted beacon additionally carries two monotonic stamps through the
queue; the shard worker parks them in a per-thread hot-path cell
(:meth:`~repro.obs.lineage.Lineage.register_worker`) and the
:class:`~repro.obs.lineage.TraceContext` is materialised lazily, only
for beacons whose dequeue triggers a detection (so the detector's
audit bundle and the flight recorder pick up its correlation id), and
the verdict path is decomposed into
``serve.stage.*_ms`` stage histograms with tail-based trace retention
(see :mod:`repro.obs.lineage`).  With lineage off the queue items stay
2-tuples and the hot path performs zero extra allocations.
"""

from __future__ import annotations

import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.detector import DetectionReport, DetectorConfig
from ..core.pipeline import OnlineVoiceprint, OnlineVoiceprintConfig
from ..core.thresholds import ThresholdPolicy
from ..obs.flightrec import default_recorder
from ..obs.health import HealthMonitor, default_monitor
from ..obs.lineage import Lineage, TraceContext, default_lineage
from ..obs.logging import get_logger
from ..obs.metrics import MetricsRegistry, default_registry
from .qos import BoundedQueue, ReportBus, Subscription
from .stream import BeaconEvent

__all__ = ["ServiceConfig", "ReportEvent", "DetectionService"]

_log = get_logger("serve.service")


def _default_detector_config() -> DetectorConfig:
    # The service is the long-run deployment target, so it defaults to
    # the incremental engine (PR 7): per-period cost scales with new
    # beacons, not window size.
    return DetectorConfig(pairwise_engine=True, pairwise_incremental=True)


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one :class:`DetectionService`.

    Attributes:
        shards: Worker threads; observers are hash-partitioned across
            them (`crc32(observer) % shards` — stable across runs and
            processes, unlike salted ``hash()``).
        queue_depth: Per-shard ingest queue bound.
        ingest_policy: ``"block"`` (backpressure the producer when a
            shard falls behind) or ``"shed"`` (drop the incoming
            beacon, count it in ``serve.beacons_shed``).
        max_range_m: Eq. 9 density denominator for every pipeline.
        detector_config: Comparison-phase tunables (default: the
            incremental pairwise engine).
        pipeline_config: Scheduling/confirmation parameters shared by
            all per-observer pipelines.
        poll_interval_s: Sleep between :meth:`DetectionService.flush`
            progress polls and idle shard wakeups.
    """

    shards: int = 4
    queue_depth: int = 2048
    ingest_policy: str = "block"
    max_range_m: float = 650.0
    detector_config: DetectorConfig = field(
        default_factory=_default_detector_config
    )
    pipeline_config: OnlineVoiceprintConfig = field(
        default_factory=OnlineVoiceprintConfig
    )
    poll_interval_s: float = 0.01

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.queue_depth < 1:
            raise ValueError(
                f"queue_depth must be >= 1, got {self.queue_depth}"
            )
        if self.poll_interval_s <= 0:
            raise ValueError(
                f"poll_interval_s must be positive, got {self.poll_interval_s}"
            )
        # BoundedQueue re-validates, but fail at config time, not start.
        if self.ingest_policy not in ("block", "shed"):
            raise ValueError(
                f"ingest_policy must be 'block' or 'shed', "
                f"got {self.ingest_policy!r}"
            )


@dataclass(frozen=True)
class ReportEvent:
    """One published verdict: ``observer``'s ``seq``-th detection.

    ``latency_ms`` is wall-clock ingest-to-verdict: from the moment the
    triggering beacon entered :meth:`DetectionService.submit` to the
    moment its report was published.
    """

    observer: str
    seq: int
    report: DetectionReport
    latency_ms: float


class _Shard:
    """One worker thread plus its private per-observer pipeline table."""

    def __init__(self, index: int, service: "DetectionService") -> None:
        self.index = index
        self.service = service
        config = service.config
        self.queue = BoundedQueue(
            depth=config.queue_depth, policy=config.ingest_policy
        )
        self.pipelines: Dict[str, OnlineVoiceprint] = {}
        self.accepted = 0  # written only by submit() under queue put
        self.processed = 0  # written only by the worker thread
        self.thread = threading.Thread(
            target=self._run, name=f"serve-shard-{index}", daemon=True
        )

    def _pipeline(self, observer: str) -> OnlineVoiceprint:
        pipeline = self.pipelines.get(observer)
        if pipeline is None:
            service = self.service
            config = service.config
            pipeline = OnlineVoiceprint(
                max_range_m=config.max_range_m,
                threshold=service.threshold,
                detector_config=config.detector_config,
                config=config.pipeline_config,
                registry=service.registry,
                health=service.health,
            )
            # Single-writer contract: this worker thread is the only
            # legal mutator of the pipeline's detector from now on.
            pipeline.detector.enable_ownership_guard()
            # Audit bundles from concurrent shards must not race over
            # the process-global audit context.
            pipeline.detector.audit_identity = observer
            self.pipelines[observer] = pipeline
            service._g_observers.set(service._observer_count())
        return pipeline

    def _run(self) -> None:
        poll = self.service.config.poll_interval_s
        # With lineage on, every queue item is a 3-tuple
        # (event, t_submit, t_enqueued) and this thread owns a hot-path
        # cell; the TraceContext is only materialised lazily for the
        # rare beacons whose dequeue triggers a detection.  With it off
        # the loop body is byte-for-byte the pre-lineage path.
        lineage = self.service._lineage
        cell = (
            lineage.register_worker(self.index)
            if lineage is not None
            else None
        )
        while True:
            item = self.queue.get(timeout=poll)
            if item is None:
                if self.queue.closed:
                    break
                continue
            event, wall_in = item[0], item[1]
            if cell is not None:
                cell[0] = item
                cell[1] = time.monotonic()
                cell[2] = None
            pipeline = self._pipeline(event.observer)
            report = pipeline.on_beacon(
                event.identity, event.t, event.rssi_dbm
            )
            if report is not None:
                now = time.monotonic()
                ctx = None
                if cell is not None:
                    ctx = cell[2]
                    if ctx is None:
                        ctx = lineage._materialize(cell)
                    ctx.t_detect_done = now
                    cell[0] = None
                    cell[2] = None
                latency_ms = (now - wall_in) * 1000.0
                self.service._publish(
                    event.observer, pipeline, report, latency_ms, ctx
                )
            self.processed += 1


class DetectionService:
    """Sharded, queued, pub/sub-fronted fleet detection service.

    Typical lifecycle::

        service = DetectionService(ServiceConfig(shards=8))
        verdicts = service.subscribe("verdicts")
        service.start()
        for event in source:
            service.submit(event)
        service.flush()          # drain queues
        service.stop()           # join workers, close the bus
        for ev in verdicts.drain():
            ...

    Args:
        config: Service tunables.
        threshold: Confirmation threshold policy shared by all
            pipelines (default: the detector's trained line).
        registry: Metrics registry (default: the process-global one).
        health: Health monitor fed by every pipeline.  Defaults to the
            process-global monitor; for a live service that monitor
            should be constructed with ``clock="wall"`` (the CLI's
            ``serve`` command does this).
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        threshold: Optional[ThresholdPolicy] = None,
        registry: Optional[MetricsRegistry] = None,
        health: Optional[HealthMonitor] = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.threshold = threshold
        self.registry = registry if registry is not None else default_registry()
        self.health = health if health is not None else default_monitor()
        self.bus = ReportBus(self.registry)
        self._c_ingested = self.registry.counter("serve.beacons_ingested")
        self._c_shed = self.registry.counter("serve.beacons_shed")
        self._g_observers = self.registry.gauge("serve.observers")
        self._g_queue_depth = self.registry.gauge("serve.queue_depth")
        self._h_latency = self.registry.histogram("serve.ingest_to_verdict_ms")
        self._shards = [_Shard(i, self) for i in range(self.config.shards)]
        self._submit_lock = threading.Lock()
        self._started = False
        self._stopped = False
        self._n_ingested = 0
        self._n_shed = 0
        self._n_published = 0
        # Captured from the process-global at start() so the submit
        # hot path pays one attribute load, not a module lookup.
        self._lineage: Optional[Lineage] = None
        self._shed_seq: Dict[str, int] = {}

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "DetectionService":
        """Spawn the shard workers (idempotent)."""
        if self._started:
            return self
        self._started = True
        self._lineage = default_lineage()
        for shard in self._shards:
            shard.thread.start()
        _log.info(
            "detection service started",
            extra={
                "shards": self.config.shards,
                "queue_depth": self.config.queue_depth,
                "policy": self.config.ingest_policy,
            },
        )
        return self

    def __enter__(self) -> "DetectionService":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    def stop(self, drain: bool = True) -> None:
        """Shut down: optionally drain queues, join workers, close the bus.

        With ``drain=True`` (default) queued events are still processed
        — close only refuses *new* puts — so a clean shutdown loses
        nothing.  ``drain=False`` abandons whatever is queued.
        """
        if self._stopped:
            return
        self._stopped = True
        for shard in self._shards:
            shard.queue.close()
            if not drain:
                shard.queue.clear()
        for shard in self._shards:
            if shard.thread.is_alive():
                shard.thread.join(timeout=30.0)
        self.bus.close()

    def flush(self, timeout: float = 60.0) -> bool:
        """Block until every accepted event has been processed.

        Returns False on timeout (service still running, just behind).
        """
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if all(s.processed >= s.accepted for s in self._shards):
                return True
            time.sleep(self.config.poll_interval_s)
        return all(s.processed >= s.accepted for s in self._shards)

    # -- ingestion -----------------------------------------------------
    @staticmethod
    def shard_of(observer: str, n_shards: int) -> int:
        """Stable observer → shard routing (crc32, not salted hash)."""
        return zlib.crc32(observer.encode("utf-8")) % n_shards

    def submit(self, event: BeaconEvent) -> bool:
        """Ingest one beacon event.

        Returns True when the event was queued; False when it was shed
        (``"shed"`` policy, shard queue full) or the service is
        stopping.  Under the ``"block"`` policy this call applies
        backpressure: it waits for queue space, which is the whole
        point — a lossless producer should slow down, not OOM the
        service.
        """
        lineage = self._lineage
        if lineage is None:
            shard = self._shards[
                self.shard_of(event.observer, len(self._shards))
            ]
            queued = shard.queue.put((event, time.monotonic()))
        else:
            # Producer side stays allocation-free: two monotonic stamps
            # ride the queue and the shard worker materialises a
            # TraceContext lazily, only when a verdict needs one.
            # ``wall_in`` doubles as the trace's submit stamp so the
            # published latency and the stage sum share one clock read.
            t_submit = time.monotonic()
            shard = self._shards[
                self.shard_of(event.observer, len(self._shards))
            ]
            queued = shard.queue.put((event, t_submit, time.monotonic()))
        if queued:
            with self._submit_lock:
                shard.accepted += 1
                self._n_ingested += 1
            self._c_ingested.inc()
            return True
        with self._submit_lock:
            self._n_shed += 1
            shed_seq = self._shed_seq.get(event.observer, 0) + 1
            self._shed_seq[event.observer] = shed_seq
        self._c_shed.inc()
        if lineage is not None:
            lineage.note_shed(event.observer, event.t, shed_seq)
        recorder = default_recorder()
        if recorder is not None:
            recorder.record_shed(event.observer, event.t, shed_seq)
        return False

    # -- reports -------------------------------------------------------
    def subscribe(
        self,
        name: Optional[str] = None,
        depth: int = 256,
        policy: str = "drop-oldest",
    ) -> Subscription:
        """Attach a verdict consumer (see :class:`ReportBus`)."""
        return self.bus.subscribe(name, depth=depth, policy=policy)

    def _publish(
        self,
        observer: str,
        pipeline: OnlineVoiceprint,
        report: DetectionReport,
        latency_ms: float,
        ctx: Optional["TraceContext"] = None,
    ) -> None:
        self._h_latency.observe(latency_ms)
        seq = len(pipeline.reports)  # report already appended → 1-based
        with self._submit_lock:
            self._n_published += 1
        event = ReportEvent(
            observer=observer,
            seq=seq,
            report=report,
            latency_ms=latency_ms,
        )
        if ctx is None:
            self.bus.publish(event)
            return
        ctx.seq = seq
        publish_start = time.monotonic()
        # The bus stamps the subscriber_delivery stage (the fan-out
        # loop); publish is the bus overhead around it, so the two
        # stages stay disjoint.
        self.bus.publish(event, ctx=ctx)
        publish_ms = (time.monotonic() - publish_start) * 1000.0
        delivery_ms = ctx.stages.get("subscriber_delivery", 0.0)
        ctx.stages["publish"] = max(publish_ms - delivery_ms, 0.0)
        self._lineage.complete(ctx, report, latency_ms)

    # -- introspection -------------------------------------------------
    def _observer_count(self) -> int:
        return sum(len(s.pipelines) for s in self._shards)

    def observers(self) -> List[str]:
        """Every observer a pipeline exists for (sorted)."""
        return sorted(
            observer for s in self._shards for observer in s.pipelines
        )

    def confirmed(self) -> Dict[str, List[str]]:
        """Per-observer confirmed Sybil identities.

        Only meaningful when the service is quiescent (after
        :meth:`flush` or :meth:`stop`): shard workers mutate pipelines
        concurrently while running.
        """
        result: Dict[str, List[str]] = {}
        for shard in self._shards:
            for observer, pipeline in shard.pipelines.items():
                confirmed = pipeline.confirmed_sybils
                if confirmed:
                    result[observer] = sorted(confirmed)
        return result

    def stats(self) -> Dict[str, object]:
        """Operational snapshot (also what the CLI summary prints)."""
        depths = [len(s.queue) for s in self._shards]
        self._g_queue_depth.set(max(depths) if depths else 0)
        with self._submit_lock:
            ingested = self._n_ingested
            shed = self._n_shed
            published = self._n_published
        return {
            "ingested": ingested,
            "shed": shed,
            "published": published,
            "observers": self._observer_count(),
            "shards": len(self._shards),
            "queue_depths": depths,
            "processed": sum(s.processed for s in self._shards),
        }
