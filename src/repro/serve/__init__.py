"""Streaming detection service: fleet-scale Voiceprint as a long-running
process (``repro serve``).

Because the paper's detector is per-verifier-independent (Section IV),
a fleet-wide beacon stream shards cleanly by observer:
:class:`DetectionService` runs one isolated
:class:`~repro.core.pipeline.OnlineVoiceprint` per observer across a
pool of worker threads, behind bounded ingest queues with explicit
backpressure/shedding, and publishes verdicts on a pub/sub bus with
per-subscriber QoS.  See DESIGN.md §5h.
"""

from .qos import BoundedQueue, ReportBus, Subscription
from .service import DetectionService, ReportEvent, ServiceConfig
from .stream import BeaconEvent, read_jsonl, synthetic_fleet

__all__ = [
    "BeaconEvent",
    "BoundedQueue",
    "DetectionService",
    "ReportBus",
    "ReportEvent",
    "ServiceConfig",
    "Subscription",
    "read_jsonl",
    "synthetic_fleet",
]
