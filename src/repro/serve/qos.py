"""Bounded queues and the pub/sub report bus — the service's QoS layer.

The streaming service moves data through exactly two kinds of channel,
both bounded, both with an *explicit* overflow policy (modelled on the
DDS history/QoS decomposition the V2X communication stacks use):

* **Ingest queues** (:class:`BoundedQueue`) carry beacon events from
  the ingestion thread to a shard worker.  Overflow policy is chosen
  by the operator: ``"block"`` applies backpressure to the producer
  (lossless — right when the producer is a paced replay or can
  tolerate latency), ``"shed"`` drops the *newest* event and returns
  ``False`` (lossy but non-blocking — right when the producer is a
  radio that cannot wait; a dropped beacon is one sample out of ~200
  per window, exactly the packet-loss regime the paper's detector
  already tolerates).  Every shed event is counted.

* **Subscriber queues** (:class:`Subscription`, fanned out by
  :class:`ReportBus`) carry finished :class:`DetectionReport`s to
  consumers.  A slow subscriber must never stall detection or other
  subscribers, so these queues *never* block the publisher: the
  default ``"drop-oldest"`` policy evicts the stalest report (a
  monitoring consumer wants the freshest verdicts), ``"drop-newest"``
  keeps history instead.  Per-subscriber drop counts are published as
  ``serve.sub.<name>.dropped`` counters.

Everything is stdlib ``threading``; no external broker.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional

from ..obs.metrics import MetricsRegistry, default_registry

__all__ = ["BoundedQueue", "Subscription", "ReportBus"]

#: Ingest-queue overflow policies.
INGEST_POLICIES = ("block", "shed")
#: Subscriber-queue overflow policies.
SUBSCRIBER_POLICIES = ("drop-oldest", "drop-newest")


class BoundedQueue:
    """Thread-safe bounded FIFO with an explicit overflow policy.

    Args:
        depth: Maximum queued items (>= 1).
        policy: ``"block"`` (producer waits for space) or ``"shed"``
            (overflow drops the incoming item; :meth:`put` returns
            ``False``).

    :meth:`close` wakes every waiter; once closed, puts are refused and
    gets drain the remaining items before returning ``None``.
    """

    def __init__(self, depth: int, policy: str = "block") -> None:
        if depth < 1:
            raise ValueError(f"queue depth must be >= 1, got {depth}")
        if policy not in INGEST_POLICIES:
            raise ValueError(
                f"policy must be one of {INGEST_POLICIES}, got {policy!r}"
            )
        self.depth = int(depth)
        self.policy = policy
        self._items: Deque[Any] = deque()
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)
        self._closed = False

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def put(self, item: Any, timeout: Optional[float] = None) -> bool:
        """Enqueue ``item``; returns False when shed, refused, or timed out."""
        with self._lock:
            if self.policy == "shed":
                if self._closed or len(self._items) >= self.depth:
                    return False
            else:
                while len(self._items) >= self.depth and not self._closed:
                    if not self._not_full.wait(timeout=timeout):
                        return False
                if self._closed:
                    return False
            self._items.append(item)
            self._not_empty.notify()
            return True

    def get(self, timeout: Optional[float] = None) -> Optional[Any]:
        """Dequeue one item; ``None`` on timeout or when closed and empty."""
        with self._lock:
            while not self._items:
                if self._closed:
                    return None
                if not self._not_empty.wait(timeout=timeout):
                    return None
            item = self._items.popleft()
            self._not_full.notify()
            return item

    def close(self) -> None:
        """Refuse further puts; queued items remain gettable."""
        with self._lock:
            self._closed = True
            self._not_full.notify_all()
            self._not_empty.notify_all()

    def clear(self) -> int:
        """Discard everything queued; returns how many were dropped."""
        with self._lock:
            dropped = len(self._items)
            self._items.clear()
            self._not_full.notify_all()
            return dropped


class Subscription:
    """One subscriber's bounded report queue (never blocks the bus).

    Obtained from :meth:`ReportBus.subscribe`.  Consume with
    :meth:`get` (blocking, with timeout) or :meth:`drain`
    (non-blocking, everything queued).
    """

    def __init__(
        self,
        name: str,
        depth: int,
        policy: str,
        registry: MetricsRegistry,
    ) -> None:
        if depth < 1:
            raise ValueError(f"subscriber depth must be >= 1, got {depth}")
        if policy not in SUBSCRIBER_POLICIES:
            raise ValueError(
                f"policy must be one of {SUBSCRIBER_POLICIES}, got {policy!r}"
            )
        self.name = name
        self.depth = int(depth)
        self.policy = policy
        self._items: Deque[Any] = deque()
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._closed = False
        self._c_dropped = registry.counter(f"serve.sub.{name}.dropped")
        self._c_delivered = registry.counter(f"serve.sub.{name}.delivered")
        self._n_dropped = 0

    @property
    def dropped(self) -> int:
        """Events evicted from this subscriber's queue so far."""
        with self._lock:
            return self._n_dropped

    def _deliver(self, event: Any) -> None:
        with self._lock:
            if self._closed:
                return
            if len(self._items) >= self.depth:
                if self.policy == "drop-oldest":
                    self._items.popleft()
                else:  # drop-newest: keep history, refuse the incoming
                    self._n_dropped += 1
                    self._c_dropped.inc()
                    return
                self._n_dropped += 1
                self._c_dropped.inc()
            self._items.append(event)
            self._c_delivered.inc()
            self._ready.notify()

    def get(self, timeout: Optional[float] = None) -> Optional[Any]:
        """Next event; ``None`` on timeout or when closed and empty."""
        with self._lock:
            while not self._items:
                if self._closed:
                    return None
                if not self._ready.wait(timeout=timeout):
                    return None
            return self._items.popleft()

    def drain(self) -> List[Any]:
        """Everything currently queued, without blocking."""
        with self._lock:
            items = list(self._items)
            self._items.clear()
            return items

    def close(self) -> None:
        """Detach: refuse further deliveries, wake blocked getters."""
        with self._lock:
            self._closed = True
            self._ready.notify_all()


class ReportBus:
    """Fan-out pub/sub for :class:`ReportEvent`s with per-subscriber QoS.

    Publishing iterates the subscriber list outside any global lock —
    each :class:`Subscription` applies its own bounded-queue policy, so
    one slow consumer can neither stall the shard workers nor starve
    the other subscribers (the per-verifier independence the paper
    claims for Voiceprint carries over to the service's consumers:
    nothing a subscriber does feeds back into detection).
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self._registry = (
            registry if registry is not None else default_registry()
        )
        self._lock = threading.Lock()
        self._subs: List[Subscription] = []
        self._names: Dict[str, int] = {}
        self._c_published = self._registry.counter("serve.reports_published")

    def subscribe(
        self,
        name: Optional[str] = None,
        depth: int = 256,
        policy: str = "drop-oldest",
    ) -> Subscription:
        """Attach a consumer; ``name`` defaults to ``sub<N>`` and is
        de-duplicated (``name``, ``name.2``, ...) so counter names
        stay distinct."""
        with self._lock:
            base = name or f"sub{len(self._subs)}"
            count = self._names.get(base, 0)
            self._names[base] = count + 1
            unique = base if count == 0 else f"{base}.{count + 1}"
            subscription = Subscription(
                unique, depth=depth, policy=policy, registry=self._registry
            )
            self._subs.append(subscription)
            return subscription

    def unsubscribe(self, subscription: Subscription) -> None:
        """Detach (and close) a subscriber."""
        with self._lock:
            if subscription in self._subs:
                self._subs.remove(subscription)
        subscription.close()

    @property
    def subscribers(self) -> List[Subscription]:
        with self._lock:
            return list(self._subs)

    def publish(self, event: Any, ctx: Optional[Any] = None) -> None:
        """Deliver ``event`` to every subscriber under its own QoS.

        With a lineage ``ctx`` the fan-out loop is timed into the
        context's ``subscriber_delivery`` stage (the time detection
        verdicts spend being handed to consumers — bounded because
        subscriber queues never block, but not free).
        """
        with self._lock:
            subs = list(self._subs)
        self._c_published.inc()
        if ctx is None:
            for subscription in subs:
                subscription._deliver(event)
            return
        start = time.monotonic()
        for subscription in subs:
            subscription._deliver(event)
        ctx.stages["subscriber_delivery"] = (
            time.monotonic() - start
        ) * 1000.0

    def close(self) -> None:
        """Close every subscriber (service shutdown)."""
        with self._lock:
            subs = list(self._subs)
            self._subs.clear()
        for subscription in subs:
            subscription.close()
