"""Beacon event sources for the streaming service.

Two sources feed :class:`~repro.serve.service.DetectionService`:

* :func:`read_jsonl` — one JSON object per line with keys
  ``observer`` (the receiving vehicle), ``identity`` (the claimed
  sender), ``t`` (beacon timestamp, seconds) and ``rssi`` (dBm).
  This is the on-disk shape of a fleet-wide beacon log: every
  verifier's receptions multiplexed into one stream.

* :func:`synthetic_fleet` — a deterministic multi-observer workload
  generator used by the demo mode, the acceptance tests and the
  throughput benchmark.  Each observer hears a handful of legitimate
  identities (independent RSSI random walks) and, optionally, a Sybil
  cluster: fake identities that share one attacker's walk plus small
  per-identity noise, the signature Voiceprint detects (paper
  Section III — all of a Sybil attacker's identities transmit from
  the same radio, so their RSSI time series agree).

Both sources yield plain :class:`BeaconEvent` rows; when lineage
tracing is on (``--lineage``), :meth:`DetectionService.submit` ships
monotonic stamps through the shard queue and the worker mints a
:class:`~repro.obs.lineage.TraceContext` per dequeued event — sources
stay trace-agnostic by design.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from typing import IO, Iterable, Iterator, List, Union

__all__ = ["BeaconEvent", "synthetic_fleet", "read_jsonl"]


@dataclass(frozen=True)
class BeaconEvent:
    """One beacon reception: ``observer`` heard ``identity`` at ``t``."""

    observer: str
    identity: str
    t: float
    rssi_dbm: float


def synthetic_fleet(
    observers: int = 100,
    legit: int = 4,
    sybil: int = 3,
    duration_s: float = 60.0,
    beacon_hz: float = 10.0,
    seed: int = 0,
) -> List[BeaconEvent]:
    """Deterministic fleet-wide beacon log, sorted by time.

    Args:
        observers: Number of receiving vehicles (each gets its own
            detection shard state in the service).
        legit: Legitimate identities heard per observer.
        sybil: Sybil identities per observer's attacker (0 disables
            the attack for that whole fleet).
        duration_s: Length of the simulated window.
        beacon_hz: Per-identity beacon rate (10 Hz per the standard).
        seed: RNG seed; same arguments → byte-identical event list.

    Returns:
        Events sorted by ``(t, observer, identity)`` — the arrival
        order a fleet-wide collector would emit.
    """
    if observers < 1:
        raise ValueError(f"observers must be >= 1, got {observers}")
    if beacon_hz <= 0:
        raise ValueError(f"beacon_hz must be positive, got {beacon_hz}")
    rng = random.Random(seed)
    interval = 1.0 / beacon_hz
    events: List[BeaconEvent] = []
    for obs_idx in range(observers):
        observer = f"v{obs_idx:04d}"
        # Per-identity RSSI walks. Legitimate identities walk
        # independently; Sybil identities ride one shared attacker walk
        # with only receiver noise telling them apart.
        walks = {}
        for leg_idx in range(legit):
            walks[f"{observer}.car{leg_idx}"] = rng.gauss(-65.0, 5.0)
        attacker_level = rng.gauss(-65.0, 5.0)
        sybil_ids = [f"{observer}.ghost{s}" for s in range(sybil)]
        # Per-identity phase offsets so beacons interleave rather than
        # arriving in lockstep.
        phases = {
            identity: rng.uniform(0.0, interval)
            for identity in [*walks, *sybil_ids]
        }
        n_ticks = int(duration_s * beacon_hz)
        for tick in range(n_ticks):
            for identity in walks:
                walks[identity] += rng.gauss(0.0, 0.8)
            attacker_level += rng.gauss(0.0, 0.8)
            base_t = tick * interval
            for identity, level in walks.items():
                events.append(
                    BeaconEvent(
                        observer=observer,
                        identity=identity,
                        t=base_t + phases[identity],
                        rssi_dbm=level + rng.gauss(0.0, 0.1),
                    )
                )
            for identity in sybil_ids:
                events.append(
                    BeaconEvent(
                        observer=observer,
                        identity=identity,
                        t=base_t + phases[identity],
                        rssi_dbm=attacker_level + rng.gauss(0.0, 0.1),
                    )
                )
    events.sort(key=lambda e: (e.t, e.observer, e.identity))
    return events


def read_jsonl(
    source: Union[IO[str], Iterable[str]],
) -> Iterator[BeaconEvent]:
    """Parse a beacon-log stream (one JSON object per line).

    Expected keys: ``observer``, ``identity``, ``t``, ``rssi``.
    Blank lines are skipped; a malformed line raises ``ValueError``
    naming the line number (a corrupt log should fail loudly, not
    silently thin the sample stream the detector sees).
    """
    for lineno, line in enumerate(source, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
            yield BeaconEvent(
                observer=str(record["observer"]),
                identity=str(record["identity"]),
                t=float(record["t"]),
                rssi_dbm=float(record["rssi"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(
                f"malformed beacon record on line {lineno}: {line[:120]!r}"
            ) from exc
