"""Deterministic, spatially/temporally correlated shadowing fields.

Why this exists: the whole premise of Voiceprint (Observation 3) is that
two Sybil identities transmitted by the *same physical radio* traverse
the *same physical channel*, so their RSSI time series share their
large-scale ups and downs, while two distinct vehicles — even side by
side — see measurably different channels.  An i.i.d. shadowing draw per
packet (what a naive simulator does) destroys exactly this structure:
Sybil identities would look no more alike than strangers.

:class:`SpatialNoiseField` therefore makes shadowing a *deterministic
function of (position, time)*: a lattice of hashed Gaussian values,
smoothly interpolated, with configurable decorrelation distance
(Gudmundson-style, ~tens of metres for vehicular channels) and
decorrelation time.  Two transmissions from the same place at the same
moment get the same shadowing — regardless of the identity claimed in
the packet — which is precisely the physics the attacker cannot fake.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

__all__ = ["ValueNoise3D", "SpatialNoiseField"]

_MASK64 = (1 << 64) - 1


def _splitmix64(state: int) -> int:
    """One SplitMix64 scrambling step (public-domain constant set)."""
    state = (state + 0x9E3779B97F4A7C15) & _MASK64
    z = state
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def _hash_cell(seed: int, i: int, j: int, k: int) -> int:
    """Deterministic 64-bit hash of one lattice cell."""
    h = _splitmix64(seed & _MASK64)
    for coord in (i, j, k):
        h = _splitmix64(h ^ (coord & _MASK64))
    return h


def _cell_gaussian(seed: int, i: int, j: int, k: int) -> float:
    """Standard-normal value attached to lattice cell ``(i, j, k)``.

    Two independent uniforms from the cell hash feed a Box–Muller
    transform; the result is reproducible across runs and platforms.
    """
    h1 = _hash_cell(seed, i, j, k)
    h2 = _splitmix64(h1)
    # Map to (0, 1]; the +1 keeps u1 away from zero (log singularity).
    u1 = ((h1 >> 11) + 1) / (1 << 53)
    u2 = (h2 >> 11) / (1 << 53)
    return math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2)


def _smoothstep(t: float) -> float:
    """C1-continuous interpolation weight 3t^2 - 2t^3."""
    return t * t * (3.0 - 2.0 * t)


def _splitmix64_np(state: np.ndarray) -> np.ndarray:
    """Vectorised SplitMix64 over a uint64 array (wrapping arithmetic)."""
    with np.errstate(over="ignore"):
        state = state + np.uint64(0x9E3779B97F4A7C15)
        z = state
        z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        return z ^ (z >> np.uint64(31))


def _cell_gaussian_np(seed: int, i: np.ndarray, j: np.ndarray, k: np.ndarray) -> np.ndarray:
    """Vectorised lattice Gaussians; bit-compatible with :func:`_cell_gaussian`."""
    h = _splitmix64_np(np.full(i.shape, seed & _MASK64, dtype=np.uint64))
    for coord in (i, j, k):
        h = _splitmix64_np(h ^ coord.astype(np.int64).view(np.uint64))
    h2 = _splitmix64_np(h)
    u1 = ((h >> np.uint64(11)).astype(np.float64) + 1.0) / float(1 << 53)
    u2 = (h2 >> np.uint64(11)).astype(np.float64) / float(1 << 53)
    return np.sqrt(-2.0 * np.log(u1)) * np.cos(2.0 * np.pi * u2)


@dataclass
class ValueNoise3D:
    """Smooth unit-variance Gaussian value noise over (x, y, t).

    Lattice values are hashed from the seed (no stored state besides a
    memoisation cache), so the field is deterministic, unbounded in
    extent, and cheap to evaluate anywhere.

    Attributes:
        seed: Field seed; different seeds give independent fields.
        scale_x: Decorrelation length along x, metres.
        scale_y: Decorrelation length along y, metres.
        scale_t: Decorrelation time, seconds.
    """

    seed: int
    scale_x: float = 20.0
    scale_y: float = 20.0
    scale_t: float = 5.0
    _cache: Dict[Tuple[int, int, int], float] = field(
        default_factory=dict, repr=False
    )

    def __post_init__(self) -> None:
        if self.scale_x <= 0 or self.scale_y <= 0 or self.scale_t <= 0:
            raise ValueError(
                "all correlation scales must be positive, got "
                f"({self.scale_x}, {self.scale_y}, {self.scale_t})"
            )

    def _lattice(self, i: int, j: int, k: int) -> float:
        key = (i, j, k)
        value = self._cache.get(key)
        if value is None:
            value = _cell_gaussian(self.seed, i, j, k)
            if len(self._cache) > 200_000:
                self._cache.clear()
            self._cache[key] = value
        return value

    def value(self, x: float, y: float, t: float) -> float:
        """Field value at a point; ~N(0, 1) marginally, smooth in space/time."""
        fx = x / self.scale_x
        fy = y / self.scale_y
        ft = t / self.scale_t
        i0, j0, k0 = math.floor(fx), math.floor(fy), math.floor(ft)
        wx = _smoothstep(fx - i0)
        wy = _smoothstep(fy - j0)
        wt = _smoothstep(ft - k0)
        total = 0.0
        for di, wi in ((0, 1.0 - wx), (1, wx)):
            for dj, wj in ((0, 1.0 - wy), (1, wy)):
                for dk, wk in ((0, 1.0 - wt), (1, wt)):
                    total += (
                        wi * wj * wk * self._lattice(i0 + di, j0 + dj, k0 + dk)
                    )
        return total

    def value_batch(
        self, x: np.ndarray, y: np.ndarray, t
    ) -> np.ndarray:
        """Vectorised :meth:`value` over arrays of points.

        ``t`` may be a scalar (all points share the instant) or an array
        broadcastable against ``x``.  Bit-identical to the scalar path
        (same hashes, same weights), so scalar and batch evaluation can
        be mixed freely.
        """
        fx = np.asarray(x, dtype=float) / self.scale_x
        fy = np.asarray(y, dtype=float) / self.scale_y
        ft = np.asarray(t, dtype=float) / self.scale_t
        fx, fy, ft = np.broadcast_arrays(fx, fy, ft)
        i0 = np.floor(fx).astype(np.int64)
        j0 = np.floor(fy).astype(np.int64)
        k0 = np.floor(ft).astype(np.int64)
        wx = fx - i0
        wy = fy - j0
        wt = ft - k0
        wx = wx * wx * (3.0 - 2.0 * wx)
        wy = wy * wy * (3.0 - 2.0 * wy)
        wt = wt * wt * (3.0 - 2.0 * wt)
        total = np.zeros_like(fx)
        for di, wi in ((0, 1.0 - wx), (1, wx)):
            for dj, wj in ((0, 1.0 - wy), (1, wy)):
                for dk, wk in ((0, 1.0 - wt), (1, wt)):
                    lattice = _cell_gaussian_np(
                        self.seed, i0 + di, j0 + dj, k0 + dk
                    )
                    total += wi * wj * wk * lattice
        return total


@dataclass
class SpatialNoiseField:
    """Link shadowing as a deterministic function of both endpoints.

    The shadowing of a link is the sum of a transmit-side and a
    receive-side field value (scaled to keep unit variance), so that:

    * packets from the *same* TX position to the same RX at the same
      time get identical shadowing (the Sybil signature);
    * nearby-but-distinct transmitters get correlated-but-different
      shadowing (the side-by-side normal vehicle of Scenario 3);
    * the link is symmetric in its endpoints.

    Multiply :meth:`unit_shadowing` by the environment's sigma to get a
    dB value.

    Attributes:
        seed: Base seed; TX and RX sub-fields derive from it.
        correlation_distance_m: Spatial decorrelation length.
        correlation_time_s: Temporal decorrelation constant.
        tx_weight: Variance share of the transmit-side field.  The
            receive-side share (``1 - tx_weight``) is *common to every
            link one receiver observes* — it models the receiver's own
            surroundings.  Keeping it small matters: a large common-mode
            component would make every pair of heard identities look
            alike at that receiver, regardless of their transmitters.
    """

    seed: int = 0
    correlation_distance_m: float = 20.0
    correlation_time_s: float = 5.0
    tx_weight: float = 0.75

    def __post_init__(self) -> None:
        if not 0.0 < self.tx_weight < 1.0:
            raise ValueError(f"tx_weight must be in (0, 1), got {self.tx_weight}")
        self._tx_field = ValueNoise3D(
            seed=_splitmix64(self.seed ^ 0x7478),  # 'tx'
            scale_x=self.correlation_distance_m,
            scale_y=self.correlation_distance_m,
            scale_t=self.correlation_time_s,
        )
        self._rx_field = ValueNoise3D(
            seed=_splitmix64(self.seed ^ 0x7278),  # 'rx'
            scale_x=self.correlation_distance_m,
            scale_y=self.correlation_distance_m,
            scale_t=self.correlation_time_s,
        )

    def unit_shadowing(
        self,
        tx_xy: Tuple[float, float],
        rx_xy: Tuple[float, float],
        t: float,
    ) -> float:
        """Unit-variance shadowing for one link at one instant.

        The TX field is evaluated at the transmitter and the RX field at
        the receiver; summing and scaling by 1/sqrt(2) keeps the
        marginal variance at ~1 while preserving endpoint correlation
        structure.
        """
        tx_term = self._tx_field.value(tx_xy[0], tx_xy[1], t)
        rx_term = self._rx_field.value(rx_xy[0], rx_xy[1], t)
        return (
            math.sqrt(self.tx_weight) * tx_term
            + math.sqrt(1.0 - self.tx_weight) * rx_term
        )

    def unit_shadowing_matrix(
        self,
        tx_xy: np.ndarray,
        rx_xy: np.ndarray,
        t: float,
    ) -> np.ndarray:
        """Unit shadowing for every (tx, rx) pair as a ``(k, m)`` matrix.

        Separable endpoint structure makes this O(k + m) field
        evaluations: the TX field is evaluated once per transmitter, the
        RX field once per receiver, and the matrix is their outer sum.

        Args:
            tx_xy: ``(k, 2)`` transmitter positions.
            rx_xy: ``(m, 2)`` receiver positions.
            t: Evaluation instant.
        """
        tx = np.atleast_2d(np.asarray(tx_xy, dtype=float))
        rx = np.atleast_2d(np.asarray(rx_xy, dtype=float))
        tx_term = self._tx_field.value_batch(tx[:, 0], tx[:, 1], t)
        rx_term = self._rx_field.value_batch(rx[:, 0], rx[:, 1], t)
        return (
            math.sqrt(self.tx_weight) * tx_term[:, None]
            + math.sqrt(1.0 - self.tx_weight) * rx_term[None, :]
        )

    def unit_shadowing_pairs(
        self,
        tx_xy: np.ndarray,
        rx_xy: np.ndarray,
        times: np.ndarray,
    ) -> np.ndarray:
        """Like :meth:`unit_shadowing_matrix`, but with per-TX times.

        Used for fast fading, whose coherence time is shorter than a
        beacon interval: transmission ``i`` is evaluated at its own
        on-air time ``times[i]`` against every receiver.

        Args:
            tx_xy: ``(k, 2)`` transmitter positions.
            rx_xy: ``(m, 2)`` receiver positions.
            times: ``(k,)`` per-transmission evaluation instants.

        Returns:
            ``(k, m)`` unit-variance noise values.
        """
        tx = np.atleast_2d(np.asarray(tx_xy, dtype=float))
        rx = np.atleast_2d(np.asarray(rx_xy, dtype=float))
        t = np.asarray(times, dtype=float)
        tx_term = self._tx_field.value_batch(tx[:, 0], tx[:, 1], t)
        rx_term = self._rx_field.value_batch(
            rx[None, :, 0], rx[None, :, 1], t[:, None]
        )
        return (
            math.sqrt(self.tx_weight) * tx_term[:, None]
            + math.sqrt(1.0 - self.tx_weight) * rx_term
        )
