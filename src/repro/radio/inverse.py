"""RSSI → distance inversion.

Every RSSI-based position-verification baseline rests on inverting a
propagation model: *measure RSSI, assume a model, solve for distance*.
Observation 1 shows how badly this goes when the assumed model is wrong
— the paper's campus measurements at a true 140 m separation invert to
281.5 m / 171.2 m under free space and 263.9 m / 205.8 m under two-ray
ground.  These inverters reproduce that experiment and power the
Demirbas / CRSD / CPVSAD baselines.
"""

from __future__ import annotations

import math
from typing import Callable

from .base import DSRC_FREQUENCY_HZ, LinkBudget
from .dual_slope import DualSlopeModel
from .free_space import fspl_db
from .shadowing import LogNormalShadowingModel
from .two_ray import TwoRayGroundModel

__all__ = [
    "invert_free_space",
    "invert_two_ray",
    "invert_log_distance",
    "invert_dual_slope",
    "invert_monotone_model",
]

#: Inversion search bracket: a millimetre to a thousand kilometres.
_D_MIN = 1e-3
_D_MAX = 1e6


def invert_free_space(
    rssi_dbm: float,
    budget: LinkBudget,
    frequency_hz: float = DSRC_FREQUENCY_HZ,
) -> float:
    """Distance (m) a free-space model attributes to a measured RSSI."""
    path_loss = budget.eirp_dbm + budget.rx_gain_dbi - rssi_dbm
    if path_loss <= 0:
        raise ValueError(
            f"RSSI {rssi_dbm} dBm exceeds the link budget; no free-space "
            "distance explains it"
        )
    # PL = 20 log10(d) + 20 log10(f) + C  =>  d = 10^((PL - 20log10 f - C)/20)
    exponent = (path_loss - fspl_db(1.0, frequency_hz)) / 20.0
    return 10.0 ** exponent


def invert_two_ray(
    rssi_dbm: float,
    budget: LinkBudget,
    model: TwoRayGroundModel = TwoRayGroundModel(),
) -> float:
    """Distance (m) a two-ray-ground model attributes to a measured RSSI."""
    path_loss = budget.eirp_dbm + budget.rx_gain_dbi - rssi_dbm
    if path_loss <= 0:
        raise ValueError(
            f"RSSI {rssi_dbm} dBm exceeds the link budget under two-ray ground"
        )
    # Try the far (d^4) regime first; accept it if the solution is
    # actually beyond the crossover, else fall back to free space.
    heights = 20.0 * math.log10(model.tx_height_m * model.rx_height_m)
    d_far = 10.0 ** ((path_loss + heights) / 40.0)
    if d_far > model.crossover_distance_m:
        return d_far
    return invert_free_space(rssi_dbm, budget, model.frequency_hz)


def invert_log_distance(
    rssi_dbm: float,
    budget: LinkBudget,
    model: LogNormalShadowingModel,
) -> float:
    """Distance (m) a log-distance model attributes to a mean RSSI.

    Shadowing is zero-mean, so baselines treat the *measured* RSSI as
    the mean; the resulting distance error is exactly what CPVSAD's
    statistical test has to absorb.
    """
    path_loss = budget.eirp_dbm + budget.rx_gain_dbi - rssi_dbm
    excess = path_loss - model.reference_loss_db
    exponent = excess / (10.0 * model.path_loss_exponent)
    distance = model.reference_distance_m * 10.0 ** exponent
    return max(distance, model.reference_distance_m)


def invert_dual_slope(
    rssi_dbm: float,
    budget: LinkBudget,
    model: DualSlopeModel,
) -> float:
    """Distance (m) the dual-slope model attributes to a mean RSSI."""
    return invert_monotone_model(
        rssi_dbm,
        budget,
        model.path_loss_db,
        minimum_m=model.params.reference_distance_m,
    )


def invert_monotone_model(
    rssi_dbm: float,
    budget: LinkBudget,
    path_loss_db: Callable[[float], float],
    minimum_m: float = 1.0,
    tolerance_m: float = 1e-6,
) -> float:
    """Bisection inverse of any distance-monotone path-loss function.

    Args:
        rssi_dbm: Measured (or mean) RSSI.
        budget: Link budget of the transmitter.
        path_loss_db: Monotone non-decreasing loss-vs-distance function.
        minimum_m: Lower bound of the search (the model's d0).
        tolerance_m: Bisection convergence width.

    Returns:
        The distance whose predicted RSSI matches, clamped to
        ``minimum_m`` when the RSSI exceeds the at-reference prediction.
    """
    target_loss = budget.eirp_dbm + budget.rx_gain_dbi - rssi_dbm
    lo = max(minimum_m, _D_MIN)
    hi = _D_MAX
    if path_loss_db(lo) >= target_loss:
        return lo
    if path_loss_db(hi) <= target_loss:
        raise ValueError(
            f"RSSI {rssi_dbm} dBm is below the model's prediction at "
            f"{_D_MAX:.0f} m; cannot invert"
        )
    while hi - lo > tolerance_m:
        mid = 0.5 * (lo + hi)
        if path_loss_db(mid) < target_loss:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)
