"""Environment presets — Table IV of the paper, plus a highway preset.

The campus / rural / urban rows are the dual-slope parameters the
authors fitted (least squares) to their own Scenario 2 measurements; we
adopt them verbatim, which is what makes our synthetic field-test traces
statistically faithful to the authors' hardware traces.

The paper drives but never tabulates a highway environment; the highway
preset below extrapolates from the campus/rural LOS-dominated rows
(long breakpoint, mild near exponent, low shadowing) and is flagged as
an extrapolation in DESIGN.md.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .dual_slope import DualSlopeModel, DualSlopeParameters

__all__ = [
    "CAMPUS",
    "RURAL",
    "URBAN",
    "HIGHWAY",
    "ENVIRONMENTS",
    "environment",
    "environment_model",
    "environment_names",
]

#: Table IV, "Campus" column.
CAMPUS = DualSlopeParameters(
    critical_distance_m=218.0,
    gamma1=1.66,
    gamma2=5.53,
    sigma1_db=2.8,
    sigma2_db=3.2,
    name="campus",
)

#: Table IV, "Rural area" column.
RURAL = DualSlopeParameters(
    critical_distance_m=182.0,
    gamma1=1.89,
    gamma2=5.86,
    sigma1_db=3.1,
    sigma2_db=3.6,
    name="rural",
)

#: Table IV, "Urban area" column.
URBAN = DualSlopeParameters(
    critical_distance_m=102.0,
    gamma1=2.56,
    gamma2=6.34,
    sigma1_db=3.9,
    sigma2_db=5.2,
    name="urban",
)

#: Extrapolated open-road preset (not in Table IV): strong LOS with a
#: long breakpoint and modest shadowing.  The exponents are chosen so a
#: 20 dBm-EIRP beacon crosses the −95 dBm sensitivity at ≈ 650 m — an
#: open-road DSRC range consistent with the paper's NS-2 settings
#: (their verifiers rarely lack an attacker in range at 5 % malicious).
HIGHWAY = DualSlopeParameters(
    critical_distance_m=200.0,
    gamma1=1.80,
    gamma2=5.00,
    sigma1_db=2.5,
    sigma2_db=3.0,
    name="highway",
)

ENVIRONMENTS: Dict[str, DualSlopeParameters] = {
    "campus": CAMPUS,
    "rural": RURAL,
    "urban": URBAN,
    "highway": HIGHWAY,
}


def environment_names() -> Tuple[str, ...]:
    """The available environment labels, in field-test order."""
    return ("campus", "rural", "urban", "highway")


def environment(name: str) -> DualSlopeParameters:
    """Look up an environment's dual-slope parameters by label.

    Raises:
        KeyError: With the list of valid names, for an unknown label.
    """
    key = name.strip().lower()
    if key not in ENVIRONMENTS:
        raise KeyError(
            f"unknown environment {name!r}; expected one of {sorted(ENVIRONMENTS)}"
        )
    return ENVIRONMENTS[key]


def environment_model(name: str) -> DualSlopeModel:
    """A ready :class:`DualSlopeModel` for an environment label."""
    return DualSlopeModel(environment(name))
