"""Radio propagation substrate: models, inversion, fitting, noise fields."""

from .base import (
    DSRC_FREQUENCY_HZ,
    SPEED_OF_LIGHT,
    LinkBudget,
    PropagationModel,
    db_to_linear,
    dbm_to_mw,
    linear_to_db,
    mw_to_dbm,
    wavelength,
)
from .dual_slope import DualSlopeModel, DualSlopeParameters
from .environments import (
    CAMPUS,
    ENVIRONMENTS,
    HIGHWAY,
    RURAL,
    URBAN,
    environment,
    environment_model,
    environment_names,
)
from .fitting import DualSlopeFit, fit_dual_slope
from .free_space import FreeSpaceModel, FriisModel, fspl_db
from .inverse import (
    invert_dual_slope,
    invert_free_space,
    invert_log_distance,
    invert_monotone_model,
    invert_two_ray,
)
from .noise import SpatialNoiseField, ValueNoise3D
from .rayleigh import RayleighFadingModel
from .shadowing import LogNormalShadowingModel
from .two_ray import TwoRayGroundModel

__all__ = [
    "DSRC_FREQUENCY_HZ",
    "SPEED_OF_LIGHT",
    "LinkBudget",
    "PropagationModel",
    "db_to_linear",
    "dbm_to_mw",
    "linear_to_db",
    "mw_to_dbm",
    "wavelength",
    "DualSlopeModel",
    "DualSlopeParameters",
    "CAMPUS",
    "ENVIRONMENTS",
    "HIGHWAY",
    "RURAL",
    "URBAN",
    "environment",
    "environment_model",
    "environment_names",
    "DualSlopeFit",
    "fit_dual_slope",
    "FreeSpaceModel",
    "FriisModel",
    "fspl_db",
    "invert_dual_slope",
    "invert_free_space",
    "invert_log_distance",
    "invert_monotone_model",
    "invert_two_ray",
    "SpatialNoiseField",
    "ValueNoise3D",
    "RayleighFadingModel",
    "LogNormalShadowingModel",
    "TwoRayGroundModel",
]
