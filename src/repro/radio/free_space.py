"""Free-space (Friis) path loss.

The model assumed by Demirbas & Song's RSSI-ratio scheme and by
Bouassida's variation check, and the paper's yardstick for Observation 1:
with the measured campus RSSI, free-space inversion estimates the
140 m inter-vehicle distance as 281.5 m / 171.2 m — wildly off, which is
the motivation for going model-free.

Friis in dB form:

.. math::

    PL(d) = 20 \\log_{10}(d) + 20 \\log_{10}(f) - 147.55

with ``d`` in metres and ``f`` in Hz.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .base import (
    DSRC_FREQUENCY_HZ,
    DeterministicModelMixin,
    validate_distance,
)

__all__ = ["FreeSpaceModel", "FriisModel", "fspl_db"]

#: 20*log10(4*pi/c); the constant term of Friis in (metre, Hz) units.
_FSPL_CONSTANT = 20.0 * math.log10(4.0 * math.pi / 299_792_458.0)


def fspl_db(distance_m: float, frequency_hz: float = DSRC_FREQUENCY_HZ) -> float:
    """Free-space path loss in dB at a distance and carrier frequency."""
    if distance_m <= 0:
        raise ValueError(f"distance must be positive, got {distance_m}")
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_hz}")
    return (
        20.0 * math.log10(distance_m)
        + 20.0 * math.log10(frequency_hz)
        + _FSPL_CONSTANT
    )


@dataclass(frozen=True)
class FreeSpaceModel(DeterministicModelMixin):
    """Deterministic free-space propagation.

    Attributes:
        frequency_hz: Carrier frequency (default: DSRC CCH, 5.89 GHz).
        reference_distance_m: Distances below this are evaluated at it,
            keeping the model out of the near field.
    """

    frequency_hz: float = DSRC_FREQUENCY_HZ
    reference_distance_m: float = 1.0

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ValueError(f"frequency must be positive, got {self.frequency_hz}")
        if self.reference_distance_m <= 0:
            raise ValueError(
                f"reference distance must be positive, got {self.reference_distance_m}"
            )

    def path_loss_db(self, distance_m: float) -> float:
        d = validate_distance(distance_m, minimum=self.reference_distance_m)
        return fspl_db(d, self.frequency_hz)


#: Friis and free-space are the same model under our conventions; both
#: names appear in the paper's Table I, so both are exported.
FriisModel = FreeSpaceModel
