"""Log-distance path loss with log-normal shadowing.

The model assumed by the Chen, Xiao and Yu baselines — and hence by our
CPVSAD reimplementation.  Mean loss follows a single path-loss exponent
from a reference distance; a zero-mean Gaussian term in dB models
shadowing:

.. math::

    PL(d) = PL(d_0) + 10 \\gamma \\log_{10}(d / d_0) + X_\\sigma

CPVSAD's statistical test assumes :math:`X_\\sigma` has a *known*
standard deviation (the paper sets 3.9 dB); Fig. 11b shows what happens
to it when reality disagrees.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from .base import (
    DSRC_FREQUENCY_HZ,
    LinkBudget,
    validate_distance,
)
from .free_space import fspl_db

__all__ = ["LogNormalShadowingModel"]


@dataclass(frozen=True)
class LogNormalShadowingModel:
    """Single-slope log-distance model with Gaussian shadowing.

    Attributes:
        path_loss_exponent: The slope ``gamma`` (free space: 2).
        sigma_db: Shadowing standard deviation in dB.
        reference_distance_m: ``d0``; reference loss is free-space there.
        frequency_hz: Carrier frequency used for the reference loss.
    """

    path_loss_exponent: float = 2.0
    sigma_db: float = 3.9
    reference_distance_m: float = 1.0
    frequency_hz: float = DSRC_FREQUENCY_HZ

    def __post_init__(self) -> None:
        if self.path_loss_exponent <= 0:
            raise ValueError(
                f"path-loss exponent must be positive, got {self.path_loss_exponent}"
            )
        if self.sigma_db < 0:
            raise ValueError(f"sigma must be non-negative, got {self.sigma_db}")
        if self.reference_distance_m <= 0:
            raise ValueError(
                f"reference distance must be positive, got {self.reference_distance_m}"
            )

    @property
    def reference_loss_db(self) -> float:
        """Free-space loss at the reference distance ``d0``."""
        return fspl_db(self.reference_distance_m, self.frequency_hz)

    def path_loss_db(self, distance_m: float) -> float:
        """Mean (shadowing-free) path loss at a distance."""
        d = validate_distance(distance_m, minimum=self.reference_distance_m)
        return self.reference_loss_db + 10.0 * self.path_loss_exponent * math.log10(
            d / self.reference_distance_m
        )

    def mean_rssi(self, distance_m: float, budget: LinkBudget) -> float:
        """Mean RSSI at a distance (dBm)."""
        return budget.received_dbm(self.path_loss_db(distance_m))

    def sample_rssi(
        self,
        distance_m: float,
        budget: LinkBudget,
        rng: Optional[np.random.Generator] = None,
    ) -> float:
        """Mean RSSI plus one shadowing draw."""
        mean = self.mean_rssi(distance_m, budget)
        if rng is None or self.sigma_db == 0:
            return mean
        return mean + float(rng.normal(0.0, self.sigma_db))

    def rssi_std_db(self) -> float:
        """Standard deviation of the RSSI the model predicts (dB)."""
        return self.sigma_db
