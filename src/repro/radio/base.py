"""Radio propagation foundations: units, link budget, model protocol.

Every propagation model in this package answers the same question the
paper's NS-2 channel answers: *given a transmit power and a distance,
what RSSI does the receiver measure?*  Deterministic models expose
``mean_rssi``; stochastic ones add a noise draw in ``sample_rssi``.

Conventions:

* power in dBm, gains in dBi, path loss in dB;
* distances in metres, frequencies in Hz;
* DSRC control channel centre frequency 5.890 GHz (paper Table III).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Protocol, runtime_checkable

import numpy as np

__all__ = [
    "SPEED_OF_LIGHT",
    "DSRC_FREQUENCY_HZ",
    "dbm_to_mw",
    "mw_to_dbm",
    "db_to_linear",
    "linear_to_db",
    "wavelength",
    "LinkBudget",
    "PropagationModel",
]

SPEED_OF_LIGHT = 299_792_458.0
#: CCH 178 centre carrier frequency (Table III).
DSRC_FREQUENCY_HZ = 5.890e9


def dbm_to_mw(dbm: float) -> float:
    """Convert a power level from dBm to milliwatts."""
    return 10.0 ** (dbm / 10.0)


def mw_to_dbm(mw: float) -> float:
    """Convert a power level from milliwatts to dBm."""
    if mw <= 0:
        raise ValueError(f"power must be positive, got {mw} mW")
    return 10.0 * math.log10(mw)


def db_to_linear(db: float) -> float:
    """Convert a ratio from decibels to linear scale."""
    return 10.0 ** (db / 10.0)


def linear_to_db(ratio: float) -> float:
    """Convert a linear ratio to decibels."""
    if ratio <= 0:
        raise ValueError(f"ratio must be positive, got {ratio}")
    return 10.0 * math.log10(ratio)


def wavelength(frequency_hz: float = DSRC_FREQUENCY_HZ) -> float:
    """Carrier wavelength in metres (~5.09 cm at 5.89 GHz)."""
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_hz}")
    return SPEED_OF_LIGHT / frequency_hz


@dataclass(frozen=True)
class LinkBudget:
    """Transmit-side parameters of one link.

    Attributes:
        tx_power_dbm: Conducted transmit power (paper: 17–23 dBm range,
            20 dBm default).
        tx_gain_dbi: Transmit antenna gain (paper hardware: 7 dBi omni).
        rx_gain_dbi: Receive antenna gain.
    """

    tx_power_dbm: float = 20.0
    tx_gain_dbi: float = 0.0
    rx_gain_dbi: float = 0.0

    @property
    def eirp_dbm(self) -> float:
        """Effective isotropic radiated power."""
        return self.tx_power_dbm + self.tx_gain_dbi

    def received_dbm(self, path_loss_db: float) -> float:
        """RSSI after subtracting a path loss from the budget."""
        return self.eirp_dbm + self.rx_gain_dbi - path_loss_db


@runtime_checkable
class PropagationModel(Protocol):
    """What the channel needs from a propagation model."""

    def path_loss_db(self, distance_m: float) -> float:
        """Deterministic (mean) path loss at a distance, in dB."""
        ...

    def mean_rssi(self, distance_m: float, budget: LinkBudget) -> float:
        """Mean RSSI at a distance for a link budget, in dBm."""
        ...

    def sample_rssi(
        self,
        distance_m: float,
        budget: LinkBudget,
        rng: Optional[np.random.Generator] = None,
    ) -> float:
        """One stochastic RSSI draw (mean plus the model's noise)."""
        ...


class DeterministicModelMixin:
    """Shared plumbing for models defined by their ``path_loss_db``.

    Subclasses implement :meth:`path_loss_db`; the mixin supplies the
    ``mean_rssi``/``sample_rssi`` pair, with ``sample_rssi`` defaulting
    to the deterministic mean (no noise term).
    """

    def path_loss_db(self, distance_m: float) -> float:
        raise NotImplementedError

    def mean_rssi(self, distance_m: float, budget: LinkBudget) -> float:
        return budget.received_dbm(self.path_loss_db(distance_m))

    def sample_rssi(
        self,
        distance_m: float,
        budget: LinkBudget,
        rng: Optional[np.random.Generator] = None,
    ) -> float:
        return self.mean_rssi(distance_m, budget)


def validate_distance(distance_m: float, minimum: float = 0.0) -> float:
    """Clamp-and-check helper shared by the concrete models.

    Propagation formulas diverge at zero distance; models call this with
    their reference distance as ``minimum`` so that closer-than-reference
    queries are evaluated *at* the reference instead of extrapolating
    into the near field.
    """
    if not math.isfinite(distance_m) or distance_m < 0:
        raise ValueError(f"distance must be finite and non-negative, got {distance_m}")
    return max(distance_m, minimum)
