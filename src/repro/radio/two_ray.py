"""Two-ray ground-reflection path loss.

The model behind Lv et al.'s CRSD baseline, and the second yardstick in
Observation 1 (it estimates the real 140 m campus distance as
263.9 m / 205.8 m).  Beyond a crossover distance the direct and
ground-reflected rays interfere destructively and power falls as
:math:`d^4`:

.. math::

    PL(d) = 40 \\log_{10}(d) - 20 \\log_{10}(h_t h_r), \\quad d > d_{cross}

Below the crossover we fall back to free space, the standard NS-2
behaviour the authors' simulator inherits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .base import (
    DSRC_FREQUENCY_HZ,
    DeterministicModelMixin,
    validate_distance,
    wavelength,
)
from .free_space import fspl_db

__all__ = ["TwoRayGroundModel"]


@dataclass(frozen=True)
class TwoRayGroundModel(DeterministicModelMixin):
    """Two-ray ground reflection with a free-space near region.

    Attributes:
        tx_height_m: Transmit antenna height (roof-mounted, ~1.5 m).
        rx_height_m: Receive antenna height.
        frequency_hz: Carrier frequency for the near-field Friis part.
        reference_distance_m: Near-field guard distance.
    """

    tx_height_m: float = 1.5
    rx_height_m: float = 1.5
    frequency_hz: float = DSRC_FREQUENCY_HZ
    reference_distance_m: float = 1.0

    def __post_init__(self) -> None:
        if self.tx_height_m <= 0 or self.rx_height_m <= 0:
            raise ValueError(
                "antenna heights must be positive, got "
                f"({self.tx_height_m}, {self.rx_height_m})"
            )
        if self.frequency_hz <= 0:
            raise ValueError(f"frequency must be positive, got {self.frequency_hz}")
        if self.reference_distance_m <= 0:
            raise ValueError(
                f"reference distance must be positive, got {self.reference_distance_m}"
            )

    @property
    def crossover_distance_m(self) -> float:
        """Distance where the d^4 regime takes over: 4*pi*ht*hr/lambda."""
        return (
            4.0
            * math.pi
            * self.tx_height_m
            * self.rx_height_m
            / wavelength(self.frequency_hz)
        )

    def path_loss_db(self, distance_m: float) -> float:
        d = validate_distance(distance_m, minimum=self.reference_distance_m)
        if d <= self.crossover_distance_m:
            return fspl_db(d, self.frequency_hz)
        return 40.0 * math.log10(d) - 20.0 * math.log10(
            self.tx_height_m * self.rx_height_m
        )
