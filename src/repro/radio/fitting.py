"""Least-squares fitting of the dual-slope model (reproduces Table IV).

The authors regression-fitted Eq. 1 to their Scenario 2 measurements
with least squares to obtain per-environment parameters.  Given
``(distance, RSSI)`` samples and the link budget, :func:`fit_dual_slope`
recovers the breakpoint distance, both path-loss exponents and both
shadowing deviations:

1. The reference power :math:`P(d_0)` is the free-space value (as in
   Eq. 1), so each sample's *excess loss* over the reference is known.
2. For a candidate breakpoint :math:`d_c`, the near-regime slope
   :math:`\\gamma_1` minimises squared error on samples with
   :math:`d \\le d_c`; the far-regime slope :math:`\\gamma_2` then
   minimises the error of the continuity-constrained far branch.
3. The breakpoint is chosen by golden-section-free grid search over the
   observed distance range, minimising total squared error.
4. :math:`\\sigma_1, \\sigma_2` are the residual standard deviations of
   the two regimes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from .base import DSRC_FREQUENCY_HZ, LinkBudget
from .dual_slope import DualSlopeParameters
from .free_space import fspl_db

__all__ = ["DualSlopeFit", "fit_dual_slope"]


@dataclass(frozen=True)
class DualSlopeFit:
    """Result of a dual-slope regression.

    Attributes:
        params: The fitted :class:`DualSlopeParameters`.
        sse: Total squared error at the chosen breakpoint.
        n_near: Number of samples in the near regime.
        n_far: Number of samples in the far regime.
    """

    params: DualSlopeParameters
    sse: float
    n_near: int
    n_far: int


def _fit_slopes(
    log_d: np.ndarray,
    excess_loss: np.ndarray,
    log_dc: float,
) -> Optional[Tuple[float, float, float, np.ndarray, np.ndarray]]:
    """Fit (gamma1, gamma2) for one breakpoint; None if a regime is empty."""
    near = log_d <= log_dc
    far = ~near
    if near.sum() < 2 or far.sum() < 2:
        return None

    u_near = log_d[near]
    y_near = excess_loss[near]
    denom_near = float(np.sum(u_near * u_near))
    if denom_near <= 0:
        return None
    gamma1 = float(np.sum(y_near * u_near)) / (10.0 * denom_near)
    if gamma1 <= 0:
        return None

    u_far = log_d[far] - log_dc
    y_far = excess_loss[far] - 10.0 * gamma1 * log_dc
    denom_far = float(np.sum(u_far * u_far))
    if denom_far <= 0:
        return None
    gamma2 = float(np.sum(y_far * u_far)) / (10.0 * denom_far)
    if gamma2 <= 0:
        return None

    resid_near = y_near - 10.0 * gamma1 * u_near
    resid_far = y_far - 10.0 * gamma2 * u_far
    sse = float(np.sum(resid_near**2) + np.sum(resid_far**2))
    return gamma1, gamma2, sse, resid_near, resid_far


def fit_dual_slope(
    distances_m: Sequence[float],
    rssi_dbm: Sequence[float],
    budget: LinkBudget,
    reference_distance_m: float = 1.0,
    frequency_hz: float = DSRC_FREQUENCY_HZ,
    breakpoint_candidates: Optional[Sequence[float]] = None,
    name: str = "fitted",
) -> DualSlopeFit:
    """Fit Eq. 1 to measured (distance, RSSI) pairs.

    Args:
        distances_m: Sample distances (> reference distance).
        rssi_dbm: Matching measured RSSI values.
        budget: Link budget used during the measurement.
        reference_distance_m: ``d0`` (Table IV: 1 m).
        frequency_hz: Carrier for the reference free-space power.
        breakpoint_candidates: Candidate ``dc`` values; defaults to a
            log-spaced grid across the middle of the observed range.
        name: Label for the fitted parameter set.

    Returns:
        The best :class:`DualSlopeFit` across the candidate breakpoints.

    Raises:
        ValueError: On malformed inputs or if no breakpoint leaves at
            least two samples in each regime.
    """
    d = np.asarray(distances_m, dtype=float)
    r = np.asarray(rssi_dbm, dtype=float)
    if d.ndim != 1 or d.shape != r.shape:
        raise ValueError(
            f"distances and RSSI must be matching 1-D arrays, got shapes "
            f"{d.shape} and {r.shape}"
        )
    if d.size < 8:
        raise ValueError(f"need at least 8 samples to fit two slopes, got {d.size}")
    if np.any(d <= reference_distance_m):
        raise ValueError("all sample distances must exceed the reference distance")

    reference_rssi = budget.received_dbm(fspl_db(reference_distance_m, frequency_hz))
    excess_loss = reference_rssi - r
    log_d = np.log10(d / reference_distance_m)

    if breakpoint_candidates is None:
        lo = float(np.quantile(d, 0.1))
        hi = float(np.quantile(d, 0.9))
        if hi <= lo:
            raise ValueError("sample distances span too narrow a range to fit")
        breakpoint_candidates = np.geomspace(lo, hi, num=200)

    best: Optional[Tuple[float, float, float, float, np.ndarray, np.ndarray]] = None
    for dc in breakpoint_candidates:
        if dc <= reference_distance_m:
            continue
        log_dc = math.log10(dc / reference_distance_m)
        fitted = _fit_slopes(log_d, excess_loss, log_dc)
        if fitted is None:
            continue
        gamma1, gamma2, sse, resid_near, resid_far = fitted
        if best is None or sse < best[3]:
            best = (dc, gamma1, gamma2, sse, resid_near, resid_far)

    if best is None:
        raise ValueError(
            "no candidate breakpoint produced a valid two-regime fit; "
            "check the distance spread of the samples"
        )

    dc, gamma1, gamma2, sse, resid_near, resid_far = best
    params = DualSlopeParameters(
        critical_distance_m=float(dc),
        gamma1=gamma1,
        gamma2=gamma2,
        sigma1_db=float(np.std(resid_near)),
        sigma2_db=float(np.std(resid_far)),
        reference_distance_m=reference_distance_m,
        name=name,
    )
    return DualSlopeFit(
        params=params,
        sse=sse,
        n_near=int(resid_near.size),
        n_far=int(resid_far.size),
    )
