"""Rayleigh small-scale fading over a log-distance mean.

The model behind Wang et al.'s baseline assumption.  Received *power* in
a Rayleigh channel is exponentially distributed around its local mean;
in dB that is the mean RSSI plus :math:`10 \\log_{10} E` with
:math:`E \\sim \\mathrm{Exp}(1)` — a left-skewed fluctuation with deep
fades, quite unlike the Gaussian shadowing other baselines assume.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from .base import DSRC_FREQUENCY_HZ, LinkBudget, validate_distance
from .free_space import fspl_db

__all__ = ["RayleighFadingModel"]

#: -10*log10(e) * EulerGamma: the mean of 10*log10(Exp(1)) in dB,
#: i.e. the (negative) bias Rayleigh fading adds to the dB-domain mean.
RAYLEIGH_DB_MEAN = -10.0 * math.log10(math.e) * 0.5772156649015329


@dataclass(frozen=True)
class RayleighFadingModel:
    """Log-distance mean path loss with multiplicative Rayleigh fading.

    Attributes:
        path_loss_exponent: Mean-loss slope.
        reference_distance_m: Reference distance (free-space loss there).
        frequency_hz: Carrier frequency for the reference loss.
    """

    path_loss_exponent: float = 2.0
    reference_distance_m: float = 1.0
    frequency_hz: float = DSRC_FREQUENCY_HZ

    def __post_init__(self) -> None:
        if self.path_loss_exponent <= 0:
            raise ValueError(
                f"path-loss exponent must be positive, got {self.path_loss_exponent}"
            )
        if self.reference_distance_m <= 0:
            raise ValueError(
                f"reference distance must be positive, got {self.reference_distance_m}"
            )

    def path_loss_db(self, distance_m: float) -> float:
        """Mean path loss (before fading) at a distance."""
        d = validate_distance(distance_m, minimum=self.reference_distance_m)
        return fspl_db(
            self.reference_distance_m, self.frequency_hz
        ) + 10.0 * self.path_loss_exponent * math.log10(d / self.reference_distance_m)

    def mean_rssi(self, distance_m: float, budget: LinkBudget) -> float:
        """RSSI at the *mean power* (the dB average sits lower; see
        :data:`RAYLEIGH_DB_MEAN`)."""
        return budget.received_dbm(self.path_loss_db(distance_m))

    def sample_rssi(
        self,
        distance_m: float,
        budget: LinkBudget,
        rng: Optional[np.random.Generator] = None,
    ) -> float:
        """One faded RSSI draw (exponential power around the mean)."""
        mean = self.mean_rssi(distance_m, budget)
        if rng is None:
            return mean
        power_factor = float(rng.exponential(1.0))
        # An exact zero draw would be -inf dB; floor it at a 60 dB fade.
        power_factor = max(power_factor, 1e-6)
        return mean + 10.0 * math.log10(power_factor)
