"""Dual-slope piecewise-linear empirical model (paper Eq. 1).

The channel model the paper plugs into NS-2, taken from Cheng et al.'s
5.9 GHz DSRC measurement campaign: path loss follows exponent
:math:`\\gamma_1` out to a critical (breakpoint) distance :math:`d_c`
and a steeper :math:`\\gamma_2` beyond it, each regime with its own
log-normal shadowing deviation:

.. math::

    P_r(d) = \\begin{cases}
      P(d_0) - 10\\gamma_1\\log_{10}(d/d_0) + X_{\\sigma_1}, & d_0 \\le d \\le d_c \\\\
      P(d_0) - 10\\gamma_1\\log_{10}(d_c/d_0)
             - 10\\gamma_2\\log_{10}(d/d_c) + X_{\\sigma_2}, & d > d_c
    \\end{cases}

:math:`P(d_0)` is the free-space received power at the reference
distance.  Table IV's fitted parameter sets for campus / rural / urban
live in :mod:`repro.radio.environments`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from .base import DSRC_FREQUENCY_HZ, LinkBudget, validate_distance
from .free_space import fspl_db

__all__ = ["DualSlopeParameters", "DualSlopeModel"]


@dataclass(frozen=True)
class DualSlopeParameters:
    """Parameter set of the dual-slope model (one row of Table IV).

    Attributes:
        reference_distance_m: ``d0`` (Table IV: 1 m everywhere).
        critical_distance_m: Breakpoint ``dc``.
        gamma1: Near-regime path-loss exponent.
        gamma2: Far-regime path-loss exponent.
        sigma1_db: Near-regime shadowing deviation.
        sigma2_db: Far-regime shadowing deviation.
        name: Optional label (e.g. the environment).
    """

    critical_distance_m: float
    gamma1: float
    gamma2: float
    sigma1_db: float
    sigma2_db: float
    reference_distance_m: float = 1.0
    name: str = ""

    def __post_init__(self) -> None:
        if self.reference_distance_m <= 0:
            raise ValueError(
                f"d0 must be positive, got {self.reference_distance_m}"
            )
        if self.critical_distance_m <= self.reference_distance_m:
            raise ValueError(
                f"dc ({self.critical_distance_m}) must exceed d0 "
                f"({self.reference_distance_m})"
            )
        if self.gamma1 <= 0 or self.gamma2 <= 0:
            raise ValueError(
                f"path-loss exponents must be positive, got "
                f"({self.gamma1}, {self.gamma2})"
            )
        if self.sigma1_db < 0 or self.sigma2_db < 0:
            raise ValueError(
                f"shadowing deviations must be non-negative, got "
                f"({self.sigma1_db}, {self.sigma2_db})"
            )

    def with_name(self, name: str) -> "DualSlopeParameters":
        """A copy of the parameters under a new label."""
        return replace(self, name=name)


@dataclass(frozen=True)
class DualSlopeModel:
    """The dual-slope model bound to one parameter set.

    Attributes:
        params: Fitted environment parameters.
        frequency_hz: Carrier for the reference free-space term.
    """

    params: DualSlopeParameters
    frequency_hz: float = DSRC_FREQUENCY_HZ

    def path_loss_db(self, distance_m: float) -> float:
        """Mean path loss (shadowing excluded) at a distance."""
        p = self.params
        d = validate_distance(distance_m, minimum=p.reference_distance_m)
        reference = fspl_db(p.reference_distance_m, self.frequency_hz)
        if d <= p.critical_distance_m:
            return reference + 10.0 * p.gamma1 * math.log10(
                d / p.reference_distance_m
            )
        near = 10.0 * p.gamma1 * math.log10(
            p.critical_distance_m / p.reference_distance_m
        )
        far = 10.0 * p.gamma2 * math.log10(d / p.critical_distance_m)
        return reference + near + far

    def path_loss_db_array(self, distances_m: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`path_loss_db` over an array of distances."""
        p = self.params
        d = np.maximum(np.asarray(distances_m, dtype=float), p.reference_distance_m)
        reference = fspl_db(p.reference_distance_m, self.frequency_hz)
        near = reference + 10.0 * p.gamma1 * np.log10(d / p.reference_distance_m)
        far = (
            reference
            + 10.0 * p.gamma1 * math.log10(p.critical_distance_m / p.reference_distance_m)
            + 10.0 * p.gamma2 * np.log10(d / p.critical_distance_m)
        )
        return np.where(d <= p.critical_distance_m, near, far)

    def sigma_db_array(self, distances_m: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`sigma_db` over an array of distances."""
        p = self.params
        d = np.maximum(np.asarray(distances_m, dtype=float), p.reference_distance_m)
        return np.where(d <= p.critical_distance_m, p.sigma1_db, p.sigma2_db)

    def sigma_db(self, distance_m: float) -> float:
        """Shadowing deviation applicable at a distance."""
        p = self.params
        d = validate_distance(distance_m, minimum=p.reference_distance_m)
        return p.sigma1_db if d <= p.critical_distance_m else p.sigma2_db

    def mean_rssi(self, distance_m: float, budget: LinkBudget) -> float:
        """Mean RSSI at a distance for a link budget."""
        return budget.received_dbm(self.path_loss_db(distance_m))

    def sample_rssi(
        self,
        distance_m: float,
        budget: LinkBudget,
        rng: Optional[np.random.Generator] = None,
    ) -> float:
        """Mean RSSI plus one regime-appropriate shadowing draw."""
        mean = self.mean_rssi(distance_m, budget)
        if rng is None:
            return mean
        sigma = self.sigma_db(distance_m)
        if sigma == 0:
            return mean
        return mean + float(rng.normal(0.0, sigma))
