"""Command-line interface: regenerate any paper artefact from a shell.

Installed as ``voiceprint-repro`` (see ``pyproject.toml``), or run as
``python -m repro.cli``::

    voiceprint-repro list
    voiceprint-repro table1
    voiceprint-repro fig9
    voiceprint-repro fig13 --duration 300 --period 60
    voiceprint-repro fig11a --densities 10,40,80 --sim-time 60

Heavyweight experiments accept scale knobs so the CLI is usable both
for a quick look (default, minutes) and a fuller reproduction.

Observability (``repro.obs``) is wired in globally — the flags are
accepted before or after the subcommand::

    voiceprint-repro fig13 --metrics-out m.jsonl --trace-out t.jsonl
    voiceprint-repro --log-level DEBUG fig9

``--metrics-out`` enables the metrics layer, writes one JSON line per
instrument, and prints an end-of-run summary; ``--trace-out`` streams
every finished span (one detection = one root span with its phase
children) as JSONL.

Live telemetry rides the same flags block: ``--telemetry-port`` serves
Prometheus text at ``/metrics`` (plus ``/health``) while the run is in
flight, ``--snapshot-interval`` turns counters into ``rate.*`` gauges
and a snapshot JSONL stream, ``--health-thresholds`` arms the streaming
health monitor, and ``--flight-recorder-out`` keeps a bounded ring of
recent spans/logs/reports that dumps a post-mortem bundle on an alert
or an unhandled exception (see README "Telemetry & health
monitoring").

The streaming service adds causal lineage: ``serve --lineage`` (or
``--lineage-out PATH``) decomposes every beacon→verdict path into
``serve.stage.*`` histograms and tail-samples a bounded trace ring —
flagged / near-miss / slow / shed-adjacent verdicts always retained —
whose correlation ids join the audit log and flight recorder; the
``trace`` subcommand is the forensics reader (see README "Tracing &
lineage").

Profiling rides along too: ``--profile`` samples Python stacks at
``--profile-hz`` and attributes them to pipeline phases via the open
spans, printing per-phase and hotspot tables at the end and writing a
collapsed-stack file (``--profile-out``) ready for flamegraph.pl or
speedscope; ``--profile-memory`` adds per-phase tracemalloc
attribution (see README "Profiling").

The pairwise comparison engine (``repro.core.pairwise``) is likewise
configured globally: ``--pairwise {engine,naive}``,
``--pairwise-pruning {on,off}``, ``--pairwise-incremental {on,off}``,
``--pairwise-cache N`` and ``--pairwise-workers N`` set the
process-wide defaults every detector constructed during the run
inherits (see README "Performance").

Parallel evaluation (``repro.eval.parallel``) is configured the same
way: ``--workers N`` fans experiment grids and per-verifier replay out
over N processes, ``--task-timeout`` bounds each task, and ``--resume
PATH`` (sweep commands) journals completed grid cells so an
interrupted sweep restarts without recomputation (see README
"Parallel evaluation").
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List, Optional, Sequence

from . import obs
from .obs.drift import SLOSpec
from .obs.health import HealthMonitor, HealthThresholds
from .core.pairwise import set_engine_defaults
from .eval import experiments as ex
from .eval.parallel import set_parallel_defaults
from .eval.reporting import render_table
from .sim.scenario import ScenarioConfig

__all__ = ["main", "build_parser"]


def _densities(text: str) -> List[float]:
    try:
        values = [float(part) for part in text.split(",") if part.strip()]
    except ValueError as error:
        raise argparse.ArgumentTypeError(f"bad density list {text!r}") from error
    if not values or any(v <= 0 for v in values):
        raise argparse.ArgumentTypeError(f"bad density list {text!r}")
    return values


def _cmd_list(args: argparse.Namespace) -> str:
    rows = [
        ("table1", "Table I — method comparison matrix", "instant"),
        ("fig5", "Fig. 5 / Observation 1 — ranging errors", "~1 min"),
        ("table4", "Table IV — dual-slope fits", "~1 min"),
        ("fig6-7", "Figs. 6-7 / Observation 3 — Sybil voiceprints", "~1 min"),
        ("fig9", "Fig. 9 — DTW worked example", "instant"),
        ("fig10", "Fig. 10 — decision boundary training", "minutes"),
        ("fig11a", "Fig. 11a — Voiceprint vs CPVSAD (static)", "minutes"),
        ("fig11b", "Fig. 11b — the same under model change", "minutes"),
        ("fig13", "Fig. 13 — four-environment field test", "~2 min"),
        ("fig14", "Fig. 14 — red-light false positive", "~2 min"),
        ("timing", "§VI-B — comparison cost", "~1 min"),
        ("ablations", "E12 — design ablations", "~2 min"),
    ]
    return render_table(
        ["command", "artefact", "cost"], rows, title="available experiments"
    )


def _cmd_table1(args: argparse.Namespace) -> str:
    rows = ex.run_table1()
    return render_table(
        ["method", "RPM", "C/D", "C/I", "SoI", "mobility", "implemented"],
        [
            (
                r.method,
                r.propagation_model,
                r.centralisation,
                r.cooperation,
                r.needs_infrastructure,
                r.mobility,
                r.implemented,
            )
            for r in rows
        ],
        title="Table I",
    )


def _cmd_fig5(args: argparse.Namespace) -> str:
    rows = ex.run_observation1(duration_s=args.duration, seed=args.seed)
    return render_table(
        ["period", "n", "mean dBm", "std dB", "true m", "FSPL m", "two-ray m"],
        [
            (
                r.label,
                r.n_samples,
                r.mean_dbm,
                r.std_db,
                r.true_distance_m,
                r.fspl_estimate_m,
                r.trgp_estimate_m,
            )
            for r in rows
        ],
        title="Fig. 5 / Observation 1",
    )


def _cmd_table4(args: argparse.Namespace) -> str:
    rows = ex.run_table4(n_samples=args.samples, seed=args.seed)
    return render_table(
        ["environment", "dc t/f", "g1 t/f", "g2 t/f", "s1 t/f", "s2 t/f"],
        [
            (
                r.environment,
                f"{r.dc_true:.0f}/{r.dc_fit:.0f}",
                f"{r.gamma1_true:.2f}/{r.gamma1_fit:.2f}",
                f"{r.gamma2_true:.2f}/{r.gamma2_fit:.2f}",
                f"{r.sigma1_true:.1f}/{r.sigma1_fit:.1f}",
                f"{r.sigma2_true:.1f}/{r.sigma2_fit:.1f}",
            )
            for r in rows
        ],
        title="Table IV (true / fitted)",
    )


def _cmd_fig6_7(args: argparse.Namespace) -> str:
    results = ex.run_observation3(duration_s=args.duration, seed=args.seed)
    return render_table(
        ["recorder", "max within-attacker D", "min cross D"],
        [
            (r.recorder, r.max_within_sybil(), r.min_cross())
            for r in results
        ],
        title="Figs. 6-7 / Observation 3",
    )


def _cmd_fig9(args: argparse.Namespace) -> str:
    result = ex.run_dtw_example()
    return render_table(
        ["quantity", "value"],
        [
            ("DTW (Eqs. 3-6, squared cost)", result.squared_distance),
            ("DTW (absolute cost)", result.absolute_distance),
            ("Fig. 9's printed value", result.paper_claimed),
            ("warp path", " ".join(map(str, result.path))),
        ],
        title="Fig. 9",
    )


def _base_config(args: argparse.Namespace) -> ScenarioConfig:
    return ScenarioConfig(sim_time_s=args.sim_time)


def _cmd_fig10(args: argparse.Namespace) -> str:
    result = ex.run_boundary_training(
        densities_vhls_per_km=args.densities,
        base_config=_base_config(args),
        seed=args.seed,
    )
    return render_table(
        ["quantity", "value"],
        [
            ("trained k", result.line.k),
            ("trained b", result.line.b),
            ("paper k", result.paper_line[0]),
            ("paper b", result.paper_line[1]),
            ("positives", result.n_positive),
            ("negatives", result.n_negative),
            ("training TPR", result.training_tpr),
            ("training FPR", result.training_fpr),
        ],
        title="Fig. 10",
    )


def _fig11(args: argparse.Namespace, model_change: bool) -> str:
    boundary = ex.run_boundary_training(
        densities_vhls_per_km=args.densities,
        base_config=_base_config(args),
        seed=args.seed,
    ).line
    rows = ex.run_fig11(
        boundary,
        densities_vhls_per_km=args.densities,
        model_change=model_change,
        runs_per_density=args.runs,
        base_config=_base_config(args),
        seed=args.seed + 1,
        checkpoint=getattr(args, "resume", None),
    )
    return render_table(
        ["density", "method", "DR", "FPR", "node-periods"],
        [
            (
                r.density_vhls_per_km,
                r.method,
                r.detection_rate,
                r.false_positive_rate,
                r.n_outcomes,
            )
            for r in rows
        ],
        title="Fig. 11b" if model_change else "Fig. 11a",
    )


def _cmd_fig13(args: argparse.Namespace) -> str:
    areas = ex.run_fig13(
        duration_s=args.duration,
        detection_period_s=args.period,
        seed=args.seed,
    )
    return render_table(
        ["environment", "periods", "DR", "FPR", "FP periods"],
        [
            (
                a.environment,
                len(a.detections),
                a.detection_rate,
                a.false_positive_rate,
                a.n_false_positive_periods,
            )
            for a in areas
        ],
        title="Fig. 13",
    )


def _cmd_fig14(args: argparse.Namespace) -> str:
    result = ex.run_fig14(
        duration_s=args.duration,
        detection_period_s=args.period,
        seed=args.seed,
    )
    return render_table(
        ["quantity", "value"],
        [
            ("stationary periods", len(result.stationary_periods)),
            ("moving periods", len(result.moving_periods)),
            ("D(mal, node2) stationary", result.node2_distance_stationary),
            ("D(mal, node2) moving", result.node2_distance_moving),
            ("FP periods (single)", result.false_positives_single),
            ("FP periods (confirmed)", result.false_positives_confirmed),
        ],
        title="Fig. 14",
    )


def _cmd_timing(args: argparse.Namespace) -> str:
    result = ex.run_timing(seed=args.seed)
    rows = [("pair (200 samples)", result.pair_ms, result.paper_pair_ms)]
    for count, ms in zip(result.neighbours, result.full_detection_ms):
        rows.append((f"{count} neighbours", ms, result.paper_80_ms if count == 80 else None))
    return render_table(
        ["operation", "measured ms", "paper ms"], rows, title="§VI-B timing"
    )


def _cmd_ablations(args: argparse.Namespace) -> str:
    rows = ex.run_ablations(duration_s=args.duration, seed=args.seed)
    return render_table(
        ["group", "variant", "sybil max", "other min", "margin", "note"],
        [
            (r.group, r.variant, r.sybil_max, r.other_min, r.margin, r.note)
            for r in rows
        ],
        title="E12 ablations",
    )


def _add_obs_arguments(
    parser: argparse.ArgumentParser, suppress_defaults: bool
) -> None:
    """The global observability flags.

    They are installed twice: on the main parser with real defaults,
    and on every subparser with ``SUPPRESS`` defaults — so they parse
    both before and after the subcommand without the subparser's
    defaults clobbering values parsed by the main parser.
    """
    suppressed = argparse.SUPPRESS
    parser.add_argument(
        "--log-level",
        default=suppressed if suppress_defaults else None,
        choices=["DEBUG", "INFO", "WARNING", "ERROR"],
        help="enable structured key=value logging at this level (stderr)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=suppressed if suppress_defaults else None,
        help="enable metrics; write one JSON line per instrument to PATH "
        "and print an end-of-run summary",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=suppressed if suppress_defaults else None,
        help="enable span tracing; stream finished spans as JSONL to PATH",
    )
    parser.add_argument(
        "--telemetry-port",
        type=int,
        metavar="PORT",
        default=suppressed if suppress_defaults else None,
        help="serve live Prometheus text at http://127.0.0.1:PORT/metrics "
        "and health JSON at /health for the duration of the run "
        "(0 picks an ephemeral port)",
    )
    parser.add_argument(
        "--snapshot-interval",
        type=float,
        metavar="SECONDS",
        default=suppressed if suppress_defaults else None,
        help="periodically snapshot the metrics registry: counter deltas "
        "become rate.* gauges and one JSONL record per tick is written "
        "to --snapshot-out",
    )
    parser.add_argument(
        "--snapshot-out",
        metavar="PATH",
        default=suppressed if suppress_defaults else None,
        help="snapshot JSONL destination (default: snapshots.jsonl when "
        "--snapshot-interval is set)",
    )
    parser.add_argument(
        "--flight-recorder-out",
        metavar="PATH",
        default=suppressed if suppress_defaults else None,
        help="keep a bounded ring of recent spans/logs/reports and dump "
        "a post-mortem JSONL bundle to PATH on a health alert or an "
        "unhandled exception",
    )
    parser.add_argument(
        "--health-thresholds",
        type=HealthThresholds.from_spec,
        metavar="SPEC",
        default=suppressed if suppress_defaults else None,
        help="enable the streaming health monitor with alert limits, "
        "e.g. silence=30,detect_ms=250,flag_rate=0.5,density_drift=0.5",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        default=suppressed if suppress_defaults else False,
        help="sample Python stacks during the run, attribute them to "
        "pipeline phases via open spans, and print per-phase + hotspot "
        "tables at the end (see README \"Profiling\")",
    )
    parser.add_argument(
        "--profile-hz",
        type=float,
        metavar="HZ",
        default=suppressed if suppress_defaults else None,
        help="sampling rate (default: 99 Hz; implies --profile)",
    )
    parser.add_argument(
        "--profile-out",
        metavar="PATH",
        default=suppressed if suppress_defaults else None,
        help="collapsed-stack destination for flamegraph.pl/speedscope "
        "(default: profile.collapsed, indexed .1/.2/... like the flight "
        "recorder instead of overwriting; implies --profile)",
    )
    parser.add_argument(
        "--profile-memory",
        action="store_true",
        default=suppressed if suppress_defaults else False,
        help="also trace allocations (tracemalloc) and report per-phase "
        "net/peak memory (implies --profile; slows the run)",
    )
    parser.add_argument(
        "--pairwise",
        choices=["engine", "naive"],
        default=suppressed if suppress_defaults else None,
        help="pairwise comparison backend: the vectorised/cached engine "
        "(default) or the legacy per-pair loop (bit-identical results)",
    )
    parser.add_argument(
        "--pairwise-pruning",
        choices=["on", "off"],
        default=suppressed if suppress_defaults else None,
        help="decide pairs from DTW bounds when they cannot change the "
        "flagged set (off by default: pruned pairs report bound "
        "surrogates instead of exact distances)",
    )
    parser.add_argument(
        "--pairwise-incremental",
        choices=["on", "off"],
        default=suppressed if suppress_defaults else None,
        help="price each detection by what changed since the previous "
        "period: sliding envelopes, carried verdicts, early-abandon DTW "
        "(off by default; flags stay byte-identical to the exact path)",
    )
    parser.add_argument(
        "--pairwise-cache",
        type=int,
        metavar="N",
        default=suppressed if suppress_defaults else None,
        help="pairwise LRU cache capacity in pairs (0 disables)",
    )
    parser.add_argument(
        "--pairwise-workers",
        type=int,
        metavar="N",
        default=suppressed if suppress_defaults else None,
        help="thread-pool width for exact DTW evaluations (0 = inline)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        metavar="N",
        default=suppressed if suppress_defaults else None,
        help="process-pool width for parallel evaluation: experiment "
        "grids and per-verifier replay shard across N worker processes "
        "(1 = serial; default: $REPRO_EVAL_WORKERS or serial)",
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        metavar="SECONDS",
        default=suppressed if suppress_defaults else None,
        help="per-task deadline for parallel evaluation: a worker "
        "exceeding it is terminated and its task retried, then run "
        "serially (default: no deadline)",
    )
    parser.add_argument(
        "--audit-out",
        metavar="PATH",
        default=suppressed if suppress_defaults else None,
        help="record per-pair decision provenance (windows, margins, "
        "DTW distances, prune/cache tags) to a JSONL audit log at PATH "
        "(indexed .1/.2/... like the flight recorder); inspect it with "
        "the 'explain' subcommand",
    )
    parser.add_argument(
        "--watch-record",
        metavar="PATH",
        default=suppressed if suppress_defaults else None,
        help="keep the run's telemetry trajectory in a bounded "
        "multi-resolution time-series store with CUSUM/Page-Hinkley "
        "drift detection and SLO burn-rate alerting, and dump it to "
        "PATH at the end (indexed .1/.2/...; view with the 'watch' "
        "subcommand). Implies a 1s snapshotter, the health monitor "
        "and the /series endpoint when --telemetry-port is set",
    )
    parser.add_argument(
        "--slo",
        action="append",
        type=SLOSpec.from_spec,
        metavar="SPEC",
        default=suppressed if suppress_defaults else None,
        help="add a service-level objective (repeatable), e.g. "
        "detect_p99:metric=hist:detector.detect_ms:p99,max=250,"
        "budget=0.1,short=5,long=30 — replaces the default SLO set; "
        "implies --watch-record's monitoring (without the dump)",
    )
    parser.add_argument(
        "--report-out",
        metavar="PATH",
        default=suppressed if suppress_defaults else None,
        help="write a static end-of-run report (HTML when PATH ends in "
        ".html, markdown otherwise): telemetry charts, drift/SLO "
        "alerts, profiler tables, audit near-misses, bench history",
    )
    parser.add_argument(
        "--margin-epsilon",
        type=float,
        metavar="EPS",
        default=suppressed if suppress_defaults else None,
        help="near-miss threshold: verdicts with |signed margin| below "
        "EPS count as fragile in pipeline.margin.near_miss and the "
        "health monitor's fragile_verdict_rate (default: 0.05)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="voiceprint-repro",
        description="Regenerate tables and figures of the Voiceprint paper "
        "(Yao et al., DSN 2017).",
        # Prefix matching would make a subcommand flag like explain's
        # --pair ambiguous against --pairwise-* at the top level, since
        # argparse classifies every token before handing the tail to
        # the subparser.
        allow_abbrev=False,
    )
    parser.add_argument("--seed", type=int, default=7, help="master RNG seed")
    _add_obs_arguments(parser, suppress_defaults=False)
    obs_parent = argparse.ArgumentParser(add_help=False)
    _add_obs_arguments(obs_parent, suppress_defaults=True)
    sub = parser.add_subparsers(dest="command", required=True)

    def add_parser(name: str, help: str) -> argparse.ArgumentParser:
        return sub.add_parser(name, help=help, parents=[obs_parent])

    add_parser("list", help="list available experiments")
    add_parser("table1", help="Table I")
    add_parser("fig9", help="Fig. 9 DTW example")

    fig5 = add_parser("fig5", help="Fig. 5 / Observation 1")
    fig5.add_argument("--duration", type=float, default=300.0)

    table4 = add_parser("table4", help="Table IV fits")
    table4.add_argument("--samples", type=int, default=4000)

    fig67 = add_parser("fig6-7", help="Figs. 6-7 / Observation 3")
    fig67.add_argument("--duration", type=float, default=120.0)

    for name in ("fig10", "fig11a", "fig11b"):
        p = add_parser(name, help=f"{name} (highway sweep)")
        p.add_argument("--densities", type=_densities, default=[10, 40, 80])
        p.add_argument("--sim-time", type=float, default=60.0)
        p.add_argument("--runs", type=int, default=1)
        if name != "fig10":
            p.add_argument(
                "--resume",
                metavar="PATH",
                default=None,
                help="journal completed (density, run) cells to PATH and "
                "skip cells already journaled there on restart",
            )

    for name in ("fig13", "fig14"):
        p = add_parser(name, help=f"{name} (field test)")
        p.add_argument("--duration", type=float, default=300.0)
        p.add_argument("--period", type=float, default=60.0 if name == "fig13" else 30.0)

    add_parser("timing", help="§VI-B timing")

    ablations = add_parser("ablations", help="E12 ablations")
    ablations.add_argument("--duration", type=float, default=120.0)

    serve = add_parser(
        "serve",
        help="streaming detection service: shard a fleet-wide beacon "
        "stream by observer, run one online pipeline each, publish "
        "verdicts (see README 'Streaming service')",
    )
    serve.add_argument(
        "--input",
        metavar="PATH",
        default=None,
        help="beacon JSONL ({observer, identity, t, rssi} per line); "
        "'-' reads stdin; omit for the synthetic demo fleet",
    )
    serve.add_argument(
        "--observers", type=int, default=100,
        help="demo fleet: receiving vehicles (default: 100)",
    )
    serve.add_argument(
        "--identities", type=int, default=4,
        help="demo fleet: legitimate identities per observer",
    )
    serve.add_argument(
        "--sybil", type=int, default=3,
        help="demo fleet: Sybil identities per observer (0 = no attack)",
    )
    serve.add_argument(
        "--duration", type=float, default=60.0,
        help="demo fleet: simulated seconds of beaconing",
    )
    serve.add_argument(
        "--beacon-hz", type=float, default=10.0,
        help="demo fleet: per-identity beacon rate",
    )
    serve.add_argument(
        "--rate", type=float, default=0.0, metavar="BEACONS_PER_S",
        help="pace ingestion at this many beacons/s (0 = as fast as "
        "the queues accept; useful with --telemetry-port to watch "
        "a run live)",
    )
    serve.add_argument(
        "--shards", type=int, default=4,
        help="worker threads; observers are hash-partitioned across them",
    )
    serve.add_argument(
        "--queue-depth", type=int, default=2048,
        help="per-shard ingest queue bound",
    )
    serve.add_argument(
        "--ingest-policy", choices=("block", "shed"), default="block",
        help="queue-full behaviour: backpressure the producer (block) "
        "or drop and count the beacon (shed)",
    )
    serve.add_argument(
        "--max-range", type=float, default=650.0,
        help="Eq. 9 density denominator (metres)",
    )
    serve.add_argument(
        "--lineage", action="store_true",
        help="beacon-to-verdict stage tracing with tail-based "
        "sampling: serve.stage.* histograms plus a bounded ring of "
        "the flagged/near-miss/slow/shed-adjacent traces (see README "
        "'Tracing & lineage')",
    )
    serve.add_argument(
        "--lineage-out", metavar="PATH", default=None,
        help="dump the retained trace ring as JSONL on shutdown "
        "(implies --lineage; inspect with the 'trace' subcommand)",
    )
    serve.add_argument(
        "--lineage-sample", type=float, default=0.01, metavar="P",
        help="probability an uninteresting verdict trace is retained "
        "anyway — flagged/near-miss/slow/shed-adjacent always are "
        "(default: 0.01)",
    )
    serve.add_argument(
        "--lineage-capacity", type=int, default=512,
        help="trace ring size in retained traces (default: 512)",
    )

    # No obs parent here: explain reads an existing audit log, it does
    # not run the pipeline, so telemetry/profiling flags make no sense.
    explain = sub.add_parser(
        "explain",
        help="forensic report from an --audit-out log: why was a pair "
        "flagged (windows, DTW cost decomposition, margin, provenance)",
    )
    explain.add_argument("log", help="audit JSONL written by --audit-out")
    explain.add_argument(
        "--pair",
        metavar="A,B",
        default=None,
        help="show every recorded period of the pair A,B",
    )
    explain.add_argument(
        "--observer",
        metavar="ID",
        default=None,
        help="restrict to detections recorded by this observer",
    )
    explain.add_argument(
        "--worst",
        action="store_true",
        help="show the verdict closest to its threshold",
    )
    explain.add_argument(
        "--near-misses",
        type=int,
        metavar="N",
        default=None,
        help="show the N verdicts closest to their thresholds",
    )
    explain.add_argument(
        "--verify",
        action="store_true",
        help="replay every exact record through repro.core.pairwise and "
        "fail unless each distance is bit-identical",
    )

    # No obs parent here either: trace reads an existing lineage dump.
    trace = sub.add_parser(
        "trace",
        help="forensics over a --lineage-out trace dump: slowest / "
        "flagged / near-miss paths, per-verdict stage waterfalls, "
        "audit-bundle joins, Chrome-tracing export",
    )
    trace.add_argument(
        "dump", help="lineage JSONL written by serve --lineage-out"
    )
    trace.add_argument(
        "--slowest", type=int, metavar="N", default=None,
        help="show the N highest-latency traces in the selection",
    )
    trace.add_argument(
        "--flagged", action="store_true",
        help="restrict to traces whose verdict flagged a Sybil pair",
    )
    trace.add_argument(
        "--near-misses", type=int, metavar="N", default=None,
        help="show the N near-miss traces (margin within epsilon)",
    )
    trace.add_argument(
        "--follow", metavar="CID", default=None,
        help="print one trace's stage waterfall by correlation id; "
        "with --audit, also the joined audit pair evidence",
    )
    trace.add_argument(
        "--export", metavar="PATH", default=None,
        help="write the selection as Chrome-tracing / Perfetto JSON "
        "(open in chrome://tracing or ui.perfetto.dev)",
    )
    trace.add_argument(
        "--audit", metavar="PATH", default=None,
        help="join traces to this --audit-out log on correlation id; "
        "exits non-zero when a flagged trace has no bundle",
    )
    trace.add_argument(
        "--once", action="store_true",
        help="render a single report and exit (already the default; "
        "accepted so scripts can be explicit, like watch --once)",
    )

    # No obs parent here either: watch observes another run's
    # telemetry, it does not produce its own.
    watch = sub.add_parser(
        "watch",
        help="terminal dashboard over a run's telemetry: phase latency, "
        "throughput, margins, drift scores and SLO burn rates",
    )
    watch.add_argument(
        "source",
        help="a live telemetry URL (http://127.0.0.1:PORT), a "
        "--watch-record dump, or a --snapshot-out JSONL log",
    )
    watch.add_argument(
        "--once",
        action="store_true",
        help="render a single frame (no ANSI clearing) and exit — "
        "CI/script friendly",
    )
    watch.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="repaint period in follow mode (default: 2s)",
    )
    return parser


def _cmd_explain(args: argparse.Namespace) -> str:
    # Lazy import: explain pulls in repro.core for the replay engine,
    # which every other (list/figure) invocation does not need.
    from .obs.explain import run_explain

    pair = None
    if args.pair is not None:
        parts = [part.strip() for part in args.pair.split(",")]
        if len(parts) != 2 or not all(parts):
            raise SystemExit(
                f"--pair wants two comma-separated ids, got {args.pair!r}"
            )
        pair = (parts[0], parts[1])
    try:
        return run_explain(
            args.log,
            pair=pair,
            observer=args.observer,
            worst=args.worst,
            near_misses=args.near_misses,
            verify=args.verify,
        )
    except (ValueError, OSError) as error:
        raise SystemExit(str(error))


def _cmd_watch(args: argparse.Namespace) -> str:
    from .obs.watch import run_watch

    try:
        if args.once:
            import io

            # run_watch writes the frame to its stream; capture it and
            # hand it back so main() prints it exactly once.
            return run_watch(
                args.source,
                once=True,
                interval_s=args.interval,
                out=io.StringIO(),
            )
        run_watch(args.source, once=False, interval_s=args.interval)
        return ""
    except (ValueError, OSError) as error:
        raise SystemExit(str(error))


def _cmd_serve(args: argparse.Namespace) -> str:
    # Lineage must be installed before service.start() captures the
    # process-global instance for its submit hot path — and
    # uninstalled on every exit, so a bad --input path cannot leak
    # tracing into later work in the same process.
    lineage: Optional["obs.Lineage"] = None
    if args.lineage or args.lineage_out:
        lineage = obs.start_lineage(
            capacity=args.lineage_capacity, sample=args.lineage_sample
        )
    try:
        return _run_serve(args, lineage)
    finally:
        if lineage is not None:
            obs.stop_lineage()


def _run_serve(
    args: argparse.Namespace, lineage: Optional["obs.Lineage"]
) -> str:
    # Lazy import: serve pulls in the threaded service machinery no
    # figure command needs.
    from .serve import (
        DetectionService,
        ServiceConfig,
        read_jsonl,
        synthetic_fleet,
    )

    config = ServiceConfig(
        shards=args.shards,
        queue_depth=args.queue_depth,
        ingest_policy=args.ingest_policy,
        max_range_m=args.max_range,
    )
    service = DetectionService(config)
    # The CLI consumer wants every verdict for the end-of-run summary,
    # so it gets a deep queue; other subscribers (none by default)
    # would pick their own QoS.
    verdicts = service.subscribe("cli", depth=65536)

    if args.input is not None:
        if args.input == "-":
            events = read_jsonl(sys.stdin)
        else:
            try:
                handle = open(args.input, encoding="utf-8")
            except OSError as error:
                raise SystemExit(str(error))
            events = read_jsonl(handle)
    else:
        events = iter(
            synthetic_fleet(
                observers=args.observers,
                legit=args.identities,
                sybil=args.sybil,
                duration_s=args.duration,
                beacon_hz=args.beacon_hz,
                seed=args.seed,
            )
        )

    service.start()
    start = time.monotonic()
    submitted = 0
    for event in events:
        service.submit(event)
        submitted += 1
        if args.rate > 0 and submitted % 256 == 0:
            # Pace in chunks; per-event sleeps are dominated by timer
            # granularity at realistic rates.
            ahead = submitted / args.rate - (time.monotonic() - start)
            if ahead > 0:
                time.sleep(ahead)
    drained = service.flush(timeout=600.0)
    ingest_wall = time.monotonic() - start
    service.stop()

    stats = service.stats()
    reports = verdicts.drain()
    latencies = sorted(r.latency_ms for r in reports)

    def pct(q: float) -> str:
        if not latencies:
            return "-"
        rank = q / 100.0 * (len(latencies) - 1)
        low = int(rank)
        high = min(low + 1, len(latencies) - 1)
        frac = rank - low
        return f"{latencies[low] * (1 - frac) + latencies[high] * frac:.2f}"

    confirmed = service.confirmed()
    rows = [
        ("beacons ingested", f"{stats['ingested']}"),
        ("beacons shed", f"{stats['shed']}"),
        ("observers", f"{stats['observers']}"),
        ("reports published", f"{len(reports)}"),
        ("throughput (beacons/s)", f"{stats['ingested'] / ingest_wall:,.0f}"),
        ("ingest-to-verdict p50 (ms)", pct(50.0)),
        ("ingest-to-verdict p99 (ms)", pct(99.0)),
        ("observers with confirmed Sybils", f"{len(confirmed)}"),
        ("drained cleanly", "yes" if drained else "NO (flush timed out)"),
    ]
    if lineage is not None:
        lstats = lineage.stats()
        rows.append(
            (
                "traces retained",
                f"{lstats['retained']} in ring "
                f"({lstats['retained_total']} of "
                f"{lstats['completed']} completed)",
            )
        )
    lines = [render_table(["quantity", "value"], rows, title="serve summary")]
    if confirmed:
        shown = list(confirmed.items())[:10]
        lines.append("")
        lines.append(
            render_table(
                ["observer", "confirmed Sybil identities"],
                [(obs_id, ", ".join(ids)) for obs_id, ids in shown],
                title=f"confirmed Sybil clusters "
                f"(first {len(shown)} of {len(confirmed)})",
            )
        )
    if lineage is not None and args.lineage_out:
        dump_path = lineage.dump_jsonl(args.lineage_out)
        lines.append("")
        lines.append(
            f"[{lineage.stats()['retained']} trace(s) -> {dump_path}; "
            f"inspect with 'trace {dump_path}']"
        )
    return "\n".join(lines)


def _cmd_trace(args: argparse.Namespace) -> str:
    # Lazy import: trace reads a finished dump; nothing else needs the
    # forensics renderer.
    from .obs.traceview import run_trace

    try:
        return run_trace(
            args.dump,
            slowest=args.slowest,
            flagged=args.flagged,
            near_misses=args.near_misses,
            follow=args.follow,
            export=args.export,
            audit_path=args.audit,
        )
    except (ValueError, OSError, RuntimeError) as error:
        raise SystemExit(str(error))


_HANDLERS: Dict[str, Callable[[argparse.Namespace], str]] = {
    "list": _cmd_list,
    "table1": _cmd_table1,
    "fig5": _cmd_fig5,
    "table4": _cmd_table4,
    "fig6-7": _cmd_fig6_7,
    "fig9": _cmd_fig9,
    "fig10": _cmd_fig10,
    "fig11a": lambda args: _fig11(args, model_change=False),
    "fig11b": lambda args: _fig11(args, model_change=True),
    "fig13": _cmd_fig13,
    "fig14": _cmd_fig14,
    "timing": _cmd_timing,
    "ablations": _cmd_ablations,
    "explain": _cmd_explain,
    "trace": _cmd_trace,
    "watch": _cmd_watch,
    "serve": _cmd_serve,
}


def _metrics_summary(registry: "obs.MetricsRegistry") -> str:
    """Compact end-of-run rendering of everything the run recorded."""
    snapshot = registry.to_dict()
    rows = []
    for name, value in snapshot["counters"].items():
        rows.append((name, "counter", f"{value:g}"))
    for name, value in snapshot["gauges"].items():
        rendered = "-" if value is None else f"{value:g}"
        rows.append((name, "gauge", rendered))
    for name, summary in snapshot["histograms"].items():
        if summary["count"]:
            rendered = (
                f"n={summary['count']} p50={summary['p50']:.3g} "
                f"p95={summary['p95']:.3g} max={summary['max']:.3g}"
            )
        else:
            rendered = "n=0"
        rows.append((name, "histogram", rendered))
    if not rows:
        return "metrics summary: (nothing recorded)"
    return render_table(["metric", "kind", "value"], rows, title="metrics summary")


def _health_summary(monitor: "obs.HealthMonitor") -> str:
    """End-of-run health line(s): verdict plus any alerts fired."""
    status = monitor.status()
    if status["status"] == "ok":
        return f"health: ok ({status['reports']} reports, 0 alerts)"
    lines = [
        f"health: ALERT ({status['reports']} reports, "
        f"{monitor.alerts_total} alert(s))"
    ]
    for alert in status["alerts"]:
        lines.append(
            f"  [{alert['kind']}] t={alert['t']:g} {alert['message']}"
        )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = _HANDLERS[args.command]

    # Any watchtower flag arms the full trajectory stack: TSDB + drift
    # detection + SLOs, fed by a snapshotter (1s unless --snapshot-
    # interval says otherwise) and the streaming health monitor.
    watch_on = bool(args.watch_record or args.report_out or args.slo)
    telemetry_on = (
        args.telemetry_port is not None
        or args.snapshot_interval is not None
        or watch_on
    )
    # Any profile flag switches profiling on; --profile alone uses the
    # defaults (99 Hz, profile.collapsed, no memory tracing).
    profiling_on = bool(
        args.profile
        or args.profile_hz is not None
        or args.profile_out is not None
        or args.profile_memory
    )
    # Open both output files up front so a bad path fails before the
    # (potentially long) run instead of after it.
    metrics_file = (
        open(args.metrics_out, "w", encoding="utf-8")
        if args.metrics_out
        else None
    )
    registry = obs.default_registry()
    if telemetry_on:
        # Long live runs must not leak raw histogram samples: cap
        # reservoirs for every histogram created from here on.
        registry.histogram_max_samples = 65536

    # The health monitor is armed by --health-thresholds, and also
    # (with permissive default limits) whenever something consumes its
    # status: the /health endpoint or the flight recorder's triggers.
    monitor: Optional[HealthMonitor] = None
    if (
        args.health_thresholds is not None
        or args.telemetry_port is not None
        or args.flight_recorder_out
        or watch_on
    ):
        monitor = HealthMonitor(
            args.health_thresholds or HealthThresholds(),
            registry=registry,
            # Clock-source contract (see HealthMonitor): simulations
            # and replays measure silence in event time, the live
            # service in wall time.
            clock="wall" if args.command == "serve" else "event",
        )
    previous_monitor = obs.set_default_monitor(monitor) if monitor else None

    tsdb: Optional[obs.TimeSeriesDB] = None
    drift: Optional[obs.DriftMonitor] = None
    if watch_on:
        tsdb = obs.TimeSeriesDB()
        drift = obs.DriftMonitor(
            registry=registry, health=monitor, slos=args.slo
        )

    recorder: Optional[obs.FlightRecorder] = None
    previous_recorder: Optional[obs.FlightRecorder] = None
    if args.flight_recorder_out:
        recorder = obs.FlightRecorder(
            args.flight_recorder_out, tracer=obs.default_tracer()
        )
        recorder.install_log_capture()
        recorder.install_excepthook()
        assert monitor is not None
        monitor.attach_recorder(recorder)
        # Publish as the process default so the serve layer's shed
        # path (DetectionService.submit) can record dropped beacons.
        previous_recorder = obs.set_default_recorder(recorder)

    # Span destinations: the JSONL stream (--trace-out), the per-phase
    # latency histograms (telemetry), and the flight-recorder ring.
    exporters = []
    if args.trace_out:
        exporters.append(obs.JsonlSpanExporter(args.trace_out))
    if telemetry_on:
        exporters.append(obs.SpanLatencyRecorder(registry=registry))
    if recorder is not None:
        exporters.append(recorder)
    trace_exporter = None
    if len(exporters) == 1:
        trace_exporter = exporters[0]
    elif exporters:
        trace_exporter = obs.TeeSpanExporter(*exporters)
    obs.configure(
        log_level=args.log_level,
        metrics=bool(args.metrics_out)
        or telemetry_on
        or monitor is not None
        or profiling_on,
        trace_exporter=trace_exporter,
    )
    # The profiler needs open spans for attribution; start_profiler
    # enables the global tracer itself if no trace flag already did
    # (spans then nest and time without being exported anywhere).
    profiler: Optional[obs.SamplingProfiler] = None
    if profiling_on:
        profiler = obs.start_profiler(
            hz=args.profile_hz if args.profile_hz is not None else 99.0,
            memory=bool(args.profile_memory),
        )
    previous_defaults = set_engine_defaults(
        engine=None if args.pairwise is None else args.pairwise == "engine",
        pruning=(
            None if args.pairwise_pruning is None else args.pairwise_pruning == "on"
        ),
        incremental=(
            None
            if args.pairwise_incremental is None
            else args.pairwise_incremental == "on"
        ),
        cache_size=args.pairwise_cache,
        workers=args.pairwise_workers,
    )
    previous_parallel = set_parallel_defaults(
        workers=args.workers, task_timeout=args.task_timeout
    )
    previous_epsilon: Optional[float] = None
    if args.margin_epsilon is not None:
        previous_epsilon = obs.set_near_miss_epsilon(args.margin_epsilon)
    audit_log: Optional[obs.AuditLog] = None
    if args.audit_out:
        audit_log = obs.start_audit(out=args.audit_out)
    server: Optional[obs.TelemetryServer] = None
    snapshotter: Optional[obs.Snapshotter] = None
    try:
        if args.telemetry_port is not None:
            server = obs.TelemetryServer(
                registry=registry,
                health=monitor,
                tsdb=tsdb,
                port=args.telemetry_port,
            ).start()
            print(f"[telemetry: {server.url}/metrics]")
        snapshot_out: Optional[str] = None
        if args.snapshot_interval is not None or watch_on:
            # --watch-record wants the trajectory but not necessarily
            # the JSONL stream; only the explicit snapshot flags write
            # one.
            if args.snapshot_interval is not None or args.snapshot_out:
                snapshot_out = args.snapshot_out or "snapshots.jsonl"
            snapshotter = obs.Snapshotter(
                registry=registry,
                interval_s=(
                    args.snapshot_interval
                    if args.snapshot_interval is not None
                    else 1.0
                ),
                out=snapshot_out,
                health=monitor,
                tsdb=tsdb,
                drift=drift,
            ).start()
        start = time.perf_counter()
        output = handler(args)
        elapsed = time.perf_counter() - start
        print(output)
        if profiler is not None:
            # Stop sampling before rendering so the report itself is
            # not billed to the run, and publish the gauges before the
            # metrics summary/JSONL so pipeline.profile.* shows there.
            obs.stop_profiler()
            profiler.publish_gauges()
            out_path = obs.indexed_path(args.profile_out or "profile.collapsed")
            n_stacks = profiler.write_collapsed(out_path)
            print()
            print(profiler.phase_table())
            print()
            print(profiler.hotspot_table())
            print(f"[{n_stacks} stacks -> {out_path}]")
            if args.profile_memory:
                mem_path = obs.indexed_path(
                    f"{args.profile_out}.memory.jsonl"
                    if args.profile_out
                    else "profile.memory.jsonl"
                )
                n_phases = profiler.write_memory_jsonl(mem_path)
                print(f"[{n_phases} phase memory records -> {mem_path}]")
        if metrics_file is not None:
            print()
            print(_metrics_summary(registry))
            n_records = registry.write_jsonl(metrics_file)
            print(f"[{n_records} metric records -> {args.metrics_out}]")
        if monitor is not None:
            print()
            print(_health_summary(monitor))
            if recorder is not None and recorder.dumps_written:
                print(
                    f"[{recorder.dumps_written} post-mortem bundle(s) -> "
                    f"{args.flight_recorder_out}]"
                )
        if snapshotter is not None:
            snapshotter.close()
            snapshotter = None
            if snapshot_out is not None:
                print(f"[snapshots -> {snapshot_out}]")
        if args.watch_record and tsdb is not None:
            dump_path = obs.indexed_path(args.watch_record)
            n_series = tsdb.dump_jsonl(dump_path)
            print(
                f"[{n_series} series ({tsdb.samples} samples) -> "
                f"{dump_path}; view with 'watch {dump_path}']"
            )
        if drift is not None and drift.alerts:
            print(
                f"[drift/SLO: {len(drift.alerts)} alert(s) — "
                f"{sum(1 for a in drift.alerts if a['kind'] == 'metric_drift')} "
                f"drift, "
                f"{sum(1 for a in drift.alerts if a['kind'] == 'slo_burn')} "
                "burn]"
            )
        if args.report_out:
            from .obs.report import write_report

            report_path = write_report(
                args.report_out,
                tsdb=tsdb,
                health=monitor,
                drift=drift,
                profiler=profiler,
                audit_bundles=(
                    audit_log.bundles if audit_log is not None else None
                ),
                history_path="benchmarks/history/BENCH_history.jsonl",
                title=f"repro {args.command} run report",
            )
            print(f"[run report -> {report_path}]")
        if args.trace_out:
            print(f"[spans -> {args.trace_out}]")
        if audit_log is not None:
            destination = audit_log.path or args.audit_out
            print(
                f"[{audit_log.detections} detection bundle(s) "
                f"({audit_log.pairs_recorded} pair records) -> "
                f"{destination}]"
            )
        if elapsed > 1.0:
            print(f"\n[{elapsed:.1f}s]")
    finally:
        if audit_log is not None:
            obs.stop_audit()
        if previous_epsilon is not None:
            obs.set_near_miss_epsilon(previous_epsilon)
        obs.stop_profiler()  # no-op when already stopped above
        if snapshotter is not None:
            snapshotter.close()
        if server is not None:
            server.stop()
        if recorder is not None:
            obs.set_default_recorder(previous_recorder)
            recorder.close()
        if monitor is not None:
            obs.set_default_monitor(previous_monitor)
        set_engine_defaults(
            engine=previous_defaults.engine,
            pruning=previous_defaults.pruning,
            incremental=previous_defaults.incremental,
            cache_size=previous_defaults.cache_size,
            workers=previous_defaults.workers,
        )
        set_parallel_defaults(
            workers=previous_parallel.workers,
            task_timeout=previous_parallel.task_timeout,
        )
        obs.shutdown()
        if metrics_file is not None:
            metrics_file.close()
        if (
            metrics_file is not None
            or telemetry_on
            or monitor is not None
            or profiling_on
        ):
            registry.reset()
        if telemetry_on:
            registry.histogram_max_samples = None
    return 0


if __name__ == "__main__":
    sys.exit(main())
