"""Decision-boundary persistence.

Training the ``(k, b)`` line takes minutes of simulation (or, in the
paper's setting, NS-2 runs); the deployed detector only needs the two
numbers.  These helpers serialise a trained boundary, together with
enough provenance to know what it was trained on, as JSON.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Union

from ..core.lda import DecisionLine

__all__ = ["BoundaryRecord", "save_boundary", "load_boundary"]

PathLike = Union[str, Path]

#: Format marker; bump on incompatible change.
FORMAT = "voiceprint-boundary/1"


@dataclass(frozen=True)
class BoundaryRecord:
    """A trained decision line plus its training provenance.

    Attributes:
        line: The threshold line.
        trained_on: Free-form provenance (densities, seeds, channel...).
    """

    line: DecisionLine
    trained_on: Dict[str, object] = field(default_factory=dict)


def save_boundary(
    record: BoundaryRecord,
    target: PathLike,
) -> None:
    """Write a boundary record as JSON."""
    payload = {
        "format": FORMAT,
        "k": record.line.k,
        "b": record.line.b,
        "trained_on": record.trained_on,
    }
    Path(target).write_text(
        json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8"
    )


def load_boundary(source: PathLike) -> BoundaryRecord:
    """Read a boundary record written by :func:`save_boundary`.

    Raises:
        ValueError: On an unknown format marker or missing fields.
    """
    payload = json.loads(Path(source).read_text(encoding="utf-8"))
    if payload.get("format") != FORMAT:
        raise ValueError(
            f"unknown boundary format {payload.get('format')!r}; "
            f"expected {FORMAT!r}"
        )
    try:
        line = DecisionLine(k=float(payload["k"]), b=float(payload["b"]))
    except KeyError as error:
        raise ValueError(f"boundary file missing field: {error}") from error
    return BoundaryRecord(line=line, trained_on=dict(payload.get("trained_on", {})))
