"""Persistence: RSSI trace logs and trained decision boundaries."""

from .boundary import BoundaryRecord, load_boundary, save_boundary
from .traces import (
    load_observations,
    load_trace_csv,
    save_observations,
    save_trace_csv,
)

__all__ = [
    "BoundaryRecord",
    "load_boundary",
    "save_boundary",
    "load_observations",
    "load_trace_csv",
    "save_observations",
    "save_trace_csv",
]
