"""RSSI trace persistence.

Real deployments of Voiceprint log ``(timestamp, identity, RSSI)``
tuples on the OBU (the paper's laptops recorded exactly this over
Ethernet); analysis happens offline.  This module round-trips such logs
in a simple CSV dialect, so recorded drives — synthetic or real — can be
saved, shared, and replayed through the detector:

* :func:`save_observations` / :func:`load_observations` — one
  receiver's ``identity → RSSITimeSeries`` mapping.
* :func:`save_trace_csv` / :func:`load_trace_csv` — a flat beacon log
  (the on-disk format; the observation helpers are wrappers).

The format is deliberately boring: a header line, then
``timestamp,identity,rssi_dbm`` rows, UTF-8, ``#`` comments allowed.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, Iterable, List, TextIO, Tuple, Union

from ..core.timeseries import RSSITimeSeries

__all__ = [
    "save_trace_csv",
    "load_trace_csv",
    "save_observations",
    "load_observations",
]

HEADER = ("timestamp", "identity", "rssi_dbm")

PathLike = Union[str, Path]
Record = Tuple[float, str, float]


def _open_for_write(target: Union[PathLike, TextIO]):
    if hasattr(target, "write"):
        return target, False
    return open(target, "w", newline="", encoding="utf-8"), True


def _open_for_read(source: Union[PathLike, TextIO]):
    if hasattr(source, "read"):
        return source, False
    return open(source, "r", newline="", encoding="utf-8"), True


def save_trace_csv(
    records: Iterable[Record],
    target: Union[PathLike, TextIO],
) -> int:
    """Write ``(timestamp, identity, rssi)`` records as CSV.

    Records are written in the order given (a receiver's log is already
    time-ordered).  Returns the number of rows written.
    """
    handle, owned = _open_for_write(target)
    try:
        writer = csv.writer(handle)
        writer.writerow(HEADER)
        count = 0
        for timestamp, identity, rssi in records:
            writer.writerow([f"{float(timestamp):.6f}", str(identity), f"{float(rssi):.3f}"])
            count += 1
        return count
    finally:
        if owned:
            handle.close()


def load_trace_csv(source: Union[PathLike, TextIO]) -> List[Record]:
    """Read a beacon log written by :func:`save_trace_csv`.

    Raises:
        ValueError: On a missing/incorrect header or malformed row.
    """
    handle, owned = _open_for_read(source)
    try:
        reader = csv.reader(
            line for line in handle if not line.lstrip().startswith("#")
        )
        try:
            header = tuple(next(reader))
        except StopIteration:
            raise ValueError("empty trace file") from None
        if header != HEADER:
            raise ValueError(
                f"unexpected header {header!r}; expected {HEADER!r}"
            )
        records: List[Record] = []
        for row_number, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != 3:
                raise ValueError(f"malformed row {row_number}: {row!r}")
            try:
                records.append((float(row[0]), row[1], float(row[2])))
            except ValueError as error:
                raise ValueError(
                    f"malformed row {row_number}: {row!r}"
                ) from error
        return records
    finally:
        if owned:
            handle.close()


def save_observations(
    observations: Dict[str, RSSITimeSeries],
    target: Union[PathLike, TextIO],
) -> int:
    """Persist one receiver's per-identity series as a flat beacon log.

    Samples from all identities are merged into global time order, the
    shape a real radio log has.
    """
    records: List[Record] = []
    for identity, series in observations.items():
        for sample in series:
            records.append((sample.timestamp, identity, sample.rssi))
    records.sort(key=lambda r: (r[0], r[1]))
    return save_trace_csv(records, target)


def load_observations(
    source: Union[PathLike, TextIO],
) -> Dict[str, RSSITimeSeries]:
    """Rebuild the per-identity series mapping from a beacon log."""
    observations: Dict[str, RSSITimeSeries] = {}
    for timestamp, identity, rssi in load_trace_csv(source):
        series = observations.get(identity)
        if series is None:
            series = RSSITimeSeries(identity)
            observations[identity] = series
        series.append(timestamp, rssi)
    return observations
