"""``python -m repro`` — same entry point as the ``voiceprint-repro``
console script, for checkouts run straight from ``PYTHONPATH=src``."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
