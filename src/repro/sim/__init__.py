"""Simulation substrate: event engine, scenarios, nodes, simulators."""

from .engine import EventHandle, SimulationEngine
from .fieldtest import FieldTestConfig, FieldTestResult, run_field_test
from .nodes import Vehicle
from .observations import (
    moving_pair_measurement,
    ranging_measurement,
    stationary_pair_measurement,
)
from .scenario import ScenarioConfig
from .simulator import GroundTruth, HighwaySimulator, SimulationResult

__all__ = [
    "EventHandle",
    "SimulationEngine",
    "FieldTestConfig",
    "FieldTestResult",
    "run_field_test",
    "Vehicle",
    "moving_pair_measurement",
    "ranging_measurement",
    "stationary_pair_measurement",
    "ScenarioConfig",
    "GroundTruth",
    "HighwaySimulator",
    "SimulationResult",
]
