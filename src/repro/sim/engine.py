"""A small discrete-event simulation engine.

The simulator's moving parts — beacon intervals, propagation-model
changes, density-estimation periods, detection periods — are all timed
events; this engine provides the event loop they hang off: a heap-backed
queue of ``(time, sequence, callback)`` entries with support for
one-shot and periodic events and deterministic FIFO ordering of
simultaneous events.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..obs.metrics import MetricsRegistry, default_registry

__all__ = ["EventHandle", "SimulationEngine"]

Callback = Callable[[float], None]


@dataclass
class EventHandle:
    """Cancellation token for a scheduled event.

    Attributes:
        cancelled: True once :meth:`cancel` has been called; cancelled
            events are skipped (and periodic ones stop re-arming).
    """

    cancelled: bool = False

    def cancel(self) -> None:
        """Prevent this event (and its future repetitions) from firing."""
        self.cancelled = True


class SimulationEngine:
    """Heap-based discrete-event loop.

    Events scheduled at equal times fire in scheduling order.  Callbacks
    receive the current simulation time and may schedule further events.

    Example:
        >>> engine = SimulationEngine()
        >>> fired = []
        >>> _ = engine.schedule_at(1.0, lambda t: fired.append(t))
        >>> engine.run_until(2.0)
        >>> fired
        [1.0]
    """

    def __init__(
        self,
        start_time: float = 0.0,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self._now = float(start_time)
        self._queue: List[Tuple[float, int, EventHandle, Callback]] = []
        self._sequence = itertools.count()
        metrics = registry if registry is not None else default_registry()
        self._c_dispatched = metrics.counter("sim.events_dispatched")
        # Live telemetry of the event loop: where the simulated clock
        # is and how deep the queue runs — the two numbers that tell a
        # /metrics scraper whether a long simulation is advancing or
        # wedged behind a runaway periodic event.
        self._g_clock = metrics.gauge("sim.clock_s")
        self._g_pending = metrics.gauge("sim.pending_events")

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of queued (possibly cancelled) events."""
        return len(self._queue)

    def schedule_at(self, when: float, callback: Callback) -> EventHandle:
        """Schedule a one-shot event at an absolute time.

        Raises:
            ValueError: If ``when`` precedes the current time.
        """
        if not math.isfinite(when):
            raise ValueError(f"event time must be finite, got {when!r}")
        if when < self._now:
            raise ValueError(
                f"cannot schedule in the past ({when} < now {self._now})"
            )
        handle = EventHandle()
        heapq.heappush(self._queue, (when, next(self._sequence), handle, callback))
        return handle

    def schedule_after(self, delay: float, callback: Callback) -> EventHandle:
        """Schedule a one-shot event ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self._now + delay, callback)

    def schedule_periodic(
        self,
        period: float,
        callback: Callback,
        first_at: Optional[float] = None,
    ) -> EventHandle:
        """Schedule a repeating event every ``period`` seconds.

        The returned handle cancels all future firings.  The callback
        runs first at ``first_at`` (default: one period from now).
        """
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        handle = EventHandle()
        start = self._now + period if first_at is None else first_at
        if start < self._now:
            raise ValueError(
                f"cannot schedule in the past ({start} < now {self._now})"
            )

        def fire(t: float) -> None:
            if handle.cancelled:
                return
            callback(t)
            if not handle.cancelled:
                heapq.heappush(
                    self._queue,
                    (t + period, next(self._sequence), handle, fire),
                )

        heapq.heappush(self._queue, (start, next(self._sequence), handle, fire))
        return handle

    def step(self) -> bool:
        """Run the next pending event; returns False if none remain."""
        while self._queue:
            when, _, handle, callback = heapq.heappop(self._queue)
            if handle.cancelled:
                continue
            self._now = when
            self._c_dispatched.inc()
            self._g_clock.set(when)
            self._g_pending.set(len(self._queue))
            callback(when)
            return True
        return False

    def run_until(self, end_time: float) -> None:
        """Run all events with time <= ``end_time``; clock ends there.

        Periodic events that would fire after ``end_time`` stay queued,
        so the engine can be resumed with a later ``run_until``.
        """
        if end_time < self._now:
            raise ValueError(
                f"end time {end_time} precedes current time {self._now}"
            )
        while self._queue:
            when, _, handle, _cb = self._queue[0]
            if when > end_time:
                break
            if handle.cancelled:
                heapq.heappop(self._queue)
                continue
            self.step()
        self._now = end_time

    def run(self) -> None:
        """Run until the queue drains (beware of periodic events)."""
        while self.step():
            pass
