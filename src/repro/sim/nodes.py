"""Simulated vehicles: normal nodes and malicious (Sybil) nodes.

A :class:`Vehicle` ties together a physical trajectory, a radio profile
and — for attackers — a :class:`~repro.attack.sybil.SybilAttacker` plan.
Its job each beacon interval is to emit the
:class:`~repro.net.mac.TransmissionRequest` list for every identity it
broadcasts under: one for a normal node, ``1 + n_sybils`` for an
attacker, all transmitted from the *same* antenna at the *same* true
position (Assumption 2) — the physical constraint Voiceprint exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..attack.sybil import SybilAttacker
from ..mobility.trace import PiecewiseLinearTrajectory
from ..net.mac import TransmissionRequest
from ..net.messages import Beacon
from ..net.radio import RadioProfile

__all__ = ["Vehicle"]

Point = Tuple[float, float]


@dataclass
class Vehicle:
    """One physical vehicle in the simulation.

    Attributes:
        node_id: The vehicle's legitimate identity.
        trajectory: Its true motion.
        profile: Radio hardware (TX power here is the vehicle's own
            beacons' power; Sybil identities carry per-identity powers).
        attacker: The Sybil plan, or ``None`` for a normal node.
    """

    node_id: str
    trajectory: PiecewiseLinearTrajectory
    profile: RadioProfile
    attacker: Optional[SybilAttacker] = None
    _sequence: int = field(default=0, repr=False)

    @property
    def is_malicious(self) -> bool:
        """Whether this vehicle fabricates Sybil identities."""
        return self.attacker is not None

    @property
    def identities(self) -> Tuple[str, ...]:
        """Every identity this radio broadcasts under."""
        if self.attacker is None:
            return (self.node_id,)
        return self.attacker.all_ids

    def position(self, t: float) -> Point:
        """True position at time ``t``."""
        return self.trajectory.position(t)

    def beacon_requests(
        self,
        t: float,
        interval_s: float,
        rng: np.random.Generator,
    ) -> List[TransmissionRequest]:
        """Build this interval's transmission requests.

        Each identity gets one beacon with an independent random desired
        offset inside the interval (the application-layer jitter real
        DSRC stacks add to avoid synchronised beacons).  The malicious
        node sends ``10n`` packets per second for ``n`` identities, as
        the paper prescribes — all from its true position.

        Args:
            t: Interval start time.
            interval_s: Beacon interval length (0.1 s at 10 Hz).
            rng: Random generator for offsets and power policies.
        """
        true_xy = self.position(t)
        speed = self.trajectory.speed(t)
        heading = self.trajectory.heading(t)
        requests: List[TransmissionRequest] = []

        def make(identity: str, claimed: Point, eirp: float) -> TransmissionRequest:
            beacon = Beacon(
                identity=identity,
                timestamp=t,
                claimed_position=claimed,
                speed=speed,
                heading=heading,
                sequence=self._sequence,
            )
            return TransmissionRequest(
                beacon=beacon,
                tx_node=self.node_id,
                tx_xy=true_xy,
                eirp_dbm=eirp,
                desired_offset_s=float(rng.uniform(0.0, interval_s)),
            )

        if self.attacker is None:
            requests.append(make(self.node_id, true_xy, self.profile.tx_power_dbm))
        else:
            own_power = self.attacker.own_power.power_dbm(t, rng)
            requests.append(make(self.node_id, true_xy, own_power))
            for sybil in self.attacker.identities:
                requests.append(
                    make(
                        sybil.identity,
                        sybil.claimed_position(true_xy),
                        sybil.power.power_dbm(t, rng),
                    )
                )
        self._sequence += 1
        return requests
