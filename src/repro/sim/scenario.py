"""Scenario configuration (paper Table V defaults).

One :class:`ScenarioConfig` captures everything needed to reproduce an
individual highway simulation run: road geometry, traffic density,
attacker population, radio/MAC parameters, mobility parameters, and the
detection cadence.  Defaults follow Table V; experiments override the
fields they sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

__all__ = ["ScenarioConfig"]


@dataclass(frozen=True)
class ScenarioConfig:
    """Parameters of one highway simulation run (Table V defaults).

    Attributes:
        highway_length_m: Road length (2 km).
        lanes_per_direction: Lanes each way (Table V: 4 lanes total).
        lane_width_m: Lane width (3.6 m).
        density_vhls_per_km: Traffic density; Table V sweeps 10–100.
        malicious_fraction: Share of vehicles that are attackers (5 %).
        n_sybils_range: Sybil identities per attacker (3–6).
        tx_power_range_dbm: Initial TX powers (17–23 dBm, then constant).
        beacon_rate_hz: CCH beacon cadence (10 Hz).
        packet_size_bytes: Beacon size (500 B).
        data_rate_bps: PHY rate (3 Mbps).
        slot_time_s: MAC slot (13 µs).
        sifs_s: SIFS (32 µs).
        epoch_rate: Mobility epoch rate λe (0.2 s⁻¹).
        mean_speed_mps: Mean epoch speed µv (25 m/s).
        speed_std_mps: Epoch speed deviation σv (5 m/s).
        observation_time_s: Voiceprint observation window (20 s).
        detection_period_s: Time between detections (20 s).
        density_estimate_period_s: Density estimation period (10 s).
        model_change_period_s: Propagation-parameter change period
            (30 s); only applied when ``model_change_enabled``.
        model_change_enabled: Fig. 11b's switch.
        sim_time_s: Total simulated time (100 s).
        environment: Propagation environment preset label.
        smart_power_attackers: Give attackers the future-work power-
            control strategy (ablations).
        seed: Master RNG seed for the run.
    """

    highway_length_m: float = 2000.0
    lanes_per_direction: int = 2
    lane_width_m: float = 3.6
    density_vhls_per_km: float = 50.0
    malicious_fraction: float = 0.05
    n_sybils_range: Tuple[int, int] = (3, 6)
    tx_power_range_dbm: Tuple[float, float] = (17.0, 23.0)
    beacon_rate_hz: float = 10.0
    packet_size_bytes: int = 500
    data_rate_bps: float = 3e6
    slot_time_s: float = 13e-6
    sifs_s: float = 32e-6
    epoch_rate: float = 0.2
    mean_speed_mps: float = 25.0
    speed_std_mps: float = 5.0
    observation_time_s: float = 20.0
    detection_period_s: float = 20.0
    density_estimate_period_s: float = 10.0
    model_change_period_s: float = 30.0
    model_change_enabled: bool = False
    sim_time_s: float = 100.0
    environment: str = "highway"
    smart_power_attackers: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.highway_length_m <= 0:
            raise ValueError(f"highway length must be positive, got {self.highway_length_m}")
        if self.density_vhls_per_km <= 0:
            raise ValueError(f"density must be positive, got {self.density_vhls_per_km}")
        if not 0.0 <= self.malicious_fraction <= 1.0:
            raise ValueError(
                f"malicious fraction must be in [0, 1], got {self.malicious_fraction}"
            )
        lo, hi = self.n_sybils_range
        if not 1 <= lo <= hi:
            raise ValueError(f"bad Sybil count range: {self.n_sybils_range}")
        plo, phi = self.tx_power_range_dbm
        if phi < plo:
            raise ValueError(f"bad TX power range: {self.tx_power_range_dbm}")
        if self.beacon_rate_hz <= 0:
            raise ValueError(f"beacon rate must be positive, got {self.beacon_rate_hz}")
        if self.sim_time_s <= 0:
            raise ValueError(f"sim time must be positive, got {self.sim_time_s}")
        if self.observation_time_s <= 0 or self.detection_period_s <= 0:
            raise ValueError("observation/detection periods must be positive")
        if self.sim_time_s < self.observation_time_s:
            raise ValueError(
                "simulation shorter than one observation window "
                f"({self.sim_time_s} < {self.observation_time_s})"
            )

    @property
    def n_vehicles(self) -> int:
        """Total vehicle count implied by density and road length."""
        return max(2, round(self.density_vhls_per_km * self.highway_length_m / 1000.0))

    @property
    def n_malicious(self) -> int:
        """Attacker count (at least one whenever the fraction is > 0)."""
        if self.malicious_fraction == 0:
            return 0
        return max(1, round(self.n_vehicles * self.malicious_fraction))

    @property
    def beacon_interval_s(self) -> float:
        """Seconds between beacons of one identity."""
        return 1.0 / self.beacon_rate_hz

    def with_density(self, density_vhls_per_km: float) -> "ScenarioConfig":
        """A copy at a different traffic density (sweep helper)."""
        return replace(self, density_vhls_per_km=density_vhls_per_km)

    def with_seed(self, seed: int) -> "ScenarioConfig":
        """A copy with a different RNG seed (repetition helper)."""
        return replace(self, seed=seed)
