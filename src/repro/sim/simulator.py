"""The highway VANET simulator (paper Section V-A).

:class:`HighwaySimulator` assembles the substrates — highway geometry,
epoch mobility, CSMA/CA MAC, dual-slope channel with correlated
shadowing, Sybil attackers — under the discrete-event engine and runs
one Table V scenario.  Its output, :class:`SimulationResult`, contains
per-receiver per-identity RSSI time series (the only input Voiceprint
consumes), ground-truth identity labels, true trajectories, claimed
positions, and channel statistics.

Recording is restricted to a configurable subset of *recorded* normal
nodes.  Receivers do not influence the channel (interference comes from
transmitters), so skipping bookkeeping for unrecorded vehicles changes
nothing physically while keeping the densest sweeps in memory budget;
the paper's averages over all nodes become averages over a sampled
verifier set.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field as dataclass_field
from typing import Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from ..obs.logging import get_logger
from ..obs.metrics import default_registry
from ..obs.trace import default_tracer
from ..attack.sybil import SybilAttacker
from ..core.timeseries import RSSITimeSeries
from ..mobility.epoch_model import EpochMobilityModel, generate_highway_trajectory
from ..mobility.highway import HighwayGeometry, LanePosition
from ..net.channel import ReceiverState, VANETChannel
from ..net.mac import CellularCsmaMac, TransmissionRequest
from ..net.radio import RadioProfile
from ..radio.dual_slope import DualSlopeModel, DualSlopeParameters
from ..radio.environments import environment
from ..radio.noise import SpatialNoiseField
from .engine import SimulationEngine
from .nodes import Vehicle
from .scenario import ScenarioConfig

__all__ = ["GroundTruth", "SimulationResult", "HighwaySimulator"]

Point = Tuple[float, float]

_log = get_logger("sim.simulator")


@dataclass(frozen=True)
class GroundTruth:
    """Who is really who in a finished run.

    Attributes:
        normal_ids: Identities of legitimate vehicles.
        malicious_ids: Physical attackers' own identities.
        sybil_to_attacker: Fabricated identity → its attacker's id.
    """

    normal_ids: FrozenSet[str]
    malicious_ids: FrozenSet[str]
    sybil_to_attacker: Dict[str, str]

    @property
    def sybil_ids(self) -> FrozenSet[str]:
        """All fabricated identities."""
        return frozenset(self.sybil_to_attacker)

    @property
    def illegitimate_ids(self) -> FrozenSet[str]:
        """Malicious plus Sybil identities — what a detector should flag."""
        return self.malicious_ids | self.sybil_ids

    def is_legitimate(self, identity: str) -> bool:
        """Whether an identity belongs to a real, honest vehicle."""
        return identity in self.normal_ids

    def attacker_of(self, identity: str) -> Optional[str]:
        """The physical radio behind an identity (None for normal ids)."""
        if identity in self.malicious_ids:
            return identity
        return self.sybil_to_attacker.get(identity)


@dataclass
class SimulationResult:
    """Everything a detector or experiment needs from one run.

    Attributes:
        config: The scenario that produced this result.
        observations: ``receiver → identity → RSSI time series``; only
            recorded receivers appear.
        truth: Ground-truth identity labels.
        vehicles: All physical vehicles (trajectories included).
        recorded_nodes: The verifier subset whose observations exist.
        max_range_m: Mean-RSSI range at the sensitivity floor, used for
            Eq. 9 density estimates.
        transmitted: Total beacons put on the air.
        dropped: Beacons lost to CCH saturation before transmission.
        delivered: Successful receptions at recorded receivers.
        model_timeline: ``(time, parameters)`` of every model in effect.
    """

    config: ScenarioConfig
    observations: Dict[str, Dict[str, RSSITimeSeries]]
    truth: GroundTruth
    vehicles: Dict[str, Vehicle]
    recorded_nodes: Tuple[str, ...]
    max_range_m: float
    transmitted: int = 0
    dropped: int = 0
    delivered: int = 0
    model_timeline: List[Tuple[float, DualSlopeParameters]] = dataclass_field(
        default_factory=list
    )

    def claimed_position(self, identity: str, t: float) -> Point:
        """The position an identity claims at time ``t``.

        Normal and malicious identities claim their true position;
        Sybil identities claim the attacker's position plus their
        constant fabricated offset.
        """
        attacker_id = self.truth.sybil_to_attacker.get(identity)
        if attacker_id is None:
            vehicle = self.vehicles.get(identity)
            if vehicle is None:
                raise KeyError(f"unknown identity {identity!r}")
            return vehicle.position(t)
        attacker = self.vehicles[attacker_id]
        assert attacker.attacker is not None
        for sybil in attacker.attacker.identities:
            if sybil.identity == identity:
                return sybil.claimed_position(attacker.position(t))
        raise KeyError(f"identity {identity!r} not found on its attacker")

    def true_position(self, identity: str, t: float) -> Point:
        """Where the radio behind an identity actually is at ``t``."""
        attacker_id = self.truth.attacker_of(identity)
        node = attacker_id if attacker_id is not None else identity
        vehicle = self.vehicles.get(node)
        if vehicle is None:
            raise KeyError(f"unknown identity {identity!r}")
        return vehicle.position(t)

    def series_at(self, receiver: str) -> Dict[str, RSSITimeSeries]:
        """All series one recorded receiver collected."""
        if receiver not in self.observations:
            raise KeyError(
                f"{receiver!r} was not a recorded node "
                f"(recorded: {self.recorded_nodes})"
            )
        return self.observations[receiver]

    @property
    def loss_rate(self) -> float:
        """Fraction of beacons dropped before transmission (saturation)."""
        total = self.transmitted + self.dropped
        return self.dropped / total if total else 0.0


class HighwaySimulator:
    """One Table V highway scenario, end to end.

    Args:
        config: Scenario parameters.
        recorded_nodes: How many normal vehicles record observations
            (None → all normal vehicles).  Recording does not influence
            the channel, only memory use.

    Example:
        >>> sim = HighwaySimulator(ScenarioConfig(density_vhls_per_km=20,
        ...                                       sim_time_s=25.0), recorded_nodes=4)
        >>> result = sim.run()
        >>> sorted(result.observations) == sorted(result.recorded_nodes)
        True
    """

    #: Parameter ranges used when Fig. 11b re-randomises the model;
    #: they span Table IV's fitted spread.
    MODEL_CHANGE_RANGES = {
        "critical_distance_m": (100.0, 250.0),
        "gamma1": (1.6, 2.6),
        "gamma2": (5.3, 6.4),
        "sigma1_db": (2.5, 4.0),
        "sigma2_db": (3.0, 5.2),
    }

    def __init__(
        self,
        config: ScenarioConfig,
        recorded_nodes: Optional[int] = None,
    ) -> None:
        self.config = config
        self._recorded_count = recorded_nodes
        self._rng = np.random.default_rng(config.seed)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _build_vehicles(
        self, geometry: HighwayGeometry
    ) -> Tuple[Dict[str, Vehicle], GroundTruth]:
        config = self.config
        mobility = EpochMobilityModel(
            epoch_rate=config.epoch_rate,
            mean_speed=config.mean_speed_mps,
            speed_std=config.speed_std_mps,
        )
        n = config.n_vehicles
        malicious_indices = set(
            self._rng.choice(n, size=config.n_malicious, replace=False).tolist()
        )
        vehicles: Dict[str, Vehicle] = {}
        normal_ids = set()
        malicious_ids = set()
        sybil_to_attacker: Dict[str, str] = {}
        for index in range(n):
            node_id = f"v{index:03d}"
            start = LanePosition(
                x=float(self._rng.uniform(0.0, geometry.length_m)),
                lane=int(self._rng.integers(0, geometry.total_lanes)),
            )
            trajectory = generate_highway_trajectory(
                geometry,
                start,
                duration_s=config.sim_time_s,
                rng=self._rng,
                model=mobility,
            )
            profile = RadioProfile(
                tx_power_dbm=float(self._rng.uniform(*config.tx_power_range_dbm)),
                antenna_gain_dbi=0.0,
                data_rate_bps=config.data_rate_bps,
                slot_time_s=config.slot_time_s,
                sifs_s=config.sifs_s,
            )
            attacker: Optional[SybilAttacker] = None
            if index in malicious_indices:
                attacker = SybilAttacker.generate(
                    node_id,
                    self._rng,
                    n_sybils_range=config.n_sybils_range,
                    power_range_dbm=config.tx_power_range_dbm,
                    smart_power=config.smart_power_attackers,
                )
                malicious_ids.add(node_id)
                for sybil in attacker.identities:
                    sybil_to_attacker[sybil.identity] = node_id
            else:
                normal_ids.add(node_id)
            vehicles[node_id] = Vehicle(
                node_id=node_id,
                trajectory=trajectory,
                profile=profile,
                attacker=attacker,
            )
        truth = GroundTruth(
            normal_ids=frozenset(normal_ids),
            malicious_ids=frozenset(malicious_ids),
            sybil_to_attacker=sybil_to_attacker,
        )
        return vehicles, truth

    def _random_model(self) -> DualSlopeModel:
        """A re-randomised dual-slope model (Fig. 11b's change event)."""
        ranges = self.MODEL_CHANGE_RANGES
        params = DualSlopeParameters(
            critical_distance_m=float(
                self._rng.uniform(*ranges["critical_distance_m"])
            ),
            gamma1=float(self._rng.uniform(*ranges["gamma1"])),
            gamma2=float(self._rng.uniform(*ranges["gamma2"])),
            sigma1_db=float(self._rng.uniform(*ranges["sigma1_db"])),
            sigma2_db=float(self._rng.uniform(*ranges["sigma2_db"])),
            name="randomised",
        )
        return DualSlopeModel(params)

    # ------------------------------------------------------------------
    # Main run
    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Simulate the configured scenario and return its result."""
        wall_start = time.perf_counter()
        config = self.config
        geometry = HighwayGeometry(
            length_m=config.highway_length_m,
            lanes_per_direction=config.lanes_per_direction,
            lane_width_m=config.lane_width_m,
        )
        vehicles, truth = self._build_vehicles(geometry)

        base_model = DualSlopeModel(environment(config.environment))
        shadowing = SpatialNoiseField(
            seed=int(self._rng.integers(0, 2**62)),
            correlation_distance_m=20.0,
            correlation_time_s=5.0,
        )
        channel = VANETChannel(
            model=base_model,
            shadowing=shadowing,
            rng=self._rng,
        )
        # Working range at the sensitivity floor for a typical beacon —
        # Eq. 9's Dist_max.  Carrier sense uses the (higher) energy-
        # detect threshold, giving the shorter deferral range real
        # 802.11p radios have; sensing out to the full decode range
        # would serialise the whole road and starve the CCH.
        typical_eirp = sum(config.tx_power_range_dbm) / 2.0
        max_range = channel.max_range_m(
            eirp_dbm=typical_eirp, rx_gain_dbi=0.0, floor_dbm=-95.0
        )
        cs_range = channel.max_range_m(
            eirp_dbm=typical_eirp, rx_gain_dbi=0.0, floor_dbm=-82.0
        )
        mac = CellularCsmaMac(
            profile=RadioProfile(
                antenna_gain_dbi=0.0,
                data_rate_bps=config.data_rate_bps,
                slot_time_s=config.slot_time_s,
                sifs_s=config.sifs_s,
            ),
            carrier_sense_range_m=cs_range,
            rng=self._rng,
        )

        normal_nodes = sorted(truth.normal_ids)
        if self._recorded_count is None or self._recorded_count >= len(normal_nodes):
            recorded = tuple(normal_nodes)
        else:
            picked = self._rng.choice(
                len(normal_nodes), size=self._recorded_count, replace=False
            )
            recorded = tuple(normal_nodes[i] for i in sorted(picked.tolist()))

        result = SimulationResult(
            config=config,
            observations={node: {} for node in recorded},
            truth=truth,
            vehicles=vehicles,
            recorded_nodes=recorded,
            max_range_m=max_range,
        )
        result.model_timeline.append((0.0, base_model.params))

        engine = SimulationEngine()
        interval = config.beacon_interval_s

        def beacon_interval(t: float) -> None:
            requests: List[TransmissionRequest] = []
            for vehicle in vehicles.values():
                requests.extend(vehicle.beacon_requests(t, interval, self._rng))
            scheduled, dropped = mac.schedule_interval(requests, t, t + interval)
            result.transmitted += len(scheduled)
            result.dropped += len(dropped)
            receivers = [
                ReceiverState(
                    node=node,
                    xy=vehicles[node].position(t),
                    profile=vehicles[node].profile,
                )
                for node in recorded
            ]
            receptions = channel.deliver(scheduled, receivers, t)
            result.delivered += len(receptions)
            for reception in receptions:
                buffers = result.observations[reception.receiver]
                series = buffers.get(reception.identity)
                if series is None:
                    series = RSSITimeSeries(reception.identity)
                    buffers[reception.identity] = series
                series.append(reception.timestamp, reception.rssi_dbm)

        engine.schedule_periodic(interval, beacon_interval, first_at=0.0)

        if config.model_change_enabled:

            def change_model(t: float) -> None:
                model = self._random_model()
                channel.set_model(model)
                result.model_timeline.append((t, model.params))

            engine.schedule_periodic(config.model_change_period_s, change_model)

        # The event loop is where a simulation's CPU time lives; the
        # "sim" span puts it on the profiler's phase map.
        with default_tracer().span(
            "sim", sim_time_s=config.sim_time_s, vehicles=len(vehicles)
        ):
            engine.run_until(config.sim_time_s)

        metrics = default_registry()
        metrics.counter("sim.beacons_transmitted").inc(result.transmitted)
        metrics.counter("sim.beacons_dropped").inc(result.dropped)
        metrics.counter("sim.beacons_delivered").inc(result.delivered)
        wall_s = time.perf_counter() - wall_start
        if wall_s > 0.0:
            metrics.gauge("sim.time_ratio").set(config.sim_time_s / wall_s)
        _log.info(
            "highway run complete",
            extra={
                "sim_time_s": config.sim_time_s,
                "wall_s": wall_s,
                "vehicles": len(vehicles),
                "transmitted": result.transmitted,
                "dropped": result.dropped,
                "delivered": result.delivered,
            },
        )
        return result
