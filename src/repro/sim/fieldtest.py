"""Synthetic field test — the paper's Scenario 3 and Section VI runs.

Four vehicles drive in convoy: one ahead, the malicious vehicle, one
side by side with it, one behind (Fig. 4).  The malicious vehicle
broadcasts under its own identity plus two Sybil identities at spoofed
powers (Section VI-A: 23 dBm and 17 dBm against everyone else's
20 dBm).  We replay that drive over the synthetic routes of
:mod:`repro.mobility.routes`, through the exact CSMA/CA MAC and the
dual-slope channel parameterised with the *measured* Table IV values for
the chosen environment — our stand-in for the authors' DSRC hardware
traces (see DESIGN.md, substitutions).

Node naming follows Section VI: malicious ``1``; normal ``2`` (side by
side), ``3`` (behind — the vehicle whose recordings Fig. 13 plots) and
``4`` (ahead); Sybil identities ``101`` and ``102``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple  # noqa: F401

import numpy as np

from ..obs.logging import get_logger
from ..obs.metrics import default_registry
from ..obs.trace import default_tracer
from ..attack.sybil import ConstantPower, SybilAttacker, SybilIdentity
from ..core.timeseries import RSSITimeSeries
from ..mobility.routes import ConvoyLayout, build_convoy, route_for_environment
from ..net.channel import ReceiverState, VANETChannel
from ..net.mac import CsmaCaMac, TransmissionRequest
from ..net.radio import RadioProfile
from ..radio.dual_slope import DualSlopeModel
from ..radio.environments import environment
from ..radio.noise import SpatialNoiseField
from .engine import SimulationEngine
from .nodes import Vehicle
from .simulator import GroundTruth

__all__ = [
    "FieldTestConfig",
    "FieldTestResult",
    "run_field_test",
    "default_field_attacker",
    "MALICIOUS_ID",
    "NORMAL_IDS",
    "SYBIL_IDS",
]

MALICIOUS_ID = "1"
NORMAL_IDS = ("2", "3", "4")
SYBIL_IDS = ("101", "102")

_log = get_logger("sim.fieldtest")


@dataclass(frozen=True)
class FieldTestConfig:
    """One field-test drive (Section VI-A defaults).

    Attributes:
        environment: campus / rural / urban / highway.
        duration_s: Drive length.  The paper's drives lasted 13–35 min;
            shorter runs keep the unit tests quick.
        normal_power_dbm: EIRP of all physical nodes (20 dBm).
        sybil_powers_dbm: Initial EIRP of Sybil 101 and 102
            (23 and 17 dBm — the power-spoofing the Z-score cancels).
        beacon_rate_hz: CCH cadence.
        convoy: Convoy geometry (gaps, side offset).
        seed: Master RNG seed.
    """

    environment: str = "campus"
    duration_s: float = 120.0
    normal_power_dbm: float = 20.0
    sybil_powers_dbm: Tuple[float, float] = (23.0, 17.0)
    beacon_rate_hz: float = 10.0
    convoy: ConvoyLayout = field(default_factory=ConvoyLayout)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError(f"duration must be positive, got {self.duration_s}")
        if self.beacon_rate_hz <= 0:
            raise ValueError(
                f"beacon rate must be positive, got {self.beacon_rate_hz}"
            )
        if len(self.sybil_powers_dbm) != 2:
            raise ValueError("the field test fabricates exactly two Sybil nodes")


@dataclass
class FieldTestResult:
    """Observations of one synthetic drive.

    Attributes:
        config: The drive's configuration.
        observations: ``receiver → identity → RSSI series`` for the
            three normal nodes.
        truth: Ground-truth labels (Sybils 101/102 → attacker 1).
        vehicles: The four physical vehicles with their trajectories.
        transmitted: Beacons put on air.
        delivered: Receptions recorded across the normal nodes.
    """

    config: FieldTestConfig
    observations: Dict[str, Dict[str, RSSITimeSeries]]
    truth: GroundTruth
    vehicles: Dict[str, Vehicle]
    transmitted: int = 0
    delivered: int = 0


def _field_radio(power_dbm: float) -> RadioProfile:
    """The IWCU-like profile used in the field test (7 dBi antenna)."""
    return RadioProfile(tx_power_dbm=power_dbm, antenna_gain_dbi=7.0)


def default_field_attacker(config: FieldTestConfig) -> SybilAttacker:
    """The Section VI attack plan: two Sybil identities at 23/17 dBm."""
    return SybilAttacker(
        node_id=MALICIOUS_ID,
        own_power=ConstantPower(config.normal_power_dbm),
        identities=[
            SybilIdentity(
                identity=SYBIL_IDS[0],
                power=ConstantPower(config.sybil_powers_dbm[0]),
                claimed_offset=(60.0, 0.0),
            ),
            SybilIdentity(
                identity=SYBIL_IDS[1],
                power=ConstantPower(config.sybil_powers_dbm[1]),
                claimed_offset=(-60.0, 0.0),
            ),
        ],
    )


def run_field_test(
    config: FieldTestConfig,
    attacker: Optional[SybilAttacker] = None,
) -> FieldTestResult:
    """Drive the four-vehicle convoy and record what everyone heard.

    The environment's Table IV parameters drive the channel; packet
    collisions among the six identities are resolved by the exact
    CSMA/CA MAC (six beacons per 100 ms nowhere near saturates the CCH,
    matching the field test's clean conditions).

    Args:
        config: Drive parameters.
        attacker: Custom attack plan (e.g. the power-control smart
            attacker of the ablations); the paper's Section VI plan if
            omitted.  Must use ``node_id == "1"``.
    """
    wall_start = time.perf_counter()
    rng = np.random.default_rng(config.seed)
    lead = route_for_environment(config.environment, config.duration_s)
    convoy = build_convoy(lead, config.convoy)

    if attacker is None:
        attacker = default_field_attacker(config)
    if attacker.node_id != MALICIOUS_ID:
        raise ValueError(
            f"field-test attacker must be node {MALICIOUS_ID!r}, "
            f"got {attacker.node_id!r}"
        )
    vehicles: Dict[str, Vehicle] = {
        MALICIOUS_ID: Vehicle(
            node_id=MALICIOUS_ID,
            trajectory=convoy["malicious"],
            profile=_field_radio(config.normal_power_dbm),
            attacker=attacker,
        ),
        "2": Vehicle(
            node_id="2",
            trajectory=convoy["normal2"],
            profile=_field_radio(config.normal_power_dbm),
        ),
        "3": Vehicle(
            node_id="3",
            trajectory=convoy["normal3"],
            profile=_field_radio(config.normal_power_dbm),
        ),
        "4": Vehicle(
            node_id="4",
            trajectory=convoy["normal1"],
            profile=_field_radio(config.normal_power_dbm),
        ),
    }
    truth = GroundTruth(
        normal_ids=frozenset(NORMAL_IDS),
        malicious_ids=frozenset({MALICIOUS_ID}),
        sybil_to_attacker={
            sybil.identity: MALICIOUS_ID for sybil in attacker.identities
        },
    )

    model = DualSlopeModel(environment(config.environment))
    channel = VANETChannel(
        model=model,
        shadowing=SpatialNoiseField(
            seed=int(rng.integers(0, 2**62)),
            correlation_distance_m=20.0,
            correlation_time_s=5.0,
        ),
        rng=rng,
    )
    cs_range = channel.max_range_m(
        eirp_dbm=config.normal_power_dbm, rx_gain_dbi=7.0, floor_dbm=-95.0
    )
    mac = CsmaCaMac(
        profile=_field_radio(config.normal_power_dbm),
        carrier_sense_range_m=cs_range,
        rng=rng,
    )

    result = FieldTestResult(
        config=config,
        observations={node: {} for node in NORMAL_IDS},
        truth=truth,
        vehicles=vehicles,
    )
    interval = 1.0 / config.beacon_rate_hz
    engine = SimulationEngine()

    def beacon_interval(t: float) -> None:
        requests: List[TransmissionRequest] = []
        for vehicle in vehicles.values():
            requests.extend(vehicle.beacon_requests(t, interval, rng))
        scheduled, _dropped = mac.schedule_interval(requests, t, t + interval)
        result.transmitted += len(scheduled)
        receivers = [
            ReceiverState(
                node=node,
                xy=vehicles[node].position(t),
                profile=vehicles[node].profile,
            )
            for node in NORMAL_IDS
        ]
        for reception in channel.deliver(scheduled, receivers, t):
            result.delivered += 1
            buffers = result.observations[reception.receiver]
            series = buffers.get(reception.identity)
            if series is None:
                series = RSSITimeSeries(reception.identity)
                buffers[reception.identity] = series
            series.append(reception.timestamp, reception.rssi_dbm)

    engine.schedule_periodic(interval, beacon_interval, first_at=0.0)
    # The event loop is where a drive's CPU time lives; the "sim" span
    # puts it on the profiler's phase map.
    with default_tracer().span(
        "sim", environment=config.environment, sim_time_s=config.duration_s
    ):
        engine.run_until(config.duration_s)

    metrics = default_registry()
    metrics.counter("sim.beacons_transmitted").inc(result.transmitted)
    metrics.counter("sim.beacons_delivered").inc(result.delivered)
    wall_s = time.perf_counter() - wall_start
    if wall_s > 0.0:
        metrics.gauge("sim.time_ratio").set(config.duration_s / wall_s)
    _log.info(
        "field-test drive complete",
        extra={
            "environment": config.environment,
            "sim_time_s": config.duration_s,
            "wall_s": wall_s,
            "transmitted": result.transmitted,
            "delivered": result.delivered,
        },
    )
    return result
