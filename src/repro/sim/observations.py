"""Measurement-scenario replicas (paper Section III, Scenarios 1–2).

These helpers regenerate the raw material behind the paper's three
observations:

* :func:`stationary_pair_measurement` — Scenario 1, two parked vehicles
  140 m apart exchanging 10 Hz beacons for 10 minutes (Fig. 5a/5b).
* :func:`moving_pair_measurement` — Scenario 1's moving variant, two
  vehicles circling the campus (Fig. 5c's one-minute segments).
* :func:`ranging_measurement` — Scenario 2, (distance, RSSI) samples
  across an environment, the input to the Table IV dual-slope fit.

A single link with two radios never contends for the channel, so these
bypass the MAC and sample the channel directly at the beacon cadence.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..core.timeseries import RSSITimeSeries
from ..mobility.routes import campus_route
from ..net.channel import VANETChannel
from ..radio.dual_slope import DualSlopeModel
from ..radio.environments import environment
from ..radio.noise import SpatialNoiseField

__all__ = [
    "stationary_pair_measurement",
    "moving_pair_measurement",
    "ranging_measurement",
]


def _channel_for(env: str, seed: int) -> VANETChannel:
    rng = np.random.default_rng(seed)
    return VANETChannel(
        model=DualSlopeModel(environment(env)),
        shadowing=SpatialNoiseField(
            seed=int(rng.integers(0, 2**62)),
            correlation_distance_m=20.0,
            correlation_time_s=5.0,
        ),
        rng=rng,
    )


def stationary_pair_measurement(
    distance_m: float = 140.0,
    duration_s: float = 600.0,
    environment_name: str = "campus",
    eirp_dbm: float = 20.0,
    rx_gain_dbi: float = 7.0,
    beacon_rate_hz: float = 10.0,
    seed: int = 0,
    start_time: float = 0.0,
) -> RSSITimeSeries:
    """Scenario 1 (stationary): the RSSI series one parked receiver logs.

    The paper ran this twice at different times of day and found
    distributions with different means and deviations (Fig. 5a vs 5b);
    vary ``start_time`` (the shadowing field's clock) and ``seed`` to
    reproduce that temporal drift.

    Returns:
        A series of ``duration_s * beacon_rate_hz`` samples.
    """
    if distance_m <= 0:
        raise ValueError(f"distance must be positive, got {distance_m}")
    if duration_s <= 0:
        raise ValueError(f"duration must be positive, got {duration_s}")
    channel = _channel_for(environment_name, seed)
    tx = (0.0, 0.0)
    rx = (distance_m, 0.0)
    series = RSSITimeSeries("sender")
    interval = 1.0 / beacon_rate_hz
    n = int(round(duration_s * beacon_rate_hz))
    for i in range(n):
        t = start_time + i * interval
        series.append(
            t, channel.link_rssi(tx, rx, eirp_dbm, rx_gain_dbi, t)
        )
    return series


def moving_pair_measurement(
    duration_s: float = 600.0,
    gap_s: float = 10.0,
    environment_name: str = "campus",
    eirp_dbm: float = 20.0,
    rx_gain_dbi: float = 7.0,
    beacon_rate_hz: float = 10.0,
    seed: int = 0,
) -> RSSITimeSeries:
    """Scenario 1 (moving): two vehicles circle the campus loop.

    The receiver trails the sender by ``gap_s`` seconds of travel along
    the same loop (10–15 km/h as in the paper).  Slicing the returned
    series into one-minute windows reproduces Fig. 5c's segments.
    """
    if duration_s <= 0:
        raise ValueError(f"duration must be positive, got {duration_s}")
    channel = _channel_for(environment_name, seed)
    sender = campus_route(duration_s + gap_s)
    receiver = sender.time_shifted(gap_s)
    series = RSSITimeSeries("sender")
    interval = 1.0 / beacon_rate_hz
    n = int(round(duration_s * beacon_rate_hz))
    for i in range(n):
        t = i * interval
        series.append(
            t,
            channel.link_rssi(
                sender.position(t), receiver.position(t), eirp_dbm, rx_gain_dbi, t
            ),
        )
    return series


def ranging_measurement(
    environment_name: str,
    n_samples: int = 2000,
    min_distance_m: float = 2.0,
    max_distance_m: float = 500.0,
    eirp_dbm: float = 20.0,
    rx_gain_dbi: float = 7.0,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Scenario 2: (distance, RSSI) sample pairs across an environment.

    The transmitter drives away from a parked receiver, sweeping the
    distance range log-uniformly (log-uniform sampling gives the
    dual-slope fit equal leverage in both regimes).  Each sample gets an
    independent time draw so shadowing decorrelates across samples, as
    it did across the authors' drive.

    Returns:
        ``(distances_m, rssi_dbm)`` arrays of length ``n_samples``.
    """
    if n_samples < 8:
        raise ValueError(f"need at least 8 samples, got {n_samples}")
    if not 0 < min_distance_m < max_distance_m:
        raise ValueError(
            f"bad distance range [{min_distance_m}, {max_distance_m}]"
        )
    rng = np.random.default_rng(seed)
    channel = _channel_for(environment_name, seed + 1)
    distances = np.exp(
        rng.uniform(np.log(min_distance_m), np.log(max_distance_m), size=n_samples)
    )
    times = rng.uniform(0.0, 1000.0, size=n_samples)
    rssi = np.empty(n_samples)
    rx = (0.0, 0.0)
    for i, (d, t) in enumerate(zip(distances, times)):
        rssi[i] = channel.link_rssi((float(d), 0.0), rx, eirp_dbm, rx_gain_dbi, float(t))
    return distances, rssi
