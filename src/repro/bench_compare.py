"""Benchmark regression gate: diff fresh ``BENCH_*.json`` vs baselines.

The pairwise-engine benchmark (``benchmarks/test_bench_pairwise.py``)
writes ``BENCH_pairwise.json`` on every run; committed reference copies
live under ``benchmarks/baselines/``.  This tool compares the two and
exits non-zero when a metric regressed beyond tolerance, so CI refuses
perf regressions instead of archiving them::

    python -m repro.bench_compare                       # all baselines
    python -m repro.bench_compare --only BENCH_pairwise.json \
        --tolerance 0.1 --timing-tolerance 3.0
    python -m repro.bench_compare --update              # refresh baselines
    python -m repro.bench_compare \
        --history benchmarks/history/BENCH_history.jsonl  # append run

``--history`` appends one JSONL entry per artifact (every numeric leaf,
stamped with the run's UTC time) to a committed trajectory file, so the
headline numbers accumulate across PRs instead of each baseline update
erasing the past; the end-of-run report (``--report-out``) renders the
trajectories as sparklines.

Metrics are classified by their leaf key:

* **deterministic** metrics (DP cell counts, cache hit rates, pair
  counts) gate at ``--tolerance`` (default 10 %%) — these are exact
  replays of a seeded workload, so genuine drift means the engine
  changed behaviour;
* **timing** metrics (``wall_ms``, ``pairs_per_s``) vary with the host
  and are *skipped by default*; opt in with ``--timing-tolerance`` on
  hardware you control;
* unknown numeric leaves are reported but never fail the gate.

Direction matters: ``dtw_cells`` growing is a regression, shrinking is
a win; ``hit_rate`` the other way around.  Per-metric overrides:
``--tolerances dtw_cells=0.02,hit_rate=0.05``.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import time
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = ["main", "compare_payloads", "append_history", "Comparison"]

#: leaf key -> (good direction, class).  Direction is the direction of
#: *improvement*: "lower" (costs), "higher" (throughput/quality), or
#: "both" (workload invariants that should simply not move).
_RULES: Dict[str, Tuple[str, str]] = {
    "wall_ms": ("lower", "timing"),
    "pairs_per_s": ("higher", "timing"),
    "hit_rate": ("higher", "deterministic"),
    "dtw_cells": ("lower", "deterministic"),
    "cells_saved": ("higher", "deterministic"),
    "cells_ratio_vs_naive": ("higher", "deterministic"),
    "pairs": ("both", "deterministic"),
    "pairs_exact": ("lower", "deterministic"),
    "pairs_pruned": ("higher", "deterministic"),
    "pairs_incremental": ("higher", "deterministic"),
    # Abandons trade off against carries/prunes on the seeded workload,
    # so the count is an invariant, not a more-is-better metric.
    "pairs_abandoned": ("both", "deterministic"),
    "envelope_updates": ("both", "deterministic"),
    "cache_hits": ("higher", "deterministic"),
    "detections": ("both", "deterministic"),
    "sliding_rechecks_per_period": ("both", "deterministic"),
    # incremental slide sweep (BENCH_incremental.json)
    "cells_per_detection": ("lower", "deterministic"),
    "cells_ratio": ("higher", "deterministic"),
    "first_detection_s": ("both", "deterministic"),
    # parallel evaluation benchmark (BENCH_parallel.json)
    "serial_wall_ms": ("lower", "timing"),
    "parallel_wall_ms": ("lower", "timing"),
    "speedup": ("higher", "timing"),
    "n_outcomes": ("both", "deterministic"),
    "true_flagged_total": ("both", "deterministic"),
    "false_flagged_total": ("both", "deterministic"),
    "cells": ("both", "deterministic"),
    # profiler overhead benchmark (BENCH_profile.json)
    "baseline_cpu_ms": ("lower", "timing"),
    "profiled_cpu_ms": ("lower", "timing"),
    "baseline_wall_ms": ("lower", "timing"),
    "profiled_wall_ms": ("lower", "timing"),
    "overhead_pct": ("lower", "timing"),
    "samples": ("higher", "timing"),
    "attributed_pct": ("higher", "deterministic"),
    "compare_pct": ("higher", "deterministic"),
    # audit overhead benchmark (BENCH_audit.json)
    "audited_cpu_ms": ("lower", "timing"),
    "disk_cpu_ms": ("lower", "timing"),
    "disk_overhead_pct": ("lower", "timing"),
    "stream_lines": ("both", "deterministic"),
    # watchtower overhead benchmark (BENCH_watch.json)
    "watched_cpu_ms": ("lower", "timing"),
    "ticks": ("both", "deterministic"),
    "series": ("both", "deterministic"),
    "tsdb_samples": ("both", "deterministic"),
    "drift_alerts": ("both", "deterministic"),
    # streaming service benchmark (BENCH_serve.json)
    "beacons_per_s": ("higher", "timing"),
    "ingest_wall_ms": ("lower", "timing"),
    "p50_ingest_to_verdict_ms": ("lower", "timing"),
    "p99_ingest_to_verdict_ms": ("lower", "timing"),
    "beacons": ("both", "deterministic"),
    "observers": ("both", "deterministic"),
    "identities_per_observer": ("both", "deterministic"),
    "beacon_hz": ("both", "deterministic"),
    "duration_s": ("both", "deterministic"),
    "shards": ("both", "deterministic"),
    "reports": ("both", "deterministic"),
    "shed": ("lower", "deterministic"),
    "flagged_observers": ("both", "deterministic"),
    "verdicts_match": ("both", "deterministic"),
    # lineage overhead benchmark (BENCH_trace.json); retained-trace
    # totals are interleaving-dependent and stay informational.
    "baseline_beacons_per_s": ("higher", "timing"),
    "traced_beacons_per_s": ("higher", "timing"),
    "traces_flagged": ("both", "deterministic"),
    "stage_sum_ok": ("both", "deterministic"),
}


class Comparison:
    """One numeric leaf compared between baseline and current."""

    __slots__ = (
        "path",
        "key",
        "baseline",
        "current",
        "change",
        "verdict",
        "tolerance",
    )

    def __init__(
        self,
        path: str,
        key: str,
        baseline: float,
        current: float,
        change: Optional[float],
        verdict: str,
        tolerance: Optional[float],
    ) -> None:
        self.path = path
        self.key = key
        self.baseline = baseline
        self.current = current
        self.change = change
        self.verdict = verdict
        self.tolerance = tolerance

    @property
    def failed(self) -> bool:
        return self.verdict == "REGRESSED"


def _numeric_leaves(
    node: object, prefix: str = ""
) -> Iterator[Tuple[str, str, float]]:
    """Yield ``(dotted path, leaf key, value)`` for every numeric leaf."""
    if isinstance(node, dict):
        for key, value in node.items():
            child = f"{prefix}.{key}" if prefix else str(key)
            if isinstance(value, dict):
                yield from _numeric_leaves(value, child)
            elif isinstance(value, (int, float)) and not isinstance(
                value, bool
            ):
                yield child, str(key), float(value)


def compare_payloads(
    baseline: Dict[str, object],
    current: Dict[str, object],
    tolerance: float = 0.10,
    timing_tolerance: Optional[float] = None,
    overrides: Optional[Dict[str, float]] = None,
) -> List[Comparison]:
    """Compare every shared numeric leaf of two benchmark payloads.

    Args:
        baseline: Parsed committed baseline JSON.
        current: Parsed freshly generated JSON.
        tolerance: Allowed relative drift (bad direction) for
            deterministic metrics.
        timing_tolerance: Same for timing metrics; None skips them.
        overrides: Per-leaf-key tolerance overrides.

    Returns:
        One :class:`Comparison` per leaf present in the baseline
        (missing-in-current leaves are reported as ``MISSING`` and
        count as failures; extra current-only leaves are ignored — new
        metrics are not regressions).
    """
    overrides = overrides or {}
    current_leaves = {
        path: value for path, _key, value in _numeric_leaves(current)
    }
    results: List[Comparison] = []
    for path, key, base in _numeric_leaves(baseline):
        direction, kind = _RULES.get(key, ("both", "info"))
        if path not in current_leaves:
            results.append(
                Comparison(path, key, base, float("nan"), None, "MISSING", None)
            )
            continue
        cur = current_leaves[path]
        change = (cur - base) / base if base else None
        if key in overrides:
            tol: Optional[float] = overrides[key]
        elif kind == "deterministic":
            tol = tolerance
        elif kind == "timing":
            tol = timing_tolerance
        else:
            tol = None
        if tol is None:
            verdict = "info"
        elif base == 0:
            verdict = "ok" if cur == 0 or direction == "higher" else "REGRESSED"
        else:
            assert change is not None
            if direction == "lower":
                bad = change > tol
            elif direction == "higher":
                bad = change < -tol
            else:
                bad = abs(change) > tol
            verdict = "REGRESSED" if bad else "ok"
        results.append(Comparison(path, key, base, cur, change, verdict, tol))
    return results


def append_history(
    history_path: Path,
    current_dir: Path,
    names: Sequence[str],
    timestamp: Optional[str] = None,
) -> int:
    """Append one JSONL trajectory entry per present artifact.

    Each entry is ``{"artifact", "ts", "metrics": {dotted path: value}}``
    with every numeric leaf flattened — the committed history is the
    cross-PR performance record the run report charts.

    Returns:
        The number of entries appended (artifacts missing from
        ``current_dir`` are skipped silently — a partial bench run
        records what it has).
    """
    stamp = timestamp or time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    entries = []
    for name in names:
        current_path = current_dir / name
        if not current_path.is_file():
            continue
        payload = json.loads(current_path.read_text(encoding="utf-8"))
        metrics = {
            path: value for path, _key, value in _numeric_leaves(payload)
        }
        entries.append(
            {"artifact": name, "ts": stamp, "metrics": metrics}
        )
    if entries:
        history_path.parent.mkdir(parents=True, exist_ok=True)
        with open(history_path, "a", encoding="utf-8") as handle:
            for entry in entries:
                handle.write(json.dumps(entry, sort_keys=True) + "\n")
    return len(entries)


def _parse_overrides(text: str) -> Dict[str, float]:
    overrides: Dict[str, float] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise argparse.ArgumentTypeError(
                f"bad tolerance entry {part!r} (want key=value)"
            )
        key, _, value = part.partition("=")
        try:
            overrides[key.strip()] = float(value)
        except ValueError as error:
            raise argparse.ArgumentTypeError(
                f"bad tolerance value in {part!r}"
            ) from error
    return overrides


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench_compare",
        description="Compare fresh BENCH_*.json artifacts against the "
        "committed baselines; exit 1 on regression.",
    )
    parser.add_argument(
        "--baseline-dir",
        default="benchmarks/baselines",
        help="directory of committed baseline BENCH_*.json files",
    )
    parser.add_argument(
        "--current-dir",
        default=".",
        help="directory the fresh artifacts were written to (repo root)",
    )
    parser.add_argument(
        "--only",
        action="append",
        metavar="NAME",
        help="limit to these artifact file names (repeatable)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="relative drift allowed for deterministic metrics "
        "(default 0.10)",
    )
    parser.add_argument(
        "--timing-tolerance",
        type=float,
        default=None,
        metavar="T",
        help="also gate timing metrics (wall_ms, pairs_per_s) at this "
        "relative drift; omitted: timing is reported but never fails",
    )
    parser.add_argument(
        "--tolerances",
        type=_parse_overrides,
        default={},
        metavar="K=V,...",
        help="per-metric tolerance overrides, e.g. dtw_cells=0.02",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="copy the current artifacts over the baselines instead of "
        "comparing",
    )
    parser.add_argument(
        "--history",
        metavar="PATH",
        default=None,
        help="append one JSONL entry per current artifact (all numeric "
        "leaves, UTC-stamped) to this trajectory file instead of "
        "comparing — e.g. benchmarks/history/BENCH_history.jsonl",
    )
    return parser


def _render(results: List[Comparison]) -> str:
    rows = []
    for r in results:
        change = "-" if r.change is None else f"{r.change:+.1%}"
        tol = "-" if r.tolerance is None else f"{r.tolerance:.0%}"
        rows.append(
            f"{r.verdict:>9}  {r.path:<44} {r.baseline:>14g} "
            f"{r.current:>14g} {change:>8} (tol {tol})"
        )
    header = (
        f"{'verdict':>9}  {'metric':<44} {'baseline':>14} "
        f"{'current':>14} {'change':>8}"
    )
    return "\n".join([header] + rows)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    baseline_dir = Path(args.baseline_dir)
    current_dir = Path(args.current_dir)
    names = args.only or sorted(
        p.name for p in baseline_dir.glob("BENCH_*.json")
    )
    if args.history:
        history_names = args.only or sorted(
            p.name for p in current_dir.glob("BENCH_*.json")
        )
        appended = append_history(
            Path(args.history), current_dir, history_names
        )
        if not appended:
            print(
                "no BENCH_*.json artifacts found to record",
                file=sys.stderr,
            )
            return 1
        print(f"appended {appended} entr{'y' if appended == 1 else 'ies'} "
              f"to {args.history}")
        return 0
    if args.update:
        baseline_dir.mkdir(parents=True, exist_ok=True)
        updated = 0
        for name in names or sorted(
            p.name for p in current_dir.glob("BENCH_*.json")
        ):
            source = current_dir / name
            if source.is_file():
                shutil.copyfile(source, baseline_dir / name)
                print(f"updated baseline {baseline_dir / name}")
                updated += 1
        if not updated:
            print("no BENCH_*.json artifacts found to promote", file=sys.stderr)
            return 1
        return 0
    if not names:
        print(
            f"no baselines under {baseline_dir} (run with --update to "
            "create them)",
            file=sys.stderr,
        )
        return 1
    failed = False
    for name in names:
        baseline_path = baseline_dir / name
        current_path = current_dir / name
        if not baseline_path.is_file():
            print(f"missing baseline {baseline_path}", file=sys.stderr)
            failed = True
            continue
        if not current_path.is_file():
            print(
                f"missing current artifact {current_path} "
                "(run the benchmark first)",
                file=sys.stderr,
            )
            failed = True
            continue
        baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
        current = json.loads(current_path.read_text(encoding="utf-8"))
        results = compare_payloads(
            baseline,
            current,
            tolerance=args.tolerance,
            timing_tolerance=args.timing_tolerance,
            overrides=args.tolerances,
        )
        regressions = [r for r in results if r.failed or r.verdict == "MISSING"]
        print(f"== {name}: {len(results)} metrics, "
              f"{len(regressions)} regression(s)")
        print(_render(results))
        if regressions:
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
