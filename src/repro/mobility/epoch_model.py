"""Continuous-time stochastic mobility model (paper Section V-A).

Each vehicle's movement is a sequence of *mobility epochs*: epoch
lengths are i.i.d. exponential with rate :math:`\\lambda_e`
(Table V: 0.2 s⁻¹, i.e. mean 5 s); during an epoch the vehicle holds a
constant speed drawn i.i.d. from :math:`N(\\mu_v, \\sigma_v^2)`
(Table V: 25 m/s mean, 5 m/s deviation), truncated at zero so nobody
drives backwards.

:func:`generate_highway_trajectory` rolls the epochs forward on a
:class:`~repro.mobility.highway.HighwayGeometry`, applying the
end-of-road re-entry rule, and returns an ordinary
:class:`~repro.mobility.trace.PiecewiseLinearTrajectory` in plane
coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .highway import HighwayGeometry, LanePosition
from .trace import PiecewiseLinearTrajectory, Waypoint

__all__ = ["EpochMobilityModel", "generate_highway_trajectory"]


@dataclass(frozen=True)
class EpochMobilityModel:
    """Parameters of the epoch mobility process (Table V defaults).

    Attributes:
        epoch_rate: :math:`\\lambda_e` in 1/s (mean epoch = 1/rate).
        mean_speed: :math:`\\mu_v` in m/s.
        speed_std: :math:`\\sigma_v` in m/s.
    """

    epoch_rate: float = 0.2
    mean_speed: float = 25.0
    speed_std: float = 5.0

    def __post_init__(self) -> None:
        if self.epoch_rate <= 0:
            raise ValueError(f"epoch rate must be positive, got {self.epoch_rate}")
        if self.mean_speed < 0:
            raise ValueError(f"mean speed must be non-negative, got {self.mean_speed}")
        if self.speed_std < 0:
            raise ValueError(f"speed std must be non-negative, got {self.speed_std}")

    def draw_epoch_length(self, rng: np.random.Generator) -> float:
        """One exponential epoch length in seconds (floored at 1 ms)."""
        return max(float(rng.exponential(1.0 / self.epoch_rate)), 1e-3)

    def draw_speed(self, rng: np.random.Generator) -> float:
        """One truncated-Gaussian epoch speed in m/s."""
        return max(float(rng.normal(self.mean_speed, self.speed_std)), 0.0)


def generate_highway_trajectory(
    geometry: HighwayGeometry,
    start: LanePosition,
    duration_s: float,
    rng: np.random.Generator,
    model: Optional[EpochMobilityModel] = None,
    start_time: float = 0.0,
) -> PiecewiseLinearTrajectory:
    """Simulate one vehicle's epoch-by-epoch motion on the highway.

    Lane changes and the direction flip at the road ends are handled by
    :meth:`HighwayGeometry.advance`; every epoch boundary and every
    re-entry produces a waypoint, so the returned trajectory is exact
    (not sampled).

    Args:
        geometry: The road.
        start: Initial road position.
        duration_s: Simulated time span.
        rng: Seeded random generator (determinism is the caller's job).
        model: Mobility parameters; Table V defaults if omitted.
        start_time: Timestamp of the first waypoint.

    Returns:
        The vehicle's trajectory over ``[start_time, start_time + duration_s]``.
    """
    if duration_s <= 0:
        raise ValueError(f"duration must be positive, got {duration_s}")
    mobility = model or EpochMobilityModel()

    waypoints: List[Waypoint] = []
    position = start
    t = start_time
    end_time = start_time + duration_s

    x, y = geometry.to_xy(position)
    waypoints.append(Waypoint(t, x, y))

    while t < end_time:
        epoch = mobility.draw_epoch_length(rng)
        speed = mobility.draw_speed(rng)
        epoch = min(epoch, end_time - t)
        # Split the epoch at road-end re-entries so the piecewise-linear
        # interpolation never cuts the wrap corner.
        remaining = epoch
        if speed <= 0:
            t += remaining
            x, y = geometry.to_xy(position)
            waypoints.append(Waypoint(t, x, y))
            continue
        while remaining > 1e-12:
            direction = geometry.direction_of_lane(position.lane)
            to_end = (
                geometry.length_m - position.x if direction > 0 else position.x
            )
            if to_end <= 1e-9:
                # At the road end: re-enter on the opposite carriageway
                # (paper's wrap rule) and keep driving the same epoch.
                position = LanePosition(
                    x=position.x, lane=geometry.opposite_lane(position.lane)
                )
                x, y = geometry.to_xy(position)
                waypoints.append(Waypoint(t, x, y))
                continue
            step = min(remaining, to_end / speed)
            position = geometry.advance(position, speed * step)
            t += step
            remaining -= step
            x, y = geometry.to_xy(position)
            waypoints.append(Waypoint(t, x, y))
    # Deduplicate identical consecutive timestamps introduced by
    # zero-length steps at exact boundaries.
    unique: List[Waypoint] = []
    for waypoint in waypoints:
        if unique and waypoint.t <= unique[-1].t + 1e-12:
            unique[-1] = waypoint
        else:
            unique.append(waypoint)
    return PiecewiseLinearTrajectory(unique)
