"""Field-test routes (paper Section VI, Fig. 12).

The authors drove four vehicles around campus, rural, urban and highway
routes.  We recreate those drives synthetically: each route is a
polyline driven at an environment-appropriate speed, the urban route
including signalised intersections where the whole convoy stops for a
red light — the exact condition behind the paper's single false
positive (Fig. 14).

All builders return a lead :class:`PiecewiseLinearTrajectory`; convoys
for Scenario 3 / the field test are derived from the lead trajectory by
:func:`build_convoy`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .trace import PiecewiseLinearTrajectory, Waypoint

__all__ = [
    "RouteSpec",
    "polyline_route",
    "campus_route",
    "rural_route",
    "urban_route",
    "highway_route",
    "route_for_environment",
    "ConvoyLayout",
    "build_convoy",
]

Point = Tuple[float, float]


@dataclass(frozen=True)
class RouteSpec:
    """A drivable route description.

    Attributes:
        corners: Polyline corner points, metres.
        speed_mps: Cruise speed along segments.
        stops: Mapping of corner index → dwell seconds (red lights,
            stop signs).  A stop at index ``i`` happens on arrival at
            ``corners[i]``.
        loop: Whether the route closes back to its first corner and
            repeats until the duration is filled.
    """

    corners: Tuple[Point, ...]
    speed_mps: float
    stops: Tuple[Tuple[int, float], ...] = ()
    loop: bool = False

    def __post_init__(self) -> None:
        if len(self.corners) < 2:
            raise ValueError("a route needs at least two corners")
        if self.speed_mps <= 0:
            raise ValueError(f"speed must be positive, got {self.speed_mps}")
        for index, dwell in self.stops:
            if not 0 <= index < len(self.corners):
                raise ValueError(f"stop index {index} outside the corner list")
            if dwell < 0:
                raise ValueError(f"dwell must be non-negative, got {dwell}")


def polyline_route(
    spec: RouteSpec,
    duration_s: float,
    start_time: float = 0.0,
) -> PiecewiseLinearTrajectory:
    """Drive a :class:`RouteSpec` for ``duration_s`` seconds.

    Looping routes repeat until the duration is filled; open routes park
    at their final corner once reached.
    """
    if duration_s <= 0:
        raise ValueError(f"duration must be positive, got {duration_s}")
    stops: Dict[int, float] = dict(spec.stops)
    waypoints: List[Waypoint] = []
    t = start_time
    end_time = start_time + duration_s

    def emit(x: float, y: float) -> None:
        if waypoints and t <= waypoints[-1].t + 1e-12:
            return
        waypoints.append(Waypoint(t, x, y))

    cx, cy = spec.corners[0]
    waypoints.append(Waypoint(t, cx, cy))
    lap = 0
    while t < end_time:
        corner_sequence = list(range(1, len(spec.corners)))
        if spec.loop:
            corner_sequence.append(0)
        progressed = False
        for idx in corner_sequence:
            if t >= end_time:
                break
            nx, ny = spec.corners[idx]
            distance = math.hypot(nx - cx, ny - cy)
            if distance > 0:
                travel = distance / spec.speed_mps
                step = min(travel, end_time - t)
                frac = step / travel
                cx, cy = cx + frac * (nx - cx), cy + frac * (ny - cy)
                t += step
                emit(cx, cy)
                progressed = True
                if step < travel:
                    break
            # Red lights apply on every lap; a real signal cycles, but a
            # constant dwell is enough to recreate the stationary window.
            dwell = stops.get(idx, 0.0)
            if dwell > 0 and t < end_time:
                t = min(t + dwell, end_time)
                emit(cx, cy)
                progressed = True
        if not spec.loop:
            if t < end_time:
                # Parked at the final corner for the remaining time.
                t = end_time
                emit(cx, cy)
            break
        if not progressed:
            raise ValueError("degenerate looping route: no progress made")
        lap += 1
    return PiecewiseLinearTrajectory(waypoints)


def campus_route(duration_s: float, start_time: float = 0.0) -> PiecewiseLinearTrajectory:
    """Campus schoolyard loop (~10–15 km/h, Fig. 2b): 400 m × 200 m ring."""
    spec = RouteSpec(
        corners=((0.0, 0.0), (400.0, 0.0), (400.0, 200.0), (0.0, 200.0)),
        speed_mps=3.5,
        loop=True,
    )
    return polyline_route(spec, duration_s, start_time)


def rural_route(duration_s: float, start_time: float = 0.0) -> PiecewiseLinearTrajectory:
    """Rural road: a long, gently bending open route at ~54 km/h."""
    corners = tuple(
        (float(i * 500), 120.0 * math.sin(i * 0.7)) for i in range(12)
    )
    spec = RouteSpec(corners=corners, speed_mps=15.0, loop=False)
    return polyline_route(spec, duration_s, start_time)


def urban_route(
    duration_s: float,
    start_time: float = 0.0,
    red_light_dwell_s: float = 45.0,
) -> PiecewiseLinearTrajectory:
    """Urban grid drive with signalised intersections (~32 km/h).

    Two corners carry red-light dwells; the longer one recreates the
    all-vehicles-stationary window behind the paper's Fig. 14 false
    positive.
    """
    spec = RouteSpec(
        corners=(
            (0.0, 0.0),
            (300.0, 0.0),
            (300.0, 250.0),
            (650.0, 250.0),
            (650.0, 0.0),
            (1000.0, 0.0),
            (1000.0, 250.0),
            (1350.0, 250.0),
        ),
        speed_mps=9.0,
        stops=((2, red_light_dwell_s), (5, 20.0)),
        loop=True,
    )
    return polyline_route(spec, duration_s, start_time)


def highway_route(duration_s: float, start_time: float = 0.0) -> PiecewiseLinearTrajectory:
    """Straight highway run at ~100 km/h, long enough not to run out."""
    speed = 28.0
    length = speed * duration_s + 1000.0
    spec = RouteSpec(corners=((0.0, 0.0), (length, 0.0)), speed_mps=speed, loop=False)
    return polyline_route(spec, duration_s, start_time)


def route_for_environment(
    environment: str, duration_s: float, start_time: float = 0.0
) -> PiecewiseLinearTrajectory:
    """The lead route matching an environment label.

    Raises:
        KeyError: For labels other than campus/rural/urban/highway.
    """
    builders = {
        "campus": campus_route,
        "rural": rural_route,
        "urban": urban_route,
        "highway": highway_route,
    }
    key = environment.strip().lower()
    if key not in builders:
        raise KeyError(
            f"unknown environment {environment!r}; expected one of {sorted(builders)}"
        )
    return builders[key](duration_s, start_time)


@dataclass(frozen=True)
class ConvoyLayout:
    """Scenario 3 convoy geometry (paper Fig. 4 / Section VI-A).

    Attributes:
        lead_gap_s: How far ahead (in travel time) normal node 1 drives.
        trail_gap_s: How far behind normal node 3 drives.
        side_offset_m: Lateral offset of normal node 2 (side by side
            with the malicious node; the paper measured 2.75–3.25 m).
        side_jitter_s: Small time offset for node 2 so its positions
            never coincide exactly with the malicious node's.
    """

    lead_gap_s: float = 8.0
    trail_gap_s: float = 8.0
    side_offset_m: float = 3.0
    side_jitter_s: float = 0.15

    def __post_init__(self) -> None:
        if self.lead_gap_s < 0 or self.trail_gap_s < 0:
            raise ValueError("convoy gaps must be non-negative")
        if self.side_offset_m <= 0:
            raise ValueError("side offset must be positive")


def build_convoy(
    lead_route: PiecewiseLinearTrajectory,
    layout: Optional[ConvoyLayout] = None,
) -> Dict[str, PiecewiseLinearTrajectory]:
    """Derive the four Scenario 3 trajectories from one lead route.

    Returns a mapping with keys ``normal1`` (ahead), ``malicious``,
    ``normal2`` (side by side) and ``normal3`` (behind).  The ahead and
    behind vehicles follow the same path shifted in time, which keeps
    the convoy glued to the road through corners and red lights.
    """
    layout = layout or ConvoyLayout()
    malicious = lead_route
    return {
        "normal1": malicious.time_shifted(-layout.lead_gap_s),
        "malicious": malicious,
        "normal2": malicious.time_shifted(layout.side_jitter_s).shifted(
            dy=layout.side_offset_m
        ),
        "normal3": malicious.time_shifted(layout.trail_gap_s),
    }
