"""Highway geometry (paper Fig. 10 scenario, Table V).

The simulation road is a 2 km bi-directional highway with two lanes per
direction, 3.6 m lane width.  A vehicle that reaches the end of its
direction re-enters at the beginning of the *other* direction (Table V
note), keeping the vehicle count — and hence the density — constant.

Coordinates: ``x`` runs along the road (0 .. length); ``y`` is the
lateral lane-centre offset.  Eastbound lanes carry direction ``+1``,
westbound ``-1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = ["HighwayGeometry", "LanePosition"]


@dataclass(frozen=True)
class LanePosition:
    """A position expressed in road coordinates.

    Attributes:
        x: Longitudinal position along the road, metres.
        lane: Lane index, 0-based across the full cross-section.
    """

    x: float
    lane: int


@dataclass(frozen=True)
class HighwayGeometry:
    """A straight bi-directional multi-lane highway.

    Attributes:
        length_m: Road length (paper: 2000 m).
        lanes_per_direction: Lanes each way (paper: 2).
        lane_width_m: Lane width (paper: 3.6 m).
    """

    length_m: float = 2000.0
    lanes_per_direction: int = 2
    lane_width_m: float = 3.6

    def __post_init__(self) -> None:
        if self.length_m <= 0:
            raise ValueError(f"length must be positive, got {self.length_m}")
        if self.lanes_per_direction < 1:
            raise ValueError(
                f"need at least one lane per direction, got {self.lanes_per_direction}"
            )
        if self.lane_width_m <= 0:
            raise ValueError(f"lane width must be positive, got {self.lane_width_m}")

    @property
    def total_lanes(self) -> int:
        """Lanes across the full cross-section (paper: 4)."""
        return 2 * self.lanes_per_direction

    def direction_of_lane(self, lane: int) -> int:
        """+1 (eastbound) for the first half of lanes, -1 for the rest."""
        self._check_lane(lane)
        return 1 if lane < self.lanes_per_direction else -1

    def lane_center_y(self, lane: int) -> float:
        """Lateral offset of a lane centre from the median, metres.

        Eastbound lanes sit at positive offsets, westbound at negative,
        mirroring a median-separated carriageway.
        """
        self._check_lane(lane)
        if lane < self.lanes_per_direction:
            return (lane + 0.5) * self.lane_width_m
        west_index = lane - self.lanes_per_direction
        return -(west_index + 0.5) * self.lane_width_m

    def to_xy(self, position: LanePosition) -> Tuple[float, float]:
        """Road coordinates → plane coordinates (x along, y lateral)."""
        if not 0.0 <= position.x <= self.length_m:
            raise ValueError(
                f"x={position.x} outside the road [0, {self.length_m}]"
            )
        return (position.x, self.lane_center_y(position.lane))

    def opposite_lane(self, lane: int) -> int:
        """The re-entry lane in the other direction (mirror index)."""
        self._check_lane(lane)
        if lane < self.lanes_per_direction:
            return lane + self.lanes_per_direction
        return lane - self.lanes_per_direction

    def advance(
        self, position: LanePosition, distance_m: float
    ) -> LanePosition:
        """Move along the lane's direction, re-entering on overflow.

        Implements the paper's wrap rule: travel past either end flips
        the vehicle to the opposite direction at that end, continuing
        with any leftover distance.

        Args:
            position: Current road position.
            distance_m: Non-negative distance to travel.
        """
        if distance_m < 0:
            raise ValueError(f"distance must be non-negative, got {distance_m}")
        x = position.x
        lane = position.lane
        remaining = distance_m
        # Each pass consumes the distance to the current end; the loop
        # terminates because the road has positive length.
        while True:
            direction = self.direction_of_lane(lane)
            to_end = (self.length_m - x) if direction > 0 else x
            if remaining <= to_end:
                x += direction * remaining
                return LanePosition(x=x, lane=lane)
            remaining -= to_end
            x = self.length_m if direction > 0 else 0.0
            lane = self.opposite_lane(lane)

    def _check_lane(self, lane: int) -> None:
        if not 0 <= lane < self.total_lanes:
            raise ValueError(
                f"lane {lane} outside [0, {self.total_lanes})"
            )
