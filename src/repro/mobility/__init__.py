"""Mobility substrate: highway geometry, epoch mobility, routes, traces."""

from .epoch_model import EpochMobilityModel, generate_highway_trajectory
from .highway import HighwayGeometry, LanePosition
from .routes import (
    ConvoyLayout,
    RouteSpec,
    build_convoy,
    campus_route,
    highway_route,
    polyline_route,
    route_for_environment,
    rural_route,
    urban_route,
)
from .trace import PiecewiseLinearTrajectory, Waypoint, distance_between

__all__ = [
    "EpochMobilityModel",
    "generate_highway_trajectory",
    "HighwayGeometry",
    "LanePosition",
    "ConvoyLayout",
    "RouteSpec",
    "build_convoy",
    "campus_route",
    "highway_route",
    "polyline_route",
    "route_for_environment",
    "rural_route",
    "urban_route",
    "PiecewiseLinearTrajectory",
    "Waypoint",
    "distance_between",
]
