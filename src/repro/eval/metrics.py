"""Detection metrics (paper Eqs. 10–13).

For one normal node in one detection period:

* **Detection rate** — flagged illegitimate identities over all
  illegitimate identities among the node's heard neighbours (Eq. 10);
* **False positive rate** — flagged legitimate identities over all
  legitimate neighbours (Eq. 11).

The run-level averages (Eqs. 12–13) are plain means over every
(node, period) outcome.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple

from ..sim.simulator import GroundTruth

__all__ = ["PeriodOutcome", "evaluate_flags", "average_rates"]


@dataclass(frozen=True)
class PeriodOutcome:
    """Confusion counts for one (node, detection period).

    Attributes:
        node: The detecting normal node.
        period_index: Which detection period this is.
        true_flagged: Correctly flagged illegitimate identities
            (:math:`N_{T,k}`).
        total_illegitimate: Illegitimate identities among heard
            neighbours (:math:`N^m_{i,k} + \\sum_j N^s_j`).
        false_flagged: Wrongly flagged legitimate identities
            (:math:`N_{F,k}`).
        total_legitimate: Legitimate heard neighbours (:math:`N^n_{i,k}`).
    """

    node: str
    period_index: int
    true_flagged: int
    total_illegitimate: int
    false_flagged: int
    total_legitimate: int

    def __post_init__(self) -> None:
        if self.true_flagged > self.total_illegitimate:
            raise ValueError(
                f"true flags ({self.true_flagged}) exceed illegitimate "
                f"population ({self.total_illegitimate})"
            )
        if self.false_flagged > self.total_legitimate:
            raise ValueError(
                f"false flags ({self.false_flagged}) exceed legitimate "
                f"population ({self.total_legitimate})"
            )

    @property
    def detection_rate(self) -> Optional[float]:
        """Eq. 10; None when the node heard no illegitimate identities."""
        if self.total_illegitimate == 0:
            return None
        return self.true_flagged / self.total_illegitimate

    @property
    def false_positive_rate(self) -> Optional[float]:
        """Eq. 11; None when the node heard no legitimate neighbours."""
        if self.total_legitimate == 0:
            return None
        return self.false_flagged / self.total_legitimate


def evaluate_flags(
    node: str,
    period_index: int,
    flagged: Iterable[str],
    heard: Iterable[str],
    truth: GroundTruth,
) -> PeriodOutcome:
    """Score one detection against ground truth.

    Args:
        node: The detecting node (excluded from its own populations).
        period_index: Detection period number.
        flagged: Identities the detector accused.
        heard: Every identity the node heard during the window
            (the neighbour population of Eqs. 10–11).
        truth: Ground-truth labels from the simulation.

    Returns:
        The period's confusion counts.
    """
    heard_set = {str(i) for i in heard} - {node}
    flagged_set = {str(i) for i in flagged} & heard_set
    illegitimate = {i for i in heard_set if i in truth.illegitimate_ids}
    legitimate = {i for i in heard_set if truth.is_legitimate(i)}
    return PeriodOutcome(
        node=node,
        period_index=period_index,
        true_flagged=len(flagged_set & illegitimate),
        total_illegitimate=len(illegitimate),
        false_flagged=len(flagged_set & legitimate),
        total_legitimate=len(legitimate),
    )


def average_rates(
    outcomes: Sequence[PeriodOutcome],
) -> Tuple[Optional[float], Optional[float]]:
    """Run-level averages (Eqs. 12–13).

    Periods where a rate is undefined (empty population) are excluded
    from that rate's mean, mirroring how the paper's per-node averages
    only cover nodes that actually face the relevant population.

    Returns:
        ``(mean detection rate, mean false positive rate)``; either may
        be ``None`` when undefined for every period.
    """
    drs = [o.detection_rate for o in outcomes if o.detection_rate is not None]
    fprs = [
        o.false_positive_rate
        for o in outcomes
        if o.false_positive_rate is not None
    ]
    mean_dr = sum(drs) / len(drs) if drs else None
    mean_fpr = sum(fprs) / len(fprs) if fprs else None
    return mean_dr, mean_fpr
