"""Evaluation harness: metrics, runners, training, experiments."""

from .metrics import PeriodOutcome, average_rates, evaluate_flags
from .parallel import (
    Checkpoint,
    ParallelDefaults,
    TaskError,
    TaskSpec,
    derive_seed,
    get_parallel_defaults,
    run_tasks,
    set_parallel_defaults,
)
from .reporting import format_value, render_table
from .runner import detection_times, heard_in_window, run_cpvsad, run_voiceprint, run_xiao
from .training import (
    TrainingCorpus,
    TrainingPoint,
    collect_training_corpus,
    train_boundary,
)

__all__ = [
    "PeriodOutcome",
    "average_rates",
    "evaluate_flags",
    "Checkpoint",
    "ParallelDefaults",
    "TaskError",
    "TaskSpec",
    "derive_seed",
    "get_parallel_defaults",
    "run_tasks",
    "set_parallel_defaults",
    "format_value",
    "render_table",
    "detection_times",
    "heard_in_window",
    "run_cpvsad",
    "run_voiceprint",
    "run_xiao",
    "TrainingCorpus",
    "TrainingPoint",
    "collect_training_corpus",
    "train_boundary",
]
