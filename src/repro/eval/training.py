"""Offline threshold training (paper Section V-B-2, Fig. 10).

The decision boundary ``D = k * den + b`` is trained on labelled
(density, normalised DTW distance) points harvested from simulations at
several traffic densities: red points are distances between two Sybil
identities of the *same* attacker; blue points are everything else
(normal–normal, normal–Sybil, and Sybil pairs of different attackers).
LDA on those two clouds gives the line; the paper reports
``k = 0.00054, b = 0.0483`` from its own NS-2 training runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..core.density import DensityEstimator
from ..core.detector import DetectorConfig, VoiceprintDetector
from ..core.lda import DecisionLine, fit_decision_line
from ..core.thresholds import ConstantThreshold  # noqa: F401  (re-export convenience)
from ..sim.scenario import ScenarioConfig
from ..sim.simulator import HighwaySimulator, SimulationResult
from .parallel import TaskSpec, run_tasks
from .runner import detection_times, heard_in_window

__all__ = ["TrainingPoint", "TrainingCorpus", "collect_training_corpus", "train_boundary"]


@dataclass(frozen=True)
class TrainingPoint:
    """One labelled pairwise comparison.

    Attributes:
        density_vhls_per_km: Verifier-estimated density at measurement.
        distance: Min–max-normalised DTW distance of the pair (Eq. 8).
        raw_distance: Per-step DTW distance before min–max, for training
            ``threshold_on="raw"`` detectors.
        is_sybil_pair: Whether both identities belong to one attacker.
    """

    density_vhls_per_km: float
    distance: float
    raw_distance: float
    is_sybil_pair: bool


@dataclass
class TrainingCorpus:
    """All labelled points harvested across the training sweep."""

    points: List[TrainingPoint] = field(default_factory=list)

    def _select(self, sybil: bool, raw: bool) -> np.ndarray:
        return np.array(
            [
                (
                    p.density_vhls_per_km,
                    p.raw_distance if raw else p.distance,
                )
                for p in self.points
                if p.is_sybil_pair == sybil
            ],
            dtype=float,
        ).reshape(-1, 2)

    def positives(self, raw: bool = False) -> np.ndarray:
        """Sybil-pair points as an ``(n, 2)`` (density, distance) array."""
        return self._select(sybil=True, raw=raw)

    def negatives(self, raw: bool = False) -> np.ndarray:
        """Non-Sybil-pair points as an ``(n, 2)`` array."""
        return self._select(sybil=False, raw=raw)


def _label_pair(result: SimulationResult, a: str, b: str) -> bool:
    """True when identities ``a`` and ``b`` share a physical attacker."""
    attacker_a = result.truth.attacker_of(a)
    attacker_b = result.truth.attacker_of(b)
    return attacker_a is not None and attacker_a == attacker_b


def _training_cell(
    config: ScenarioConfig,
    det_config: DetectorConfig,
    verifiers_per_run: int,
    recorded_nodes: int,
    require_sybil_pairs: bool,
) -> List[TrainingPoint]:
    """Harvest one (density, seed) run's labelled points.

    Module-level so the training sweep can fan cells out across the
    parallel grid runner; the points of one cell are appended in the
    same (verifier, period, pair) order the serial loop used.
    """
    result = HighwaySimulator(config, recorded_nodes=recorded_nodes).run()
    verifiers = result.recorded_nodes[:verifiers_per_run]
    times = detection_times(
        config.sim_time_s,
        det_config.observation_time,
        config.detection_period_s,
    )
    points: List[TrainingPoint] = []
    for node in verifiers:
        series_map = result.series_at(node)
        detector = VoiceprintDetector(
            threshold=ConstantThreshold(0.0), config=det_config
        )
        for series in series_map.values():
            detector.load_series(series)
        estimator = DensityEstimator(max_range_m=result.max_range_m)
        for t in times:
            estimator.reset_period()
            estimator.hear_all(
                heard_in_window(
                    series_map, t - config.density_estimate_period_s, t
                )
            )
            density_est = estimator.estimate() * 1000.0
            report = detector.detect(density=density_est, now=t)
            report_points = [
                TrainingPoint(
                    density_vhls_per_km=density_est,
                    distance=distance,
                    raw_distance=report.raw_distances[(a, b)],
                    is_sybil_pair=_label_pair(result, a, b),
                )
                for (a, b), distance in report.distances.items()
            ]
            if require_sybil_pairs and not any(
                p.is_sybil_pair for p in report_points
            ):
                continue
            points.extend(report_points)
    return points


def collect_training_corpus(
    densities_vhls_per_km: Sequence[float],
    base_config: Optional[ScenarioConfig] = None,
    runs_per_density: int = 1,
    verifiers_per_run: int = 4,
    recorded_nodes: int = 8,
    detector_config: Optional[DetectorConfig] = None,
    seed: int = 0,
    require_sybil_pairs: bool = True,
    workers: Optional[int] = None,
    task_timeout: Optional[float] = None,
) -> TrainingCorpus:
    """Run the training sweep and harvest labelled pairwise distances.

    The paper trains on 5 runs per density across 10–100 vhls/km;
    smaller sweeps train a usable boundary in seconds and the defaults
    here are sized for that (the Fig. 10 bench uses a fuller sweep).
    Each (density, run) cell is independent; the sweep fans out across
    ``workers`` processes and reassembles the corpus in cell order, so
    the trained boundary is identical at any worker count.

    Args:
        densities_vhls_per_km: Densities to simulate.
        base_config: Scenario template (Table V defaults if omitted).
        runs_per_density: Independent runs (seeds) per density.
        verifiers_per_run: Verifiers sampled per run.
        recorded_nodes: Receivers recorded per run (memory knob).
        detector_config: Comparison-phase tunables.
        seed: Sweep-level base seed.
        require_sybil_pairs: Drop detection periods whose comparison
            contains no Sybil pair.  Eq. 8's min–max forces some pair to
            distance 0 in *every* report; in an attacker-free report
            that pair is an innocent one, and keeping such reports would
            teach the classifier that innocent pairs live at 0.
        workers: Grid-cell pool width (default: process defaults /
            ``REPRO_EVAL_WORKERS``; serial without either).
        task_timeout: Per-cell deadline in seconds.

    Returns:
        The labelled :class:`TrainingCorpus`.
    """
    template = base_config or ScenarioConfig()
    det_config = detector_config or DetectorConfig(
        observation_time=template.observation_time_s
    )
    tasks: List[TaskSpec] = []
    run_seed = seed
    for density in densities_vhls_per_km:
        for run_index in range(runs_per_density):
            run_seed += 1
            config = template.with_density(density).with_seed(run_seed)
            tasks.append(
                TaskSpec(
                    key=f"d{float(density):g}:r{run_index}:s{run_seed}",
                    fn=_training_cell,
                    args=(
                        config,
                        det_config,
                        verifiers_per_run,
                        recorded_nodes,
                        require_sybil_pairs,
                    ),
                )
            )
    cell_points = run_tasks(tasks, workers=workers, task_timeout=task_timeout)
    corpus = TrainingCorpus()
    for task in tasks:
        corpus.points.extend(cell_points[task.key])
    return corpus


def train_boundary(
    corpus: TrainingCorpus,
    on: str = "normalized",
    max_pair_fpr: float = 0.003,
) -> DecisionLine:
    """Fit the decision line on a harvested corpus.

    Args:
        corpus: Labelled training points.
        on: ``"normalized"`` trains against Eq. 8 distances (for the
            paper-default detector); ``"raw"`` trains against per-step
            DTW costs (for ``threshold_on="raw"`` detectors).
        max_pair_fpr: Pair-level false-positive budget per density bin.

    Raises:
        ValueError: If either class is empty (e.g. the sweep had no
            attackers, or every pair was filtered out).
    """
    if on not in ("normalized", "raw"):
        raise ValueError(f"on must be 'normalized' or 'raw', got {on!r}")
    raw = on == "raw"
    return fit_decision_line(
        corpus.negatives(raw=raw),
        corpus.positives(raw=raw),
        max_pair_fpr=max_pair_fpr,
    )
