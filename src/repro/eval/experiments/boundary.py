"""E5 — Fig. 10: training the density-adaptive decision boundary.

The paper runs several simulations per traffic density, records every
pairwise DTW distance labelled by ground truth (red: same-attacker
Sybil pairs; blue: everything else), and draws the separating line the
confirmation phase will use; their training yields ``k = 0.00054``,
``b = 0.0483``.  This experiment reruns that pipeline on our simulator
and reports the fitted line plus its training-set operating point.

The absolute ``(k, b)`` need not match the paper's: they are properties
of the distance distribution, which depends on the channel simulator.
What must reproduce is the *structure* — Sybil pairs concentrated near
zero, a usable separating line, and a threshold that shifts with
density.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ...core.lda import DecisionLine
from ...core.thresholds import PAPER_INTERCEPT, PAPER_SLOPE
from ...sim.scenario import ScenarioConfig
from ..training import TrainingCorpus, collect_training_corpus, train_boundary

__all__ = ["BoundaryResult", "run_boundary_training"]


@dataclass(frozen=True)
class BoundaryResult:
    """A trained boundary with its training-set quality numbers.

    Attributes:
        line: The fitted ``D = k * den + b`` line.
        paper_line: The paper's reported (k, b) for reference.
        n_positive: Sybil-pair training points.
        n_negative: Other training points.
        training_tpr: Fraction of Sybil pairs under the line.
        training_fpr: Fraction of other pairs under the line.
        corpus: The raw labelled points (for scatter plotting).
    """

    line: DecisionLine
    paper_line: Tuple[float, float]
    n_positive: int
    n_negative: int
    training_tpr: float
    training_fpr: float
    corpus: TrainingCorpus


def _rates_under_line(
    line: DecisionLine, points: np.ndarray
) -> float:
    if points.size == 0:
        return float("nan")
    density = points[:, 0]
    distance = points[:, 1]
    under = distance <= line.k * density + line.b
    return float(np.mean(under))


def run_boundary_training(
    densities_vhls_per_km: Sequence[float] = (10, 30, 50, 80, 100),
    runs_per_density: int = 1,
    base_config: Optional[ScenarioConfig] = None,
    on: str = "normalized",
    seed: int = 100,
) -> BoundaryResult:
    """Regenerate Fig. 10: sweep, label, fit, report.

    Args:
        densities_vhls_per_km: Training densities (paper: 10–100, five
            runs each; the default trades runs for wall-clock).
        runs_per_density: Independent runs per density.
        base_config: Scenario template.
        on: Train against Eq. 8-normalised (paper) or raw distances.
        seed: Sweep seed.
    """
    corpus = collect_training_corpus(
        densities_vhls_per_km,
        base_config=base_config,
        runs_per_density=runs_per_density,
        seed=seed,
    )
    line = train_boundary(corpus, on=on)
    raw = on == "raw"
    positives = corpus.positives(raw=raw)
    negatives = corpus.negatives(raw=raw)
    return BoundaryResult(
        line=line,
        paper_line=(PAPER_SLOPE, PAPER_INTERCEPT),
        n_positive=int(positives.shape[0]),
        n_negative=int(negatives.shape[0]),
        training_tpr=_rates_under_line(line, positives),
        training_fpr=_rates_under_line(line, negatives),
        corpus=corpus,
    )
