"""E11 — Table I: the RSSI-method comparison matrix.

The paper's Table I compares eight RSSI-based detection schemes along
five axes: assumed radio propagation model, centralised vs
decentralised, cooperative vs independent, infrastructure support, and
mobility class.  We regenerate it from the code's own metadata
(:data:`repro.baselines.METHOD_MATRIX`) so the bench output documents
what each implemented baseline assumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ...baselines import METHOD_MATRIX

__all__ = ["Table1Row", "run_table1"]


@dataclass(frozen=True)
class Table1Row:
    """One method's assumption profile (one Table I row).

    Attributes:
        method: The scheme's label (citation key as in the paper).
        propagation_model: Assumed RPM ("Model-free" for Voiceprint).
        centralisation: ``"C"`` or ``"D"`` (``"-"`` when n/a).
        cooperation: ``"C"``ooperative / ``"I"``ndependent.
        needs_infrastructure: Whether RSU/landmark support is required.
        mobility: The mobility regime the scheme tolerates.
        implemented: Whether this repository implements the scheme.
    """

    method: str
    propagation_model: str
    centralisation: str
    cooperation: str
    needs_infrastructure: bool
    mobility: str
    implemented: bool


#: Baselines this repository actually implements.
_IMPLEMENTED = {
    "Demirbas [14]",
    "Wang [15]",
    "Lv [16]",
    "Bouassida [17]",
    "Chen [18]",
    "Xiao [20]",
    "Yu [19] (CPVSAD)",
    "Voiceprint",
}


def run_table1() -> List[Table1Row]:
    """Regenerate Table I from the baselines' metadata."""
    rows = []
    for method, (rpm, cd, ci, soi, mobility) in METHOD_MATRIX.items():
        rows.append(
            Table1Row(
                method=method,
                propagation_model=rpm,
                centralisation=cd,
                cooperation=ci,
                needs_infrastructure=soi,
                mobility=mobility,
                implemented=method in _IMPLEMENTED,
            )
        )
    return rows
