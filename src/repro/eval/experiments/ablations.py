"""E12 — Ablations of Voiceprint's design choices.

Each ablation switches off (or replaces) one component and measures the
Sybil/other separation it was responsible for, using the field-test
scenario (clean geometry, unambiguous ground truth) and targeted
attackers:

* **Z-score vs nothing vs per-series vs common scale** under TX-power
  spoofing — Eq. 7's reason to exist (Assumption 3).
* **DTW band radius** — how much unconstrained warping blurs the
  Sybil/neighbour contrast, and what the band costs on Sybil pairs.
* **DTW vs Euclidean** under packet loss — Section IV-B's argument for
  DTW (unequal series lengths break point-wise metrics outright).
* **Power-control smart attacker** — the paper's declared limitation:
  per-packet power randomisation should destroy detection.
* **Multi-period confirmation** — Section VI-B's closing suggestion.

Every ablation reports a *margin*: the smallest non-Sybil distance
divided by the largest Sybil distance (> 1 means perfect separation in
that scenario).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np

from ...attack.sybil import ConstantPower, PerPacketRandomPower, SybilAttacker, SybilIdentity
from ...core.distances import euclidean_distance
from ...core.fastdtw import dtw_banded_fast, fastdtw
from ...core.normalization import zscore
from ...sim.fieldtest import (
    FieldTestConfig,
    FieldTestResult,
    MALICIOUS_ID,
    SYBIL_IDS,
    default_field_attacker,
    run_field_test,
)

__all__ = ["AblationRow", "run_ablations", "separation_margin"]


@dataclass(frozen=True)
class AblationRow:
    """One ablation variant's separation quality.

    Attributes:
        group: Which design choice the row belongs to.
        variant: The setting under test.
        sybil_max: Largest same-radio pair distance.
        other_min: Smallest cross-pair distance.
        margin: ``other_min / sybil_max`` (> 1 → perfect separation).
        note: Free-form context.
    """

    group: str
    variant: str
    sybil_max: float
    other_min: float
    note: str = ""

    @property
    def margin(self) -> float:
        if self.sybil_max <= 0:
            return float("inf")
        return self.other_min / self.sybil_max


def separation_margin(
    distances: Dict[Tuple[str, str], float],
    sybil_group: Tuple[str, ...],
) -> Tuple[float, float]:
    """(largest within-group, smallest cross-group) distance."""
    within = [
        d
        for (a, b), d in distances.items()
        if a in sybil_group and b in sybil_group
    ]
    cross = [
        d
        for (a, b), d in distances.items()
        if (a in sybil_group) != (b in sybil_group)
    ]
    if not within or not cross:
        raise ValueError("scenario produced no comparable pairs")
    return max(within), min(cross)


def _collect_windows(
    result: FieldTestResult,
    recorder: str = "3",
    start: float = 20.0,
    end: float = 100.0,
    min_samples: int = 60,
) -> Dict[str, np.ndarray]:
    series_map = result.observations[recorder]
    windows = {}
    for identity, series in series_map.items():
        window = series.window(start, end)
        if len(window) >= min_samples:
            windows[identity] = window.values
    return windows


def _pairwise(
    windows: Dict[str, np.ndarray],
    normalise: Callable[[Dict[str, np.ndarray]], Dict[str, np.ndarray]],
    measure: Callable[[np.ndarray, np.ndarray], float],
) -> Dict[Tuple[str, str], float]:
    normalised = normalise(windows)
    identities = sorted(normalised)
    out: Dict[Tuple[str, str], float] = {}
    for i, a in enumerate(identities):
        for b in identities[i + 1 :]:
            out[(a, b)] = measure(normalised[a], normalised[b])
    return out


def _norm_none(windows: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    return dict(windows)


def _norm_center(windows: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    return {k: v - v.mean() for k, v in windows.items()}


def _norm_per_series(windows: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    return {k: zscore(v, 3.0) for k, v in windows.items()}


def _norm_common(windows: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    sigmas = [float(np.std(v)) for v in windows.values()]
    scale = 3.0 * max(float(np.median(sigmas)), 1e-9)
    return {k: (v - v.mean()) / scale for k, v in windows.items()}


def _banded(radius: int) -> Callable[[np.ndarray, np.ndarray], float]:
    def measure(x: np.ndarray, y: np.ndarray) -> float:
        result = dtw_banded_fast(x, y, radius)
        return result.distance / len(result.path)

    return measure


def _unbounded_fastdtw(x: np.ndarray, y: np.ndarray) -> float:
    result = fastdtw(x, y, radius=1)
    return result.distance / len(result.path)


def _euclidean_truncated(x: np.ndarray, y: np.ndarray) -> float:
    n = min(x.size, y.size)
    return euclidean_distance(x[:n], y[:n]) / max(n, 1)


def run_ablations(
    environment: str = "rural",
    duration_s: float = 120.0,
    seed: int = 17,
) -> List[AblationRow]:
    """Run the full ablation suite and return one row per variant."""
    sybil_group = (MALICIOUS_ID,) + SYBIL_IDS
    rows: List[AblationRow] = []

    # --- Normalisation under power spoofing (sybils at 23/17 dBm).
    spoofed = run_field_test(
        FieldTestConfig(environment=environment, duration_s=duration_s, seed=seed)
    )
    windows = _collect_windows(spoofed)
    for variant, norm in (
        ("none", _norm_none),
        ("center-only", _norm_center),
        ("per-series z-score (Eq.7)", _norm_per_series),
        ("common-scale z-score", _norm_common),
    ):
        distances = _pairwise(windows, norm, _banded(10))
        sybil_max, other_min = separation_margin(distances, sybil_group)
        rows.append(
            AblationRow(
                group="normalisation",
                variant=variant,
                sybil_max=sybil_max,
                other_min=other_min,
                note="sybil TX powers spoofed to 23/17 dBm",
            )
        )

    # --- DTW band radius.
    for radius in (2, 5, 10, 20, 40):
        distances = _pairwise(windows, _norm_common, _banded(radius))
        sybil_max, other_min = separation_margin(distances, sybil_group)
        rows.append(
            AblationRow(
                group="dtw-band",
                variant=f"band={radius}",
                sybil_max=sybil_max,
                other_min=other_min,
            )
        )
    distances = _pairwise(windows, _norm_common, _unbounded_fastdtw)
    sybil_max, other_min = separation_margin(distances, sybil_group)
    rows.append(
        AblationRow(
            group="dtw-band",
            variant="unbanded fastdtw",
            sybil_max=sybil_max,
            other_min=other_min,
        )
    )

    # --- DTW vs Euclidean (truncation stands in for equal length).
    distances = _pairwise(windows, _norm_common, _euclidean_truncated)
    sybil_max, other_min = separation_margin(distances, sybil_group)
    rows.append(
        AblationRow(
            group="measure",
            variant="euclidean (truncated)",
            sybil_max=sybil_max,
            other_min=other_min,
            note="point-wise metric; unequal lengths truncated",
        )
    )

    # --- The power-control smart attacker (paper's future work).
    smart_config = FieldTestConfig(
        environment=environment, duration_s=duration_s, seed=seed + 1
    )
    base_attacker = default_field_attacker(smart_config)
    smart_attacker = SybilAttacker(
        node_id=MALICIOUS_ID,
        own_power=ConstantPower(20.0),
        identities=[
            SybilIdentity(
                identity=s.identity,
                power=PerPacketRandomPower(14.0, 26.0),
                claimed_offset=s.claimed_offset,
            )
            for s in base_attacker.identities
        ],
    )
    smart = run_field_test(smart_config, attacker=smart_attacker)
    smart_windows = _collect_windows(smart)
    distances = _pairwise(smart_windows, _norm_common, _banded(10))
    sybil_max, other_min = separation_margin(distances, sybil_group)
    rows.append(
        AblationRow(
            group="smart-attacker",
            variant="per-packet power control",
            sybil_max=sybil_max,
            other_min=other_min,
            note="paper's declared limitation; margin should collapse",
        )
    )
    return rows
