"""E4 — Fig. 9: the DTW worked example.

The paper aligns ``X = {1, 1, 4, 1, 1}`` with ``Y = {2, 2, 2, 4, 2, 2}``
and prints a distance of 9.  Running the recursion exactly as Eqs. 3–6
define it (squared local cost) yields **5**, with the warp path
``(1,1) (1,2) (2,3) (3,4) (4,5) (5,6)``; an absolute-difference local
cost also yields 5.  The figure evidently uses a different (unstated)
local cost or counts cells differently; the discrepancy has no bearing
on detection, where only the relative ordering of distances survives
Eq. 8's min–max.  This experiment records both the equations' answer
and the figure's printed value so the bench output makes the
discrepancy explicit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ...core.distances import absolute_cost
from ...core.dtw import Cell, dtw, dtw_windowed

__all__ = ["DtwExampleResult", "run_dtw_example", "PAPER_X", "PAPER_Y", "PAPER_CLAIMED_DISTANCE"]

PAPER_X = (1.0, 1.0, 4.0, 1.0, 1.0)
PAPER_Y = (2.0, 2.0, 2.0, 4.0, 2.0, 2.0)
#: The value printed in Fig. 9.
PAPER_CLAIMED_DISTANCE = 9.0


@dataclass(frozen=True)
class DtwExampleResult:
    """Outcome of the worked example under both local costs.

    Attributes:
        squared_distance: Eqs. 3–6 verbatim (squared local cost).
        absolute_distance: Same recursion with ``|x - y|`` local cost.
        path: Optimal warp path under the squared cost.
        paper_claimed: The figure's printed value (9).
    """

    squared_distance: float
    absolute_distance: float
    path: Tuple[Cell, ...]
    paper_claimed: float

    @property
    def matches_paper(self) -> bool:
        """Whether either cost reproduces the figure's number."""
        return PAPER_CLAIMED_DISTANCE in (
            self.squared_distance,
            self.absolute_distance,
        )


def run_dtw_example() -> DtwExampleResult:
    """Run Fig. 9's alignment and report all candidate readings."""
    squared = dtw(PAPER_X, PAPER_Y)
    n, m = len(PAPER_X), len(PAPER_Y)
    full_window = [(i, j) for i in range(1, n + 1) for j in range(1, m + 1)]
    absolute = dtw_windowed(PAPER_X, PAPER_Y, full_window, cost_fn=absolute_cost)
    return DtwExampleResult(
        squared_distance=squared.distance,
        absolute_distance=absolute.distance,
        path=squared.path,
        paper_claimed=PAPER_CLAIMED_DISTANCE,
    )
