"""Experiment harness: one callable per paper table/figure.

| Experiment | Paper artefact | Entry point |
|---|---|---|
| E1 | Fig. 5 / Observation 1 | :func:`run_observation1` |
| E2 | Table IV | :func:`run_table4` |
| E3 | Figs. 6–7 / Observation 3 | :func:`run_observation3` |
| E4 | Fig. 9 (DTW example) | :func:`run_dtw_example` |
| E5 | Fig. 10 (LDA boundary) | :func:`run_boundary_training` |
| E6 | Fig. 11a | :func:`run_fig11a` |
| E7 | Fig. 11b | :func:`run_fig11b` |
| E8 | Fig. 13 (field test) | :func:`run_fig13` |
| E9 | Fig. 14 (red-light FP) | :func:`run_fig14` |
| E10 | §VI-B timing | :func:`run_timing` |
| E11 | Table I | :func:`run_table1` |
| E12 | design ablations | :func:`run_ablations` |
| E13 | future work: SCH beacon rates | :func:`run_beacon_rate_study` |
"""

from .ablations import AblationRow, run_ablations, separation_margin
from .beacon_rate import BeaconRateRow, run_beacon_rate_study
from .boundary import BoundaryResult, run_boundary_training
from .detection import Fig11Row, run_fig11, run_fig11a, run_fig11b
from .dtw_example import DtwExampleResult, run_dtw_example
from .field import (
    FieldAreaResult,
    FieldDetection,
    Fig14Result,
    run_fig13,
    run_fig14,
)
from .observation1 import Observation1Row, run_observation1
from .observation3 import Observation3Result, run_observation3
from .table1 import Table1Row, run_table1
from .table4 import Table4Row, run_table4
from .timing import TimingResult, run_timing

__all__ = [
    "AblationRow",
    "run_ablations",
    "separation_margin",
    "BeaconRateRow",
    "run_beacon_rate_study",
    "BoundaryResult",
    "run_boundary_training",
    "Fig11Row",
    "run_fig11",
    "run_fig11a",
    "run_fig11b",
    "DtwExampleResult",
    "run_dtw_example",
    "FieldAreaResult",
    "FieldDetection",
    "Fig14Result",
    "run_fig13",
    "run_fig14",
    "Observation1Row",
    "run_observation1",
    "Observation3Result",
    "run_observation3",
    "Table1Row",
    "run_table1",
    "Table4Row",
    "run_table4",
    "TimingResult",
    "run_timing",
]
