"""E1 — Fig. 5 / Observation 1: model-based ranging goes wrong.

Scenario 1 replica: two vehicles 140 m apart exchange 10 Hz beacons.
The experiment reports, per measurement period, the RSSI distribution's
mean and deviation, and the distance a free-space (FSPL) and a two-ray
ground (TRGP) inversion would estimate from the mean RSSI — the numbers
the paper uses to demonstrate that predefined-model ranging misses the
true 140 m badly (281.5 / 171.2 m under FSPL, 263.9 / 205.8 m under
TRGP across its two sessions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ...radio.base import LinkBudget
from ...radio.inverse import invert_free_space, invert_two_ray
from ...sim.observations import (
    moving_pair_measurement,
    stationary_pair_measurement,
)

__all__ = ["Observation1Row", "run_observation1"]


@dataclass(frozen=True)
class Observation1Row:
    """One measurement period's distribution and ranging estimates.

    Attributes:
        label: Period description.
        n_samples: Samples collected.
        mean_dbm: Distribution mean.
        std_db: Distribution standard deviation.
        fspl_estimate_m: Distance FSPL inversion attributes to the mean.
        trgp_estimate_m: Distance two-ray inversion attributes to it.
        true_distance_m: Actual separation.
    """

    label: str
    n_samples: int
    mean_dbm: float
    std_db: float
    fspl_estimate_m: float
    trgp_estimate_m: float
    true_distance_m: float

    @property
    def fspl_error_m(self) -> float:
        """Absolute FSPL ranging error."""
        return abs(self.fspl_estimate_m - self.true_distance_m)

    @property
    def trgp_error_m(self) -> float:
        """Absolute two-ray ranging error."""
        return abs(self.trgp_estimate_m - self.true_distance_m)


def run_observation1(
    distance_m: float = 140.0,
    duration_s: float = 600.0,
    eirp_dbm: float = 20.0,
    rx_gain_dbi: float = 7.0,
    n_moving_segments: int = 4,
    seed: int = 7,
) -> List[Observation1Row]:
    """Regenerate Fig. 5's panels.

    Two stationary sessions at different times of day (different
    shadowing states), plus randomly chosen one-minute segments of a
    moving session — all in the campus environment, as measured.

    Returns:
        One row per panel, stationary sessions first.
    """
    budget = LinkBudget(tx_power_dbm=eirp_dbm, rx_gain_dbi=rx_gain_dbi)
    rows: List[Observation1Row] = []
    # Two sessions ~35 minutes apart, mirroring 14:31 vs 15:06 starts.
    for index, start in enumerate((0.0, 2100.0)):
        series = stationary_pair_measurement(
            distance_m=distance_m,
            duration_s=duration_s,
            eirp_dbm=eirp_dbm,
            rx_gain_dbi=rx_gain_dbi,
            seed=seed,
            start_time=start,
        )
        mean = series.mean()
        rows.append(
            Observation1Row(
                label=f"stationary session {index + 1}",
                n_samples=len(series),
                mean_dbm=mean,
                std_db=series.std(),
                fspl_estimate_m=invert_free_space(mean, budget),
                trgp_estimate_m=invert_two_ray(mean, budget),
                true_distance_m=distance_m,
            )
        )

    moving = moving_pair_measurement(
        duration_s=duration_s,
        eirp_dbm=eirp_dbm,
        rx_gain_dbi=rx_gain_dbi,
        seed=seed + 1,
    )
    rng = np.random.default_rng(seed + 2)
    # The paper slices one-minute segments; shorter drives get
    # proportionally shorter segments rather than an error.
    segment_s = min(60.0, duration_s / 2.0)
    starts = rng.uniform(0.0, duration_s - segment_s, size=n_moving_segments)
    for index, start in enumerate(sorted(starts)):
        segment = moving.window(start, start + segment_s)
        mean = segment.mean()
        rows.append(
            Observation1Row(
                label=f"moving segment {index + 1}",
                n_samples=len(segment),
                mean_dbm=mean,
                std_db=segment.std(),
                fspl_estimate_m=invert_free_space(mean, budget),
                trgp_estimate_m=invert_two_ray(mean, budget),
                # The trailing receiver rides the same loop ~10 s
                # behind, i.e. ~35 m of path; the exact gap varies
                # around corners, so the nominal value is reported.
                true_distance_m=35.0,
            )
        )
    return rows
