"""E8/E9 — Fig. 13 (field test) and Fig. 14 (the red-light FP).

Section VI replica: the four-vehicle convoy drives the campus, rural,
urban and highway routes; normal node 3 runs Voiceprint once per
detection period with the field test's *constant* threshold
(k = 0.05046 at ~4 vhls/km).  The paper observed a 100 % detection rate
and a single false positive — at an urban red light, where all vehicles
sat still and the side-by-side normal node 2 became indistinguishable
from the attacker.

``run_fig14`` zooms into that false positive: it runs the urban drive,
finds detection periods where the convoy was (nearly) stationary, and
reports node 2's DTW distance to the malicious node inside and outside
those periods, plus the effect of the paper's suggested multi-period
confirmation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...core.confirmation import MultiPeriodConfirmer
from ...core.detector import DetectorConfig, VoiceprintDetector
from ...core.thresholds import ConstantThreshold, PAPER_FIELD_THRESHOLD
from ...obs.audit import default_audit_log, set_audit_context
from ...sim.fieldtest import FieldTestConfig, FieldTestResult, MALICIOUS_ID, run_field_test
from ..metrics import PeriodOutcome, average_rates, evaluate_flags
from ..parallel import TaskSpec, run_tasks

__all__ = [
    "FieldDetection",
    "FieldAreaResult",
    "run_fig13",
    "Fig14Result",
    "run_fig14",
]


@dataclass(frozen=True)
class FieldDetection:
    """One detection period at the recording node.

    Attributes:
        time_s: Detection instant.
        distances: Normalised pairwise DTW distances of the period.
        flagged: Identities under the threshold.
        outcome: Confusion counts vs ground truth.
        convoy_speed_mps: The malicious vehicle's speed at detection —
            near zero marks the red-light condition of Fig. 14.
    """

    time_s: float
    distances: Dict[Tuple[str, str], float]
    flagged: Tuple[str, ...]
    outcome: PeriodOutcome
    convoy_speed_mps: float


@dataclass
class FieldAreaResult:
    """One environment's drive (one Fig. 13 panel).

    Attributes:
        environment: Route label.
        detections: Per-period records.
        detection_rate: Average DR over the drive.
        false_positive_rate: Average FPR over the drive.
    """

    environment: str
    detections: List[FieldDetection] = field(default_factory=list)
    detection_rate: Optional[float] = None
    false_positive_rate: Optional[float] = None

    @property
    def n_false_positive_periods(self) -> int:
        """Periods in which any legitimate node was flagged."""
        return sum(1 for d in self.detections if d.outcome.false_flagged > 0)


def _detect_over_drive(
    result: FieldTestResult,
    recorder: str,
    detection_period_s: float,
    observation_time_s: float,
    threshold_value: float,
    min_samples: int,
) -> List[FieldDetection]:
    series_map = result.observations[recorder]
    detector = VoiceprintDetector(
        threshold=ConstantThreshold(threshold_value),
        config=DetectorConfig(
            observation_time=observation_time_s, min_samples=min_samples
        ),
    )
    for series in series_map.values():
        detector.load_series(series)
    detections: List[FieldDetection] = []
    t = observation_time_s
    period_index = 0
    duration = result.config.duration_s
    malicious = result.vehicles[MALICIOUS_ID]
    # Stamp audit bundles with who detected when (no-op unless auditing).
    auditing = default_audit_log() is not None
    while t <= duration + 1e-9:
        if auditing:
            set_audit_context(observer=recorder, period=period_index)
        report = detector.detect(density=4.0, now=t)
        heard = [
            identity
            for identity, series in series_map.items()
            if len(series.window(t - observation_time_s, t)) >= min_samples // 2
        ]
        outcome = evaluate_flags(
            recorder, period_index, report.sybil_ids, heard, result.truth
        )
        detections.append(
            FieldDetection(
                time_s=t,
                distances=dict(report.distances),
                flagged=tuple(sorted(report.sybil_ids)),
                outcome=outcome,
                convoy_speed_mps=malicious.trajectory.speed(t),
            )
        )
        period_index += 1
        t += detection_period_s
    if auditing:
        set_audit_context(observer=None, period=None)
    return detections


def _fig13_area(
    env: str,
    area_seed: int,
    duration_s: float,
    detection_period_s: float,
    observation_time_s: float,
    threshold: float,
    recorder: str,
    min_samples: int,
) -> FieldAreaResult:
    """One environment's drive + replay (one grid cell of Fig. 13)."""
    field_result = run_field_test(
        FieldTestConfig(environment=env, duration_s=duration_s, seed=area_seed)
    )
    detections = _detect_over_drive(
        field_result,
        recorder=recorder,
        detection_period_s=detection_period_s,
        observation_time_s=observation_time_s,
        threshold_value=threshold,
        min_samples=min_samples,
    )
    area = FieldAreaResult(environment=env, detections=detections)
    dr, fpr = average_rates([d.outcome for d in detections])
    area.detection_rate = dr
    area.false_positive_rate = fpr
    return area


def run_fig13(
    environments: Sequence[str] = ("campus", "rural", "urban", "highway"),
    duration_s: float = 300.0,
    detection_period_s: float = 60.0,
    observation_time_s: float = 20.0,
    threshold: float = PAPER_FIELD_THRESHOLD,
    recorder: str = "3",
    min_samples: int = 60,
    seed: int = 21,
    workers: Optional[int] = None,
    task_timeout: Optional[float] = None,
) -> List[FieldAreaResult]:
    """Regenerate Fig. 13: per-environment field-test detections.

    The paper's drives lasted 11–35 minutes with a one-minute detection
    period; the default five-minute drives keep unit economics sane
    while producing several periods per environment.  The four drives
    are independent (each seeds its own simulation), so they fan out
    across ``workers`` processes; results come back in environment
    order regardless of completion order.
    """
    tasks = [
        TaskSpec(
            key=env,
            fn=_fig13_area,
            args=(
                env,
                seed + index,
                duration_s,
                detection_period_s,
                observation_time_s,
                threshold,
                recorder,
                min_samples,
            ),
        )
        for index, env in enumerate(environments)
    ]
    area_results = run_tasks(tasks, workers=workers, task_timeout=task_timeout)
    return [area_results[env] for env in environments]


@dataclass(frozen=True)
class Fig14Result:
    """The red-light false-positive analysis.

    Attributes:
        stationary_periods: Detection times with the convoy (nearly)
            stopped.
        moving_periods: The rest.
        node2_distance_stationary: Mean normalised DTW distance between
            the malicious node and normal node 2 over stationary periods.
        node2_distance_moving: Same over moving periods.
        false_positives_single: FP periods under plain per-period
            detection.
        false_positives_stationary: FP periods among the stationary ones.
        false_positives_moving: FP periods among the moving ones.
        false_positives_confirmed: FP periods surviving the paper's
            suggested multi-period majority confirmation.
    """

    stationary_periods: Tuple[float, ...]
    moving_periods: Tuple[float, ...]
    node2_distance_stationary: Optional[float]
    node2_distance_moving: Optional[float]
    false_positives_single: int
    false_positives_stationary: int
    false_positives_moving: int
    false_positives_confirmed: int

    def fp_rate_stationary(self) -> Optional[float]:
        """FP-period rate while the convoy is stopped."""
        if not self.stationary_periods:
            return None
        return self.false_positives_stationary / len(self.stationary_periods)

    def fp_rate_moving(self) -> Optional[float]:
        """FP-period rate while the convoy is moving."""
        if not self.moving_periods:
            return None
        return self.false_positives_moving / len(self.moving_periods)


def run_fig14(
    duration_s: float = 420.0,
    detection_period_s: float = 30.0,
    observation_time_s: float = 20.0,
    threshold: float = PAPER_FIELD_THRESHOLD,
    confirmation_window: int = 3,
    seed: int = 33,
) -> Fig14Result:
    """Regenerate the Fig. 14 analysis on the urban route.

    The urban route's long red light parks the whole convoy; detection
    periods inside the dwell should show node 2's series collapsing
    onto the attacker's (the paper's false positive), and the
    multi-period confirmation should prune most such transients.
    """
    field_result = run_field_test(
        FieldTestConfig(environment="urban", duration_s=duration_s, seed=seed)
    )
    detections = _detect_over_drive(
        field_result,
        recorder="3",
        detection_period_s=detection_period_s,
        observation_time_s=observation_time_s,
        threshold_value=threshold,
        min_samples=60,
    )
    stationary: List[float] = []
    moving: List[float] = []
    node2_stat: List[float] = []
    node2_move: List[float] = []
    confirmer = MultiPeriodConfirmer(window=confirmation_window)
    fp_single = 0
    fp_stationary = 0
    fp_moving = 0
    fp_confirmed = 0
    for detection in detections:
        is_stationary = detection.convoy_speed_mps < 0.5
        (stationary if is_stationary else moving).append(detection.time_s)
        pair = tuple(sorted((MALICIOUS_ID, "2")))
        if pair in detection.distances:
            (node2_stat if is_stationary else node2_move).append(
                detection.distances[pair]
            )
        if detection.outcome.false_flagged > 0:
            fp_single += 1
            if is_stationary:
                fp_stationary += 1
            else:
                fp_moving += 1
        confirmed = confirmer.update_ids(detection.flagged)
        if any(identity in field_result.truth.normal_ids for identity in confirmed):
            fp_confirmed += 1
    return Fig14Result(
        stationary_periods=tuple(stationary),
        moving_periods=tuple(moving),
        node2_distance_stationary=(
            float(np.mean(node2_stat)) if node2_stat else None
        ),
        node2_distance_moving=(float(np.mean(node2_move)) if node2_move else None),
        false_positives_single=fp_single,
        false_positives_stationary=fp_stationary,
        false_positives_moving=fp_moving,
        false_positives_confirmed=fp_confirmed,
    )
