"""E10 — Section VI-B's computational-cost estimate.

The paper measures 0.1995 ms per pairwise comparison of two ≤200-sample
series and extrapolates ≈630 ms for a worst-case neighbourhood of 80
vehicles (3160 pairs), concluding the cost is affordable at a 20 s
detection period.  This experiment measures the same two quantities on
our implementation.  Absolute times differ (their OBU ran compiled code
on a 300 MHz MIPS; we run CPython on the host), but the *scaling* claim
— quadratic in neighbours, linear per pair, comfortably inside the
detection period — is what must hold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ...core.detector import DetectorConfig, VoiceprintDetector
from ...core.thresholds import ConstantThreshold
from ...core.timeseries import RSSITimeSeries
from ...obs.metrics import MetricsRegistry
from ...obs.timers import Stopwatch

__all__ = ["TimingResult", "run_timing"]

#: Values the paper reports (ms).
PAPER_PAIR_MS = 0.1995
PAPER_80_NEIGHBOURS_MS = 630.0


@dataclass(frozen=True)
class TimingResult:
    """Measured comparison costs.

    Attributes:
        pair_ms: Mean per-pair comparison time, 200-sample series.
        neighbours: Neighbour counts measured for full detections.
        full_detection_ms: Wall time of a full detection per count.
        paper_pair_ms: The paper's per-pair figure.
        paper_80_ms: The paper's 80-neighbour figure.
        pair_summary: Full histogram summary of the per-pair timings
            (count/sum/mean/min/max/p50/p95/p99) so Fig. 12 numbers and
            the metrics layer agree on one measurement path.
    """

    pair_ms: float
    neighbours: Tuple[int, ...]
    full_detection_ms: Tuple[float, ...]
    paper_pair_ms: float = PAPER_PAIR_MS
    paper_80_ms: float = PAPER_80_NEIGHBOURS_MS
    pair_summary: Optional[dict] = None

    def within_detection_period(self, period_s: float = 20.0) -> bool:
        """Whether the largest measured detection fits in one period."""
        return max(self.full_detection_ms) / 1000.0 < period_s


def _synthetic_neighbourhood(
    n_identities: int,
    n_samples: int,
    rng: np.random.Generator,
) -> List[RSSITimeSeries]:
    """Plausible RSSI series: smooth ramps plus correlated wiggles."""
    series = []
    t = np.arange(n_samples) * 0.1
    for index in range(n_identities):
        base = -70.0 + 10.0 * np.sin(2 * np.pi * t / 40.0 + rng.uniform(0, 6.28))
        wiggle = np.cumsum(rng.normal(0, 0.8, size=n_samples))
        wiggle -= np.linspace(0, wiggle[-1], n_samples)
        values = np.round(base + wiggle)
        series.append(RSSITimeSeries.from_values(f"n{index:03d}", values))
    return series


def run_timing(
    neighbour_counts: Tuple[int, ...] = (10, 20, 40, 80),
    n_samples: int = 200,
    pair_repeats: int = 50,
    detector_config: Optional[DetectorConfig] = None,
    seed: int = 3,
) -> TimingResult:
    """Measure per-pair and per-detection comparison cost.

    Args:
        neighbour_counts: Neighbourhood sizes for full detections
            (the paper's extreme case is 80).
        n_samples: Series length (20 s at 10 Hz → 200).
        pair_repeats: Pair-timing repetitions for a stable mean.
        detector_config: Detector tunables under test.
        seed: RNG seed for the synthetic neighbourhood.
    """
    rng = np.random.default_rng(seed)
    config = detector_config or DetectorConfig()
    # A private, always-enabled registry: the experiment's numbers come
    # from the same Stopwatch/histogram machinery the rest of the
    # system reports through, without touching the process-global state.
    registry = MetricsRegistry()
    pair_hist = registry.histogram("timing.pair_ms")
    detect_hist = registry.histogram("timing.detect_ms")

    detector = VoiceprintDetector(
        threshold=ConstantThreshold(0.05), config=config, registry=registry
    )
    pair = _synthetic_neighbourhood(2, n_samples, rng)
    x = pair[0].values
    y = pair[1].values
    for _ in range(pair_repeats):
        with Stopwatch(pair_hist):
            detector._pair_distance(x, y)
    pair_ms = pair_hist.summary()["mean"]
    assert pair_ms is not None

    detection_ms: List[float] = []
    for count in neighbour_counts:
        neighbourhood = _synthetic_neighbourhood(count, n_samples, rng)
        detector = VoiceprintDetector(
            threshold=ConstantThreshold(0.05), config=config, registry=registry
        )
        for series in neighbourhood:
            detector.load_series(series)
        with Stopwatch(detect_hist) as watch:
            detector.detect(density=count / 0.9)
        assert watch.elapsed_ms is not None
        detection_ms.append(watch.elapsed_ms)
    return TimingResult(
        pair_ms=pair_ms,
        neighbours=tuple(neighbour_counts),
        full_detection_ms=tuple(detection_ms),
        pair_summary=pair_hist.summary(),
    )
