"""E3 — Figs. 6–7 / Observation 3: Sybil streams share a voiceprint.

Scenario 3 replica: the four-vehicle convoy with one attacker
fabricating two Sybil identities.  Normal nodes 1 (ahead; field-test id
``4``) and 3 (behind) record every identity's RSSI series.  The
experiment exports the series themselves (for plotting) plus the
summary the observation rests on: pairwise DTW distances showing
malicious/Sybil streams nearly identical, the side-by-side normal
node similar-but-distinct, and everything else far away.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


from ...core.fastdtw import dtw_banded_fast
from ...core.normalization import zscore
from ...core.timeseries import RSSITimeSeries
from ...sim.fieldtest import FieldTestConfig, run_field_test

__all__ = ["Observation3Result", "run_observation3"]


@dataclass
class Observation3Result:
    """Recorded series and pairwise similarity at one normal node.

    Attributes:
        recorder: The recording node (paper plots nodes 1 and 3).
        series: identity → RSSI series over the drive.
        pair_distances: per-step banded-DTW distance between every
            identity pair's z-scored series.
        sybil_group: The identities actually sharing the attacker's
            radio (malicious id + Sybil ids).
    """

    recorder: str
    series: Dict[str, RSSITimeSeries]
    pair_distances: Dict[Tuple[str, str], float]
    sybil_group: Tuple[str, ...]

    def max_within_sybil(self) -> float:
        """Largest distance among same-radio streams (should be small)."""
        values = [
            d
            for (a, b), d in self.pair_distances.items()
            if a in self.sybil_group and b in self.sybil_group
        ]
        if not values:
            raise ValueError("no same-radio pairs were comparable")
        return max(values)

    def min_cross(self) -> float:
        """Smallest distance between a Sybil-group and an outside stream."""
        values = [
            d
            for (a, b), d in self.pair_distances.items()
            if (a in self.sybil_group) != (b in self.sybil_group)
        ]
        if not values:
            raise ValueError("no cross pairs were comparable")
        return min(values)


def run_observation3(
    environment: str = "campus",
    duration_s: float = 120.0,
    seed: int = 5,
) -> List[Observation3Result]:
    """Regenerate Figs. 6 and 7 at both recording nodes.

    Returns:
        Results for normal node 4 (the "normal node 1" ahead in Fig. 6)
        and normal node 3 (Fig. 7).
    """
    result = run_field_test(
        FieldTestConfig(environment=environment, duration_s=duration_s, seed=seed)
    )
    sybil_group = ("1", "101", "102")
    outputs: List[Observation3Result] = []
    for recorder in ("4", "3"):
        series_map = result.observations[recorder]
        usable = {
            identity: series
            for identity, series in series_map.items()
            if len(series) >= 20
        }
        normalised = {
            identity: zscore(series.values, 3.0)
            for identity, series in usable.items()
        }
        distances: Dict[Tuple[str, str], float] = {}
        identities = sorted(normalised)
        for i, a in enumerate(identities):
            for b in identities[i + 1 :]:
                alignment = dtw_banded_fast(normalised[a], normalised[b], 10)
                distances[(a, b)] = alignment.distance / len(alignment.path)
        outputs.append(
            Observation3Result(
                recorder=recorder,
                series=dict(usable),
                pair_distances=distances,
                sybil_group=sybil_group,
            )
        )
    return outputs
