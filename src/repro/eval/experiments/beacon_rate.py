"""E13 — the paper's first future-work item: SCH-boosted beacon rates.

Voiceprint's one operational cost is its observation time: at the CCH's
10 Hz cap, filling a ~200-sample voiceprint takes 20 s.  The paper's
conclusion proposes using the Service Channel, which has no strict
beacon-rate limit, to collect samples faster and shorten detection
latency.

This experiment quantifies that trade on the field-test scenario: sweep
(beacon rate × observation time), measure the Sybil/neighbour
separation margin each combination achieves, and find for each rate the
shortest observation time with perfect separation.  The expectation —
and the future-work item's premise — is that sample *count*, not
elapsed time, carries the voiceprint, so a 5× rate cuts the needed
window roughly 5×.  (It cannot cut it without limit: with too short a
window the channel barely evolves and everyone's series look alike —
the red-light effect in miniature.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...core.fastdtw import dtw_banded_fast
from ...sim.fieldtest import (
    FieldTestConfig,
    MALICIOUS_ID,
    SYBIL_IDS,
    run_field_test,
)
from .ablations import separation_margin

__all__ = ["BeaconRateRow", "run_beacon_rate_study"]


@dataclass(frozen=True)
class BeaconRateRow:
    """One (beacon rate, observation time) operating point.

    Attributes:
        beacon_rate_hz: Sampling rate (CCH: 10 Hz; SCH: higher).
        observation_time_s: Window length compared.
        samples_per_series: Median samples a series carries.
        sybil_max: Largest same-radio pair distance.
        other_min: Smallest cross pair distance.
    """

    beacon_rate_hz: float
    observation_time_s: float
    samples_per_series: int
    sybil_max: float
    other_min: float

    @property
    def margin(self) -> float:
        """other_min / sybil_max (> 1 → perfect separation)."""
        if self.sybil_max <= 0:
            return float("inf")
        return self.other_min / self.sybil_max


def _window_margin(
    observations,
    start: float,
    end: float,
    min_samples: int,
    band: int,
) -> Optional[Tuple[float, float, int]]:
    windows: Dict[str, np.ndarray] = {}
    for identity, series in observations.items():
        window = series.window(start, end)
        if len(window) >= min_samples:
            windows[identity] = window.values
    if len(windows) < 3:
        return None
    sigmas = [float(np.std(v)) for v in windows.values()]
    scale = 3.0 * max(float(np.median(sigmas)), 1e-9)
    normalised = {k: (v - v.mean()) / scale for k, v in windows.items()}
    identities = sorted(normalised)
    distances = {}
    for i, a in enumerate(identities):
        for b in identities[i + 1 :]:
            result = dtw_banded_fast(normalised[a], normalised[b], band)
            distances[(a, b)] = result.distance / len(result.path)
    sybil_group = (MALICIOUS_ID,) + SYBIL_IDS
    try:
        sybil_max, other_min = separation_margin(distances, sybil_group)
    except ValueError:
        return None
    median_samples = int(np.median([v.size for v in windows.values()]))
    return sybil_max, other_min, median_samples


def run_beacon_rate_study(
    beacon_rates_hz: Sequence[float] = (10.0, 20.0, 50.0),
    observation_times_s: Sequence[float] = (2.0, 5.0, 10.0, 20.0),
    environment: str = "rural",
    duration_s: float = 120.0,
    min_fill: float = 0.3,
    seed: int = 23,
) -> List[BeaconRateRow]:
    """Sweep beacon rate against observation time.

    For each beacon rate, one field-test drive is simulated; every
    observation time is then evaluated over several windows of that
    drive (margins are averaged over windows).

    Args:
        beacon_rates_hz: Sampling rates; 10 Hz is the CCH baseline.
        observation_times_s: Candidate window lengths.
        environment: Field-test route (rural: clean, always moving).
        duration_s: Drive length per rate.
        min_fill: Minimum fraction of expected samples for a series to
            be compared (the detector's ``min_samples`` scaled to the
            window).
        seed: Base RNG seed.

    Returns:
        One row per (rate, observation time) combination, rate-major.
    """
    if min(observation_times_s) <= 0:
        raise ValueError("observation times must be positive")
    rows: List[BeaconRateRow] = []
    # The DTW band covers the same 1 s of temporal misalignment at
    # every rate: band = rate * 1 s.
    for index, rate in enumerate(beacon_rates_hz):
        drive = run_field_test(
            FieldTestConfig(
                environment=environment,
                duration_s=duration_s,
                beacon_rate_hz=rate,
                seed=seed + index,
            )
        )
        observations = drive.observations["3"]
        band = max(2, int(round(rate * 1.0)))
        for obs_time in observation_times_s:
            min_samples = max(4, int(min_fill * rate * obs_time))
            margins: List[Tuple[float, float, int]] = []
            starts = np.arange(obs_time, duration_s, obs_time * 2)
            for start in starts:
                outcome = _window_margin(
                    observations,
                    float(start),
                    float(start + obs_time),
                    min_samples,
                    band,
                )
                if outcome is not None:
                    margins.append(outcome)
            if not margins:
                continue
            sybil_max = float(np.mean([m[0] for m in margins]))
            other_min = float(np.mean([m[1] for m in margins]))
            samples = int(np.median([m[2] for m in margins]))
            rows.append(
                BeaconRateRow(
                    beacon_rate_hz=float(rate),
                    observation_time_s=float(obs_time),
                    samples_per_series=samples,
                    sybil_max=sybil_max,
                    other_min=other_min,
                )
            )
    return rows
