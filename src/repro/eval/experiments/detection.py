"""E6/E7 — Fig. 11: Voiceprint vs CPVSAD across traffic densities.

Two sweeps over traffic density, reporting average detection rate and
false positive rate (Eqs. 12–13) for both methods:

* **Fig. 11a** — static propagation model.  Both methods should reach
  high detection rates with bounded FPR; CPVSAD *improves* with density
  (more witnesses), Voiceprint *degrades* slightly (channel collisions,
  closer vehicles).
* **Fig. 11b** — the channel's dual-slope parameters are re-randomised
  every 30 s.  CPVSAD's statistical test, built on a predefined model,
  collapses; Voiceprint is nearly immune because it never consults a
  model.

CPVSAD is granted the *initial* channel model (the strongest fair
configuration: in 11a it knows the static truth); the model change of
11b is what invalidates that knowledge.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from ...baselines.cpvsad import CpvsadConfig, CpvsadDetector
from ...core.detector import DetectorConfig
from ...core.lda import DecisionLine
from ...core.thresholds import LinearThreshold, ThresholdPolicy
from ...radio.base import LinkBudget
from ...radio.dual_slope import DualSlopeModel
from ...radio.environments import environment
from ...sim.scenario import ScenarioConfig
from ...sim.simulator import HighwaySimulator
from ..metrics import PeriodOutcome, average_rates
from ..parallel import Checkpoint, TaskSpec, run_tasks
from ..runner import run_cpvsad, run_voiceprint

__all__ = ["Fig11Row", "run_fig11", "run_fig11a", "run_fig11b"]


@dataclass(frozen=True)
class Fig11Row:
    """One (density, method) point of Fig. 11.

    Attributes:
        density_vhls_per_km: Configured traffic density.
        method: ``"voiceprint"`` or ``"cpvsad"``.
        detection_rate: Average DR (Eq. 12); None if undefined.
        false_positive_rate: Average FPR (Eq. 13); None if undefined.
        n_outcomes: Node-periods behind the averages.
        model_change: Whether the channel re-randomised (Fig. 11b).
    """

    density_vhls_per_km: float
    method: str
    detection_rate: Optional[float]
    false_positive_rate: Optional[float]
    n_outcomes: int
    model_change: bool


def _fig11_cell(
    config: ScenarioConfig,
    threshold: ThresholdPolicy,
    detector_config: Optional[DetectorConfig],
    recorded_nodes: int,
    verifiers_per_run: int,
) -> Tuple[List[PeriodOutcome], List[PeriodOutcome]]:
    """One (density, seed) cell: simulate once, replay both methods.

    Module-level so the parallel grid runner can ship it to workers;
    replay inside a cell is pinned to ``workers=1`` — the grid is the
    parallel axis, nesting pools would oversubscribe the host.
    """
    result = HighwaySimulator(config, recorded_nodes=recorded_nodes).run()
    verifiers = result.recorded_nodes[:verifiers_per_run]
    vp_outcomes = run_voiceprint(
        result,
        threshold,
        detector_config=detector_config,
        verifiers=verifiers,
        workers=1,
    )
    cpvsad = CpvsadDetector(
        assumed_budget=LinkBudget(
            tx_power_dbm=sum(config.tx_power_range_dbm) / 2.0
        ),
        assumed_model=DualSlopeModel(environment(config.environment)),
        config=CpvsadConfig(),
    )
    cp_outcomes = run_cpvsad(result, cpvsad, verifiers=verifiers, workers=1)
    return vp_outcomes, cp_outcomes


def run_fig11(
    boundary: DecisionLine,
    densities_vhls_per_km: Sequence[float] = (10, 20, 40, 60, 80, 100),
    model_change: bool = False,
    runs_per_density: int = 2,
    base_config: Optional[ScenarioConfig] = None,
    recorded_nodes: int = 8,
    verifiers_per_run: int = 4,
    detector_config: Optional[DetectorConfig] = None,
    seed: int = 1,
    workers: Optional[int] = None,
    task_timeout: Optional[float] = None,
    checkpoint: Optional[Union[str, Path, Checkpoint]] = None,
) -> List[Fig11Row]:
    """Run one Fig. 11 panel.

    The (density × run) grid is materialised up front — every cell's
    scenario seed is fixed before anything executes — and handed to
    :func:`repro.eval.parallel.run_tasks`, so the rows are identical
    whether the sweep runs serially, on N workers, or resumes from a
    checkpoint.

    Args:
        boundary: The trained Voiceprint threshold line (from E5).
        densities_vhls_per_km: Swept densities.
        model_change: False → Fig. 11a; True → Fig. 11b.
        runs_per_density: Independent runs (seeds) per density.
        base_config: Scenario template (Table V defaults if omitted).
        recorded_nodes: Receivers recorded per run (witness pool size
            for CPVSAD).
        verifiers_per_run: Verifiers evaluated per run.
        detector_config: Voiceprint detector tunables.
        seed: Sweep seed.
        workers: Grid-cell pool width (default: process defaults /
            ``REPRO_EVAL_WORKERS``; serial without either).
        task_timeout: Per-cell deadline in seconds.
        checkpoint: Resume journal (path or :class:`Checkpoint`): cells
            already journaled are not recomputed.

    Returns:
        Two rows (one per method) per density.
    """
    template = base_config or ScenarioConfig()
    threshold = LinearThreshold.from_decision_line(boundary)
    cells: List[Tuple[float, str]] = []
    tasks: List[TaskSpec] = []
    run_seed = seed
    for density in densities_vhls_per_km:
        for run_index in range(runs_per_density):
            run_seed += 1
            config = replace(
                template.with_density(density).with_seed(run_seed),
                model_change_enabled=model_change,
            )
            key = f"d{float(density):g}:r{run_index}:s{run_seed}"
            cells.append((float(density), key))
            tasks.append(
                TaskSpec(
                    key=key,
                    fn=_fig11_cell,
                    args=(
                        config,
                        threshold,
                        detector_config,
                        recorded_nodes,
                        verifiers_per_run,
                    ),
                )
            )
    if checkpoint is not None and not isinstance(checkpoint, Checkpoint):
        checkpoint = Checkpoint(
            checkpoint,
            grid={
                "experiment": "fig11b" if model_change else "fig11a",
                "densities": [float(d) for d in densities_vhls_per_km],
                "runs_per_density": runs_per_density,
                "seed": seed,
            },
        )
    cell_results = run_tasks(
        tasks, workers=workers, task_timeout=task_timeout, checkpoint=checkpoint
    )
    rows: List[Fig11Row] = []
    for density in densities_vhls_per_km:
        vp_outcomes: List[PeriodOutcome] = []
        cp_outcomes: List[PeriodOutcome] = []
        for cell_density, key in cells:
            if cell_density == float(density):
                vp, cp = cell_results[key]
                vp_outcomes += vp
                cp_outcomes += cp
        for method, outcomes in (("voiceprint", vp_outcomes), ("cpvsad", cp_outcomes)):
            dr, fpr = average_rates(outcomes)
            rows.append(
                Fig11Row(
                    density_vhls_per_km=float(density),
                    method=method,
                    detection_rate=dr,
                    false_positive_rate=fpr,
                    n_outcomes=len(outcomes),
                    model_change=model_change,
                )
            )
    return rows


def run_fig11a(boundary: DecisionLine, **kwargs) -> List[Fig11Row]:
    """Fig. 11a: static propagation model."""
    return run_fig11(boundary, model_change=False, **kwargs)


def run_fig11b(boundary: DecisionLine, **kwargs) -> List[Fig11Row]:
    """Fig. 11b: model parameters re-randomised every 30 s."""
    return run_fig11(boundary, model_change=True, **kwargs)
