"""E2 — Table IV: dual-slope model fitting per environment.

Scenario 2 replica: (distance, RSSI) samples are collected in each
environment and regression-fitted with least squares, recovering the
breakpoint distance, both path-loss exponents and both shadowing
deviations.  Because our synthetic channel is *driven by* the paper's
Table IV parameters, the fit quality is directly checkable: the fitted
row should land near the generating row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ...radio.base import LinkBudget
from ...radio.environments import environment
from ...radio.fitting import fit_dual_slope
from ...sim.observations import ranging_measurement

__all__ = ["Table4Row", "run_table4"]


@dataclass(frozen=True)
class Table4Row:
    """Fitted vs generating dual-slope parameters for one environment.

    Attributes match Table IV's rows; ``*_true`` carries the generating
    (paper-measured) value, ``*_fit`` our regression's estimate.
    """

    environment: str
    dc_true: float
    dc_fit: float
    gamma1_true: float
    gamma1_fit: float
    gamma2_true: float
    gamma2_fit: float
    sigma1_true: float
    sigma1_fit: float
    sigma2_true: float
    sigma2_fit: float
    n_samples: int


def run_table4(
    environments: Sequence[str] = ("campus", "rural", "urban"),
    n_samples: int = 4000,
    eirp_dbm: float = 20.0,
    rx_gain_dbi: float = 7.0,
    seed: int = 11,
) -> List[Table4Row]:
    """Regenerate Table IV by refitting each environment's channel.

    Args:
        environments: Environments to fit (the paper tabulates three).
        n_samples: Ranging samples per environment.
        eirp_dbm: Measurement transmit EIRP (Table III: 20 dBm).
        rx_gain_dbi: Receiver antenna gain (7 dBi).
        seed: Base RNG seed.

    Returns:
        One row per environment with true and fitted parameters.
    """
    budget = LinkBudget(tx_power_dbm=eirp_dbm, rx_gain_dbi=rx_gain_dbi)
    rows: List[Table4Row] = []
    for index, name in enumerate(environments):
        params = environment(name)
        distances, rssi = ranging_measurement(
            name,
            n_samples=n_samples,
            eirp_dbm=eirp_dbm,
            rx_gain_dbi=rx_gain_dbi,
            seed=seed + index,
        )
        fit = fit_dual_slope(distances, rssi, budget, name=name)
        rows.append(
            Table4Row(
                environment=name,
                dc_true=params.critical_distance_m,
                dc_fit=fit.params.critical_distance_m,
                gamma1_true=params.gamma1,
                gamma1_fit=fit.params.gamma1,
                gamma2_true=params.gamma2,
                gamma2_fit=fit.params.gamma2,
                sigma1_true=params.sigma1_db,
                sigma1_fit=fit.params.sigma1_db,
                sigma2_true=params.sigma2_db,
                sigma2_fit=fit.params.sigma2_db,
                n_samples=n_samples,
            )
        )
    return rows
