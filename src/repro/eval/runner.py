"""Detector runners: replay a finished simulation through a detector.

A :class:`~repro.sim.simulator.SimulationResult` holds per-receiver RSSI
series; these runners walk the configured detection schedule (first
detection after one observation time, then every detection period) and
score each verifier's flags against ground truth, producing the
:class:`~repro.eval.metrics.PeriodOutcome` lists that the Fig. 11
experiments average.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Set

from ..baselines.cpvsad import CpvsadDetector, IdentityClaim, WitnessReport
from ..baselines.xiao import XiaoDetector
from ..core.density import DensityEstimator
from ..core.detector import DetectorConfig, VoiceprintDetector
from ..core.thresholds import ThresholdPolicy
from ..core.timeseries import RSSITimeSeries
from ..obs.audit import default_audit_log, set_audit_context
from ..obs.logging import get_logger
from ..obs.metrics import default_registry
from ..obs.timers import Stopwatch
from ..obs.trace import default_tracer
from ..sim.simulator import SimulationResult
from .metrics import PeriodOutcome, evaluate_flags
from .parallel import resolve_workers

_log = get_logger("eval.runner")

__all__ = [
    "detection_times",
    "heard_in_window",
    "run_voiceprint",
    "run_cpvsad",
    "run_xiao",
]


def detection_times(
    sim_time_s: float,
    observation_time_s: float,
    detection_period_s: float,
) -> List[float]:
    """The detection schedule: first at one observation time, then
    every detection period, all within the simulated span."""
    if observation_time_s > sim_time_s:
        return []
    # Compute each instant by index instead of accumulating
    # ``t += detection_period_s``: repeated addition of a non-
    # representable period (0.1 s, say) drifts by ~n*ulp and can drop
    # or shift the final detection of a long simulation.
    times = []
    k = 0
    while True:
        t = observation_time_s + k * detection_period_s
        if t > sim_time_s + 1e-9:
            break
        times.append(round(t, 9))
        k += 1
    return times


def heard_in_window(
    series_map: Dict[str, RSSITimeSeries],
    start: float,
    end: float,
    min_samples: int = 1,
) -> List[str]:
    """Identities with at least ``min_samples`` samples in a window."""
    heard = []
    for identity, series in series_map.items():
        if len(series.window(start, end)) >= min_samples:
            heard.append(identity)
    return sorted(heard)


def run_voiceprint(
    result: SimulationResult,
    threshold: ThresholdPolicy,
    detector_config: Optional[DetectorConfig] = None,
    verifiers: Optional[Sequence[str]] = None,
    workers: Optional[int] = None,
    task_timeout: Optional[float] = None,
) -> List[PeriodOutcome]:
    """Replay every verifier's observations through Voiceprint.

    Density is estimated per verifier with Eq. 9 over the scenario's
    density-estimation period, converted to vehicles/km (the unit the
    trained boundary uses), and identities the verifier has already
    flagged are excluded from later estimates, exactly as the paper
    prescribes.

    Args:
        result: A finished highway simulation.
        threshold: Confirmation threshold policy (trained line or
            constant).
        detector_config: Detector tunables; the scenario's observation
            time is used if omitted.
        verifiers: Subset of recorded nodes to evaluate (default: all).
        workers: Shard verifiers across this many processes (default:
            the ``repro.eval.parallel`` process defaults, then the
            ``REPRO_EVAL_WORKERS`` environment variable, then serial).
            The outcome list is identical either way.
        task_timeout: Per-shard deadline in seconds under parallelism.

    Returns:
        One :class:`PeriodOutcome` per (verifier, detection period).
    """
    config = result.config
    det_config = detector_config or DetectorConfig(
        observation_time=config.observation_time_s
    )
    nodes = list(verifiers) if verifiers is not None else list(result.recorded_nodes)
    n_workers = resolve_workers(workers)
    if n_workers > 1 and len(nodes) > 1:
        from .parallel import run_voiceprint_parallel

        return run_voiceprint_parallel(
            result, threshold, det_config, nodes, n_workers, task_timeout
        )
    times = detection_times(
        config.sim_time_s, det_config.observation_time, config.detection_period_s
    )
    metrics = default_registry()
    c_periods = metrics.counter("eval.periods_evaluated")
    c_detections = metrics.counter("eval.detections")
    c_flagged = metrics.counter("eval.flagged_periods")
    h_verifier_ms = metrics.histogram("eval.verifier_replay_ms")
    tracer = default_tracer()
    # When the audit log is armed, stamp each detection bundle with the
    # (observer, period) coordinates that `repro explain` queries by.
    auditing = default_audit_log() is not None
    outcomes: List[PeriodOutcome] = []
    for node in nodes:
        # The "eval" span brackets one verifier's whole replay; the
        # detector opens its own phase spans inside it, so profiler
        # samples land on the innermost phase and only harness glue
        # (scoring, scheduling) bills to "eval" itself.
        with tracer.span("eval", verifier=node), Stopwatch(h_verifier_ms):
            with tracer.span("collect", verifier=node):
                series_map = result.series_at(node)
                detector = VoiceprintDetector(threshold=threshold, config=det_config)
                for series in series_map.values():
                    detector.load_series(series)
                estimator = DensityEstimator(max_range_m=result.max_range_m)
            for period_index, t in enumerate(times):
                estimator.reset_period()
                estimator.hear_all(
                    heard_in_window(
                        series_map, t - config.density_estimate_period_s, t
                    )
                )
                density_per_km = estimator.estimate() * 1000.0
                if auditing:
                    set_audit_context(observer=node, period=period_index)
                report = detector.detect(density=density_per_km, now=t)
                c_detections.inc()
                if report.sybil_ids:
                    c_flagged.inc()
                # "Neighbouring vehicles" (Eqs. 10-11's populations) are
                # the identities heard with some regularity — half the
                # detector's comparison floor; identities with a stray
                # packet or two are fringe traffic, not neighbours.
                heard = heard_in_window(
                    series_map,
                    t - det_config.observation_time,
                    t,
                    min_samples=max(2, det_config.min_samples // 2),
                )
                outcomes.append(
                    evaluate_flags(
                        node, period_index, report.sybil_ids, heard, result.truth
                    )
                )
                for identity in report.sybil_ids:
                    estimator.mark_illegitimate(identity)
        c_periods.inc(len(times))
    if auditing:
        set_audit_context(observer=None, period=None)
    _log.debug(
        "voiceprint replay complete",
        extra={"verifiers": len(nodes), "outcomes": len(outcomes)},
    )
    return outcomes


def _heading_sign(result: SimulationResult, node: str, t: float) -> float:
    """Longitudinal direction of travel (+1 east, −1 west, 0 parked)."""
    vx, _vy = result.vehicles[node].trajectory.velocity(t)
    if vx > 0:
        return 1.0
    if vx < 0:
        return -1.0
    return 0.0


def _witness_reports(
    result: SimulationResult,
    verifier: str,
    identity: str,
    t: float,
    observation_time_s: float,
    max_witnesses: int,
    predicted_mean=None,
) -> List[WitnessReport]:
    """Build the cooperative observer reports for one claim.

    The verifier's own measurement comes first; witnesses are recorded
    *normal* vehicles — the stand-in for the schemes' RSU-certified
    witness groups — preferring, as the original CPVSAD does, vehicles
    from the opposite traffic flow.
    """
    window_start = t - observation_time_s
    reports: List[WitnessReport] = []
    witness_pool = [
        node for node in result.recorded_nodes if node in result.truth.normal_ids
    ]
    verifier_sign = _heading_sign(result, verifier, t)

    def report_for(observer: str) -> Optional[WitnessReport]:
        series = result.series_at(observer).get(identity)
        if series is None:
            return None
        window = series.window(window_start, t)
        if not len(window):
            return None
        return WitnessReport(
            observer_id=observer,
            observer_xy=result.vehicles[observer].position(t),
            mean_rssi_dbm=window.mean(),
            n_samples=len(window),
            predicted_mean_dbm=(
                predicted_mean(identity, observer, t)
                if predicted_mean is not None
                else None
            ),
        )

    own = report_for(verifier)
    if own is not None:
        reports.append(own)
    # Opposite-flow witnesses first, same-flow as fallback.
    candidates = sorted(
        (w for w in witness_pool if w not in (verifier, identity)),
        key=lambda w: (_heading_sign(result, w, t) == verifier_sign, w),
    )
    for witness in candidates:
        if len(reports) >= max_witnesses + 1:
            break
        report = report_for(witness)
        if report is not None:
            reports.append(report)
    return reports


def _run_cooperative(
    result: SimulationResult,
    is_sybil,
    verifiers: Optional[Sequence[str]],
    observation_time_s: float,
    max_witnesses: int,
    predicted_mean=None,
) -> List[PeriodOutcome]:
    """Shared driver for the cooperative position-verification baselines."""
    config = result.config
    nodes = list(verifiers) if verifiers is not None else list(result.recorded_nodes)
    times = detection_times(
        config.sim_time_s, config.observation_time_s, config.detection_period_s
    )
    tracer = default_tracer()
    outcomes: List[PeriodOutcome] = []
    for node in nodes:
        with tracer.span("eval", verifier=node):
            series_map = result.series_at(node)
            for period_index, t in enumerate(times):
                window_start = t - observation_time_s
                # Same neighbour notion as the Voiceprint runner (15 % of
                # the expected beacons) so all methods face identical
                # Eq. 10-11 populations.  Expected beacons come from the
                # scenario's configured rate — a hardcoded 10 Hz would give
                # the baselines a different neighbour floor than Voiceprint
                # whenever an experiment sweeps the beacon rate.
                expected = observation_time_s * config.beacon_rate_hz
                heard = heard_in_window(
                    series_map,
                    window_start,
                    t,
                    min_samples=max(2, int(0.15 * expected)),
                )
                flagged: Set[str] = set()
                for identity in heard:
                    if identity == node:
                        continue
                    claim = IdentityClaim(
                        identity=identity,
                        claimed_xy=result.claimed_position(identity, t),
                    )
                    reports = _witness_reports(
                        result,
                        node,
                        identity,
                        t,
                        observation_time_s,
                        max_witnesses,
                        predicted_mean,
                    )
                    if is_sybil(claim, reports):
                        flagged.add(identity)
                outcomes.append(
                    evaluate_flags(node, period_index, flagged, heard, result.truth)
                )
    return outcomes


def run_cpvsad(
    result: SimulationResult,
    detector: CpvsadDetector,
    verifiers: Optional[Sequence[str]] = None,
    observation_time_s: float = 10.0,
    max_witnesses: int = 8,
    workers: Optional[int] = None,
    task_timeout: Optional[float] = None,
) -> List[PeriodOutcome]:
    """Replay a simulation through the CPVSAD baseline.

    Each observer's mean RSSI is tested against the *window-averaged*
    model prediction along the claimed and observer trajectories —
    vehicles move hundreds of metres per window, so endpoint geometry
    alone would swamp the test with motion error.

    Args:
        result: A finished highway simulation.
        detector: Configured CPVSAD instance (assumed model inside).
        verifiers: Verifier subset (default: all recorded nodes).
        observation_time_s: CPVSAD's window (paper: 10 s).
        max_witnesses: Witness cap per claim.
        workers: Shard verifiers across this many processes (identical
            outcomes either way; see :func:`run_voiceprint`).
        task_timeout: Per-shard deadline in seconds under parallelism.

    Returns:
        One :class:`PeriodOutcome` per (verifier, detection period).
    """
    nodes = (
        list(verifiers) if verifiers is not None else list(result.recorded_nodes)
    )
    n_workers = resolve_workers(workers)
    if n_workers > 1 and len(nodes) > 1:
        from .parallel import run_cpvsad_parallel

        return run_cpvsad_parallel(
            result,
            detector,
            nodes,
            observation_time_s,
            max_witnesses,
            n_workers,
            task_timeout,
        )

    def predicted_mean(identity: str, observer: str, t_end: float) -> float:
        samples = [
            t_end - observation_time_s + f * observation_time_s
            for f in (0.1, 0.3, 0.5, 0.7, 0.9)
        ]
        total = 0.0
        for ti in samples:
            cx, cy = result.claimed_position(identity, ti)
            ox, oy = result.vehicles[observer].position(ti)
            total += detector.predicted_rssi(math.hypot(cx - ox, cy - oy))
        return total / len(samples)

    return _run_cooperative(
        result,
        detector.is_sybil,
        verifiers,
        observation_time_s,
        max_witnesses,
        predicted_mean,
    )


def run_xiao(
    result: SimulationResult,
    detector: "XiaoDetector",
    verifiers: Optional[Sequence[str]] = None,
    observation_time_s: float = 10.0,
    max_witnesses: int = 8,
    workers: Optional[int] = None,
    task_timeout: Optional[float] = None,
) -> List[PeriodOutcome]:
    """Replay a simulation through the Xiao localisation baseline.

    Same witness machinery as :func:`run_cpvsad`; the detector
    multilaterates a position from the witnesses' RSSI and flags claims
    too far from it.

    Args:
        result: A finished highway simulation.
        detector: Configured :class:`repro.baselines.xiao.XiaoDetector`.
        verifiers: Verifier subset (default: all recorded nodes).
        observation_time_s: Observation window.
        max_witnesses: Witness cap per claim.
        workers: Shard verifiers across this many processes (identical
            outcomes either way; see :func:`run_voiceprint`).
        task_timeout: Per-shard deadline in seconds under parallelism.
    """
    nodes = (
        list(verifiers) if verifiers is not None else list(result.recorded_nodes)
    )
    n_workers = resolve_workers(workers)
    if n_workers > 1 and len(nodes) > 1:
        from .parallel import run_xiao_parallel

        return run_xiao_parallel(
            result,
            detector,
            nodes,
            observation_time_s,
            max_witnesses,
            n_workers,
            task_timeout,
        )
    return _run_cooperative(
        result, detector.is_sybil, nodes, observation_time_s, max_witnesses
    )
