"""Plain-text table rendering for experiment output.

Every experiment returns structured rows; benches and examples render
them with :func:`render_table` so the regenerated tables/figures read
like the paper's, directly in the terminal or in captured bench logs.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

__all__ = ["render_table", "format_value"]

Cell = Union[str, float, int, None]


def format_value(value: Cell, float_format: str = "{:.4g}") -> str:
    """Render one cell: floats formatted, None as a dash."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return float_format.format(value)
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    title: Optional[str] = None,
    float_format: str = "{:.4g}",
) -> str:
    """Render rows as a fixed-width text table.

    Args:
        headers: Column names.
        rows: Row cells; each row must match the header length.
        title: Optional heading line.
        float_format: Format spec applied to float cells.

    Returns:
        The table as a single string (no trailing newline).
    """
    rendered_rows: List[List[str]] = []
    for row in rows:
        cells = [format_value(cell, float_format) for cell in row]
        if len(cells) != len(headers):
            raise ValueError(
                f"row has {len(cells)} cells but there are {len(headers)} headers"
            )
        rendered_rows.append(cells)
    widths = [len(h) for h in headers]
    for cells in rendered_rows:
        for index, cell in enumerate(cells):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths)).rstrip()

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append("  ".join("-" * width for width in widths))
    parts.extend(line(cells) for cells in rendered_rows)
    return "\n".join(parts)
