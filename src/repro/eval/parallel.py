"""Parallel sharded evaluation: fan replay and experiment grids across
a process pool.

The paper's sweep experiments (Fig. 11's density grid, Fig. 13's four
drives) replay every verifier through the full collection → comparison
→ confirmation pipeline.  The pairwise engine made the per-pair hot
path fast; what dominates a scenario sweep now is the strictly serial
single-process replay loop.  This module supplies the missing execution
layer:

* :func:`run_tasks` — the core executor: a bounded pool of **one
  process per task** (clean terminate semantics for timeouts), with a
  per-task deadline, bounded retry on worker death or timeout, and
  graceful degradation to in-parent serial execution when a task keeps
  failing.  Tasks are :class:`TaskSpec` records whose ``fn`` must be a
  module-level (picklable) callable.
* **Sharded replay** — :func:`run_voiceprint_parallel` /
  :func:`run_cpvsad_parallel` / :func:`run_xiao_parallel` split the
  verifier list into contiguous chunks, replay each chunk in a worker
  via the ordinary serial runner, and concatenate the results in shard
  order.  Because each verifier's replay is independent (its own
  detector and density estimator), the concatenated
  :class:`~repro.eval.metrics.PeriodOutcome` list is **identical** to
  the serial path's for the same inputs — parallelism changes
  wall-clock, never results.
* **Grid fan-out** — experiment drivers submit whole
  (scenario × seed × config) grids as task lists;
  :func:`derive_seed` gives each cell a seed that depends only on its
  key, never on execution order or worker count.
* :class:`Checkpoint` — a JSONL journal of completed cells keyed by
  task key, so an interrupted sweep resumes (``--resume``) from where
  it stopped instead of recomputing finished cells.

Observability under multiprocessing: the ``repro.obs`` registry and
health monitor are per-process, so each worker resets its (inherited or
fresh) default registry, records into it, and ships a
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot` back with its
result; the parent folds that into its own registry with
:meth:`~repro.obs.metrics.MetricsRegistry.merge`.  Spans are captured
in-memory in the worker and re-exported through the parent's tracer,
and a profiling run restarts the sampler in each forked worker and
merges the per-worker profile snapshots the same way.  An armed audit
log likewise restarts as a fresh in-memory shard per worker whose
snapshot the parent folds back in (re-recording the bundles, so a
parent ``--audit-out`` stream persists worker evidence).  ``/metrics``,
flight-recorder dumps, profiles, audit logs, and the bench gate
therefore keep working unchanged whether a sweep ran serially or on
eight workers.
"""

from __future__ import annotations

import base64
import hashlib
import json
import multiprocessing
import os
import pickle
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..obs.audit import default_audit_log
from ..obs.audit import restart_in_child as _audit_restart_in_child
from ..obs.lineage import (
    default_lineage,
    restart_in_child as _lineage_restart_in_child,
)
from ..obs.logging import get_logger
from ..obs.metrics import MetricsRegistry, default_registry
from ..obs.profiling import default_profiler, restart_in_child
from ..obs.trace import InMemorySpanExporter, default_tracer

__all__ = [
    "TaskSpec",
    "TaskError",
    "Checkpoint",
    "ParallelDefaults",
    "set_parallel_defaults",
    "get_parallel_defaults",
    "resolve_workers",
    "resolve_task_timeout",
    "derive_seed",
    "run_tasks",
    "run_voiceprint_parallel",
    "run_cpvsad_parallel",
    "run_xiao_parallel",
]

_log = get_logger("eval.parallel")

#: Environment variable consulted when neither the call nor the process
#: defaults specify a worker count (used by CI to exercise the parallel
#: path across the whole eval suite).
WORKERS_ENV = "REPRO_EVAL_WORKERS"

#: Environment variable overriding the multiprocessing start method
#: (default: ``fork`` where available, else ``spawn``).
START_METHOD_ENV = "REPRO_MP_START"


# ---------------------------------------------------------------------------
# Process-wide defaults (the CLI's --workers / --task-timeout)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ParallelDefaults:
    """Process-wide parallelism defaults.

    Attributes:
        workers: Worker-pool width every eval entry point inherits when
            its caller does not pass one; None falls through to the
            ``REPRO_EVAL_WORKERS`` environment variable, then serial.
        task_timeout: Per-task wall-clock budget in seconds; None
            disables deadlines.
        retries: Attempts *after* the first before a failing task
            degrades to in-parent serial execution.
    """

    workers: Optional[int] = None
    task_timeout: Optional[float] = None
    retries: int = 1


_DEFAULTS = ParallelDefaults()
_UNSET = object()


def set_parallel_defaults(
    workers: object = _UNSET,
    task_timeout: object = _UNSET,
    retries: object = _UNSET,
) -> ParallelDefaults:
    """Update the process-wide defaults; returns the previous values.

    Mirrors ``repro.core.pairwise.set_engine_defaults``: the CLI sets
    these once from ``--workers`` / ``--task-timeout`` and restores the
    previous values on exit, so library users see no global drift.
    Arguments left unset keep their current value.
    """
    global _DEFAULTS
    previous = _DEFAULTS
    _DEFAULTS = ParallelDefaults(
        workers=previous.workers if workers is _UNSET else workers,  # type: ignore[arg-type]
        task_timeout=(
            previous.task_timeout if task_timeout is _UNSET else task_timeout  # type: ignore[arg-type]
        ),
        retries=previous.retries if retries is _UNSET else retries,  # type: ignore[arg-type]
    )
    return previous


def get_parallel_defaults() -> ParallelDefaults:
    """The current process-wide parallelism defaults."""
    return _DEFAULTS


def resolve_workers(workers: Optional[int] = None) -> int:
    """Effective worker count: explicit > process default > env > 1."""
    if workers is None:
        workers = _DEFAULTS.workers
    if workers is None:
        env = os.environ.get(WORKERS_ENV, "").strip()
        if env:
            try:
                workers = int(env)
            except ValueError:
                _log.warning(
                    "ignoring bad %s value", WORKERS_ENV, extra={"value": env}
                )
    return max(1, int(workers)) if workers is not None else 1


def resolve_task_timeout(task_timeout: Optional[float] = None) -> Optional[float]:
    """Effective per-task deadline: explicit > process default > None."""
    if task_timeout is None:
        task_timeout = _DEFAULTS.task_timeout
    if task_timeout is not None and task_timeout <= 0:
        raise ValueError(f"task timeout must be positive, got {task_timeout}")
    return task_timeout


def derive_seed(base_seed: int, *parts: object) -> int:
    """A deterministic 63-bit seed for one grid cell.

    Hashes ``(base_seed, *parts)`` with SHA-256, so a cell's seed
    depends only on its identity (scenario key, repetition index, …) —
    never on submission order, worker count, or which cells a resumed
    sweep still has to run.
    """
    material = repr((int(base_seed),) + tuple(str(p) for p in parts))
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


# ---------------------------------------------------------------------------
# Task plumbing
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class TaskSpec:
    """One unit of work for :func:`run_tasks`.

    Attributes:
        key: Unique, stable identifier — the checkpoint/resume key and
            the index into the result mapping.
        fn: A **module-level** callable (workers unpickle it by
            reference; lambdas and closures will not survive the trip).
        args: Positional arguments.
        kwargs: Keyword arguments.
    """

    key: str
    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Mapping[str, Any] = field(default_factory=dict)


class TaskError(RuntimeError):
    """A task raised inside a worker; carries the remote traceback."""

    def __init__(self, key: str, remote_traceback: str) -> None:
        super().__init__(
            f"task {key!r} raised in worker:\n{remote_traceback}"
        )
        self.key = key
        self.remote_traceback = remote_traceback


class Checkpoint:
    """JSONL journal of completed grid cells, for ``--resume``.

    The first line is a header identifying the file and, optionally,
    the grid it belongs to; every further line records one completed
    task as ``{"key": ..., "value": <base64 pickle>}``.  Lines are
    appended and flushed as cells complete, so an interrupted sweep
    loses at most the in-flight cells.  Reopening with the same path
    (and a matching grid signature) skips every journaled cell.

    Args:
        path: Journal location; created (with its header) if missing.
        grid: Optional JSON-serialisable signature of the sweep
            (densities, seeds, scale knobs).  A resume against a file
            recorded for a *different* grid raises instead of silently
            mixing incompatible cells.
    """

    MAGIC = "repro-eval-checkpoint"
    VERSION = 1

    def __init__(
        self, path: Union[str, Path], grid: Optional[Dict[str, Any]] = None
    ) -> None:
        self.path = Path(path)
        self._results: Dict[str, Any] = {}
        if self.path.exists() and self.path.stat().st_size > 0:
            self._load(grid)
        else:
            header = {"kind": self.MAGIC, "version": self.VERSION}
            if grid is not None:
                header["grid"] = grid
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(header) + "\n")

    def _load(self, grid: Optional[Dict[str, Any]]) -> None:
        with open(self.path, "r", encoding="utf-8") as handle:
            lines = [line for line in handle if line.strip()]
        if not lines:
            raise ValueError(f"empty checkpoint file {self.path}")
        header = json.loads(lines[0])
        if header.get("kind") != self.MAGIC:
            raise ValueError(f"{self.path} is not a repro eval checkpoint")
        if header.get("version") != self.VERSION:
            raise ValueError(
                f"unsupported checkpoint version {header.get('version')!r}"
            )
        recorded_grid = header.get("grid")
        if grid is not None and recorded_grid is not None and recorded_grid != grid:
            raise ValueError(
                f"checkpoint {self.path} was recorded for a different grid "
                f"({recorded_grid!r} != {grid!r}); refusing to resume"
            )
        for line in lines[1:]:
            record = json.loads(line)
            self._results[record["key"]] = pickle.loads(
                base64.b64decode(record["value"])
            )

    def __contains__(self, key: str) -> bool:
        return key in self._results

    def __len__(self) -> int:
        return len(self._results)

    def get(self, key: str) -> Any:
        """The journaled result for ``key`` (KeyError when absent)."""
        return self._results[key]

    @property
    def completed(self) -> List[str]:
        """Keys of every journaled cell."""
        return sorted(self._results)

    def record(self, key: str, value: Any) -> None:
        """Append one completed cell and flush it to disk."""
        encoded = base64.b64encode(pickle.dumps(value)).decode("ascii")
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps({"key": key, "value": encoded}) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        self._results[key] = value


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------
def _worker_entry(conn, fn, args, kwargs) -> None:
    """Run one task in a child process and ship back the result.

    The child's default registry may be a forked copy of the parent's
    (instruments and values included), so it is reset before the task
    runs — the snapshot sent home contains *only* this task's activity.
    Span export is redirected to an in-memory buffer: after a fork the
    parent's JSONL exporter shares a file descriptor with the parent,
    and concurrent writes would interleave.  When the parent was
    profiling, the child resumes sampling itself
    (:func:`~repro.obs.profiling.restart_in_child` — fork does not
    carry threads across) and ships its profile snapshot home alongside
    the metrics, so a sweep's profile covers every worker.
    """
    registry = default_registry()
    registry.reset()
    registry.enable()
    tracer = default_tracer()
    span_buffer: Optional[InMemorySpanExporter] = None
    if tracer.enabled:
        span_buffer = InMemorySpanExporter()
        tracer.exporter = span_buffer
    profiler = restart_in_child()
    # Same shared-fd hazard as spans: a forked AuditLog would write to
    # the parent's stream, so the child audits into a fresh in-memory
    # shard and ships a snapshot home for the parent to merge.
    audit_log = _audit_restart_in_child()
    # A forked lineage ring is likewise the parent's state in spirit;
    # the child traces into a fresh ring and ships a snapshot home.
    lineage = _lineage_restart_in_child()
    try:
        value = fn(*args, **kwargs)
        status: Tuple[str, Any] = ("ok", value)
    except BaseException:
        status = ("error", traceback.format_exc())
    if profiler is not None:
        profiler.stop()
    payload = (
        status[0],
        status[1],
        registry.snapshot(),
        span_buffer.records if span_buffer is not None else [],
        profiler.snapshot() if profiler is not None else None,
        audit_log.snapshot() if audit_log is not None else None,
        lineage.snapshot() if lineage is not None else None,
    )
    try:
        conn.send(payload)
    finally:
        conn.close()


def _mp_context():
    """The multiprocessing context tasks run under.

    ``fork`` where the platform offers it (fast start, no re-import of
    numpy/scipy per task), ``spawn`` otherwise; overridable with
    ``REPRO_MP_START`` for debugging either path.  Results never depend
    on the start method — tasks are self-contained by construction.
    """
    method = os.environ.get(START_METHOD_ENV, "").strip()
    if method:
        return multiprocessing.get_context(method)
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------
@dataclass
class _Running:
    spec: TaskSpec
    attempt: int
    process: Any
    conn: Any
    started: float
    deadline: Optional[float]


def _reexport_spans(records: Sequence[Dict[str, Any]]) -> None:
    """Feed worker-collected span records through the parent's tracer."""
    if not records:
        return
    tracer = default_tracer()
    if not tracer.enabled or tracer.exporter is None:
        return
    for record in records:
        tracer.exporter.export(record)


def run_tasks(
    tasks: Sequence[TaskSpec],
    workers: Optional[int] = None,
    task_timeout: Optional[float] = None,
    retries: Optional[int] = None,
    checkpoint: Optional[Checkpoint] = None,
    registry: Optional[MetricsRegistry] = None,
) -> Dict[str, Any]:
    """Execute a task grid; returns ``{task.key: result}`` for all tasks.

    Serial when the effective worker count is 1 (or there is only one
    task to run) — the tasks then run in-process, in submission order,
    recording metrics directly.  Parallel otherwise: up to ``workers``
    single-task processes run concurrently; each completed worker's
    metric/span snapshot is merged into ``registry`` (default: the
    process-global one), so instrumentation is identical either way.

    Failure policy, per task: a worker that dies (any non-zero exit,
    including SIGKILL) or overruns ``task_timeout`` is retried up to
    ``retries`` times in a fresh process; after that the task degrades
    to in-parent serial execution — a deliberate "slow is better than
    absent" choice for long sweeps.  A task that raises a Python
    exception is *not* retried (it would fail identically) —
    :class:`TaskError` carries the worker traceback to the caller.

    Args:
        tasks: The grid; keys must be unique.
        workers: Pool width (default: process defaults, then
            ``REPRO_EVAL_WORKERS``, then serial).
        task_timeout: Per-attempt deadline in seconds (None: no limit).
        retries: Extra attempts before serial fallback (default from
            process defaults, normally 1).
        checkpoint: Optional resume journal; journaled keys are
            returned without re-running, fresh completions are appended.
        registry: Metrics destination (default: process-global).
    """
    keys = [t.key for t in tasks]
    if len(set(keys)) != len(keys):
        raise ValueError("task keys must be unique")
    target = registry if registry is not None else default_registry()
    n_workers = resolve_workers(workers)
    timeout = resolve_task_timeout(task_timeout)
    n_retries = _DEFAULTS.retries if retries is None else int(retries)
    if n_retries < 0:
        raise ValueError(f"retries must be >= 0, got {n_retries}")

    c_done = target.counter("parallel.tasks_completed")
    c_resumed = target.counter("parallel.tasks_resumed")
    c_retries = target.counter("parallel.task_retries")
    c_fallbacks = target.counter("parallel.serial_fallbacks")
    h_task_ms = target.histogram("parallel.task_ms")

    results: Dict[str, Any] = {}
    todo: List[TaskSpec] = []
    for spec in tasks:
        if checkpoint is not None and spec.key in checkpoint:
            results[spec.key] = checkpoint.get(spec.key)
            c_resumed.inc()
        else:
            todo.append(spec)
    if checkpoint is not None and len(results):
        _log.info(
            "resuming sweep from checkpoint",
            extra={
                "path": str(checkpoint.path),
                "resumed": len(results),
                "remaining": len(todo),
            },
        )

    def run_in_parent(spec: TaskSpec) -> None:
        start = time.perf_counter()
        value = spec.fn(*spec.args, **dict(spec.kwargs))
        h_task_ms.observe((time.perf_counter() - start) * 1000.0)
        results[spec.key] = value
        c_done.inc()
        if checkpoint is not None:
            checkpoint.record(spec.key, value)

    if n_workers <= 1 or len(todo) <= 1:
        for spec in todo:
            run_in_parent(spec)
        return results

    ctx = _mp_context()
    pending: deque = deque((spec, 0) for spec in todo)
    running: Dict[str, _Running] = {}
    fallback: List[TaskSpec] = []

    def fail(entry: _Running, reason: str) -> None:
        if entry.attempt < n_retries:
            c_retries.inc()
            _log.warning(
                "task failed; retrying",
                extra={
                    "key": entry.spec.key,
                    "reason": reason,
                    "attempt": entry.attempt + 1,
                },
            )
            pending.append((entry.spec, entry.attempt + 1))
        else:
            c_fallbacks.inc()
            _log.warning(
                "task exhausted retries; degrading to serial",
                extra={"key": entry.spec.key, "reason": reason},
            )
            fallback.append(entry.spec)

    def reap(entry: _Running) -> None:
        """Terminate one in-flight worker and release its resources."""
        entry.process.terminate()
        entry.process.join(5.0)
        if entry.process.is_alive():  # pragma: no cover - last resort
            entry.process.kill()
            entry.process.join()
        entry.conn.close()

    try:
        while pending or running:
            while pending and len(running) < n_workers:
                spec, attempt = pending.popleft()
                recv_conn, send_conn = ctx.Pipe(duplex=False)
                process = ctx.Process(
                    target=_worker_entry,
                    args=(send_conn, spec.fn, spec.args, dict(spec.kwargs)),
                    daemon=True,
                )
                process.start()
                send_conn.close()
                now = time.monotonic()
                running[spec.key] = _Running(
                    spec=spec,
                    attempt=attempt,
                    process=process,
                    conn=recv_conn,
                    started=now,
                    deadline=now + timeout if timeout is not None else None,
                )
            deadlines = [
                r.deadline for r in running.values() if r.deadline is not None
            ]
            wait_timeout = (
                max(0.0, min(deadlines) - time.monotonic())
                if deadlines
                else None
            )
            ready = set(
                mp_connection.wait(
                    [r.conn for r in running.values()], timeout=wait_timeout
                )
            )
            now = time.monotonic()
            for entry in list(running.values()):
                if entry.conn in ready:
                    del running[entry.spec.key]
                    message = None
                    try:
                        message = entry.conn.recv()
                    except (EOFError, OSError):
                        pass  # worker died before/while sending
                    entry.conn.close()
                    entry.process.join()
                    if message is None:
                        fail(entry, "worker process died")
                        continue
                    (
                        status,
                        payload,
                        snapshot,
                        spans,
                        profile,
                        audit_shard,
                        lineage_shard,
                    ) = message
                    target.merge(snapshot)
                    _reexport_spans(spans)
                    if profile is not None:
                        parent_profiler = default_profiler()
                        if parent_profiler is not None:
                            parent_profiler.merge(profile)
                    if audit_shard is not None:
                        parent_audit = default_audit_log()
                        if parent_audit is not None:
                            parent_audit.merge(audit_shard)
                    if lineage_shard is not None:
                        parent_lineage = default_lineage()
                        if parent_lineage is not None:
                            parent_lineage.merge(lineage_shard)
                    if status != "ok":
                        raise TaskError(entry.spec.key, payload)
                    h_task_ms.observe((now - entry.started) * 1000.0)
                    results[entry.spec.key] = payload
                    c_done.inc()
                    if checkpoint is not None:
                        checkpoint.record(entry.spec.key, payload)
                elif entry.deadline is not None and now >= entry.deadline:
                    del running[entry.spec.key]
                    reap(entry)
                    fail(entry, f"timeout after {timeout:g}s")
    finally:
        for entry in running.values():
            reap(entry)

    for spec in fallback:
        run_in_parent(spec)
    return results


# ---------------------------------------------------------------------------
# Sharded detector replay
# ---------------------------------------------------------------------------
def _chunk_preserving_order(items: Sequence[str], n_chunks: int) -> List[List[str]]:
    """Split ``items`` into at most ``n_chunks`` contiguous chunks."""
    n_chunks = max(1, min(int(n_chunks), len(items)))
    base, extra = divmod(len(items), n_chunks)
    chunks: List[List[str]] = []
    start = 0
    for index in range(n_chunks):
        size = base + (1 if index < extra else 0)
        chunks.append(list(items[start : start + size]))
        start += size
    return chunks


def _voiceprint_shard(verifiers, result, threshold, detector_config):
    from .runner import run_voiceprint

    return run_voiceprint(
        result,
        threshold,
        detector_config=detector_config,
        verifiers=verifiers,
        workers=1,
    )


def _cpvsad_shard(verifiers, result, detector, observation_time_s, max_witnesses):
    from .runner import run_cpvsad

    return run_cpvsad(
        result,
        detector,
        verifiers=verifiers,
        observation_time_s=observation_time_s,
        max_witnesses=max_witnesses,
        workers=1,
    )


def _xiao_shard(verifiers, result, detector, observation_time_s, max_witnesses):
    from .runner import run_xiao

    return run_xiao(
        result,
        detector,
        verifiers=verifiers,
        observation_time_s=observation_time_s,
        max_witnesses=max_witnesses,
        workers=1,
    )


def _replay_sharded(
    shard_fn: Callable[..., Any],
    verifiers: Sequence[str],
    workers: int,
    task_timeout: Optional[float],
    registry: Optional[MetricsRegistry],
    **common_kwargs: Any,
) -> List[Any]:
    """Shard ``verifiers`` and concatenate the results in shard order.

    Per-verifier replay is independent, so contiguous chunks
    concatenated in order reproduce the serial outcome list exactly.
    """
    chunks = _chunk_preserving_order(list(verifiers), workers)
    tasks = [
        TaskSpec(
            key=f"shard{index:04d}",
            fn=shard_fn,
            kwargs={"verifiers": chunk, **common_kwargs},
        )
        for index, chunk in enumerate(chunks)
    ]
    results = run_tasks(
        tasks,
        workers=workers,
        task_timeout=task_timeout,
        registry=registry,
    )
    outcomes: List[Any] = []
    for index in range(len(chunks)):
        outcomes.extend(results[f"shard{index:04d}"])
    return outcomes


def run_voiceprint_parallel(
    result,
    threshold,
    detector_config,
    verifiers: Sequence[str],
    workers: int,
    task_timeout: Optional[float] = None,
    registry: Optional[MetricsRegistry] = None,
):
    """Verifier-sharded :func:`repro.eval.runner.run_voiceprint`.

    Returns exactly the serial runner's outcome list (see module
    docstring); called by the runner itself when ``workers > 1``.
    """
    return _replay_sharded(
        _voiceprint_shard,
        verifiers,
        workers,
        task_timeout,
        registry,
        result=result,
        threshold=threshold,
        detector_config=detector_config,
    )


def run_cpvsad_parallel(
    result,
    detector,
    verifiers: Sequence[str],
    observation_time_s: float,
    max_witnesses: int,
    workers: int,
    task_timeout: Optional[float] = None,
    registry: Optional[MetricsRegistry] = None,
):
    """Verifier-sharded :func:`repro.eval.runner.run_cpvsad`."""
    return _replay_sharded(
        _cpvsad_shard,
        verifiers,
        workers,
        task_timeout,
        registry,
        result=result,
        detector=detector,
        observation_time_s=observation_time_s,
        max_witnesses=max_witnesses,
    )


def run_xiao_parallel(
    result,
    detector,
    verifiers: Sequence[str],
    observation_time_s: float,
    max_witnesses: int,
    workers: int,
    task_timeout: Optional[float] = None,
    registry: Optional[MetricsRegistry] = None,
):
    """Verifier-sharded :func:`repro.eval.runner.run_xiao`."""
    return _replay_sharded(
        _xiao_shard,
        verifiers,
        workers,
        task_timeout,
        registry,
        result=result,
        detector=detector,
        observation_time_s=observation_time_s,
        max_witnesses=max_witnesses,
    )
