"""Multi-period confirmation (paper Section VI-B, closing suggestion).

The field test's one false positive happened while every vehicle sat at
a red light: with nobody moving, a genuinely nearby normal vehicle is
indistinguishable from a Sybil identity for *that* period.  The paper
suggests "making a final determination of the Sybil node after several
detection periods so as to reduce the false positive rate" — transient
look-alikes decorrelate as soon as vehicles move again, while a real
Sybil identity stays glued to its attacker's radio forever.

:class:`MultiPeriodConfirmer` implements that vote: an identity is
*confirmed* Sybil once it was flagged in at least ``min_flags`` of the
last ``window`` detection periods.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, FrozenSet, Iterable

from .detector import DetectionReport

__all__ = ["MultiPeriodConfirmer"]


class MultiPeriodConfirmer:
    """Majority vote over a sliding window of detection reports.

    Args:
        window: Number of most recent detection periods considered.
        min_flags: Flags required within the window to confirm an
            identity.  Must satisfy ``1 <= min_flags <= window``; the
            default is a strict majority.
    """

    def __init__(self, window: int = 3, min_flags: int = 0) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if min_flags == 0:
            min_flags = window // 2 + 1
        if not 1 <= min_flags <= window:
            raise ValueError(
                f"min_flags must be in [1, {window}], got {min_flags}"
            )
        self.window = window
        self.min_flags = min_flags
        self._history: Deque[FrozenSet[str]] = deque(maxlen=window)

    def update(self, report: DetectionReport) -> FrozenSet[str]:
        """Fold in one period's report and return confirmed identities."""
        self._history.append(report.sybil_ids)
        return self.confirmed()

    def update_ids(self, flagged: Iterable[str]) -> FrozenSet[str]:
        """Fold in a bare set of flagged identities (no report object)."""
        self._history.append(frozenset(str(i) for i in flagged))
        return self.confirmed()

    def flag_counts(self) -> Dict[str, int]:
        """How often each identity was flagged within the window."""
        counts: Dict[str, int] = {}
        for flagged in self._history:
            for identity in flagged:
                counts[identity] = counts.get(identity, 0) + 1
        return counts

    def confirmed(self) -> FrozenSet[str]:
        """Identities flagged at least ``min_flags`` times in the window."""
        return frozenset(
            identity
            for identity, count in self.flag_counts().items()
            if count >= self.min_flags
        )

    @property
    def periods_seen(self) -> int:
        """Number of reports currently inside the window."""
        return len(self._history)

    def reset(self) -> None:
        """Clear the history window."""
        self._history.clear()
