"""The Voiceprint detector (paper Section IV-C, Algorithm 1).

One :class:`VoiceprintDetector` instance runs on one vehicle and is fed
every beacon that vehicle receives.  It implements the three phases:

* **Collection** — :meth:`VoiceprintDetector.observe` appends
  ``<ID, RSSI>`` tuples to per-identity buffers; the latest
  *observation time* seconds are retained.
* **Comparison** — :meth:`VoiceprintDetector.detect` cuts the current
  observation window, Z-score-normalises every series (Eq. 7), measures
  every pairwise FastDTW distance, and min–max-normalises the distances
  (Eq. 8).
* **Confirmation** — each pair is checked against the threshold policy
  ``D <= k * den + b`` (Algorithm 1, line 15); identities in a flagged
  pair are the suspected Sybil nodes.

The detector is *independent*: it never consumes information reported
by other vehicles, only its own RSSI observations — the property that
makes Voiceprint trust-relationship-free.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from ..obs.audit import (
    default_audit_log,
    get_audit_context,
    get_near_miss_epsilon,
    make_detection_bundle,
    signed_margin,
)
from ..obs.health import HealthMonitor, default_monitor
from ..obs.lineage import current_correlation_id
from ..obs.logging import get_logger
from ..obs.metrics import MetricsRegistry, default_registry
from ..obs.timers import Stopwatch
from ..obs.trace import Tracer, default_tracer
from .fastdtw import DEFAULT_RADIUS, dtw_banded_fast, fastdtw
from .dtw import dtw
from .normalization import _SIGMA_FLOOR, minmax_distances, zscore
from .pairwise import PairwiseEngine, PairwiseStats, get_engine_defaults
from .thresholds import LinearThreshold, ThresholdPolicy
from .timeseries import RSSITimeSeries

__all__ = [
    "DetectorConfig",
    "DetectionReport",
    "VoiceprintDetector",
    "set_ownership_guard",
    "ownership_guard_enabled",
]

_log = get_logger("core.detector")

Pair = Tuple[str, str]

#: Process-wide default for the single-writer ownership guard (see
#: :meth:`VoiceprintDetector.claim_ownership`).  Off in production —
#: the check is one ``threading.get_ident()`` per call, cheap but not
#: free — and switched on by the test suite's conftest plus the
#: streaming service's shard workers, so concurrent misuse of one
#: detector fails loudly instead of silently corrupting buffers.
_OWNERSHIP_GUARD_DEFAULT = False


def set_ownership_guard(enabled: bool) -> bool:
    """Set the process-wide ownership-guard default; returns the previous.

    Only affects detectors constructed afterwards (each instance
    snapshots the default, overridable per instance via the
    ``owner_guard`` constructor argument).
    """
    global _OWNERSHIP_GUARD_DEFAULT
    previous = _OWNERSHIP_GUARD_DEFAULT
    _OWNERSHIP_GUARD_DEFAULT = bool(enabled)
    return previous


def ownership_guard_enabled() -> bool:
    """The current process-wide ownership-guard default."""
    return _OWNERSHIP_GUARD_DEFAULT


@dataclass(frozen=True)
class DetectorConfig:
    """Tunable parameters of one Voiceprint instance.

    Attributes:
        observation_time: Length of the RSSI window compared each
            detection (paper default 20 s).
        min_samples: Series shorter than this are excluded from the
            comparison.  The default (60, i.e. ~30 %% of the ~200
            beacons a full 20 s window carries at 10 Hz) rejects the
            heavily censored traces of vehicles that spent most of the
            window out of range — such truncated drive-by sweeps all
            look alike and are the dominant false-positive source.
            Skipped identities can still not be *detected*, which is
            exactly the packet-loss detection-rate penalty the paper
            describes at high density.
        band_radius_samples: Sakoe–Chiba band half-width for the
            pairwise DTW, in samples (1 s at the 10 Hz cadence per 10
            samples).  A band bounds how much temporal misalignment the
            warp may forgive: Sybil streams are truly synchronous and
            live on the diagonal, while coincidentally similar-shaped
            sweeps from different vehicles need large warps to match
            and get priced accordingly.  ``None`` disables the band and
            uses plain FastDTW (the ablation bench measures the gap).
        fastdtw_radius: FastDTW refinement radius, used only when the
            band is disabled.
        sigma_multiplier: Denominator multiplier of the Z-score; the
            paper's enhanced variant uses 3.
        scale_mode: How series are scaled after mean-centering.
            ``"median"`` (default) divides every series by the *same*
            value — ``sigma_multiplier`` times the median of the
            compared series' standard deviations.  ``"per-series"`` is
            the paper's literal Eq. 7, dividing each series by its own
            deviation.  Mean-centering alone already cancels spoofed
            constant TX-power offsets (Assumption 3's attack); dividing
            by a *per-series* sigma additionally rescales each series'
            noise, which makes per-step DTW costs incomparable across
            links — a high-dynamic drive-by sweep gets its measurement
            noise crushed and can look more "Sybil" than an actual
            Sybil pair.  The common scale keeps costs comparable; the
            ablation bench (E12) measures both modes.
        threshold_on: Which distance the confirmation threshold is
            compared against.  ``"normalized"`` (paper Eq. 8 / default)
            thresholds the per-report min–max-normalised distances —
            note that min–max *forces* the most similar pair in every
            report to 0, so a verifier with no attacker in range always
            flags its two most similar neighbours.  ``"raw"`` thresholds
            the per-step DTW cost directly (it is already scale-free
            after normalisation and path-averaging), which removes that
            forced false positive; the ablation bench compares both.
        use_exact_dtw: Replace the banded/FastDTW measure with exact
            unconstrained DTW (ablations only).
        normalize_by_path_length: Divide each DTW distance by its warp
            path length (mean per-step cost) before the min–max step.
            The paper min–maxes raw sums, which is fine when every pair
            contributes ~200 samples; under real packet loss, raw sums
            make *short* series pairs spuriously similar simply because
            fewer terms are summed.  Path-length normalisation removes
            that length bias; the ablation bench (E12) measures both.
        pairwise_engine: Run the comparison phase through the
            :class:`repro.core.pairwise.PairwiseEngine` (vectorised /
            batched banded-DTW kernels plus the incremental pair
            cache).  Bit-identical to the legacy per-pair loop, just
            faster.  ``None`` (default) follows the process-wide
            engine defaults (CLI ``--pairwise``).
        pairwise_pruning: Let :meth:`VoiceprintDetector.detect` decide
            pairs from the engine's lower/upper-bound cascade without
            running DTW when the bounds cannot change the flagged set
            (banded mode only).  Flagged pairs are identical to the
            exact computation; pruned pairs carry bound surrogates
            instead of exact distances in the report, so analyses that
            consume distance *values* should leave this off (the
            default; see DESIGN.md).  ``None`` follows the process-wide
            defaults.
        pairwise_incremental: Price each detection by what *changed*
            since the previous period instead of the window size:
            per-identity envelopes slide as beacons arrive, unchanged
            pairs carry the previous period's exact distance, and
            bound-undecided pairs run early-abandon DTW seeded with the
            decision boundary (banded mode only; takes precedence over
            ``pairwise_pruning``).  ``sybil_pairs`` stay byte-identical
            to the exact path; like pruning, undecided-then-abandoned
            pairs report surrogate distances — but only when
            consecutive windows actually overlap, so disjoint-window
            workloads (observation time == detection period) reproduce
            exact-mode reports bit for bit (see DESIGN.md §5f).
            ``None`` follows the process-wide defaults.
        pairwise_cache_size: LRU capacity of the engine's pair cache
            (0 disables; ``None`` follows the process-wide defaults).
        pairwise_workers: Engine thread-pool width for exact kernel
            evaluations (0 = inline; ``None`` follows the process-wide
            defaults).
    """

    observation_time: float = 20.0
    min_samples: int = 60
    band_radius_samples: Optional[int] = 10
    fastdtw_radius: int = DEFAULT_RADIUS
    sigma_multiplier: float = 3.0
    scale_mode: str = "median"
    threshold_on: str = "normalized"
    use_exact_dtw: bool = False
    normalize_by_path_length: bool = True
    pairwise_engine: Optional[bool] = None
    pairwise_pruning: Optional[bool] = None
    pairwise_incremental: Optional[bool] = None
    pairwise_cache_size: Optional[int] = None
    pairwise_workers: Optional[int] = None

    def __post_init__(self) -> None:
        if self.observation_time <= 0:
            raise ValueError(
                f"observation_time must be positive, got {self.observation_time}"
            )
        if self.min_samples < 2:
            raise ValueError(f"min_samples must be >= 2, got {self.min_samples}")
        if self.fastdtw_radius < 0:
            raise ValueError(
                f"fastdtw_radius must be non-negative, got {self.fastdtw_radius}"
            )
        if self.band_radius_samples is not None and self.band_radius_samples < 0:
            raise ValueError(
                f"band_radius_samples must be non-negative, got "
                f"{self.band_radius_samples}"
            )
        if self.sigma_multiplier <= 0:
            raise ValueError(
                f"sigma_multiplier must be positive, got {self.sigma_multiplier}"
            )
        if self.scale_mode not in ("median", "per-series"):
            raise ValueError(
                f"scale_mode must be 'median' or 'per-series', got "
                f"{self.scale_mode!r}"
            )
        if self.threshold_on not in ("normalized", "raw"):
            raise ValueError(
                f"threshold_on must be 'normalized' or 'raw', got "
                f"{self.threshold_on!r}"
            )
        if self.pairwise_cache_size is not None and self.pairwise_cache_size < 0:
            raise ValueError(
                f"pairwise_cache_size must be >= 0, got {self.pairwise_cache_size}"
            )
        if self.pairwise_workers is not None and self.pairwise_workers < 0:
            raise ValueError(
                f"pairwise_workers must be >= 0, got {self.pairwise_workers}"
            )


@dataclass(frozen=True)
class DetectionReport:
    """Result of one detection period on one vehicle.

    Attributes:
        timestamp: Detection time (end of the observation window).
        density: Traffic density handed to the threshold policy (the
            unit must match the policy's ``k``; the paper uses
            vehicles/km).
        threshold: The distance threshold applied at that density.
        raw_distances: Pairwise FastDTW distances before Eq. 8.
        distances: Pairwise distances after min–max normalisation.
        sybil_pairs: Pairs whose distance fell below the threshold.
        sybil_ids: Union of identities appearing in any flagged pair
            (Algorithm 1's ``SybilIDs``).
        compared_ids: Identities that had enough samples to compare.
        skipped_ids: Identities heard but excluded (too few samples).
        margins: Per-pair signed distance-to-threshold margin
            ``(judged - threshold) / threshold`` — negative on the
            flagged side, positive on the cleared side; magnitude is
            the relative slack.  Verdicts with tiny |margin| are
            fragile (the health monitor and the ``pipeline.margin.*``
            telemetry watch exactly this).
    """

    timestamp: float
    density: float
    threshold: float
    raw_distances: Dict[Pair, float]
    distances: Dict[Pair, float]
    sybil_pairs: Tuple[Pair, ...]
    sybil_ids: FrozenSet[str]
    compared_ids: Tuple[str, ...]
    skipped_ids: Tuple[str, ...]
    margins: Dict[Pair, float] = field(default_factory=dict)

    def summary(self) -> str:
        """One-line human-readable digest of the period.

        Example::

            t=40.0s density=4.0/km thr=0.0505 compared=5 pairs=10 skipped=1 flagged=[101,102]
        """
        flagged = ",".join(sorted(self.sybil_ids)) or "none"
        return (
            f"t={self.timestamp:.1f}s density={self.density:.1f}/km "
            f"thr={self.threshold:.4g} compared={len(self.compared_ids)} "
            f"pairs={len(self.raw_distances)} skipped={len(self.skipped_ids)} "
            f"flagged=[{flagged}]"
        )

    def sybil_clusters(self) -> List[FrozenSet[str]]:
        """Group flagged identities emitted by the same physical radio.

        Connected components of the flagged-pair graph: if (a, b) and
        (b, c) are both flagged, {a, b, c} are one presumed attacker.

        The returned list is deterministic: clusters are ordered by
        their lexicographically smallest member, independent of
        ``PYTHONHASHSEED`` — downstream consumers (fleet confirmation,
        golden-file tests) may rely on the ordering.
        """
        parent: Dict[str, str] = {}

        def find(x: str) -> str:
            while parent.get(x, x) != x:
                parent[x] = parent.get(parent[x], parent[x])
                x = parent[x]
            return x

        for a, b in self.sybil_pairs:
            parent.setdefault(a, a)
            parent.setdefault(b, b)
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[ra] = rb
        clusters: Dict[str, List[str]] = {}
        for node in sorted(parent):
            clusters.setdefault(find(node), []).append(node)
        return [
            frozenset(members)
            for members in sorted(clusters.values(), key=lambda m: m[0])
        ]


class VoiceprintDetector:
    """Per-vehicle Voiceprint Sybil detector.

    Args:
        threshold: Confirmation threshold policy.  Defaults to the
            paper's trained linear boundary.
        config: Detector tunables; defaults follow Table V.
        registry: Metrics registry instrumentation records into;
            defaults to the process-global one (disabled unless
            observability is configured, in which case every
            instrumented call is a cheap no-op).
        tracer: Span tracer for per-detection phase traces; defaults to
            the process-global one.
        health: Streaming health monitor fed every beacon (Collection
            staleness watchdog) and every detection report (latency /
            flag-rate / density sliding windows).  Defaults to the
            process-global monitor installed via
            :func:`repro.obs.set_default_monitor` — None unless
            telemetry is armed, keeping the unmonitored fast path at a
            single None check.
        owner_guard: Enforce the single-writer contract below with a
            per-call thread-identity check (``None`` follows the
            process default, see :func:`set_ownership_guard`).

    **Thread-safety contract (single writer).**  A detector instance
    holds mutable per-identity buffers and incremental engine state
    with no internal locking: exactly one thread may call the mutating
    entry points (:meth:`observe`, :meth:`detect`, :meth:`load_series`,
    :meth:`forget`, :meth:`reset`).  ``repro.serve`` enforces this by
    sharding observers across worker threads — each shard thread owns
    its detectors outright (one-writer-per-shard) and other threads
    only ever see published :class:`DetectionReport` values.  With the
    ownership guard armed, the first mutating call binds the instance
    to the calling thread and any other thread's mutation raises
    ``RuntimeError`` instead of corrupting buffers; an explicit
    handoff between threads goes through :meth:`claim_ownership`.

    Example:
        >>> detector = VoiceprintDetector()
        >>> for t, identity, rssi in beacons:          # doctest: +SKIP
        ...     detector.observe(identity, t, rssi)
        >>> report = detector.detect(density=40.0, now=t)  # doctest: +SKIP
        >>> sorted(report.sybil_ids)                       # doctest: +SKIP
    """

    def __init__(
        self,
        threshold: Optional[ThresholdPolicy] = None,
        config: Optional[DetectorConfig] = None,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        health: Optional[HealthMonitor] = None,
        owner_guard: Optional[bool] = None,
    ) -> None:
        self.threshold: ThresholdPolicy = threshold or LinearThreshold()
        self.config = config or DetectorConfig()
        self._buffers: Dict[str, RSSITimeSeries] = {}
        self._latest: float = float("-inf")
        self._next_sweep_t: float = float("-inf")
        self._guard = (
            _OWNERSHIP_GUARD_DEFAULT if owner_guard is None else owner_guard
        )
        self._owner_ident: Optional[int] = None
        #: Observer id stamped onto this detector's audit bundles in
        #: place of the process-global audit context — shard threads in
        #: ``repro.serve`` run many detectors concurrently, so a global
        #: stamp would race (see :func:`repro.obs.set_audit_context`).
        self.audit_identity: Optional[str] = None
        self._audit_period = 0
        metrics = registry if registry is not None else default_registry()
        self._tracer = tracer if tracer is not None else default_tracer()
        self._health = health if health is not None else default_monitor()
        self._c_beacons = metrics.counter("detector.beacons_observed")
        self._c_evictions = metrics.counter("detector.series_evictions")
        self._c_pairs = metrics.counter("detector.pairs_compared")
        self._c_cells = metrics.counter("detector.dtw_cells")
        self._h_detect_ms = metrics.histogram("detector.detect_ms")
        self._h_margin = metrics.histogram("pipeline.margin.signed")
        self._h_margin_abs = metrics.histogram("pipeline.margin.abs")
        self._c_near_miss = metrics.counter("pipeline.margin.near_miss")
        defaults = get_engine_defaults()
        cfg = self.config
        use_engine = (
            defaults.engine if cfg.pairwise_engine is None else cfg.pairwise_engine
        )
        self._pruning = (
            defaults.pruning if cfg.pairwise_pruning is None else cfg.pairwise_pruning
        )
        self._incremental = (
            defaults.incremental
            if cfg.pairwise_incremental is None
            else cfg.pairwise_incremental
        )
        self._engine: Optional[PairwiseEngine] = None
        if use_engine:
            self._engine = PairwiseEngine(
                band_radius=cfg.band_radius_samples,
                use_exact_dtw=cfg.use_exact_dtw,
                fastdtw_radius=cfg.fastdtw_radius,
                normalize_by_path_length=cfg.normalize_by_path_length,
                pruning=self._pruning,
                incremental=self._incremental,
                cache_size=(
                    defaults.cache_size
                    if cfg.pairwise_cache_size is None
                    else cfg.pairwise_cache_size
                ),
                workers=(
                    defaults.workers
                    if cfg.pairwise_workers is None
                    else cfg.pairwise_workers
                ),
                registry=metrics,
            )

        self._c_stale_forgets = metrics.counter("detector.stale_forgets")

    @property
    def pairwise_stats(self) -> Optional[PairwiseStats]:
        """Cumulative engine work accounting (``None`` on the legacy path)."""
        return self._engine.stats if self._engine is not None else None

    # ------------------------------------------------------------------
    # Single-writer ownership guard
    # ------------------------------------------------------------------
    def enable_ownership_guard(self) -> None:
        """Arm the guard on this instance and bind it to this thread."""
        self._guard = True
        self._owner_ident = threading.get_ident()

    def claim_ownership(self) -> None:
        """Rebind the guard to the calling thread (explicit handoff).

        The previous owner must have stopped touching the detector
        before the new owner claims it — the guard checks identity,
        not synchronisation.
        """
        self._owner_ident = threading.get_ident()

    def _check_owner(self) -> None:
        if not self._guard:
            return
        ident = threading.get_ident()
        owner = self._owner_ident
        if owner is None:
            self._owner_ident = ident
        elif ident != owner:
            raise RuntimeError(
                f"VoiceprintDetector mutated from thread {ident} while "
                f"owned by thread {owner}: observe()/detect() are "
                "single-writer — route every mutation through one shard "
                "thread (see repro.serve) or hand the instance over with "
                "claim_ownership()"
            )

    # ------------------------------------------------------------------
    # Collection phase
    # ------------------------------------------------------------------
    def observe(self, identity: str, timestamp: float, rssi: float) -> None:
        """Record one received beacon's ``<ID, RSSI>`` tuple.

        Buffers are trimmed lazily to roughly twice the observation
        time, and identities whose *newest* sample has fallen more than
        twice the observation time behind the latest beacon are swept
        away entirely (buffer plus incremental pair state) — an
        identity that went silent can never contribute samples to a
        window again, so keeping it would leak memory for every
        identity a long-running observer ever heard.  The sweep is
        amortised: it runs at most once per observation time.
        """
        self._check_owner()
        identity = str(identity)
        buffer = self._buffers.get(identity)
        if buffer is None:
            buffer = RSSITimeSeries(identity)
            self._buffers[identity] = buffer
        buffer.append(timestamp, rssi)
        self._c_beacons.inc()
        if self._health is not None:
            self._health.beat(timestamp)
        if timestamp > self._latest:
            self._latest = timestamp
        horizon = timestamp - 2.0 * self.config.observation_time
        if buffer.start < horizon:
            buffer.drop_before(horizon)
            self._c_evictions.inc()
        if self._latest >= self._next_sweep_t:
            self._sweep_stale()

    def _sweep_stale(self) -> None:
        """Forget identities silent for over twice the observation time.

        The horizon trails :attr:`_latest` (the newest beacon heard from
        *anyone*), so a single chatty neighbour is enough to age out the
        whole silent tail.  Runs O(identities) once per observation
        time — amortised O(1) per beacon.
        """
        horizon = self._latest - 2.0 * self.config.observation_time
        stale = [
            identity
            for identity, buffer in self._buffers.items()
            if len(buffer) == 0 or buffer.end < horizon
        ]
        for identity in stale:
            del self._buffers[identity]
            if self._engine is not None:
                self._engine.drop_identity(identity)
        if stale:
            self._c_stale_forgets.inc(len(stale))
        self._next_sweep_t = self._latest + self.config.observation_time

    def load_series(self, series: RSSITimeSeries) -> None:
        """Adopt a pre-collected series as this identity's buffer.

        Batch/offline convenience: replaying a finished simulation
        sample-by-sample through :meth:`observe` would only rebuild the
        series objects the simulator already produced.  The series is
        adopted by reference and replaces any existing buffer for the
        identity.
        """
        self._check_owner()
        self._buffers[series.identity] = series
        if len(series) and series.end > self._latest:
            self._latest = series.end

    @property
    def heard_identities(self) -> Tuple[str, ...]:
        """All identities with at least one buffered sample."""
        return tuple(sorted(self._buffers))

    def series_for(self, identity: str) -> Optional[RSSITimeSeries]:
        """The raw buffered series for one identity, if any."""
        return self._buffers.get(str(identity))

    def forget(self, identity: str) -> None:
        """Drop an identity's buffer (e.g. after a node leaves range).

        Incremental engine state referencing the identity (envelopes,
        per-pair carries) is dropped with it: a node that re-enters
        range later must never carry a stale pre-departure verdict.
        """
        self._check_owner()
        identity = str(identity)
        self._buffers.pop(identity, None)
        if self._engine is not None:
            self._engine.drop_identity(identity)

    # ------------------------------------------------------------------
    # Comparison + confirmation phases
    # ------------------------------------------------------------------
    def _pair_distance(self, x: np.ndarray, y: np.ndarray) -> float:
        if self.config.use_exact_dtw:
            result = dtw(x, y)
        elif self.config.band_radius_samples is not None:
            result = dtw_banded_fast(x, y, self.config.band_radius_samples)
        else:
            result = fastdtw(x, y, radius=self.config.fastdtw_radius)
        self._c_pairs.inc()
        self._c_cells.inc(result.cells)
        if self.config.normalize_by_path_length:
            return result.distance / len(result.path)
        return result.distance

    def _normalise(
        self,
        now: float,
        capture: Optional[Dict[str, Any]] = None,
        inc_out: Optional[Dict[str, Any]] = None,
    ) -> Tuple[Dict[str, np.ndarray], List[str], Optional[Dict[str, bytes]], str]:
        """Cut and normalise the observation window (``normalise`` span).

        Returns ``(normalised, skipped, cache_keys, scale_tag)``.  The
        cache keys fingerprint each identity's *raw* window bytes and
        the scale tag fingerprints everything else that determines the
        normalised series, so key+tag equality implies the normalised
        series — and hence any DTW result on them — is identical.

        When ``capture`` is given (an audit sink is active), it is
        filled with the raw windows and the exact ``(mean, divisor)``
        each series was normalised with — ``(raw - mean) / divisor``
        reproduces the normalised series bit-identically (divisor 0
        marks the z-score constant-series case: all zeros).

        When ``inc_out`` is given (incremental engine mode), it is
        filled with the per-identity raw windows (``"raw"``), their
        timestamps (``"times"``, which align the overlap between
        consecutive sliding windows) and the same exact ``(mean,
        divisor)`` pairs (``"params"``) the incremental engine uses to
        map persistent raw-domain envelopes into the normalised domain.
        """
        with self._tracer.span("normalise") as span:
            window_start = now - self.config.observation_time
            windows: Dict[str, np.ndarray] = {}
            window_times: Dict[str, np.ndarray] = {}
            skipped: List[str] = []
            for identity, buffer in self._buffers.items():
                window = buffer.window(window_start, now + 1e-9)
                if len(window) < self.config.min_samples:
                    skipped.append(identity)
                    continue
                windows[identity] = window.values
                if inc_out is not None:
                    window_times[identity] = window.timestamps
            normalised: Dict[str, np.ndarray] = {}
            series_capture: Optional[Dict[str, Dict[str, Any]]] = None
            params: Dict[str, Tuple[float, float]] = {}
            if self.config.scale_mode == "median" and windows:
                sigmas = [float(np.std(v)) for v in windows.values()]
                scale = self.config.sigma_multiplier * max(
                    float(np.median(sigmas)), 1e-9
                )
                scale_tag = f"median:{scale.hex()}"
                for identity, values in windows.items():
                    mean = float(np.mean(values))
                    normalised[identity] = (values - mean) / scale
                    params[identity] = (mean, scale)
                    if capture is not None:
                        if series_capture is None:
                            series_capture = capture.setdefault("series", {})
                        series_capture[identity] = {
                            "values": values,
                            "mean": mean,
                            "divisor": scale,
                        }
            else:
                scale_tag = f"z:{float(self.config.sigma_multiplier).hex()}"
                for identity, values in windows.items():
                    normalised[identity] = zscore(
                        values, sigma_multiplier=self.config.sigma_multiplier
                    )
                    if capture is not None or inc_out is not None:
                        sigma = float(np.std(values))
                        mean = float(np.mean(values))
                        divisor = (
                            self.config.sigma_multiplier * sigma
                            if sigma >= _SIGMA_FLOOR
                            else 0.0
                        )
                        params[identity] = (mean, divisor)
                        if capture is not None:
                            if series_capture is None:
                                series_capture = capture.setdefault("series", {})
                            series_capture[identity] = {
                                "values": values,
                                "mean": mean,
                                "divisor": divisor,
                            }
            if capture is not None:
                capture["scale_tag"] = scale_tag
            keys: Optional[Dict[str, bytes]] = None
            if self._engine is not None and (
                self._engine.cache_enabled or inc_out is not None
            ):
                keys = {
                    identity: values.tobytes()
                    for identity, values in windows.items()
                }
            if inc_out is not None:
                inc_out["raw"] = windows
                inc_out["times"] = window_times
                inc_out["params"] = params
            span.set_attribute("series", len(normalised))
            span.set_attribute("skipped", len(skipped))
        return normalised, skipped, keys, scale_tag

    def compare(
        self,
        now: Optional[float] = None,
        capture: Optional[Dict[str, Any]] = None,
    ) -> Tuple[Dict[Pair, float], Tuple[str, ...], Tuple[str, ...]]:
        """Run the comparison phase only.

        Returns ``(raw_distances, compared_ids, skipped_ids)`` where the
        distances are *pre*-min–max FastDTW values on Z-scored series.
        ``capture`` is the audit evidence dict (see :meth:`_normalise`).
        """
        if now is None:
            now = self._latest
        normalised, skipped, keys, scale_tag = self._normalise(now, capture)
        with self._tracer.span("pairwise_dtw") as span:
            compared = tuple(sorted(normalised))
            cells_before = self._c_cells.value
            if self._engine is not None:
                raw, stats = self._engine.compare(normalised, keys, scale_tag)
                span.set_attribute("cache_hits", stats.cache_hits)
            else:
                raw = {}
                for idx, a in enumerate(compared):
                    for b in compared[idx + 1 :]:
                        raw[(a, b)] = self._pair_distance(
                            normalised[a], normalised[b]
                        )
            span.set_attribute("pairs", len(raw))
            span.set_attribute("cells", int(self._c_cells.value - cells_before))
        return raw, compared, tuple(sorted(skipped))

    def detect(
        self,
        density: float,
        now: Optional[float] = None,
    ) -> DetectionReport:
        """Run one full detection period (Algorithm 1).

        Args:
            density: Locally estimated traffic density, in the unit the
                threshold policy was trained with (vehicles/km for the
                paper's boundary).
            now: End of the observation window; defaults to the latest
                observed timestamp.

        Returns:
            A :class:`DetectionReport`; with fewer than two comparable
            identities the report is empty (nothing to compare).
        """
        self._check_owner()
        if density < 0:
            raise ValueError(f"density must be non-negative, got {density}")
        if now is None:
            now = self._latest if self._buffers else 0.0
        incremental = self._engine is not None and self._engine.can_incremental
        pruning = self._engine is not None and self._engine.can_prune
        sink = default_audit_log()
        capture: Optional[Dict[str, Any]] = {} if sink is not None else None
        if self._engine is not None:
            self._engine.record_provenance = sink is not None
        stopwatch = Stopwatch(self._h_detect_ms)
        with self._tracer.span("detection", density=float(density)) as root, \
                stopwatch:
            if incremental:
                assert self._engine is not None
                # Incremental comparison: per-identity envelope states
                # slide with the window, unchanged pairs carry the
                # previous period's exact distance, and bound-undecided
                # pairs run early-abandon DTW seeded with the decision
                # boundary.  Flags stay byte-identical to the exact
                # path; surrogate distances appear only for pairs whose
                # windows overlapped the previous period (DESIGN.md §5f).
                inc_state: Dict[str, Any] = {}
                normalised, skipped_list, keys, scale_tag = self._normalise(
                    now, capture, inc_out=inc_state
                )
                assert keys is not None
                compared = tuple(sorted(normalised))
                skipped = tuple(sorted(skipped_list))
                cutoff = self.threshold.threshold_at(density)
                with self._tracer.span("pairwise_dtw") as span:
                    cells_before = self._c_cells.value
                    raw, flags, stats = self._engine.compare_incremental(
                        normalised,
                        inc_state["raw"],
                        inc_state["times"],
                        keys,
                        scale_tag,
                        inc_state["params"],
                        float(cutoff),
                        self.config.threshold_on,
                    )
                    span.set_attribute("pairs", len(raw))
                    span.set_attribute("cells", int(self._c_cells.value - cells_before))
                    span.set_attribute("pruned", stats.pruned)
                    span.set_attribute("cache_hits", stats.cache_hits)
                    span.set_attribute("incremental", stats.incremental)
                    span.set_attribute("abandoned", stats.abandoned)
                with self._tracer.span("minmax"):
                    distances = minmax_distances(raw)
                with self._tracer.span("threshold") as span:
                    sybil_pairs = tuple(
                        pair for pair in sorted(flags) if flags[pair]
                    )
                    sybil_ids = frozenset(
                        identity for pair in sybil_pairs for identity in pair
                    )
                    span.set_attribute("threshold", float(cutoff))
                    span.set_attribute("flagged", len(sybil_ids))
            elif pruning:
                assert self._engine is not None
                # Threshold-aware comparison: the engine decides pairs
                # from the bound cascade wherever the bounds cannot
                # change the flagged set, so the spans below see
                # surrogate distances for pruned pairs (bit-identical
                # flags, see DESIGN.md).
                normalised, skipped_list, keys, scale_tag = self._normalise(
                    now, capture
                )
                compared = tuple(sorted(normalised))
                skipped = tuple(sorted(skipped_list))
                cutoff = self.threshold.threshold_at(density)
                with self._tracer.span("pairwise_dtw") as span:
                    cells_before = self._c_cells.value
                    raw, flags, stats = self._engine.compare_decided(
                        normalised,
                        keys,
                        scale_tag,
                        float(cutoff),
                        self.config.threshold_on,
                    )
                    span.set_attribute("pairs", len(raw))
                    span.set_attribute("cells", int(self._c_cells.value - cells_before))
                    span.set_attribute("pruned", stats.pruned)
                    span.set_attribute("cache_hits", stats.cache_hits)
                with self._tracer.span("minmax"):
                    distances = minmax_distances(raw)
                with self._tracer.span("threshold") as span:
                    sybil_pairs = tuple(
                        pair for pair in sorted(flags) if flags[pair]
                    )
                    sybil_ids = frozenset(
                        identity for pair in sybil_pairs for identity in pair
                    )
                    span.set_attribute("threshold", float(cutoff))
                    span.set_attribute("flagged", len(sybil_ids))
            else:
                raw, compared, skipped = self.compare(now=now, capture=capture)
                with self._tracer.span("minmax"):
                    distances = minmax_distances(raw)
                with self._tracer.span("threshold") as span:
                    cutoff = self.threshold.threshold_at(density)
                    judged = (
                        distances if self.config.threshold_on == "normalized" else raw
                    )
                    sybil_pairs = tuple(
                        pair for pair, d in sorted(judged.items()) if d <= cutoff
                    )
                    sybil_ids = frozenset(
                        identity for pair in sybil_pairs for identity in pair
                    )
                    span.set_attribute("threshold", float(cutoff))
                    span.set_attribute("flagged", len(sybil_ids))
            judged = (
                distances if self.config.threshold_on == "normalized" else raw
            )
            epsilon = get_near_miss_epsilon()
            margins: Dict[Pair, float] = {}
            for pair, distance in judged.items():
                margin = signed_margin(distance, float(cutoff))
                margins[pair] = margin
                self._h_margin.observe(margin)
                self._h_margin_abs.observe(abs(margin))
                if abs(margin) < epsilon:
                    self._c_near_miss.inc()
            root.set_attribute("compared", len(compared))
            root.set_attribute("flagged", len(sybil_ids))
        report = DetectionReport(
            timestamp=float(now),
            density=float(density),
            threshold=float(cutoff),
            raw_distances=raw,
            distances=distances,
            sybil_pairs=sybil_pairs,
            sybil_ids=sybil_ids,
            compared_ids=compared,
            skipped_ids=skipped,
            margins=margins,
        )
        if sink is not None:
            observer, period = get_audit_context()
            if self.audit_identity is not None:
                # Serve-mode stamp: shard threads run many detectors
                # concurrently, so the process-global context would
                # race; the instance-level identity cannot.
                observer = self.audit_identity
                period = self._audit_period
            # The audit_write span makes evidence-persistence cost
            # visible in the trace decomposition (lineage folds it into
            # the audit_write sub-stage of detect).
            with self._tracer.span("audit_write"):
                sink.record_detection(
                    make_detection_bundle(
                        report=report,
                        config=self.config,
                        scale_tag=(capture or {}).get("scale_tag", ""),
                        series=(capture or {}).get("series", {}),
                        provenance=(
                            self._engine.last_provenance
                            if self._engine is not None
                            else None
                        ),
                        observer=observer,
                        period=period,
                        store_windows=sink.store_windows,
                        correlation_id=current_correlation_id(),
                    )
                )
        self._audit_period += 1
        if self._health is not None:
            self._health.on_report(report, stopwatch.elapsed_ms or 0.0)
        if _log.isEnabledFor(10):  # DEBUG: skip summary() cost otherwise
            _log.debug("detection complete", extra={"report": report.summary()})
        return report

    def reset(self) -> None:
        """Drop all collection buffers and incremental state (fresh start)."""
        self._check_owner()
        self._buffers.clear()
        self._latest = float("-inf")
        self._next_sweep_t = float("-inf")
        if self._engine is not None:
            self._engine.clear_incremental()
