"""Linear Discriminant Analysis for the Voiceprint decision boundary.

The confirmation phase flags a pair as Sybil when its min–max-normalised
DTW distance falls below a *density-dependent* threshold — a line
``D = k * den + b`` in the (density, distance) plane (Section IV-C-3,
Fig. 10).  The line is trained offline: simulations at several traffic
densities produce labelled points (Sybil pair vs non-Sybil pair) and LDA
finds the separating line.

This is a from-scratch two-class LDA with a shared (pooled) covariance,
i.e. the classic Gaussian discriminant whose decision surface is linear:

.. math::

    w = \\Sigma^{-1} (\\mu_1 - \\mu_0), \\qquad
    c = -\\tfrac{1}{2} w^\\top (\\mu_0 + \\mu_1) + \\ln(\\pi_1 / \\pi_0)

A point ``z`` is assigned to class 1 (Sybil) when ``w·z + c > 0``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

__all__ = ["LDAModel", "DecisionLine", "fit_lda", "fit_decision_line"]

#: Ridge added to the pooled covariance diagonal so the fit survives
#: degenerate training sets (e.g. all points at one density).
_RIDGE = 1e-9


@dataclass(frozen=True)
class LDAModel:
    """A fitted two-class linear discriminant.

    Attributes:
        weights: The discriminant direction ``w`` (length-2 for the
            density–distance plane).
        bias: The offset ``c``; the class-1 region is ``w·z + c > 0``.
        mean_negative: Training mean of class 0 (non-Sybil pairs).
        mean_positive: Training mean of class 1 (Sybil pairs).
    """

    weights: Tuple[float, ...]
    bias: float
    mean_negative: Tuple[float, ...]
    mean_positive: Tuple[float, ...]

    def score(self, point: Sequence[float]) -> float:
        """Signed distance proxy ``w·z + c`` (positive means class 1)."""
        z = np.asarray(point, dtype=float)
        w = np.asarray(self.weights, dtype=float)
        if z.shape != w.shape:
            raise ValueError(f"expected a point of dimension {w.size}, got {z.size}")
        return float(w @ z + self.bias)

    def predict(self, point: Sequence[float]) -> int:
        """Class label: 1 (Sybil pair) or 0 (distinct physical nodes)."""
        return 1 if self.score(point) > 0 else 0


@dataclass(frozen=True)
class DecisionLine:
    """The trained threshold line ``D = k * den + b`` of Algorithm 1.

    A pair is flagged Sybil when its normalised distance satisfies
    ``D <= k * den + b`` at the locally estimated density ``den``.

    Attributes:
        k: Slope (paper's trained value: 0.00054).
        b: Intercept (paper's trained value: 0.0483).
    """

    k: float
    b: float

    def threshold_at(self, density: float) -> float:
        """Distance threshold at a given traffic density (vehicles/m)."""
        if density < 0:
            raise ValueError(f"density must be non-negative, got {density}")
        return self.k * density + self.b

    def is_sybil_pair(self, density: float, distance: float) -> bool:
        """Apply the confirmation rule of Algorithm 1, line 15."""
        return distance <= self.threshold_at(density)


def fit_lda(
    negatives: np.ndarray,
    positives: np.ndarray,
) -> LDAModel:
    """Fit two-class LDA with a pooled covariance.

    Args:
        negatives: ``(n0, d)`` array of class-0 points (non-Sybil pairs:
            Sybil-vs-normal and normal-vs-normal distances).
        positives: ``(n1, d)`` array of class-1 points (same-attacker
            Sybil pairs).

    Returns:
        The fitted :class:`LDAModel`.

    Raises:
        ValueError: If either class is empty or dimensions disagree.
    """
    neg = np.atleast_2d(np.asarray(negatives, dtype=float))
    pos = np.atleast_2d(np.asarray(positives, dtype=float))
    if neg.size == 0 or pos.size == 0:
        raise ValueError("both classes need at least one training point")
    if neg.shape[1] != pos.shape[1]:
        raise ValueError(
            f"dimension mismatch: {neg.shape[1]} vs {pos.shape[1]}"
        )
    d = neg.shape[1]
    mu0 = neg.mean(axis=0)
    mu1 = pos.mean(axis=0)

    def scatter(points: np.ndarray, mu: np.ndarray) -> np.ndarray:
        centred = points - mu
        return centred.T @ centred

    n_total = neg.shape[0] + pos.shape[0]
    pooled = (scatter(neg, mu0) + scatter(pos, mu1)) / max(n_total - 2, 1)
    pooled += _RIDGE * np.eye(d)

    weights = np.linalg.solve(pooled, mu1 - mu0)
    prior_ratio = pos.shape[0] / neg.shape[0]
    bias = float(-0.5 * weights @ (mu0 + mu1) + np.log(prior_ratio))
    return LDAModel(
        weights=tuple(float(w) for w in weights),
        bias=bias,
        mean_negative=tuple(float(v) for v in mu0),
        mean_positive=tuple(float(v) for v in mu1),
    )


def _threshold_for_bin(
    neg_distances: np.ndarray,
    pos_distances: np.ndarray,
    max_fpr: float,
) -> float:
    """Largest distance threshold keeping the bin's pair-FPR in budget.

    A Neyman–Pearson choice rather than Youden's J: one flagged pair
    condemns *two* identities, and a verifier tests hundreds of pairs
    per period, so the identity-level false-positive rate amplifies the
    pair-level one by the neighbour count.  Holding pair-FPR to a small
    budget is what keeps the run-level FPR under the paper's 10 %.
    """
    neg_sorted = np.sort(neg_distances)
    allowed = int(math.floor(max_fpr * neg_sorted.size))
    if allowed <= 0:
        # Between the most similar negative and zero: split the gap.
        floor = neg_sorted[0] if neg_sorted.size else 0.0
        return float(floor) * 0.5
    # Threshold just below the (allowed+1)-th smallest negative.
    cutoff_index = min(allowed, neg_sorted.size - 1)
    below = neg_sorted[cutoff_index - 1] if cutoff_index > 0 else 0.0
    return float(0.5 * (below + neg_sorted[cutoff_index]))


def fit_decision_line(
    negatives: np.ndarray,
    positives: np.ndarray,
    max_pair_fpr: float = 0.003,
    n_bins: int = 5,
    min_positives_per_bin: int = 20,
) -> DecisionLine:
    """Train the ``(k, b)`` threshold line from labelled 2-D points.

    Points are ``(density, normalised DTW distance)`` rows; class 1 is
    the Sybil-pair class.  The line is fitted as the paper describes
    conceptually — "the threshold as a function of density" — via:

    1. binning the points by density (equal-count bins, merged until
       each holds at least ``min_positives_per_bin`` positives);
    2. choosing each bin's threshold as the largest cut whose
       *pair-level* false-positive rate stays within ``max_pair_fpr``
       (see :func:`_threshold_for_bin` for why not Youden's J);
    3. least-squares fitting ``threshold = k * density + b`` across the
       bins, weighted by bin positive counts.

    A plain 2-D LDA (also exposed as :func:`fit_lda`) is unreliable
    here: the two classes violate its equal-covariance assumption by
    orders of magnitude, and class-vs-density sampling artefacts leak
    into the slope.  The binned fit measures the quantity of interest
    directly at each density instead.

    Raises:
        ValueError: If either class is empty.
    """
    neg = np.atleast_2d(np.asarray(negatives, dtype=float))
    pos = np.atleast_2d(np.asarray(positives, dtype=float))
    if neg.size == 0 or pos.size == 0:
        raise ValueError("both classes need at least one training point")
    if not 0.0 <= max_pair_fpr < 1.0:
        raise ValueError(f"max_pair_fpr must be in [0, 1), got {max_pair_fpr}")
    if n_bins < 1:
        raise ValueError(f"n_bins must be >= 1, got {n_bins}")

    # Equal-count density bins over the positives' density range.
    edges = np.quantile(pos[:, 0], np.linspace(0.0, 1.0, n_bins + 1))
    edges = np.unique(edges)
    if len(edges) == 1:
        # Every positive sits at one density: a single constant bin.
        threshold = _threshold_for_bin(neg[:, 1], pos[:, 1], max_pair_fpr)
        return DecisionLine(k=0.0, b=float(threshold))
    bins: list = []
    start = 0
    while start < len(edges) - 1:
        end = start + 1
        while True:
            lo_edge, hi_edge = edges[start], edges[end]
            pos_mask = (pos[:, 0] >= lo_edge) & (
                pos[:, 0] <= hi_edge if end == len(edges) - 1 else pos[:, 0] < hi_edge
            )
            if pos_mask.sum() >= min_positives_per_bin or end == len(edges) - 1:
                break
            end += 1
        neg_mask = (neg[:, 0] >= lo_edge) & (
            neg[:, 0] <= hi_edge if end == len(edges) - 1 else neg[:, 0] < hi_edge
        )
        if pos_mask.sum() > 0 and neg_mask.sum() > 0:
            bins.append((pos_mask, neg_mask))
        start = end

    if not bins:
        raise ValueError("no density bin holds both classes; widen the sweep")

    centres = []
    thresholds = []
    weights = []
    for pos_mask, neg_mask in bins:
        centres.append(float(np.mean(pos[pos_mask, 0])))
        thresholds.append(
            _threshold_for_bin(neg[neg_mask, 1], pos[pos_mask, 1], max_pair_fpr)
        )
        weights.append(float(pos_mask.sum()))

    if len(bins) == 1:
        return DecisionLine(k=0.0, b=float(thresholds[0]))

    x = np.asarray(centres)
    y = np.asarray(thresholds)
    w = np.asarray(weights)
    w_sum = w.sum()
    x_mean = float((w * x).sum() / w_sum)
    y_mean = float((w * y).sum() / w_sum)
    var = float((w * (x - x_mean) ** 2).sum())
    if var < 1e-12:
        return DecisionLine(k=0.0, b=y_mean)
    k = float((w * (x - x_mean) * (y - y_mean)).sum() / var)
    b = y_mean - k * x_mean
    # Extrapolation guard: the fitted line must stay usable over the
    # training density range — a negative threshold flags nothing.
    # Lift the intercept so the lowest training density keeps at least
    # half its own bin's threshold.
    floor = 0.5 * float(min(thresholds))
    lowest = float(min(centres))
    if k * lowest + b < floor:
        b = floor - k * lowest
    return DecisionLine(k=k, b=b)
