"""Normalisation steps of the Voiceprint comparison phase.

Two normalisations appear in the paper:

* **Enhanced Z-score** (Eq. 7) — applied to every RSSI series *before*
  DTW.  Dividing by ``3 * sigma`` maps ~99.7 % of samples into
  ``(-1, 1)`` and, crucially, cancels any constant TX-power offset the
  attacker gives each Sybil identity (Assumption 3): shifting a series
  by a constant changes only its mean, and rescaling the radio gain
  changes only its deviation — the *shape*, which is what DTW compares,
  is preserved.

* **Min–max** (Eq. 8) — applied to the set of pairwise DTW distances
  *after* comparison, mapping them into ``[0, 1]`` so that a single
  trained decision boundary is meaningful across detection periods.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Tuple

import numpy as np

from .timeseries import RSSITimeSeries

__all__ = [
    "zscore",
    "zscore_series",
    "enhanced_zscore",
    "minmax",
    "minmax_distances",
    "RunningStats",
    "StreamingWindowStats",
]

#: Below this standard deviation a series is treated as constant; the
#: Z-score of a constant series is defined as all-zeros rather than a
#: division by (almost) zero blowing measurement noise up to +/-inf.
_SIGMA_FLOOR = 1e-12


def zscore(values: np.ndarray, sigma_multiplier: float = 1.0) -> np.ndarray:
    """Classic Z-score normalisation ``(x - mu) / (k * sigma)``.

    Args:
        values: 1-D array of samples.
        sigma_multiplier: ``k`` in the denominator; the paper's enhanced
            variant uses 3 (see :func:`enhanced_zscore`).

    Returns:
        A new array of the same shape.  A constant (or empty) input maps
        to all zeros.
    """
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"expected a 1-D array, got shape {arr.shape}")
    if sigma_multiplier <= 0:
        raise ValueError(f"sigma_multiplier must be positive, got {sigma_multiplier}")
    if arr.size == 0:
        return arr.copy()
    sigma = float(np.std(arr))
    if sigma < _SIGMA_FLOOR:
        return np.zeros_like(arr)
    return (arr - float(np.mean(arr))) / (sigma_multiplier * sigma)


def enhanced_zscore(values: np.ndarray) -> np.ndarray:
    """The paper's enhanced Z-score (Eq. 7): ``(x - mu) / (3 * sigma)``.

    Maps ~99.7 % of a Gaussian-like series into ``(-1, 1)`` while
    leaving the series *shape* untouched, which eliminates spoofed
    per-identity transmission-power offsets.
    """
    return zscore(values, sigma_multiplier=3.0)


def zscore_series(
    series: RSSITimeSeries, sigma_multiplier: float = 3.0
) -> RSSITimeSeries:
    """Return a normalised copy of ``series`` (timestamps preserved)."""
    normalised = zscore(series.values, sigma_multiplier=sigma_multiplier)
    out = RSSITimeSeries(series.identity)
    for t, v in zip(series.timestamps, normalised):
        out.append(float(t), float(v))
    return out


def minmax(values: np.ndarray) -> np.ndarray:
    """Min–max normalisation into ``[0, 1]`` (Eq. 8).

    A constant (or single-element) input maps to all zeros — in the
    detector this situation means "all pairs look equally similar", and
    mapping to 0 (maximal similarity) errs on the side of flagging,
    which matches the paper's treatment of indistinguishable pairs.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return arr.copy()
    lo = float(np.min(arr))
    hi = float(np.max(arr))
    if hi - lo < _SIGMA_FLOOR:
        return np.zeros_like(arr)
    return (arr - lo) / (hi - lo)


class RunningStats:
    """Streaming mean/variance over a sliding window (Welford + removal).

    Maintains the running mean and the sum of squared deviations (``M2``)
    of the samples currently inside the window, updated in O(1) per
    ``add``/``remove`` instead of O(window) per period.  This is the
    screening-layer counterpart of :func:`zscore`: the incremental engine
    uses it to track per-identity window statistics between detection
    periods without re-reducing the whole window.

    The batch path computes ``np.mean``/``np.std`` over the full window;
    streaming accumulation follows a different float summation order, so
    the two agree only to accumulation tolerance (~1e-9 relative), never
    necessarily bit-for-bit.  The one exact guarantee — required by the
    divisor==0.0 constant-series sentinel in the audit schema — is that a
    window whose samples are all equal reports ``M2 == 0.0`` exactly, and
    therefore ``std() == 0.0`` and ``divisor() == 0.0``:  ``add`` skips
    the M2 update when the incoming sample equals the running mean, and
    removals that empty the window reset both accumulators to exactly
    zero.
    """

    __slots__ = ("count", "mean", "m2")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self.m2 = 0.0

    def add(self, value: float) -> None:
        """Fold one sample into the window (Welford update)."""
        value = float(value)
        self.count += 1
        delta = value - self.mean
        if delta == 0.0:
            # Constant run: mean is unchanged and M2 must stay *exactly*
            # what it was (0.0 for an all-constant window) rather than
            # accumulate a -0.0/rounding residue.
            return
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)

    def remove(self, value: float) -> None:
        """Remove one sample previously ``add``-ed (reverse Welford)."""
        value = float(value)
        if self.count <= 0:
            raise ValueError("remove() from empty RunningStats")
        if self.count == 1:
            self.count = 0
            self.mean = 0.0
            self.m2 = 0.0
            return
        self.count -= 1
        delta = value - self.mean
        if delta == 0.0:
            return
        self.mean -= delta / self.count
        self.m2 -= delta * (value - self.mean)
        if self.m2 < 0.0:
            # Cancellation can leave a tiny negative residue; variance
            # is non-negative by definition.
            self.m2 = 0.0

    @property
    def variance(self) -> float:
        """Population variance of the current window (0.0 when empty)."""
        if self.count <= 0:
            return 0.0
        return self.m2 / self.count

    def std(self) -> float:
        """Population standard deviation of the current window."""
        return float(np.sqrt(self.variance))

    def divisor(self, sigma_multiplier: float = 3.0) -> float:
        """Z-score divisor ``k * sigma``; exactly 0.0 for constant windows.

        Mirrors the constant-series sentinel of :func:`zscore` (and the
        audit bundle's ``divisor == 0.0`` convention): a window with
        sub-floor deviation normalises to all zeros, signalled by a 0.0
        divisor rather than a near-zero one.
        """
        sigma = self.std()
        if sigma < _SIGMA_FLOOR:
            return 0.0
        return sigma_multiplier * sigma


class StreamingWindowStats:
    """Timestamped sliding-window statistics fed one beacon at a time.

    Wraps :class:`RunningStats` with the window bookkeeping the online
    detector needs: ``push`` appends a ``(timestamp, value)`` sample and
    ``advance`` drops samples older than the new window start, keeping
    cost proportional to the number of samples that *entered or left*
    the window — never to the window size.
    """

    __slots__ = ("_samples", "_stats")

    def __init__(self) -> None:
        self._samples: Deque[Tuple[float, float]] = deque()
        self._stats = RunningStats()

    def push(self, timestamp: float, value: float) -> None:
        """Append one sample; timestamps must be non-decreasing."""
        timestamp = float(timestamp)
        if self._samples and timestamp < self._samples[-1][0]:
            raise ValueError(
                f"timestamp {timestamp} precedes window tail "
                f"{self._samples[-1][0]}"
            )
        self._samples.append((timestamp, float(value)))
        self._stats.add(value)

    def advance(self, start: float) -> int:
        """Drop samples with ``timestamp < start``; returns the count."""
        dropped = 0
        while self._samples and self._samples[0][0] < float(start):
            _, value = self._samples.popleft()
            self._stats.remove(value)
            dropped += 1
        return dropped

    @property
    def count(self) -> int:
        return self._stats.count

    @property
    def mean(self) -> float:
        return self._stats.mean

    def std(self) -> float:
        return self._stats.std()

    def divisor(self, sigma_multiplier: float = 3.0) -> float:
        return self._stats.divisor(sigma_multiplier)


def minmax_distances(
    distances: Dict[Tuple[str, str], float],
) -> Dict[Tuple[str, str], float]:
    """Min–max normalise a pairwise-distance mapping (Eq. 8).

    Args:
        distances: Mapping from an identity pair to its raw DTW distance.

    Returns:
        A new mapping with every value scaled into ``[0, 1]``.
    """
    if not distances:
        return {}
    keys = list(distances.keys())
    values = minmax(np.array([distances[k] for k in keys], dtype=float))
    return {k: float(v) for k, v in zip(keys, values)}
