"""Normalisation steps of the Voiceprint comparison phase.

Two normalisations appear in the paper:

* **Enhanced Z-score** (Eq. 7) — applied to every RSSI series *before*
  DTW.  Dividing by ``3 * sigma`` maps ~99.7 % of samples into
  ``(-1, 1)`` and, crucially, cancels any constant TX-power offset the
  attacker gives each Sybil identity (Assumption 3): shifting a series
  by a constant changes only its mean, and rescaling the radio gain
  changes only its deviation — the *shape*, which is what DTW compares,
  is preserved.

* **Min–max** (Eq. 8) — applied to the set of pairwise DTW distances
  *after* comparison, mapping them into ``[0, 1]`` so that a single
  trained decision boundary is meaningful across detection periods.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from .timeseries import RSSITimeSeries

__all__ = [
    "zscore",
    "zscore_series",
    "enhanced_zscore",
    "minmax",
    "minmax_distances",
]

#: Below this standard deviation a series is treated as constant; the
#: Z-score of a constant series is defined as all-zeros rather than a
#: division by (almost) zero blowing measurement noise up to +/-inf.
_SIGMA_FLOOR = 1e-12


def zscore(values: np.ndarray, sigma_multiplier: float = 1.0) -> np.ndarray:
    """Classic Z-score normalisation ``(x - mu) / (k * sigma)``.

    Args:
        values: 1-D array of samples.
        sigma_multiplier: ``k`` in the denominator; the paper's enhanced
            variant uses 3 (see :func:`enhanced_zscore`).

    Returns:
        A new array of the same shape.  A constant (or empty) input maps
        to all zeros.
    """
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"expected a 1-D array, got shape {arr.shape}")
    if sigma_multiplier <= 0:
        raise ValueError(f"sigma_multiplier must be positive, got {sigma_multiplier}")
    if arr.size == 0:
        return arr.copy()
    sigma = float(np.std(arr))
    if sigma < _SIGMA_FLOOR:
        return np.zeros_like(arr)
    return (arr - float(np.mean(arr))) / (sigma_multiplier * sigma)


def enhanced_zscore(values: np.ndarray) -> np.ndarray:
    """The paper's enhanced Z-score (Eq. 7): ``(x - mu) / (3 * sigma)``.

    Maps ~99.7 % of a Gaussian-like series into ``(-1, 1)`` while
    leaving the series *shape* untouched, which eliminates spoofed
    per-identity transmission-power offsets.
    """
    return zscore(values, sigma_multiplier=3.0)


def zscore_series(
    series: RSSITimeSeries, sigma_multiplier: float = 3.0
) -> RSSITimeSeries:
    """Return a normalised copy of ``series`` (timestamps preserved)."""
    normalised = zscore(series.values, sigma_multiplier=sigma_multiplier)
    out = RSSITimeSeries(series.identity)
    for t, v in zip(series.timestamps, normalised):
        out.append(float(t), float(v))
    return out


def minmax(values: np.ndarray) -> np.ndarray:
    """Min–max normalisation into ``[0, 1]`` (Eq. 8).

    A constant (or single-element) input maps to all zeros — in the
    detector this situation means "all pairs look equally similar", and
    mapping to 0 (maximal similarity) errs on the side of flagging,
    which matches the paper's treatment of indistinguishable pairs.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return arr.copy()
    lo = float(np.min(arr))
    hi = float(np.max(arr))
    if hi - lo < _SIGMA_FLOOR:
        return np.zeros_like(arr)
    return (arr - lo) / (hi - lo)


def minmax_distances(
    distances: Dict[Tuple[str, str], float],
) -> Dict[Tuple[str, str], float]:
    """Min–max normalise a pairwise-distance mapping (Eq. 8).

    Args:
        distances: Mapping from an identity pair to its raw DTW distance.

    Returns:
        A new mapping with every value scaled into ``[0, 1]``.
    """
    if not distances:
        return {}
    keys = list(distances.keys())
    values = minmax(np.array([distances[k] for k in keys], dtype=float))
    return {k: float(v) for k, v in zip(keys, values)}
