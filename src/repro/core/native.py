"""Runtime-compiled C backend for the early-abandon DTW batch kernel.

The batched numpy kernels pay a fixed per-anti-diagonal dispatch cost
(~10 ufunc launches per diagonal), which floors a 200x200-window batch
at ~10-15 ms per call *regardless of how many pairs abandon*.  This
module compiles a scalar anti-diagonal C kernel at runtime — plain
``cc -O2 -fPIC -shared`` into a content-addressed shared library under
the system temp directory, loaded through :mod:`ctypes` — and the
pairwise engine dispatches the early-abandon sweep to it when
available.

Bit-identity contract
---------------------
The C kernel relaxes exactly the cells the numpy kernel relaxes, in the
same per-cell expression order (``seg*seg + min(min(diag, up), left)``),
compiled with ``-ffp-contract=off`` so no fused multiply-add changes a
rounding, and it applies the identical checkpointed two-diagonal abandon
test at the same stride.  Completed distances, path lengths, abandon
evidence and relaxed-cell counts are therefore bit-identical to
:func:`repro.core.pairwise.dtw_banded_batch_abandon`'s numpy path — the
dispatch is invisible to every caller (tested in
``tests/test_core_native.py``).

Gating
------
No compiler, a failed compile, a failed load, or ``REPRO_NATIVE=0`` in
the environment all degrade silently to the numpy path; nothing in the
engine requires this module to succeed.  The library is compiled at
most once per interpreter (and cached on disk across processes by
source hash), and :func:`warmup` lets services pay the one-time compile
outside any timed or latency-sensitive section.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
from typing import Optional

import numpy as np

__all__ = ["abandon_batch_native", "native_available", "warmup"]

_C_SOURCE = r"""
#include <stdint.h>
#include <math.h>
#include <stdlib.h>

/* Banded DTW over anti-diagonals with checkpointed early abandoning.
 *
 * Mirrors the numpy kernel cell for cell: diagonal k (0-indexed kidx)
 * holds cells (i, j) with i + j == kidx + 2, i in [i0s[kidx],
 * i1s[kidx]]; each cell costs (a[i-1] - b[j-1])^2 plus the cheapest of
 * its left/up/diagonal predecessors, and path lengths follow the same
 * strict-comparison tie-breaks.  Every abandon checkpoint scans the two
 * just-relaxed diagonals; both minima above the pair's threshold
 * proves the final distance can never come back below it.
 *
 * Status per pair: 1 completed, 0 abandoned, -1 no in-band path.
 */
void dtw_band_abandon_batch(
    const double *a,        /* count x n, row-major */
    const double *b,        /* count x m, row-major */
    int64_t count, int64_t n, int64_t m,
    const int64_t *i0s,     /* n + m - 1 first in-band rows (1-indexed) */
    const int64_t *i1s,     /* n + m - 1 last in-band rows (1-indexed) */
    const double *thr,      /* count abandon thresholds (may be inf) */
    int64_t stride,         /* checkpoint every stride-th diagonal */
    double *out_val,        /* count: distance / abandon evidence */
    int64_t *out_len,       /* count: path length when completed */
    int64_t *out_cells,     /* count: cells relaxed when abandoned */
    int8_t *out_status)
{
    int64_t n_diag = n + m - 1;
    size_t rows = (size_t)n + 2;
    double *v_km2 = malloc(rows * sizeof(double));
    double *v_km1 = malloc(rows * sizeof(double));
    double *v_new = malloc(rows * sizeof(double));
    int64_t *l_km2 = malloc(rows * sizeof(int64_t));
    int64_t *l_km1 = malloc(rows * sizeof(int64_t));
    int64_t *l_new = malloc(rows * sizeof(int64_t));
    double *b_rev = malloc((size_t)m * sizeof(double));
    if (!v_km2 || !v_km1 || !v_new || !l_km2 || !l_km1 || !l_new || !b_rev) {
        free(v_km2); free(v_km1); free(v_new);
        free(l_km2); free(l_km1); free(l_new); free(b_rev);
        for (int64_t p = 0; p < count; p++) out_status[p] = -1;
        return;
    }

    for (int64_t p = 0; p < count; p++) {
        const double *ap = a + p * n;
        const double *bp = b + p * m;
        double threshold = thr[p];
        int check = isfinite(threshold);
        for (int64_t j = 0; j < m; j++) b_rev[m - 1 - j] = bp[j];

        for (size_t i = 0; i < rows; i++) {
            v_km2[i] = INFINITY;
            v_km1[i] = INFINITY;
            l_km2[i] = 0;
            l_km1[i] = 0;
        }
        v_km2[0] = 0.0;  /* virtual start cell (0, 0) */

        int64_t cells = 0;
        int abandoned = 0;
        for (int64_t kidx = 0; kidx < n_diag; kidx++) {
            int64_t i0 = i0s[kidx];
            int64_t i1 = i1s[kidx];
            int64_t k = kidx + 2;
            /* Later diagonals only read rows in [i0-1, i1+1] (the
             * caller guarantees i0s non-decreasing and i1s stepping by
             * at most one), so the out-of-band INFINITY boundary only
             * needs restoring at the two margins. */
            v_new[i0 - 1] = INFINITY;
            v_new[i1 + 1] = INFINITY;
            {
                /* Ternary minima (not fmin) so the compiler can emit
                 * minsd/minpd: identical doubles for NaN-free input,
                 * and the operands are never NaN here. */
                const double * restrict vk1 = v_km1;
                const double * restrict vk2 = v_km2;
                double * restrict vn = v_new;
                const int64_t * restrict lk1 = l_km1;
                const int64_t * restrict lk2 = l_km2;
                int64_t * restrict ln = l_new;
                /* b_rev[m-1-j] == bp[j], so bp[k-i-1] reads forward. */
                const double * restrict brow = b_rev + m - k;
                for (int64_t i = i0; i <= i1; i++) {
                    double up = vk1[i - 1];
                    double left = vk1[i];
                    double diag = vk2[i - 1];
                    double min_du = (diag < up) ? diag : up;
                    double best = (min_du < left) ? min_du : left;
                    double seg = ap[i - 1] - brow[i];
                    vn[i] = seg * seg + best;
                    int64_t l_lu = (up < diag) ? lk1[i - 1] : lk2[i - 1];
                    ln[i] = ((left < min_du) ? lk1[i] : l_lu) + 1;
                }
            }
            cells += i1 - i0 + 1;
            double *vt = v_km2; v_km2 = v_km1; v_km1 = v_new; v_new = vt;
            int64_t *lt = l_km2; l_km2 = l_km1; l_km1 = l_new; l_new = lt;
            if (check && kidx > 0 && kidx < n_diag - 1
                    && kidx % stride == 0) {
                double cur_min = INFINITY;
                for (int64_t i = i0; i <= i1; i++)
                    cur_min = fmin(cur_min, v_km1[i]);
                double prev_min = INFINITY;
                for (int64_t i = i0s[kidx - 1]; i <= i1s[kidx - 1]; i++)
                    prev_min = fmin(prev_min, v_km2[i]);
                if (cur_min > threshold && prev_min > threshold) {
                    out_val[p] = fmin(cur_min, prev_min);
                    out_len[p] = 0;
                    out_cells[p] = cells;
                    out_status[p] = 0;
                    abandoned = 1;
                    break;
                }
            }
        }
        if (abandoned) continue;
        double distance = v_km1[n];
        if (isinf(distance)) {
            out_status[p] = -1;
            continue;
        }
        out_val[p] = distance;
        out_len[p] = l_km1[n];
        out_cells[p] = cells;
        out_status[p] = 1;
    }

    free(v_km2); free(v_km1); free(v_new);
    free(l_km2); free(l_km1); free(l_new); free(b_rev);
}
"""

#: Compiler invocation; -ffp-contract=off forbids fused multiply-add so
#: every rounding matches the numpy kernel's two-op ``seg*seg + best``.
_CFLAGS = ["-O2", "-fPIC", "-shared", "-ffp-contract=off", "-fno-math-errno"]

_UNSET = object()
_lib: object = _UNSET


def _source_tag() -> str:
    payload = "\x00".join([_C_SOURCE, " ".join(_CFLAGS)])
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def _compile() -> Optional[ctypes.CDLL]:
    """Build (or reuse) the shared library; None when impossible."""
    if os.environ.get("REPRO_NATIVE", "").strip() == "0":
        return None
    lib_path = os.path.join(
        tempfile.gettempdir(), f"repro-native-{_source_tag()}.so"
    )
    if not os.path.exists(lib_path):
        tmp_dir = tempfile.mkdtemp(prefix="repro-native-build-")
        src_path = os.path.join(tmp_dir, "dtw.c")
        obj_path = os.path.join(tmp_dir, "dtw.so")
        try:
            with open(src_path, "w", encoding="utf-8") as handle:
                handle.write(_C_SOURCE)
            subprocess.run(
                ["cc", *_CFLAGS, src_path, "-o", obj_path, "-lm"],
                check=True,
                capture_output=True,
                timeout=120,
            )
            os.replace(obj_path, lib_path)  # atomic vs concurrent builds
        except (OSError, subprocess.SubprocessError):
            return None
    try:
        lib = ctypes.CDLL(lib_path)
        fn = lib.dtw_band_abandon_batch
    except (OSError, AttributeError):
        return None
    fn.restype = None
    fn.argtypes = [
        ctypes.POINTER(ctypes.c_double),
        ctypes.POINTER(ctypes.c_double),
        ctypes.c_int64,
        ctypes.c_int64,
        ctypes.c_int64,
        ctypes.POINTER(ctypes.c_int64),
        ctypes.POINTER(ctypes.c_int64),
        ctypes.POINTER(ctypes.c_double),
        ctypes.c_int64,
        ctypes.POINTER(ctypes.c_double),
        ctypes.POINTER(ctypes.c_int64),
        ctypes.POINTER(ctypes.c_int64),
        ctypes.POINTER(ctypes.c_int8),
    ]
    return lib


def _get() -> Optional[ctypes.CDLL]:
    global _lib
    if _lib is _UNSET:
        _lib = _compile()
    return _lib  # type: ignore[return-value]


def native_available() -> bool:
    """True when the compiled backend is loadable on this machine."""
    return _get() is not None


def warmup() -> bool:
    """Force the one-time compile now (e.g. at engine construction)."""
    return native_available()


def _as_c(array: np.ndarray, ctype):
    return array.ctypes.data_as(ctypes.POINTER(ctype))


def abandon_batch_native(
    a_stack: np.ndarray,
    b_stack: np.ndarray,
    i0s: np.ndarray,
    i1s: np.ndarray,
    thresholds: np.ndarray,
    stride: int,
) -> Optional[tuple]:
    """One C sweep over a common-shape batch; None if unavailable.

    Returns ``(status, values, lengths, cells)`` arrays over the batch:
    status 1 means ``values``/``lengths`` hold the completed distance
    and path length, status 0 means ``values``/``cells`` hold abandon
    evidence and relaxed cells, status -1 means no in-band path.
    """
    lib = _get()
    if lib is None:
        return None
    steps0 = np.diff(i0s)
    steps1 = np.diff(i1s)
    if not (
        steps0.size == 0
        or (np.all(steps0 >= 0) and np.all(steps1 >= 0) and np.all(steps1 <= 1))
    ):
        # The margin-refill trick inside the C loop assumes this band
        # geometry (always true for Sakoe–Chiba bands); anything else
        # uses the numpy kernel.
        return None
    count, n = a_stack.shape
    m = b_stack.shape[1]
    a_c = np.ascontiguousarray(a_stack, dtype=np.float64)
    b_c = np.ascontiguousarray(b_stack, dtype=np.float64)
    i0_c = np.ascontiguousarray(i0s, dtype=np.int64)
    i1_c = np.ascontiguousarray(i1s, dtype=np.int64)
    thr_c = np.ascontiguousarray(thresholds, dtype=np.float64)
    values = np.empty(count, dtype=np.float64)
    lengths = np.zeros(count, dtype=np.int64)
    cells = np.zeros(count, dtype=np.int64)
    status = np.empty(count, dtype=np.int8)
    lib.dtw_band_abandon_batch(
        _as_c(a_c, ctypes.c_double),
        _as_c(b_c, ctypes.c_double),
        count,
        n,
        m,
        _as_c(i0_c, ctypes.c_int64),
        _as_c(i1_c, ctypes.c_int64),
        _as_c(thr_c, ctypes.c_double),
        int(stride),
        _as_c(values, ctypes.c_double),
        _as_c(lengths, ctypes.c_int64),
        _as_c(cells, ctypes.c_int64),
        _as_c(status, ctypes.c_int8),
    )
    return status, values, lengths, cells
