"""Core Voiceprint algorithm: time series, DTW, LDA threshold, detector."""

from .confirmation import MultiPeriodConfirmer
from .density import DensityEstimator, linear_density
from .detector import DetectionReport, DetectorConfig, VoiceprintDetector
from .distances import (
    chebyshev_distance,
    euclidean_distance,
    lp_distance,
    manhattan_distance,
)
from .dtw import DTWResult, dtw, dtw_banded, dtw_distance
from .fastdtw import fastdtw, fastdtw_distance
from .lda import DecisionLine, LDAModel, fit_decision_line, fit_lda
from .normalization import enhanced_zscore, minmax, minmax_distances, zscore
from .pairwise import (
    EngineDefaults,
    PairwiseEngine,
    PairwiseStats,
    dtw_banded_batch,
    dtw_banded_vec,
    get_engine_defaults,
    set_engine_defaults,
)
from .pipeline import OnlineVoiceprint, OnlineVoiceprintConfig
from .thresholds import (
    PAPER_FIELD_THRESHOLD,
    PAPER_INTERCEPT,
    PAPER_SLOPE,
    ConstantThreshold,
    LinearThreshold,
    ThresholdPolicy,
)
from .timeseries import RSSISample, RSSITimeSeries, merge_series

__all__ = [
    "MultiPeriodConfirmer",
    "DensityEstimator",
    "linear_density",
    "DetectionReport",
    "DetectorConfig",
    "VoiceprintDetector",
    "chebyshev_distance",
    "euclidean_distance",
    "lp_distance",
    "manhattan_distance",
    "DTWResult",
    "dtw",
    "dtw_banded",
    "dtw_distance",
    "fastdtw",
    "fastdtw_distance",
    "DecisionLine",
    "LDAModel",
    "fit_decision_line",
    "fit_lda",
    "enhanced_zscore",
    "minmax",
    "minmax_distances",
    "zscore",
    "EngineDefaults",
    "PairwiseEngine",
    "PairwiseStats",
    "dtw_banded_batch",
    "dtw_banded_vec",
    "get_engine_defaults",
    "set_engine_defaults",
    "OnlineVoiceprint",
    "OnlineVoiceprintConfig",
    "PAPER_FIELD_THRESHOLD",
    "PAPER_INTERCEPT",
    "PAPER_SLOPE",
    "ConstantThreshold",
    "LinearThreshold",
    "ThresholdPolicy",
    "RSSISample",
    "RSSITimeSeries",
    "merge_series",
]
