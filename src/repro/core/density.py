"""Local traffic-density estimation (paper Eq. 9).

Each vehicle estimates the linear traffic density around it as

.. math::

    den = \\frac{N_{normal}}{2 \\cdot Dist_{max}}

where :math:`N_{normal}` is the number of *legitimate* nodes heard
during the density-estimation period and :math:`Dist_{max}` the maximum
transmission range — the denominator being the length of road the radio
covers in both directions.  On the very first estimate a vehicle cannot
yet tell legitimate nodes apart, so it uses the total number of heard
identities (paper Section IV-C-3); subsequent estimates exclude
identities the detector has already flagged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Set

__all__ = ["DensityEstimator", "linear_density"]


def linear_density(n_nodes: int, max_range_m: float) -> float:
    """Eq. 9: vehicles per metre of covered road.

    Args:
        n_nodes: Number of distinct (presumed legitimate) nodes heard.
        max_range_m: Maximum transmission range in metres.

    Returns:
        Density in vehicles per metre.  Multiply by 1000 for the
        vehicles-per-kilometre unit the paper's figures use.
    """
    if n_nodes < 0:
        raise ValueError(f"n_nodes must be non-negative, got {n_nodes}")
    if max_range_m <= 0:
        raise ValueError(f"max_range_m must be positive, got {max_range_m}")
    return n_nodes / (2.0 * max_range_m)


@dataclass
class DensityEstimator:
    """Rolling density estimator for one vehicle.

    Call :meth:`hear` for every identity heard; call :meth:`estimate`
    once per density-estimation period (paper default 10 s), then
    :meth:`reset_period` to start the next period.  Identities the
    detector has flagged as Sybil are excluded from later estimates via
    :meth:`mark_illegitimate`.

    Attributes:
        max_range_m: Maximum transmission range (paper: up to 400 m;
            Table V scenarios use the radio's effective range).
    """

    max_range_m: float
    _heard: Set[str] = field(default_factory=set)
    _illegitimate: Set[str] = field(default_factory=set)
    _first_estimate_done: bool = False

    def __post_init__(self) -> None:
        if self.max_range_m <= 0:
            raise ValueError(
                f"max_range_m must be positive, got {self.max_range_m}"
            )

    def hear(self, identity: str) -> None:
        """Record that a beacon from ``identity`` was received."""
        self._heard.add(str(identity))

    def hear_all(self, identities: Iterable[str]) -> None:
        """Record a batch of heard identities."""
        for identity in identities:
            self.hear(identity)

    def mark_illegitimate(self, identity: str) -> None:
        """Exclude a detected Sybil/malicious identity from estimates."""
        self._illegitimate.add(str(identity))

    @property
    def heard_count(self) -> int:
        """Distinct identities heard this period (before filtering)."""
        return len(self._heard)

    def estimate(self) -> float:
        """Density estimate (vehicles/m) for the current period.

        The first estimate counts every heard identity; later estimates
        count only identities not yet flagged (paper Section IV-C-3).
        """
        if self._first_estimate_done:
            counted = len(self._heard - self._illegitimate)
        else:
            counted = len(self._heard)
        self._first_estimate_done = True
        return linear_density(counted, self.max_range_m)

    def reset_period(self) -> None:
        """Clear heard identities for the next estimation period."""
        self._heard.clear()

    def reset(self) -> None:
        """Forget everything — heard identities, Sybil verdicts, and the
        first-estimate bootstrap state (a new trip starts from scratch)."""
        self._heard.clear()
        self._illegitimate.clear()
        self._first_estimate_done = False

    @property
    def illegitimate_ids(self) -> FrozenSet[str]:
        """Identities currently excluded from estimates."""
        return frozenset(self._illegitimate)
