"""Confirmation-phase thresholds.

Two threshold policies appear in the paper:

* :class:`LinearThreshold` — the density-adaptive line trained with LDA
  for the highway simulations (Fig. 10; ``k = 0.00054``, ``b = 0.0483``
  with density expressed in vehicles/km).
* :class:`ConstantThreshold` — the fixed value used in the four-vehicle
  field test, where density barely varies (``0.05046`` at 4 vhls/km,
  Section VI-A).

Both answer one question: *at this traffic density, how small must a
normalised DTW distance be before the pair is declared Sybil?*
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from .lda import DecisionLine

__all__ = [
    "ThresholdPolicy",
    "LinearThreshold",
    "ConstantThreshold",
    "PAPER_SLOPE",
    "PAPER_INTERCEPT",
    "PAPER_FIELD_THRESHOLD",
]

#: Trained boundary the paper reports (Fig. 10), density in vehicles/km.
PAPER_SLOPE = 0.00054
PAPER_INTERCEPT = 0.0483
#: Constant threshold used in the field test (Section VI-A).
PAPER_FIELD_THRESHOLD = 0.05046


class ThresholdPolicy(Protocol):
    """Anything that can turn a density into a distance threshold."""

    def threshold_at(self, density: float) -> float:
        """Distance threshold at the given density (same unit as k·den)."""
        ...

    def is_sybil_pair(self, density: float, distance: float) -> bool:
        """Whether a pair at ``distance`` should be flagged."""
        ...


@dataclass(frozen=True)
class LinearThreshold:
    """Density-adaptive threshold ``D <= k * den + b``.

    ``density_unit_per_km`` controls whether callers pass density in
    vehicles/km (paper figures; the default) or vehicles/m (Eq. 9's raw
    output, pass ``False`` and pre-scaled ``k``).
    """

    k: float = PAPER_SLOPE
    b: float = PAPER_INTERCEPT

    @classmethod
    def from_decision_line(cls, line: DecisionLine) -> "LinearThreshold":
        """Adopt a boundary trained by :func:`repro.core.lda.fit_decision_line`."""
        return cls(k=line.k, b=line.b)

    def threshold_at(self, density: float) -> float:
        if density < 0:
            raise ValueError(f"density must be non-negative, got {density}")
        return self.k * density + self.b

    def is_sybil_pair(self, density: float, distance: float) -> bool:
        return distance <= self.threshold_at(density)


@dataclass(frozen=True)
class ConstantThreshold:
    """Density-independent threshold, as in the field test."""

    value: float = PAPER_FIELD_THRESHOLD

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ValueError(f"threshold must be non-negative, got {self.value}")

    def threshold_at(self, density: float) -> float:
        if density < 0:
            raise ValueError(f"density must be non-negative, got {density}")
        return self.value

    def is_sybil_pair(self, density: float, distance: float) -> bool:
        return distance <= self.value
