"""Fast pairwise comparison engine for the Voiceprint comparison phase.

The paper's comparison phase (Section IV-C, Algorithm 1) measures a DTW
distance for every pair of heard identities — O(n²) FastDTW runs per
detection period, which is the entire computational cost of Voiceprint.
This module makes that stage cheap without changing a single decision:

* :func:`dtw_banded_vec` — the Sakoe–Chiba banded DTW kernel relaxed
  along anti-diagonals with numpy slice arithmetic instead of a
  per-cell Python loop.  Every cell performs the identical IEEE-754
  operations as the scalar DP (:func:`repro.core.fastdtw.dtw_banded_fast`
  over the same :func:`repro.core.fastdtw.sakoe_chiba_band` geometry),
  so distances, warp paths, and the ``cells`` work metric are
  *bit-identical*, not merely close.  Narrow bands make single-pair
  diagonals too small for numpy to win, so the engine also carries
  :func:`dtw_banded_batch`, which relaxes *all pairs of one shape at
  once* — each anti-diagonal becomes one ``(pairs × width)`` block op —
  and tracks optimal warp-path lengths forward instead of storing the
  cost matrix for traceback.

* **Bound cascade** — cheap lower bounds (an LB_Kim-style first/last
  bound and LB_Keogh-style band-envelope bounds in both directions) and
  a cheap upper bound (the cost of an explicit monotone path inside the
  band) sandwich the banded-DTW distance.  When the sandwich lands
  clearly on one side of the decision threshold the pair is *decided
  without running DTW at all*.  For the paper-default min–max-normalised
  threshold (Eq. 8) the decision region depends on the per-report
  min/max distance, so the engine first pins those down exactly by an
  adaptive best-bound-first refinement, then decides the remaining
  pairs from their bounds (see ``DESIGN.md`` for the proof sketch).

* **Incremental pair cache** — an LRU cache keyed by per-identity
  window fingerprints (the exact bytes of the normalised series, plus
  the common scale factor), so a detection period only recomputes pairs
  whose series actually changed since the previous period.  A hit
  returns the stored distance/path-length verbatim — bit-identical to
  recomputation.

* **Optional parallel executor** — a bounded thread pool (off by
  default) for the exact kernel evaluations that survive the cascade.

* **Incremental mode** (off by default) — per-identity envelope state
  and per-pair :class:`IncrementalPairState` persisted *across*
  detection periods, so a 1 s recheck whose windows slid by a handful
  of beacons pays for the new beacons only: envelopes update by
  shifting the overlapping prefix instead of rebuilding, unchanged
  windows carry the previous period's exact distance forward
  (``incremental-carry``), and pairs whose verdict the bounds cannot
  flip run :func:`dtw_banded_batch_abandon` — a banded kernel that
  stops after a few anti-diagonals once the accumulated cost proves
  the pair sits above the decision boundary (``early-abandon``).
  Flag sets stay byte-identical to the exact path; see DESIGN.md §5f
  for the invariants and the correctness argument.

Everything is instrumented through :mod:`repro.obs` (pairs pruned,
cache hits/misses, cells relaxed and saved) and configured through
:class:`repro.core.detector.DetectorConfig` knobs or the process-wide
defaults (:func:`set_engine_defaults`, wired to CLI flags).
"""

from __future__ import annotations

import math
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from ..obs.metrics import MetricsRegistry, default_registry
from .dtw import DTWResult, dtw
from .fastdtw import dtw_banded_fast, fastdtw, sakoe_chiba_band
from .native import (
    abandon_batch_native,
    native_available,
    warmup as native_warmup,
)
from .normalization import _SIGMA_FLOOR

__all__ = [
    "EngineDefaults",
    "IncrementalPairState",
    "PROV_ABANDON",
    "PROV_CACHE",
    "PROV_EXACT",
    "PROV_INCREMENTAL",
    "PROV_PRUNED_DEGENERATE",
    "PROV_PRUNED_LOWER",
    "PROV_PRUNED_UPPER",
    "PairwiseEngine",
    "PairwiseStats",
    "band_cells",
    "dtw_banded_batch",
    "dtw_banded_batch_abandon",
    "dtw_banded_vec",
    "dtw_band_lower_bound",
    "dtw_band_upper_bound",
    "lb_kim",
    "get_engine_defaults",
    "set_engine_defaults",
]

Pair = Tuple[str, str]

#: Provenance tags recorded per pair when
#: :attr:`PairwiseEngine.record_provenance` is on — how the reported
#: distance was obtained (see ``repro.obs.audit``).
PROV_EXACT = "exact"
PROV_CACHE = "cache-hit"
PROV_PRUNED_LOWER = "pruned-lower"
PROV_PRUNED_UPPER = "pruned-upper"
PROV_PRUNED_DEGENERATE = "pruned-degenerate"
#: Exact distance carried from the previous period's kernel run because
#: neither window changed — bit-replayable like ``exact``.
PROV_INCREMENTAL = "incremental-carry"
#: Kernel run stopped early once the accumulated cost proved the pair
#: lies above the decision boundary — the distance is a surrogate.
PROV_ABANDON = "early-abandon"

_INF = math.inf

#: Relative float-drift guard on the early-abandon decision boundary:
#: the abandon threshold is pushed this far above the exact boundary so
#: that the handful of IEEE-754 roundings between the kernel's
#: accumulated cost and the detector's flag expression can never flip
#: an abandoned pair's verdict (the guard dominates the ~(n+m)·2⁻⁵³
#: accumulation error by six orders of magnitude; pairs within the
#: guard of the boundary simply run to completion).
_ABANDON_GUARD = 1e-9

#: Anti-diagonal stride between early-abandon checkpoints.  The abandon
#: test (two consecutive diagonal minima above the threshold) is sound
#: at *any* diagonal, so checking every ``k``-th one keeps correctness
#: while cutting the per-diagonal reduction overhead ~k-fold; dead
#: pairs merely survive a few extra diagonals before being dropped.
_ABANDON_STRIDE = 8


#: Minimum *average anti-diagonal width* (band area / diagonal count)
#: at which the single-pair vectorised kernel beats the scalar interval
#: DP.  Narrow bands make each diagonal a tiny numpy op whose call
#: overhead dominates; both kernels produce bit-identical results, so
#: the switch is purely a speed heuristic.  (The batched kernel does
#: not need this: it amortises the per-diagonal overhead across pairs.)
_VEC_MIN_AVG_WIDTH = 32


# ----------------------------------------------------------------------
# Process-wide engine defaults (CLI-configurable)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EngineDefaults:
    """Process-wide defaults for detectors that leave engine knobs unset.

    Attributes:
        engine: Use the pairwise engine (vectorised kernel + cache)
            behind ``VoiceprintDetector.compare``.  Disabling falls back
            to the legacy per-pair Python loop.
        pruning: Decide pairs from the bound cascade inside ``detect``
            when the bounds land clearly outside the decision region.
            Off by default because pruned pairs carry *bound surrogates*
            instead of exact distances in ``DetectionReport`` (decisions
            are unaffected; analysis/training consumers that read raw
            distances should leave this off — see DESIGN.md).
        incremental: Persist per-identity envelopes and per-pair state
            across detection periods and decide sliding-window rechecks
            from carries, bounds, and early-abandon DTW.  Off by default
            for the same reason as ``pruning``: decided-from-bounds and
            abandoned pairs carry surrogate distances (flag sets are
            unaffected — see DESIGN.md §5f).
        cache_size: Maximum cached pair results (LRU).  0 disables.
        workers: Thread-pool width for exact kernel evaluations.
            0 runs inline.
    """

    engine: bool = True
    pruning: bool = False
    incremental: bool = False
    cache_size: int = 256
    workers: int = 0

    def __post_init__(self) -> None:
        if self.cache_size < 0:
            raise ValueError(f"cache_size must be >= 0, got {self.cache_size}")
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")


_defaults = EngineDefaults()


def get_engine_defaults() -> EngineDefaults:
    """The current process-wide pairwise-engine defaults."""
    return _defaults


def set_engine_defaults(
    engine: Optional[bool] = None,
    pruning: Optional[bool] = None,
    incremental: Optional[bool] = None,
    cache_size: Optional[int] = None,
    workers: Optional[int] = None,
) -> EngineDefaults:
    """Override process-wide engine defaults; ``None`` keeps a field.

    Returns the *previous* defaults so callers (e.g. the CLI, tests)
    can restore them.
    """
    global _defaults
    previous = _defaults
    updates = {
        key: value
        for key, value in (
            ("engine", engine),
            ("pruning", pruning),
            ("incremental", incremental),
            ("cache_size", cache_size),
            ("workers", workers),
        )
        if value is not None
    }
    _defaults = replace(previous, **updates)
    return previous


# ----------------------------------------------------------------------
# Vectorised banded DTW kernel
# ----------------------------------------------------------------------
@lru_cache(maxsize=256)
def _band_arrays(
    n: int, m: int, radius: int
) -> Tuple[np.ndarray, np.ndarray, bool, int]:
    """Band geometry as read-only arrays, plus monotonicity and area.

    Returns ``(lo, hi, monotone, n_cells)`` where ``lo``/``hi`` are the
    0-indexed-by-row (value still 1-indexed column) interval arrays of
    :func:`sakoe_chiba_band`, ``monotone`` says both ends are
    non-decreasing (required by the vectorised kernel and the
    column-direction bound), and ``n_cells`` is the band area — the DP
    work a full kernel run would perform.
    """
    lo_list, hi_list = sakoe_chiba_band(n, m, radius)
    lo = np.asarray(lo_list[1:], dtype=np.int64)
    hi = np.asarray(hi_list[1:], dtype=np.int64)
    lo.setflags(write=False)
    hi.setflags(write=False)
    monotone = bool(np.all(lo[1:] >= lo[:-1]) and np.all(hi[1:] >= hi[:-1]))
    n_cells = int(np.sum(hi - lo + 1))
    return lo, hi, monotone, n_cells


def band_cells(n: int, m: int, radius: int) -> int:
    """Number of DP cells a banded kernel run relaxes for ``(n, m)``."""
    return _band_arrays(n, m, radius)[3]


def dtw_banded_vec(x, y, radius: int) -> DTWResult:
    """Sakoe–Chiba banded DTW relaxed along anti-diagonals with numpy.

    Bit-identical to :func:`repro.core.fastdtw.dtw_banded_fast` —
    same band geometry (:func:`sakoe_chiba_band`), same per-cell
    IEEE-754 operations (``(x_i - y_j)² + min(up, left, diag)``), same
    traceback tie-breaking — but the inner loop runs once per
    anti-diagonal instead of once per cell, using only contiguous
    slices (cells ``(i, j)`` with ``i + j = k`` depend only on
    diagonals ``k-1`` and ``k-2``, which removes the within-row
    ``curr[j-1]`` data dependency that defeats row-wise vectorisation).

    Memory: the accumulated-cost diagonals are kept for traceback,
    ``O((n+m)·n)`` floats — ~650 kB for the 20 s / 10 Hz series the
    detector compares, freed on return.

    Args:
        x: First series (length ``N``).
        y: Second series (length ``M``).
        radius: Band half-width in samples (``>= 0``).

    Returns:
        :class:`repro.core.dtw.DTWResult` for the best in-band path.
    """
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    a = np.ascontiguousarray(x, dtype=float)
    b = np.ascontiguousarray(y, dtype=float)
    if a.ndim != 1 or b.ndim != 1:
        raise ValueError(f"expected 1-D series, got shapes {a.shape}, {b.shape}")
    if a.size == 0 or b.size == 0:
        raise ValueError("DTW is undefined for empty series")
    n, m = a.size, b.size
    lo, hi, monotone, _ = _band_arrays(n, m, radius)
    if not monotone:  # pragma: no cover - no known geometry triggers this
        return dtw_banded_fast(a, b, radius)

    rows = np.arange(1, n + 1, dtype=np.int64)
    row_first_diag = rows + lo  # strictly increasing: diag where row i starts
    row_last_diag = rows + hi  # strictly increasing: diag where row i ends
    ks = np.arange(2, n + m + 1, dtype=np.int64)
    # Rows alive on diagonal k form a contiguous range (band ends are
    # monotone): those whose [first, last] diagonal interval contains k.
    top = np.searchsorted(row_first_diag, ks, side="right")  # max row (1-based)
    bottom = np.searchsorted(row_last_diag, ks, side="left") + 1  # min row

    # store[k, i] = accumulated cost D(i, k - i); row 0 holds D(0, 0)=0
    # and the infinite borders, exactly the scalar DP's boundary.
    store = np.full((n + m + 1, n + 1), _INF)
    store[0, 0] = 0.0
    cells = 0
    for k in range(2, n + m + 1):
        i1 = int(top[k - 2])
        i0 = int(bottom[k - 2])
        if i0 > i1:
            continue
        up = store[k - 1, i0 - 1 : i1]  # D(i-1, j)
        left = store[k - 1, i0 : i1 + 1]  # D(i, j-1)
        diag = store[k - 2, i0 - 1 : i1]  # D(i-1, j-1)
        best = np.minimum(np.minimum(up, left), diag)
        seg = a[i0 - 1 : i1] - b[k - i1 - 1 : k - i0][::-1]
        store[k, i0 : i1 + 1] = seg * seg + best
        cells += i1 - i0 + 1

    distance = float(store[n + m, n])
    if math.isinf(distance):
        raise ValueError("window admits no monotone warp path")

    # Traceback — identical candidate order and strict-< tie-breaking
    # as the scalar interval DP, so paths match exactly.
    path: List[Tuple[int, int]] = [(n, m)]
    i, j = n, m
    while (i, j) != (1, 1):
        best_v = _INF
        best_cell: Optional[Tuple[int, int]] = None
        for (pi, pj) in ((i - 1, j - 1), (i - 1, j), (i, j - 1)):
            if pi < 1 or pj < 1:
                continue
            if lo[pi - 1] <= pj <= hi[pi - 1]:
                value = store[pi + pj, pi]
                if value < best_v:
                    best_v = value
                    best_cell = (pi, pj)
        if best_cell is None:  # pragma: no cover - band is connected
            raise ValueError("traceback escaped the window")
        i, j = best_cell
        path.append(best_cell)
    path.reverse()
    return DTWResult(distance=distance, path=tuple(path), cells=cells)


def _result_triple(result: DTWResult) -> Tuple[float, int, int]:
    return result.distance, len(result.path), result.cells


def dtw_banded_batch(
    xs: List[np.ndarray], ys: List[np.ndarray], radius: int
) -> List[Tuple[float, int, int]]:
    """Banded DTW for a batch of pairs sharing one ``(n, m)`` shape.

    Relaxes every pair's band simultaneously: each anti-diagonal is one
    set of numpy ops on ``(pairs × width)`` blocks, which amortises the
    per-diagonal overhead that makes :func:`dtw_banded_vec` unprofitable
    for narrow bands.  Only three diagonals are live at a time (compact,
    INF-padded rolling buffers), so no full cost matrix is stored;
    instead of a traceback, the optimal warp-path *length* is tracked
    forward with the scalar traceback's exact tie-breaking rule
    (diagonal, then up, then left, strict ``<``), which is all the
    detector needs for path-length normalisation.

    Returns:
        One ``(distance, path_length, cells)`` triple per pair —
        bit-identical to running
        :func:`repro.core.fastdtw.dtw_banded_fast` on each pair.
    """
    count = len(xs)
    if count == 0:
        return []
    if len(ys) != count:
        raise ValueError(f"batch mismatch: {count} x-series, {len(ys)} y-series")
    n, m = xs[0].size, ys[0].size
    if any(x.size != n for x in xs) or any(y.size != m for y in ys):
        raise ValueError("dtw_banded_batch requires one common (n, m) shape")

    def fallback() -> List[Tuple[float, int, int]]:
        return [
            _result_triple(dtw_banded_fast(x, y, radius)) for x, y in zip(xs, ys)
        ]

    if n < 2 or m < 2:
        return fallback()
    lo, hi, monotone, n_cells = _band_arrays(n, m, radius)
    if not monotone:  # pragma: no cover - no known geometry triggers this
        return fallback()

    rows = np.arange(1, n + 1, dtype=np.int64)
    ks = np.arange(2, n + m + 1, dtype=np.int64)
    i1s = np.minimum(
        np.minimum(np.searchsorted(rows + lo, ks, side="right"), n), ks - 1
    )
    i0s = np.maximum(
        np.maximum(np.searchsorted(rows + hi, ks, side="left") + 1, 1), ks - m
    )
    if np.any(i0s > i1s):  # pragma: no cover - bands are connected
        return fallback()
    widths = i1s - i0s + 1
    wpad = int(widths.max()) + 2
    # Per-diagonal storage offset: row i of diagonal k lives at column
    # i - off[k] + 1, keeping column 0 (and any tail) as INF padding so
    # predecessor reads outside a diagonal's band resolve to INF.
    off = np.empty(n + m + 1, dtype=np.int64)
    off[0] = 0
    off[1] = 1  # diagonal 1 has no interior cells; buffer stays all-INF
    off[2:] = i0s
    sus = i0s - off[1:-1]  # up:   row i-1 on diagonal k-1
    sds = i0s - off[:-2]  # diag: row i-1 on diagonal k-2
    ok = (
        np.all(sus >= 0)
        and np.all(sus + 1 + widths <= wpad)  # left slice = up slice + 1
        and np.all(sds >= 0)
        and np.all(sds + widths <= wpad)
    )
    if not ok:  # pragma: no cover - guards the offset algebra
        return fallback()

    a_stack = np.ascontiguousarray(np.stack(xs).astype(float, copy=False))
    b_rev = np.ascontiguousarray(np.stack(ys).astype(float, copy=False)[:, ::-1])

    v_km2 = np.full((count, wpad), _INF)
    v_km2[:, 1] = 0.0  # D(0, 0)
    v_km1 = np.full((count, wpad), _INF)
    v_new = np.empty((count, wpad))
    l_km2 = np.zeros((count, wpad), dtype=np.int64)
    l_km1 = np.zeros((count, wpad), dtype=np.int64)
    l_new = np.zeros((count, wpad), dtype=np.int64)
    for kidx in range(n + m - 1):
        k = kidx + 2
        i0 = int(i0s[kidx])
        w = int(widths[kidx])
        su = int(sus[kidx])
        sd = int(sds[kidx])
        up = v_km1[:, su : su + w]
        left = v_km1[:, su + 1 : su + 1 + w]
        diag = v_km2[:, sd : sd + w]
        min_du = np.minimum(diag, up)
        best = np.minimum(min_du, left)
        seg = a_stack[:, i0 - 1 : i0 - 1 + w] - b_rev[:, m - k + i0 : m - k + i0 + w]
        v_new[:] = _INF
        v_new[:, 1 : w + 1] = seg * seg + best
        # Warp-path length of the predecessor the scalar traceback would
        # pick: left only if strictly best, else up only if strictly
        # better than diag, else diag.  Stale lengths under INF cells
        # never propagate to a finite total.
        l_new[:, 1 : w + 1] = (
            np.where(
                left < min_du,
                l_km1[:, su + 1 : su + 1 + w],
                np.where(up < diag, l_km1[:, su : su + w], l_km2[:, sd : sd + w]),
            )
            + 1
        )
        v_km2, v_km1, v_new = v_km1, v_new, v_km2
        l_km2, l_km1, l_new = l_km1, l_new, l_km2

    pos = n - int(i0s[-1]) + 1
    out: List[Tuple[float, int, int]] = []
    for p in range(count):
        distance = float(v_km1[p, pos])
        if math.isinf(distance):
            raise ValueError("window admits no monotone warp path")
        out.append((distance, int(l_km1[p, pos]), n_cells))
    return out


@lru_cache(maxsize=128)
def _abandon_geometry(
    n: int, m: int, radius: int
) -> Optional[
    Tuple[
        np.ndarray,
        np.ndarray,
        np.ndarray,
        np.ndarray,
        int,
        np.ndarray,
        np.ndarray,
        int,
    ]
]:
    """Anti-diagonal band geometry for the abandon kernel, shape-keyed.

    Returns ``(i0s, i1s, widths, cum_cells, wpad, sus, sds, n_cells)``
    (all arrays write-locked), or None when the band is unusable for
    the diagonal sweep (non-monotone or disconnected — the kernel then
    falls back to per-pair scalar runs).  Cached because every
    detection period re-runs the sweep over identical window shapes.
    """
    lo, hi, monotone, n_cells = _band_arrays(n, m, radius)
    if not monotone:  # pragma: no cover - no known geometry triggers this
        return None
    rows = np.arange(1, n + 1, dtype=np.int64)
    ks = np.arange(2, n + m + 1, dtype=np.int64)
    i1s = np.minimum(
        np.minimum(np.searchsorted(rows + lo, ks, side="right"), n), ks - 1
    )
    i0s = np.maximum(
        np.maximum(np.searchsorted(rows + hi, ks, side="left") + 1, 1), ks - m
    )
    if np.any(i0s > i1s):  # pragma: no cover - bands are connected
        return None
    widths = i1s - i0s + 1
    cum_cells = np.cumsum(widths)
    wpad = int(widths.max()) + 2
    off = np.empty(n + m + 1, dtype=np.int64)
    off[0] = 0
    off[1] = 1
    off[2:] = i0s
    sus = i0s - off[1:-1]
    sds = i0s - off[:-2]
    ok = (
        np.all(sus >= 0)
        and np.all(sus + 1 + widths <= wpad)
        and np.all(sds >= 0)
        and np.all(sds + widths <= wpad)
    )
    if not ok:  # pragma: no cover - guards the offset algebra
        return None
    for array in (i0s, i1s, widths, cum_cells, sus, sds):
        array.setflags(write=False)
    return i0s, i1s, widths, cum_cells, wpad, sus, sds, n_cells


def dtw_banded_batch_abandon(
    xs: List[np.ndarray],
    ys: List[np.ndarray],
    radius: int,
    thresholds: np.ndarray,
) -> Tuple[List[Optional[Tuple[float, int, int]]], Dict[int, Tuple[float, int]]]:
    """:func:`dtw_banded_batch` with per-pair early abandoning.

    Each pair carries an *accumulated-cost* abandon threshold.  After
    relaxing anti-diagonal ``k`` the kernel knows the minimum
    accumulated cost over every in-band cell of diagonals ``k-1`` and
    ``k``; because a monotone warp path's diagonal indices step by 1 or
    2, every path touches at least one cell of any two consecutive
    diagonals, and accumulated costs only grow along a path (step costs
    are squared differences), so that minimum lower-bounds the pair's
    final DTW distance.  Once it exceeds the pair's threshold the pair
    can never come back below it and is dropped from the batch; when
    enough pairs die the live rows are compacted so later diagonals
    shrink.  An infinite threshold never abandons.  The test runs only
    at every :data:`_ABANDON_STRIDE`-th diagonal (it is sound at any
    diagonal, so skipping some merely delays a doomed pair's death),
    which keeps the hot DP loop to pure relaxation arithmetic.

    Pairs that run to completion produce triples bit-identical to
    :func:`dtw_banded_batch` (every row's arithmetic is independent, so
    dropping dead rows does not perturb survivors).

    Returns:
        ``(results, abandoned)``: ``results[i]`` is the usual
        ``(distance, path_length, cells)`` triple, or ``None`` if pair
        ``i`` abandoned; ``abandoned[i]`` is then ``(evidence, cells)``
        — a proven lower bound on the pair's accumulated cost (strictly
        above its threshold) and the DP cells relaxed before it died.
    """
    count = len(xs)
    if count == 0:
        return [], {}
    if len(ys) != count:
        raise ValueError(f"batch mismatch: {count} x-series, {len(ys)} y-series")
    thr = np.ascontiguousarray(thresholds, dtype=float)
    if thr.shape != (count,):
        raise ValueError(f"expected {count} thresholds, got shape {thr.shape}")
    n, m = xs[0].size, ys[0].size
    if any(x.size != n for x in xs) or any(y.size != m for y in ys):
        raise ValueError("dtw_banded_batch_abandon requires one common shape")
    if n < 2 or m < 2:
        # Degenerate shapes fall back to exact scalar runs (no abandon:
        # the series are a couple of samples, there is nothing to save).
        return [
            _result_triple(dtw_banded_fast(x, y, radius)) for x, y in zip(xs, ys)
        ], {}
    geometry = _abandon_geometry(n, m, radius)
    if geometry is None:  # pragma: no cover - no known geometry triggers this
        return [
            _result_triple(dtw_banded_fast(x, y, radius)) for x, y in zip(xs, ys)
        ], {}
    i0s, i1s, widths, cum_cells, wpad, sus, sds, n_cells = geometry

    native = abandon_batch_native(
        np.stack(xs).astype(float, copy=False),
        np.stack(ys).astype(float, copy=False),
        i0s,
        i1s,
        thr,
        _ABANDON_STRIDE,
    )
    if native is not None:
        # The C backend relaxes the identical cells with the identical
        # per-cell expression (no FP contraction), so its distances,
        # path lengths, evidence and cell counts are bit-identical to
        # the numpy loop below — see repro/core/native.py.
        status, values, lengths, cells_done = native
        if np.any(status == -1):
            raise ValueError("window admits no monotone warp path")
        native_results: List[Optional[Tuple[float, int, int]]] = []
        native_abandoned: Dict[int, Tuple[float, int]] = {}
        for index in range(count):
            if status[index] == 1:
                native_results.append(
                    (float(values[index]), int(lengths[index]), n_cells)
                )
            else:
                native_results.append(None)
                native_abandoned[index] = (
                    float(values[index]),
                    int(cells_done[index]),
                )
        return native_results, native_abandoned

    a_stack = np.ascontiguousarray(np.stack(xs).astype(float, copy=False))
    b_rev = np.ascontiguousarray(np.stack(ys).astype(float, copy=False)[:, ::-1])
    # Row p of the buffers currently computes original pair orig[p];
    # alive[p] False means the pair already abandoned but has not been
    # compacted out yet (its arithmetic keeps running harmlessly).
    orig = np.arange(count, dtype=np.int64)
    alive = np.ones(count, dtype=bool)
    check = np.isfinite(thr)

    results: List[Optional[Tuple[float, int, int]]] = [None] * count
    abandoned: Dict[int, Tuple[float, int]] = {}

    v_km2 = np.full((count, wpad), _INF)
    v_km2[:, 1] = 0.0
    v_km1 = np.full((count, wpad), _INF)
    v_new = np.empty((count, wpad))
    l_km2 = np.zeros((count, wpad), dtype=np.int64)
    l_km1 = np.zeros((count, wpad), dtype=np.int64)
    l_new = np.zeros((count, wpad), dtype=np.int64)
    seg_buf = np.empty((count, wpad))
    check_any = bool(check.any())
    n_diag = n + m - 1
    for kidx in range(n_diag):
        i0 = int(i0s[kidx])
        w = int(widths[kidx])
        su = int(sus[kidx])
        sd = int(sds[kidx])
        up = v_km1[:, su : su + w]
        left = v_km1[:, su + 1 : su + 1 + w]
        diag = v_km2[:, sd : sd + w]
        min_du = np.minimum(diag, up)
        best = np.minimum(min_du, left)
        k = kidx + 2
        # Fused relaxation: every op writes a preallocated output, so
        # the hot loop costs launches, not allocations.  The arithmetic
        # (and hence the bits) is identical to the naive expression
        # ``seg * seg + best`` written into the band slice.
        seg = np.subtract(
            a_stack[:, i0 - 1 : i0 - 1 + w],
            b_rev[:, m - k + i0 : m - k + i0 + w],
            out=seg_buf[:, :w],
        )
        v_new[:] = _INF
        np.multiply(seg, seg, out=seg)
        np.add(seg, best, out=v_new[:, 1 : w + 1])
        np.add(
            np.where(
                left < min_du,
                l_km1[:, su + 1 : su + 1 + w],
                np.where(up < diag, l_km1[:, su : su + w], l_km2[:, sd : sd + w]),
            ),
            1,
            out=l_new[:, 1 : w + 1],
        )
        v_km2, v_km1, v_new = v_km1, v_new, v_km2
        l_km2, l_km1, l_new = l_km1, l_new, l_km2
        if (
            check_any
            and kidx
            and kidx < n_diag - 1
            and kidx % _ABANDON_STRIDE == 0
        ):
            w_prev = int(widths[kidx - 1])
            cur_min = np.min(v_km1[:, 1 : w + 1], axis=1)
            prev_min = np.min(v_km2[:, 1 : w_prev + 1], axis=1)
            dead = alive & check & (cur_min > thr) & (prev_min > thr)
            if np.any(dead):
                evidence = np.minimum(cur_min, prev_min)
                cells_done = int(cum_cells[kidx])
                for p in np.nonzero(dead)[0]:
                    abandoned[int(orig[p])] = (float(evidence[p]), cells_done)
                alive[dead] = False
                live = int(alive.sum())
                if live == 0:
                    return results, abandoned
                check_any = bool(check[alive].any())
                if count - live >= max(8, live):
                    keep = alive
                    a_stack = np.ascontiguousarray(a_stack[keep])
                    b_rev = np.ascontiguousarray(b_rev[keep])
                    v_km2 = np.ascontiguousarray(v_km2[keep])
                    v_km1 = np.ascontiguousarray(v_km1[keep])
                    v_new = np.empty_like(v_km1)
                    l_km2 = np.ascontiguousarray(l_km2[keep])
                    l_km1 = np.ascontiguousarray(l_km1[keep])
                    l_new = np.empty_like(l_km1)
                    seg_buf = np.empty_like(v_km1)
                    thr = thr[keep]
                    check = check[keep]
                    orig = orig[keep]
                    alive = np.ones(live, dtype=bool)
                    count = live

    pos = n - int(i0s[-1]) + 1
    for p in np.nonzero(alive)[0]:
        distance = float(v_km1[p, pos])
        if math.isinf(distance):
            raise ValueError("window admits no monotone warp path")
        results[int(orig[p])] = (distance, int(l_km1[p, pos]), n_cells)
    return results, abandoned


# ----------------------------------------------------------------------
# Bound cascade: LB_Kim / LB_Keogh-style lower bounds, path upper bound
# ----------------------------------------------------------------------
def lb_kim(x: np.ndarray, y: np.ndarray) -> float:
    """Constant-time lower bound on any DTW distance (LB_Kim variant).

    Every monotone warp path matches the first samples together and the
    last samples together, and all step costs are non-negative, so the
    sum of those two squared differences never exceeds the DTW distance.
    """
    d0 = float(x[0]) - float(y[0])
    d1 = float(x[-1]) - float(y[-1])
    return d0 * d0 + d1 * d1


def _envelope_exceedance(
    query: np.ndarray, ref: np.ndarray, lo0: np.ndarray, hi0: np.ndarray
) -> float:
    """Sum of squared exceedances of ``query`` over per-sample envelopes.

    ``lo0``/``hi0`` give, per query sample, the 0-indexed inclusive
    window of ``ref`` samples any in-band warp path may match it with.
    The envelope is evaluated over a fixed-width window that is a
    *superset* of each true interval (sliding min/max), which can only
    loosen — never invalidate — the bound.
    """
    size = ref.size
    width = int(np.max(hi0 - lo0)) + 1
    if width >= size:
        env_lo = float(np.min(ref))
        env_hi = float(np.max(ref))
        d = np.maximum(query - env_hi, 0.0) + np.maximum(env_lo - query, 0.0)
        return float(d @ d)
    windows = sliding_window_view(ref, width)
    starts = np.minimum(lo0, size - width)
    env_lo = windows.min(axis=1)[starts]
    env_hi = windows.max(axis=1)[starts]
    d = np.maximum(query - env_hi, 0.0) + np.maximum(env_lo - query, 0.0)
    return float(d @ d)


def dtw_band_lower_bound(x: np.ndarray, y: np.ndarray, radius: int) -> float:
    """Lower bound on the banded DTW distance of ``(x, y)``.

    The max of three individually valid bounds:

    * :func:`lb_kim` (first/last cells are on every path);
    * the row-direction LB_Keogh generalisation: every warp path
      matches ``x_i`` with some ``y_j`` inside row ``i``'s band
      interval, so the squared exceedance of ``x_i`` over the interval
      envelope is a per-row cost floor;
    * the column-direction mirror (every path also visits every
      column).

    Unlike classic LB_Keogh this works for unequal lengths, because the
    envelopes come from the actual :func:`sakoe_chiba_band` intervals.
    """
    n, m = x.size, y.size
    lo, hi, monotone, _ = _band_arrays(n, m, radius)
    bound = lb_kim(x, y)
    bound = max(bound, _envelope_exceedance(x, y, lo - 1, hi - 1))
    if monotone:
        cols = np.arange(1, m + 1, dtype=np.int64)
        row_hi = np.searchsorted(lo, cols, side="right")  # last row covering j
        row_lo = np.searchsorted(hi, cols, side="left") + 1  # first row
        if np.all(row_lo <= row_hi):
            bound = max(
                bound, _envelope_exceedance(y, x, row_lo - 1, row_hi - 1)
            )
    return bound


def _ranges_to_indices(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``[arange(s, s + c) for s, c in zip(starts, counts)]``."""
    total = int(counts.sum())
    offsets = np.repeat(np.cumsum(counts) - counts, counts)
    return np.arange(total, dtype=np.int64) - offsets + np.repeat(starts, counts)


@lru_cache(maxsize=512)
def _upper_path_indices(
    n: int, m: int, radius: int
) -> Optional[Tuple[np.ndarray, np.ndarray, int]]:
    """Gather indices of the staircase upper-bound path for one shape.

    The path geometry depends only on ``(n, m, radius)``, so the
    ``(x_idx, y_idx, path_length)`` index arrays are cached and shared
    by every pair of that shape (scalar and batched bound alike).
    ``None`` if the band geometry is not monotone (never observed).
    """
    lo, hi, monotone, _ = _band_arrays(n, m, radius)
    if not monotone:  # pragma: no cover - no known geometry triggers this
        return None
    rows = np.arange(1, n + 1, dtype=np.int64)
    target = np.clip(np.round(rows * (m / n)).astype(np.int64), 1, m)
    target[-1] = m
    # t: rightmost column matched in row i; e: leftmost; u extends t so
    # the step into row i+1 is diagonal or vertical.  All stay in-band
    # by the band's overlap guarantees (lo[i+1] <= hi[i] + 1).
    t = np.minimum(hi, np.maximum(target, lo))
    prev = np.concatenate((np.asarray([0], dtype=np.int64), t[:-1]))
    e = np.maximum(lo, np.minimum(prev + 1, t))
    u = np.maximum(t, np.concatenate((e[1:] - 1, t[-1:])))
    counts = u - e + 1
    y_idx = _ranges_to_indices(e - 1, counts)
    x_idx = np.repeat(np.arange(n, dtype=np.int64), counts)
    x_idx.setflags(write=False)
    y_idx.setflags(write=False)
    return x_idx, y_idx, int(counts.sum())


def dtw_band_upper_bound(
    x: np.ndarray, y: np.ndarray, radius: int
) -> Tuple[float, int]:
    """Cost and length of an explicit monotone warp path inside the band.

    The path follows the length-scaled pseudo-diagonal, clipped into the
    band and stitched with the horizontal/diagonal fills needed for
    step-validity; its cost therefore upper-bounds the banded DTW
    distance (which minimises over all in-band paths).  For equal-length
    series with any non-negative radius this degenerates to the plain
    Euclidean path ``Σ (x_i - y_i)²`` of length ``n``.

    Returns:
        ``(cost, path_length)``; ``(inf, max(n, m))`` if the band
        geometry is not monotone (never observed; keeps the bound safe).
    """
    n, m = x.size, y.size
    path = _upper_path_indices(n, m, radius)
    if path is None:  # pragma: no cover - no known geometry triggers this
        return _INF, max(n, m)
    x_idx, y_idx, path_len = path
    d = x[x_idx] - y[y_idx]
    return float(d @ d), path_len


def _row_dots(mat: np.ndarray) -> np.ndarray:
    """Per-row ``row @ row``, bit-identical to the scalar ``d @ d``.

    A per-row loop (rather than one ``einsum``) so each row reduces
    with exactly the summation order of the scalar bound helpers — the
    batched bounds then reproduce the per-pair bounds bit-for-bit.
    """
    out = np.empty(mat.shape[0])
    for p in range(mat.shape[0]):
        row = np.ascontiguousarray(mat[p])
        out[p] = row @ row
    return out


def dtw_band_upper_bound_batch(
    xs_mat: np.ndarray, ys_mat: np.ndarray, radius: int
) -> Tuple[np.ndarray, int]:
    """:func:`dtw_band_upper_bound` over a stack of same-shape pairs.

    ``xs_mat``/``ys_mat`` are ``(count, n)`` / ``(count, m)`` stacks;
    returns ``(costs, path_length)`` with ``costs[p]`` bit-identical to
    the scalar bound of row ``p`` (one shared gather of the cached path
    indices replaces per-pair path construction).
    """
    count, n = xs_mat.shape
    m = ys_mat.shape[1]
    path = _upper_path_indices(n, m, radius)
    if path is None:  # pragma: no cover - no known geometry triggers this
        return np.full(count, _INF), max(n, m)
    x_idx, y_idx, path_len = path
    return _row_dots(xs_mat[:, x_idx] - ys_mat[:, y_idx]), path_len


@lru_cache(maxsize=512)
def _envelope_starts(
    n: int, m: int, radius: int, width: int
) -> Tuple[Optional[np.ndarray], Optional[np.ndarray]]:
    """Fixed-width envelope window starts for both bound directions.

    For a persistent envelope of ``width`` sliding windows, returns the
    0-indexed start per query sample such that each window is a superset
    of the sample's true band interval — the covering condition of
    :func:`_envelope_exceedance` — for the row direction (query ``x``
    against an envelope of ``y``) and the column direction (query ``y``
    against an envelope of ``x``).  A direction is ``None`` when
    ``width`` cannot cover its widest interval (e.g. unequal series
    lengths stretch the band beyond ``2·radius + 1``): callers must
    fall back to computing that envelope directly.
    """
    lo, hi, monotone, _ = _band_arrays(n, m, radius)
    row: Optional[np.ndarray] = None
    if width <= m and int(np.max(hi - lo)) + 1 <= width:
        row = np.minimum(lo - 1, m - width)
        row.setflags(write=False)
    col: Optional[np.ndarray] = None
    if monotone:
        cols = np.arange(1, m + 1, dtype=np.int64)
        row_hi = np.searchsorted(lo, cols, side="right")
        row_lo = np.searchsorted(hi, cols, side="left") + 1
        if (
            bool(np.all(row_lo <= row_hi))
            and width <= n
            and int(np.max(row_hi - row_lo)) + 1 <= width
        ):
            col = np.minimum(row_lo - 1, n - width)
            col.setflags(write=False)
    return row, col


# ----------------------------------------------------------------------
# LRU pair cache
# ----------------------------------------------------------------------
class _LRUCache:
    """Tiny ordered-dict LRU mapping pair keys to kernel results."""

    __slots__ = ("capacity", "_data")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._data: "OrderedDict[tuple, Tuple[float, int, int]]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: tuple) -> Optional[Tuple[float, int, int]]:
        entry = self._data.get(key)
        if entry is not None:
            self._data.move_to_end(key)
        return entry

    def put(self, key: tuple, value: Tuple[float, int, int]) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)

    def clear(self) -> None:
        self._data.clear()


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
@dataclass
class PairwiseStats:
    """Work accounting for one comparison phase (or cumulatively).

    Attributes:
        pairs: Identity pairs considered.
        exact: Pairs whose distance came from a kernel run.
        pruned: Pairs decided from bounds without running DTW.
        cache_hits: Pairs answered from the incremental cache.
        cache_misses: Kernel runs that went through an enabled cache.
        cells: DP cells actually relaxed by kernel runs.
        cells_saved: DP cells avoided via cache hits and pruning.
        incremental: Pairs whose exact distance was carried from the
            previous period's per-pair state (windows unchanged).
        abandoned: Kernel runs stopped early by the abandon threshold.
        envelope_updates: Per-identity envelopes updated by sliding the
            overlap instead of rebuilding from scratch.
    """

    pairs: int = 0
    exact: int = 0
    pruned: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cells: int = 0
    cells_saved: int = 0
    incremental: int = 0
    abandoned: int = 0
    envelope_updates: int = 0

    def add(self, other: "PairwiseStats") -> None:
        """Accumulate ``other`` into this instance."""
        self.pairs += other.pairs
        self.exact += other.exact
        self.pruned += other.pruned
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.cells += other.cells
        self.cells_saved += other.cells_saved
        self.incremental += other.incremental
        self.abandoned += other.abandoned
        self.envelope_updates += other.envelope_updates

    @property
    def hit_rate(self) -> float:
        """Cache hits per considered pair (0.0 when nothing compared)."""
        return self.cache_hits / self.pairs if self.pairs else 0.0


@dataclass(frozen=True)
class _PairBounds:
    """Decision-space bounds for one undecided pair."""

    lower: float
    upper: float
    cells: int  # kernel work a prune avoids


@dataclass
class IncrementalPairState:
    """Last exact evaluation of one identity pair, kept across periods.

    Keyed like the LRU cache — the stored window fingerprints and scale
    tag must match the current period's exactly for the carried triple
    to be reused — but stored per *identity pair*, so it survives cache
    churn from unrelated pairs and can be dropped when an identity
    leaves (:meth:`PairwiseEngine.drop_identity`).

    Attributes:
        key_a: Window fingerprint of the smaller identity at the last
            exact kernel run.
        key_b: Same for the larger identity.
        scale_tag: Normalisation-scale fingerprint of that run.
        triple: The run's raw ``(distance, path_length, cells)``.
        flag: The verdict recorded for the pair that period (``None``
            until a threshold-aware compare decided it).
    """

    key_a: bytes
    key_b: bytes
    scale_tag: str
    triple: Tuple[float, int, int]
    flag: Optional[bool] = None


@dataclass
class _IdentityState:
    """Per-identity raw window + persistent envelope (incremental mode).

    The envelope arrays are sliding min/max of the *raw* window at a
    fixed width ``2·radius + 1`` (the exact Sakoe–Chiba interval width
    for equal-length pairs; wider intervals fall back to direct bound
    computation).  They live in the raw domain because the Z-score
    parameters change every period, and the per-period normalisation
    ``(x - mean) / divisor`` is monotone, so the normalised envelope is
    just the normalised raw envelope — an O(n) transform instead of an
    O(n·width) rebuild.
    """

    key: bytes
    values: np.ndarray
    timestamps: np.ndarray
    env_lo: Optional[np.ndarray]  # None when the window is <= the width
    env_hi: Optional[np.ndarray]
    width: int


class PairwiseEngine:
    """Pairwise DTW evaluation with kernel, cache, bounds, and pool.

    One engine instance serves one detector; the kernel configuration
    mirrors the detector's comparison knobs so cached entries are only
    ever reused under identical semantics.

    Args:
        band_radius: Sakoe–Chiba half-width in samples, or ``None`` for
            FastDTW mode.
        use_exact_dtw: Use exact unconstrained DTW (ablations).
        fastdtw_radius: FastDTW refinement radius (band disabled only).
        normalize_by_path_length: Divide distances by warp-path length.
        pruning: Allow bound-cascade decisions in
            :meth:`compare_decided` (band mode only).
        incremental: Allow :meth:`compare_incremental` (band mode only):
            persistent per-identity envelopes + per-pair carry state +
            early-abandon kernel runs.
        cache_size: LRU capacity in pairs; 0 disables caching.
        workers: Thread-pool width for exact evaluations; 0 = inline.
        registry: Metrics registry (defaults to the process-global one).
        metric_prefix: Instrument-name prefix (``"detector"`` so the
            engine's counters extend the detector's existing family).
    """

    #: Eviction bounds for the incremental state stores (LRU by touch):
    #: per-pair carry states and per-identity envelope states.  Sized
    #: for hundreds of concurrently heard identities per observer —
    #: far beyond the paper's scenarios — while keeping worst-case
    #: memory bounded (~window bytes per identity, ~40 B per pair).
    MAX_PAIR_STATES = 8192
    MAX_IDENTITY_STATES = 512

    def __init__(
        self,
        band_radius: Optional[int] = 10,
        use_exact_dtw: bool = False,
        fastdtw_radius: int = 1,
        normalize_by_path_length: bool = True,
        pruning: bool = False,
        incremental: bool = False,
        cache_size: int = 256,
        workers: int = 0,
        registry: Optional[MetricsRegistry] = None,
        metric_prefix: str = "detector",
    ) -> None:
        self.band_radius = band_radius
        self.use_exact_dtw = use_exact_dtw
        self.fastdtw_radius = fastdtw_radius
        self.normalize_by_path_length = normalize_by_path_length
        self.pruning = pruning
        self.incremental = incremental
        if incremental:
            # Pay the one-time native-backend compile (if any) here, at
            # construction, so the first detection period isn't billed
            # for it.  A failed build just means numpy kernels.
            native_warmup()
        self.workers = workers
        self._cache = _LRUCache(cache_size) if cache_size > 0 else None
        self._pair_states: "OrderedDict[Pair, IncrementalPairState]" = (
            OrderedDict()
        )
        self._identity_states: "OrderedDict[str, _IdentityState]" = OrderedDict()
        self.stats = PairwiseStats()
        #: When True, each compare call leaves a per-pair provenance map
        #: in :attr:`last_provenance` (tag + cache key + deciding bound)
        #: for the audit trail.  Off by default: the hot path then pays
        #: one boolean check per call and builds nothing.
        self.record_provenance = False
        self.last_provenance: Optional[Dict[Pair, Dict[str, Any]]] = None
        metrics = registry if registry is not None else default_registry()
        prefix = metric_prefix
        self._c_pairs = metrics.counter(f"{prefix}.pairs_compared")
        self._c_exact = metrics.counter(f"{prefix}.pairs_exact")
        self._c_pruned = metrics.counter(f"{prefix}.pairs_pruned")
        self._c_hits = metrics.counter(f"{prefix}.cache_hits")
        self._c_misses = metrics.counter(f"{prefix}.cache_misses")
        self._c_cells = metrics.counter(f"{prefix}.dtw_cells")
        self._c_cells_saved = metrics.counter(f"{prefix}.cells_saved")
        self._c_incremental = metrics.counter(f"{prefix}.pairs_incremental")
        self._c_abandoned = metrics.counter(f"{prefix}.pairs_abandoned")
        self._c_env_updates = metrics.counter(f"{prefix}.envelope_updates")

    # -- properties -----------------------------------------------------
    @property
    def cache_enabled(self) -> bool:
        """Whether the incremental pair cache is active."""
        return self._cache is not None

    @property
    def cache_len(self) -> int:
        """Number of cached pair results."""
        return len(self._cache) if self._cache is not None else 0

    @property
    def can_prune(self) -> bool:
        """Bound-cascade decisions are sound only for the banded kernel
        (the bounds are built from the same band geometry; FastDTW's
        refinement window need not contain the upper-bound path)."""
        return (
            self.pruning
            and self.band_radius is not None
            and not self.use_exact_dtw
        )

    @property
    def can_incremental(self) -> bool:
        """Incremental decisions need the banded kernel for the same
        reason pruning does: envelopes, abandon thresholds, and bounds
        are all derived from the Sakoe–Chiba band geometry."""
        return (
            self.incremental
            and self.band_radius is not None
            and not self.use_exact_dtw
        )

    @property
    def incremental_state_len(self) -> int:
        """Number of per-pair carry states currently held."""
        return len(self._pair_states)

    def clear_cache(self) -> None:
        """Drop every cached pair result."""
        if self._cache is not None:
            self._cache.clear()

    def clear_incremental(self) -> None:
        """Drop all per-pair and per-identity incremental state."""
        self._pair_states.clear()
        self._identity_states.clear()

    def drop_identity(self, identity: str) -> None:
        """Forget one identity's incremental state (eviction hook).

        Removes the identity's envelope state and every per-pair carry
        state touching it, so a departed (or re-joining) identity can
        never be served a stale carry.  Mirrors the PR 1 fix for the
        density estimator's illegitimate set on ``reset()``.
        """
        self._identity_states.pop(identity, None)
        stale = [pair for pair in self._pair_states if identity in pair]
        for pair in stale:
            del self._pair_states[pair]

    # -- kernel ---------------------------------------------------------
    def _kernel(self, a: np.ndarray, b: np.ndarray) -> DTWResult:
        if self.use_exact_dtw:
            return dtw(a, b)
        if self.band_radius is not None:
            n, m = a.size, b.size
            if n >= 2 and m >= 2:
                _, _, monotone, n_cells = _band_arrays(n, m, self.band_radius)
                if monotone and n_cells >= _VEC_MIN_AVG_WIDTH * (n + m):
                    return dtw_banded_vec(a, b, self.band_radius)
            return dtw_banded_fast(a, b, self.band_radius)
        return fastdtw(a, b, radius=self.fastdtw_radius)

    def _finish(self, distance: float, path_len: int) -> float:
        if self.normalize_by_path_length:
            return distance / path_len
        return distance

    def _pair_key(
        self,
        a: str,
        b: str,
        keys: Optional[Mapping[str, bytes]],
        scale_tag: str,
    ) -> Optional[tuple]:
        if self._cache is None or keys is None:
            return None
        return (keys[a], keys[b], scale_tag)

    def _lookup(
        self, key: Optional[tuple], stats: PairwiseStats
    ) -> Optional[float]:
        """Cache probe; returns the finished distance on a hit."""
        if key is None or self._cache is None:
            return None
        entry = self._cache.get(key)
        if entry is None:
            return None
        distance, path_len, cells = entry
        stats.cache_hits += 1
        stats.cells_saved += cells
        return self._finish(distance, path_len)

    def _compute(
        self,
        a: np.ndarray,
        b: np.ndarray,
        key: Optional[tuple],
        stats: PairwiseStats,
        triple: Optional[Tuple[float, int, int]] = None,
    ) -> float:
        """Exact evaluation (kernel run unless ``triple`` is supplied)."""
        if triple is None:
            triple = _result_triple(self._kernel(a, b))
        distance, path_len, cells = triple
        if key is not None and self._cache is not None:
            self._cache.put(key, triple)
            stats.cache_misses += 1
        stats.exact += 1
        stats.cells += cells
        return self._finish(distance, path_len)

    def _begin_provenance(self) -> Optional[Dict[Pair, Dict[str, Any]]]:
        """Fresh provenance map for one compare call (None when off)."""
        prov: Optional[Dict[Pair, Dict[str, Any]]] = (
            {} if self.record_provenance else None
        )
        self.last_provenance = prov
        return prov

    def _flush(self, stats: PairwiseStats) -> None:
        """Publish one comparison phase's stats to metrics + cumulative."""
        self.stats.add(stats)
        self._c_pairs.inc(stats.pairs)
        self._c_exact.inc(stats.exact)
        self._c_pruned.inc(stats.pruned)
        self._c_hits.inc(stats.cache_hits)
        self._c_misses.inc(stats.cache_misses)
        self._c_cells.inc(stats.cells)
        self._c_cells_saved.inc(stats.cells_saved)
        self._c_incremental.inc(stats.incremental)
        self._c_abandoned.inc(stats.abandoned)
        self._c_env_updates.inc(stats.envelope_updates)

    # -- exact all-pairs comparison --------------------------------------
    def compare(
        self,
        arrays: Mapping[str, np.ndarray],
        keys: Optional[Mapping[str, bytes]] = None,
        scale_tag: str = "",
    ) -> Tuple[Dict[Pair, float], PairwiseStats]:
        """Exact pairwise distances for every identity pair.

        Args:
            arrays: Identity → normalised series (as the scalar
                comparison loop would see them).
            keys: Identity → cache fingerprint (normally the exact bytes
                of the pre-scale series window); ``None`` disables the
                cache for this call.
            scale_tag: Fingerprint of the common scale divisor shared by
                every series this call (empty when the scale is baked
                into the arrays).

        Returns:
            ``(distances, stats)`` with pairs in sorted-identity order —
            values bit-identical to the legacy per-pair loop.
        """
        stats = PairwiseStats()
        prov = self._begin_provenance()
        ids = sorted(arrays)
        distances: Dict[Pair, float] = {}
        pending: List[Tuple[Pair, Optional[tuple]]] = []
        for index, a in enumerate(ids):
            for b in ids[index + 1 :]:
                stats.pairs += 1
                key = self._pair_key(a, b, keys, scale_tag)
                hit = self._lookup(key, stats)
                if hit is not None:
                    distances[(a, b)] = hit
                    if prov is not None:
                        prov[(a, b)] = {
                            "tag": PROV_CACHE,
                            "key": key,
                        }
                else:
                    distances[(a, b)] = _INF  # placeholder, keeps order
                    pending.append(((a, b), key))
        for (pair, key), triple in zip(
            pending, self._run_kernels([p for p, _ in pending], arrays)
        ):
            distances[pair] = self._compute(
                arrays[pair[0]], arrays[pair[1]], key, stats, triple=triple
            )
            if prov is not None:
                prov[pair] = {
                    "tag": PROV_EXACT,
                    "key": key,
                }
        self._flush(stats)
        return distances, stats

    def _run_kernels(
        self, pairs: List[Pair], arrays: Mapping[str, np.ndarray]
    ) -> List[Tuple[float, int, int]]:
        """Kernel runs for ``pairs`` as ``(distance, path_len, cells)``.

        In banded mode, pairs sharing one ``(n, m)`` shape are relaxed
        together through :func:`dtw_banded_batch`; singleton shapes use
        the per-pair kernel.  Tasks optionally spread over the thread
        pool; results always come back in ``pairs`` order.
        """
        if not pairs:
            return []
        banded = self.band_radius is not None and not self.use_exact_dtw
        tasks: List[List[int]] = []
        if banded:
            groups: Dict[Tuple[int, int], List[int]] = {}
            for index, (a, b) in enumerate(pairs):
                shape = (arrays[a].size, arrays[b].size)
                groups.setdefault(shape, []).append(index)
            for indices in groups.values():
                if self.workers > 1 and len(indices) > 2 * self.workers:
                    step = -(-len(indices) // self.workers)  # ceil division
                    tasks.extend(
                        indices[i : i + step] for i in range(0, len(indices), step)
                    )
                else:
                    tasks.append(indices)
        else:
            tasks = [[index] for index in range(len(pairs))]

        def run(indices: List[int]) -> List[Tuple[float, int, int]]:
            if banded and len(indices) > 1:
                assert self.band_radius is not None
                return dtw_banded_batch(
                    [arrays[pairs[i][0]] for i in indices],
                    [arrays[pairs[i][1]] for i in indices],
                    self.band_radius,
                )
            a, b = pairs[indices[0]]
            return [_result_triple(self._kernel(arrays[a], arrays[b]))]

        if self.workers > 0 and len(tasks) > 1:
            with ThreadPoolExecutor(max_workers=self.workers) as pool:
                outputs = list(pool.map(run, tasks))
        else:
            outputs = [run(task) for task in tasks]
        results: List[Optional[Tuple[float, int, int]]] = [None] * len(pairs)
        for indices, output in zip(tasks, outputs):
            for index, triple in zip(indices, output):
                results[index] = triple
        assert all(triple is not None for triple in results)
        return results  # type: ignore[return-value]

    # -- threshold-aware comparison (bound cascade) ----------------------
    def compare_decided(
        self,
        arrays: Mapping[str, np.ndarray],
        keys: Optional[Mapping[str, bytes]],
        scale_tag: str,
        cutoff: float,
        threshold_on: str,
    ) -> Tuple[Dict[Pair, float], Dict[Pair, bool], PairwiseStats]:
        """Flag every pair against the threshold, running DTW lazily.

        Produces exactly the flag set the exact pairwise loop followed
        by the threshold rule would (``distance <= cutoff``, on min–max
        normalised distances when ``threshold_on == "normalized"``),
        while replacing DTW runs with bound decisions wherever the
        bounds cannot change the outcome.  Pairs decided from bounds
        carry a *surrogate* distance (their deciding bound, clipped into
        the observed ``[dmin, dmax]``) that sits on the correct side of
        the threshold after min–max normalisation.

        Requires :attr:`can_prune`; callers fall back to
        :meth:`compare` + explicit thresholding otherwise.

        Returns:
            ``(distances, flags, stats)`` in sorted-identity order.
        """
        if not self.can_prune:
            raise RuntimeError("compare_decided requires banded-kernel pruning")
        assert self.band_radius is not None
        radius = self.band_radius
        stats = PairwiseStats()
        prov = self._begin_provenance()
        ids = sorted(arrays)
        pairs: List[Pair] = [
            (a, b) for i, a in enumerate(ids) for b in ids[i + 1 :]
        ]
        stats.pairs = len(pairs)
        if not pairs:
            self._flush(stats)
            return {}, {}, stats

        exact: Dict[Pair, float] = {}
        pair_keys: Dict[Pair, Optional[tuple]] = {}
        bounds: Dict[Pair, _PairBounds] = {}
        # Pruned pairs never produce a kernel triple to cache, so repeat
        # windows used to recompute their bounds from scratch every
        # period (hit_rate 0.136 on the pruning benchmark).  Bounds are
        # threshold-independent, so they are cached under a mode-tagged
        # key ("bound" + the usual fingerprints) and the verdict +
        # surrogate are re-derived from the cached sandwich — decisions
        # stay identical under any cutoff or report min/max.
        bound_cached: set = set()

        def bound_cache_key(pair: Pair) -> Optional[tuple]:
            key = pair_keys[pair]
            if key is None or self._cache is None:
                return None
            return ("bound",) + key

        def note_pruned(pair: Pair) -> None:
            """Cache bookkeeping for a pair decided from its bounds."""
            bkey = bound_cache_key(pair)
            if bkey is None:
                return
            bound = bounds[pair]
            if pair in bound_cached:
                stats.cache_hits += 1
            else:
                assert self._cache is not None
                self._cache.put(bkey, (bound.lower, bound.upper, bound.cells))
                stats.cache_misses += 1

        for pair in pairs:
            a, b = pair
            key = self._pair_key(a, b, keys, scale_tag)
            pair_keys[pair] = key
            hit = self._lookup(key, stats)
            if hit is not None:
                exact[pair] = hit
                if prov is not None:
                    prov[pair] = {
                        "tag": PROV_CACHE,
                        "key": key,
                    }
                continue
            bkey = bound_cache_key(pair)
            if bkey is not None:
                assert self._cache is not None
                cached = self._cache.get(bkey)
                if cached is not None:
                    bounds[pair] = _PairBounds(
                        cached[0], cached[1], int(cached[2])
                    )
                    bound_cached.add(pair)
                    continue
            xa, xb = arrays[a], arrays[b]
            n, m = xa.size, xb.size
            lower = dtw_band_lower_bound(xa, xb, radius)
            upper_cost, _upper_len = dtw_band_upper_bound(xa, xb, radius)
            if self.normalize_by_path_length:
                lower /= n + m - 1  # longest possible warp path
                upper = upper_cost / max(n, m)  # shortest possible path
            else:
                upper = upper_cost
            bounds[pair] = _PairBounds(lower, upper, band_cells(n, m, radius))

        def run_exact(
            pair: Pair, triple: Optional[Tuple[float, int, int]] = None
        ) -> float:
            value = self._compute(
                arrays[pair[0]], arrays[pair[1]], pair_keys[pair], stats, triple
            )
            exact[pair] = value
            del bounds[pair]
            if prov is not None:
                prov[pair] = {
                    "tag": PROV_EXACT,
                    "key": pair_keys[pair],
                }
            return value

        def run_exact_batch(batch: List[Pair]) -> None:
            for pair, triple in zip(batch, self._run_kernels(batch, arrays)):
                run_exact(pair, triple)

        flags: Dict[Pair, bool] = {}
        surrogates: Dict[Pair, float] = {}

        if threshold_on == "raw":
            ambiguous: List[Pair] = []
            for pair in pairs:
                if pair in exact:
                    continue
                bound = bounds[pair]
                if bound.upper <= cutoff:
                    flags[pair] = True
                    surrogates[pair] = bound.upper
                    stats.pruned += 1
                    stats.cells_saved += bound.cells
                    note_pruned(pair)
                    if prov is not None:
                        prov[pair] = {
                            "tag": PROV_PRUNED_UPPER,
                            "bound": bound.upper,
                        }
                elif bound.lower > cutoff:
                    flags[pair] = False
                    surrogates[pair] = bound.lower
                    stats.pruned += 1
                    stats.cells_saved += bound.cells
                    note_pruned(pair)
                    if prov is not None:
                        prov[pair] = {
                            "tag": PROV_PRUNED_LOWER,
                            "bound": bound.lower,
                        }
                else:
                    ambiguous.append(pair)
            run_exact_batch(ambiguous)
            for pair, value in exact.items():
                flags[pair] = value <= cutoff
        else:  # "normalized": Eq. 8 min–max, then threshold
            # Pin down the report's exact min and max distance by
            # best-bound-first refinement: the true min cannot hide in a
            # pair whose lower bound exceeds an already-computed value.
            by_lower = sorted(bounds, key=lambda p: bounds[p].lower)
            while by_lower:
                by_lower = [p for p in by_lower if p in bounds]
                if not by_lower:
                    break
                if exact and min(exact.values()) <= bounds[by_lower[0]].lower:
                    break
                run_exact(by_lower.pop(0))
            by_upper = sorted(
                bounds, key=lambda p: bounds[p].upper, reverse=True
            )
            while by_upper:
                by_upper = [p for p in by_upper if p in bounds]
                if not by_upper:
                    break
                if exact and max(exact.values()) >= bounds[by_upper[0]].upper:
                    break
                run_exact(by_upper.pop(0))
            dmin = min(exact.values())
            dmax = max(exact.values())
            denom = dmax - dmin
            if denom < _SIGMA_FLOOR:
                # Degenerate min–max: every distance normalises to 0
                # (maximal similarity), exactly as minmax() defines it.
                flag_all = 0.0 <= cutoff
                for pair in pairs:
                    flags[pair] = flag_all
                    if pair not in exact:
                        bound = bounds[pair]
                        surrogates[pair] = min(max(bound.lower, dmin), dmax)
                        stats.pruned += 1
                        stats.cells_saved += bound.cells
                        note_pruned(pair)
                        if prov is not None:
                            prov[pair] = {
                                "tag": PROV_PRUNED_DEGENERATE,
                                "bound": bound.lower,
                            }
            else:
                ambiguous = []
                for pair in pairs:
                    if pair in exact:
                        continue
                    bound = bounds[pair]
                    if (bound.upper - dmin) / denom <= cutoff:
                        flags[pair] = True
                        surrogates[pair] = min(bound.upper, dmax)
                        stats.pruned += 1
                        stats.cells_saved += bound.cells
                        note_pruned(pair)
                        if prov is not None:
                            prov[pair] = {
                                "tag": PROV_PRUNED_UPPER,
                                "bound": bound.upper,
                            }
                    elif (bound.lower - dmin) / denom > cutoff:
                        flags[pair] = False
                        surrogates[pair] = max(bound.lower, dmin)
                        stats.pruned += 1
                        stats.cells_saved += bound.cells
                        note_pruned(pair)
                        if prov is not None:
                            prov[pair] = {
                                "tag": PROV_PRUNED_LOWER,
                                "bound": bound.lower,
                            }
                    else:
                        ambiguous.append(pair)
                run_exact_batch(ambiguous)
                for pair, value in exact.items():
                    flags[pair] = (value - dmin) / denom <= cutoff

        distances = {
            pair: exact[pair] if pair in exact else surrogates[pair]
            for pair in pairs
        }
        self._flush(stats)
        return distances, flags, stats

    # -- incremental comparison (persistent state + early abandon) -------
    def _store_pair_state(
        self,
        pair: Pair,
        key_a: bytes,
        key_b: bytes,
        scale_tag: str,
        triple: Tuple[float, int, int],
    ) -> None:
        """Record a pair's exact kernel triple for next-period carries."""
        state = self._pair_states.get(pair)
        if state is not None:
            state.key_a = key_a
            state.key_b = key_b
            state.scale_tag = scale_tag
            state.triple = triple
            state.flag = None
            self._pair_states.move_to_end(pair)
            return
        self._pair_states[pair] = IncrementalPairState(
            key_a, key_b, scale_tag, triple
        )
        while len(self._pair_states) > self.MAX_PAIR_STATES:
            self._pair_states.popitem(last=False)

    def _refresh_identity(
        self,
        identity: str,
        values: np.ndarray,
        timestamps: np.ndarray,
        key: bytes,
        stats: PairwiseStats,
    ) -> Tuple[_IdentityState, bool]:
        """Bring one identity's raw-domain envelope state up to date.

        Three cases, cheapest first: the window is byte-identical to
        the stored one (no-op); the stored window is a prefix-aligned
        predecessor of the new one (slide: copy the still-valid
        envelope entries, compute fresh entries only for the tail the
        new beacons touched — O(new·width)); anything else (rebuild —
        O(window·width)).

        Returns ``(state, overlapped)``.  ``overlapped`` is True when
        the new window shares an aligned sample run with the previous
        period's — the precondition :meth:`compare_incremental` uses to
        allow surrogate-producing fast paths for the identity's pairs.
        Disjoint consecutive windows (observation time == detection
        period, the fig11a grid) therefore take the fully exact path
        and reproduce exact-mode reports byte for byte.
        """
        assert self.band_radius is not None
        width = 2 * self.band_radius + 1
        state = self._identity_states.get(identity)
        if state is not None and state.key == key and state.width == width:
            self._identity_states.move_to_end(identity)
            return state, True
        n = values.size
        overlapped = False
        slid = False
        env_lo: Optional[np.ndarray] = None
        env_hi: Optional[np.ndarray] = None
        if state is not None and state.timestamps.size and n:
            old_ts = state.timestamps
            f = int(np.searchsorted(old_ts, timestamps[0], side="left"))
            o = old_ts.size - f  # overlap length if the tails align
            if (
                0 < o <= n
                and np.array_equal(old_ts[f:], timestamps[:o])
                and np.array_equal(state.values[f:], values[:o])
            ):
                overlapped = True
                if (
                    n > width
                    and o > width
                    and state.env_lo is not None
                    and state.env_hi is not None
                    and state.width == width
                ):
                    keep = o - width + 1  # envelope entries inside the overlap
                    count = n - width + 1
                    env_lo = np.empty(count)
                    env_hi = np.empty(count)
                    env_lo[:keep] = state.env_lo[f : f + keep]
                    env_hi[:keep] = state.env_hi[f : f + keep]
                    if keep < count:
                        tail = sliding_window_view(values[keep:], width)
                        env_lo[keep:] = tail.min(axis=1)
                        env_hi[keep:] = tail.max(axis=1)
                    stats.envelope_updates += 1
                    slid = True
        if n > width and not slid:
            windows = sliding_window_view(values, width)
            env_lo = np.ascontiguousarray(windows.min(axis=1))
            env_hi = np.ascontiguousarray(windows.max(axis=1))
        state = _IdentityState(key, values, timestamps, env_lo, env_hi, width)
        self._identity_states[identity] = state
        self._identity_states.move_to_end(identity)
        while len(self._identity_states) > self.MAX_IDENTITY_STATES:
            self._identity_states.popitem(last=False)
        return state, overlapped

    def _incremental_lower_bound(
        self,
        xa: np.ndarray,
        xb: np.ndarray,
        env_a: Optional[Tuple[np.ndarray, np.ndarray]],
        env_b: Optional[Tuple[np.ndarray, np.ndarray]],
        radius: int,
    ) -> float:
        """:func:`dtw_band_lower_bound` served from persistent envelopes.

        ``env_a``/``env_b`` are the identities' normalised ``(lo, hi)``
        envelope arrays (``None`` when the window is no longer than the
        envelope width — the whole-series min/max then covers every
        interval).  Directions whose band intervals outgrow the fixed
        envelope width (unequal series lengths) fall back to computing
        the envelope directly, exactly as the non-incremental bound.
        """
        n, m = xa.size, xb.size
        bound = lb_kim(xa, xb)
        width = 2 * radius + 1
        row_starts, col_starts = _envelope_starts(n, m, radius, width)
        if env_b is None:
            env_lo = float(np.min(xb))
            env_hi = float(np.max(xb))
            d = np.maximum(xa - env_hi, 0.0) + np.maximum(env_lo - xa, 0.0)
            bound = max(bound, float(d @ d))
        elif row_starts is not None:
            el = env_b[0][row_starts]
            eh = env_b[1][row_starts]
            d = np.maximum(xa - eh, 0.0) + np.maximum(el - xa, 0.0)
            bound = max(bound, float(d @ d))
        else:
            lo, hi, _, _ = _band_arrays(n, m, radius)
            bound = max(bound, _envelope_exceedance(xa, xb, lo - 1, hi - 1))
        if env_a is None:
            env_lo = float(np.min(xa))
            env_hi = float(np.max(xa))
            d = np.maximum(xb - env_hi, 0.0) + np.maximum(env_lo - xb, 0.0)
            bound = max(bound, float(d @ d))
        elif col_starts is not None:
            el = env_a[0][col_starts]
            eh = env_a[1][col_starts]
            d = np.maximum(xb - eh, 0.0) + np.maximum(el - xb, 0.0)
            bound = max(bound, float(d @ d))
        return bound

    def _compute_bounds(
        self,
        need: List[Pair],
        arrays: Mapping[str, np.ndarray],
        norm_env: Mapping[str, Optional[Tuple[np.ndarray, np.ndarray]]],
        radius: int,
        bounds: Dict[Pair, "_PairBounds"],
    ) -> None:
        """Fill ``bounds`` for ``need`` with the lower/upper sandwich.

        Pairs sharing one ``(n, m)`` shape whose persistent envelopes
        and fixed-width window starts all exist are bounded in one
        vectorised pass (a shared gather of the cached envelope starts
        and upper-path indices); each batched bound is bit-identical to
        the per-pair :meth:`_incremental_lower_bound` /
        :func:`dtw_band_upper_bound` result, so batching never changes
        a pruning decision.  Remaining pairs fall back to the scalar
        helpers.
        """
        width = 2 * radius + 1
        groups: Dict[Tuple[int, int], List[Pair]] = {}
        for pair in need:
            shape = (arrays[pair[0]].size, arrays[pair[1]].size)
            groups.setdefault(shape, []).append(pair)

        def store(pair: Pair, lower: float, upper_cost: float, n: int, m: int):
            if self.normalize_by_path_length:
                lower /= n + m - 1
                upper = upper_cost / max(n, m)
            else:
                upper = upper_cost
            bounds[pair] = _PairBounds(lower, upper, band_cells(n, m, radius))

        for (n, m), group in groups.items():
            row_starts, col_starts = _envelope_starts(n, m, radius, width)
            batch: List[Pair] = []
            for pair in group:
                a, b = pair
                if (
                    row_starts is None
                    or col_starts is None
                    or norm_env[a] is None
                    or norm_env[b] is None
                ):
                    lower = self._incremental_lower_bound(
                        arrays[a], arrays[b], norm_env[a], norm_env[b], radius
                    )
                    upper_cost, _len = dtw_band_upper_bound(
                        arrays[a], arrays[b], radius
                    )
                    store(pair, lower, upper_cost, n, m)
                else:
                    batch.append(pair)
            if not batch:
                continue
            # Stack per *identity*, then gather per pair: identities
            # repeat across the O(k^2) pairs, so this turns ~P row
            # stacks into ~k stacks plus one fancy-index per side.
            a_ids = sorted({pair[0] for pair in batch})
            b_ids = sorted({pair[1] for pair in batch})
            a_pos = {ident: k for k, ident in enumerate(a_ids)}
            b_pos = {ident: k for k, ident in enumerate(b_ids)}
            ai = np.asarray([a_pos[pair[0]] for pair in batch])
            bi = np.asarray([b_pos[pair[1]] for pair in batch])
            xs_all = np.stack([arrays[i] for i in a_ids])
            ys_all = np.stack([arrays[i] for i in b_ids])
            xs = xs_all[ai]
            ys = ys_all[bi]
            d0 = xs[:, 0] - ys[:, 0]
            d1 = xs[:, -1] - ys[:, -1]
            lowers = d0 * d0 + d1 * d1
            env_b_lo = np.stack([norm_env[i][0] for i in b_ids])
            env_b_hi = np.stack([norm_env[i][1] for i in b_ids])
            el = env_b_lo[np.ix_(bi, row_starts)]
            eh = env_b_hi[np.ix_(bi, row_starts)]
            lowers = np.maximum(
                lowers,
                _row_dots(np.maximum(xs - eh, 0.0) + np.maximum(el - xs, 0.0)),
            )
            env_a_lo = np.stack([norm_env[i][0] for i in a_ids])
            env_a_hi = np.stack([norm_env[i][1] for i in a_ids])
            el = env_a_lo[np.ix_(ai, col_starts)]
            eh = env_a_hi[np.ix_(ai, col_starts)]
            lowers = np.maximum(
                lowers,
                _row_dots(np.maximum(ys - eh, 0.0) + np.maximum(el - ys, 0.0)),
            )
            uppers, _plen = dtw_band_upper_bound_batch(xs, ys, radius)
            for index, pair in enumerate(batch):
                store(pair, float(lowers[index]), float(uppers[index]), n, m)

    def compare_incremental(
        self,
        arrays: Mapping[str, np.ndarray],
        raw: Mapping[str, np.ndarray],
        times: Mapping[str, np.ndarray],
        keys: Mapping[str, bytes],
        scale_tag: str,
        norm_params: Mapping[str, Tuple[float, float]],
        cutoff: float,
        threshold_on: str,
    ) -> Tuple[Dict[Pair, float], Dict[Pair, bool], PairwiseStats]:
        """Threshold-aware comparison priced by what changed since last
        period.

        The same flag contract as :meth:`compare_decided` — the flag
        set is byte-identical to the exact pairwise loop followed by
        the threshold rule — but the work is proportional to the *new*
        beacons:

        1. per-identity envelope states slide instead of rebuilding;
        2. pairs whose windows did not change carry the previous
           period's exact distance (``incremental-carry``);
        3. undecided pairs get the bound sandwich from the persistent
           envelopes (O(window) per pair instead of O(window·width));
        4. pairs the bounds cannot decide run the early-abandon kernel
           seeded with the decision boundary — most verdict-unchanged
           pairs die within a few anti-diagonals (``early-abandon``,
           flag False with a surrogate distance); only genuinely
           near-threshold pairs pay for a full kernel run.

        Args:
            arrays: Identity → normalised window.
            raw: Identity → raw (pre-normalisation) window values.
            times: Identity → window timestamps (aligns the overlap
                between consecutive sliding windows).
            keys: Identity → window fingerprint (exact raw bytes).
            scale_tag: Fingerprint of the normalisation scale.
            norm_params: Identity → ``(mean, divisor)`` actually used
                to produce ``arrays`` (divisor 0.0 = constant series).
            cutoff: Decision threshold.
            threshold_on: ``"normalized"`` (Eq. 8 min–max first) or
                ``"raw"``.

        Returns:
            ``(distances, flags, stats)`` in sorted-identity order.
        """
        if not self.can_incremental:
            raise RuntimeError(
                "compare_incremental requires banded-kernel incremental mode"
            )
        assert self.band_radius is not None
        radius = self.band_radius
        stats = PairwiseStats()
        prov = self._begin_provenance()
        ids = sorted(arrays)
        pairs: List[Pair] = [
            (a, b) for i, a in enumerate(ids) for b in ids[i + 1 :]
        ]
        stats.pairs = len(pairs)
        if not pairs:
            self._flush(stats)
            return {}, {}, stats

        norm_env: Dict[str, Optional[Tuple[np.ndarray, np.ndarray]]] = {}
        overlapped: Dict[str, bool] = {}
        for ident in ids:
            state, did_overlap = self._refresh_identity(
                ident, raw[ident], times[ident], keys[ident], stats
            )
            overlapped[ident] = did_overlap
            if state.env_lo is None or state.env_hi is None:
                norm_env[ident] = None
                continue
            mean, divisor = norm_params[ident]
            if divisor == 0.0:
                # Constant-series sentinel: the normalised window is all
                # zeros, and so is its envelope.
                zeros = np.zeros_like(state.env_lo)
                norm_env[ident] = (zeros, zeros)
            else:
                # (x - mean) / divisor is monotone, so the normalised
                # envelope is the normalised raw envelope — bit-equal to
                # sliding min/max over the normalised window.
                norm_env[ident] = (
                    (state.env_lo - mean) / divisor,
                    (state.env_hi - mean) / divisor,
                )

        exact: Dict[Pair, float] = {}
        pair_keys: Dict[Pair, Optional[tuple]] = {}
        bounds: Dict[Pair, _PairBounds] = {}
        must_exact: List[Pair] = []
        need_bounds: List[Pair] = []
        for pair in pairs:
            a, b = pair
            key = self._pair_key(a, b, keys, scale_tag)
            pair_keys[pair] = key
            state = self._pair_states.get(pair)
            if (
                state is not None
                and state.key_a == keys[a]
                and state.key_b == keys[b]
                and state.scale_tag == scale_tag
            ):
                self._pair_states.move_to_end(pair)
                exact[pair] = self._finish(state.triple[0], state.triple[1])
                stats.incremental += 1
                stats.cells_saved += state.triple[2]
                if prov is not None:
                    prov[pair] = {
                        "tag": PROV_INCREMENTAL,
                        "key": key,
                    }
                continue
            if key is not None and self._cache is not None:
                entry = self._cache.get(key)
                if entry is not None:
                    stats.cache_hits += 1
                    stats.cells_saved += entry[2]
                    exact[pair] = self._finish(entry[0], entry[1])
                    self._store_pair_state(pair, keys[a], keys[b], scale_tag, entry)
                    if prov is not None:
                        prov[pair] = {
                            "tag": PROV_CACHE,
                            "key": key,
                        }
                    continue
            if not (overlapped[a] and overlapped[b]):
                # At least one window is fresh (no aligned overlap with
                # the previous period).  Surrogate-producing shortcuts
                # would make the report diverge from exact mode on
                # disjoint-window workloads (the fig11a grid), so these
                # pairs always run the exact kernel.
                must_exact.append(pair)
                continue
            need_bounds.append(pair)
        self._compute_bounds(need_bounds, arrays, norm_env, radius, bounds)

        flags: Dict[Pair, bool] = {}
        surrogates: Dict[Pair, float] = {}

        def run_exact(
            pair: Pair, triple: Optional[Tuple[float, int, int]] = None
        ) -> float:
            a, b = pair
            if triple is None:
                if native_available():
                    # Bit-identical to the scalar kernel (the abandon
                    # batch never abandons at an infinite threshold)
                    # and ~50x cheaper than a pure-Python DP run.
                    triple = dtw_banded_batch_abandon(
                        [arrays[a]], [arrays[b]], radius, np.asarray([_INF])
                    )[0][0]
                else:
                    triple = _result_triple(self._kernel(arrays[a], arrays[b]))
            value = self._compute(
                arrays[a], arrays[b], pair_keys[pair], stats, triple=triple
            )
            self._store_pair_state(pair, keys[a], keys[b], scale_tag, triple)
            exact[pair] = value
            bounds.pop(pair, None)
            if prov is not None:
                prov[pair] = {
                    "tag": PROV_EXACT,
                    "key": pair_keys[pair],
                }
            return value

        def run_batch(jobs: Dict[Pair, float]) -> Dict[Pair, Tuple[float, int]]:
            """ONE early-abandon kernel sweep over all undecided pairs.

            ``jobs`` maps each pair to its abandon boundary in distance
            units (``inf`` forces an exact run — carries the must-exact
            and extreme-candidate pairs through the same call, so a
            detection pays for a single batched DP launch per window
            shape instead of one per decision phase).  Completed pairs
            are bit-identical kernel results and go through
            ``run_exact``; returns ``pair → (evidence, cells_saved)``
            (distance units) for the pairs that abandoned, whose
            flag/surrogate the caller assigns — or revokes, refunding
            ``cells_saved`` — once the decision boundary is final.
            """
            abandoned: Dict[Pair, Tuple[float, int]] = {}
            groups: Dict[Tuple[int, int], List[Pair]] = {}
            for pair in jobs:
                shape = (arrays[pair[0]].size, arrays[pair[1]].size)
                groups.setdefault(shape, []).append(pair)
            for (n, m), group in groups.items():
                if len(group) <= 3 and not native_available():
                    # A batched numpy DP launch costs ~one full diagonal
                    # loop regardless of rows; under a handful of pairs
                    # the scalar kernel is cheaper than that overhead.
                    # (The native backend has no such floor.)
                    for pair in group:
                        run_exact(pair)
                    continue
                if self.normalize_by_path_length:
                    # distance = cost / path_length with path_length
                    # <= n + m - 1, so cost > c·(n+m-1) implies
                    # distance > c.
                    factor = float(n + m - 1)
                else:
                    factor = 1.0
                results, dead = dtw_banded_batch_abandon(
                    [arrays[p[0]] for p in group],
                    [arrays[p[1]] for p in group],
                    radius,
                    np.asarray([jobs[p] for p in group]) * factor,
                )
                total = band_cells(n, m, radius)
                for index, pair in enumerate(group):
                    triple = results[index]
                    if triple is not None:
                        run_exact(pair, triple)
                        continue
                    evidence, cells_done = dead[index]
                    saved = max(total - cells_done, 0)
                    stats.abandoned += 1
                    stats.cells += cells_done
                    stats.cells_saved += saved
                    if self.normalize_by_path_length:
                        evidence /= n + m - 1
                    abandoned[pair] = (evidence, saved)
                    bounds.pop(pair, None)
                    if prov is not None:
                        prov[pair] = {
                            "tag": PROV_ABANDON,
                            "bound": evidence,
                        }
            return abandoned

        jobs: Dict[Pair, float] = {pair: _INF for pair in must_exact}

        if threshold_on == "raw":
            c_safe = cutoff + _ABANDON_GUARD * (abs(cutoff) + 1.0)
            for pair in pairs:
                if pair in exact or pair in jobs:
                    continue
                bound = bounds.pop(pair)
                if bound.upper <= cutoff:
                    flags[pair] = True
                    surrogates[pair] = bound.upper
                    stats.pruned += 1
                    stats.cells_saved += bound.cells
                    if prov is not None:
                        prov[pair] = {
                            "tag": PROV_PRUNED_UPPER,
                            "bound": bound.upper,
                        }
                elif bound.lower > cutoff:
                    flags[pair] = False
                    surrogates[pair] = bound.lower
                    stats.pruned += 1
                    stats.cells_saved += bound.cells
                    if prov is not None:
                        prov[pair] = {
                            "tag": PROV_PRUNED_LOWER,
                            "bound": bound.lower,
                        }
                else:
                    jobs[pair] = c_safe
            for pair, (evidence, _saved) in run_batch(jobs).items():
                flags[pair] = False
                surrogates[pair] = evidence
            for pair, value in exact.items():
                flags[pair] = value <= cutoff
        else:  # "normalized": min–max first, so pin dmin/dmax exactly
            deferred: Dict[Pair, _PairBounds] = {}
            if bounds:
                # Conservative interval for the true extremes from the
                # carried exacts and the bound sandwich: dmin lies in
                # [dmin_low, dmin_up] and dmax in [dmax_low, dmax_up].
                ex = list(exact.values())
                lows = [b.lower for b in bounds.values()]
                ups = [b.upper for b in bounds.values()]
                dmin_low, dmin_up = min(ex + lows), min(ex + ups)
                dmax_low, dmax_up = max(ex + lows), max(ex + ups)
                if len(bounds) > 8:
                    # Seed the interval with the exact distance of the
                    # best dmax candidate: max-of-lowers is a loose
                    # dmax floor, so one cheap scalar run collapses
                    # "could be the max" from half the pairs to the
                    # genuine tail.  (dmin needs no seed — min-of-
                    # uppers is already tight for near-identical
                    # windows, so its candidate set is small.)
                    seed = max(bounds, key=lambda p: bounds[p].lower)
                    value = run_exact(seed)
                    ex.append(value)
                    dmax_low = max(dmax_low, value)
                    dmin_up = min(dmin_up, value)
                denom_up = max(dmax_up - dmin_low, 0.0)
                denom_low = max(dmax_low - dmin_up, 0.0)
                if cutoff >= 0.0:
                    c_up = dmin_up + cutoff * denom_up
                    c_low = dmin_low + cutoff * denom_low
                else:
                    c_up = dmin_up + cutoff * denom_low
                    c_low = dmin_low + cutoff * denom_up
                # Predicted boundary: the seeded dmax_low is an
                # *achieved* distance (usually the true dmax), so
                # dmin_up + cutoff·(dmax_low − dmin_low) is a much
                # tighter abandon boundary than the worst-case c_up
                # built from the staircase uppers.  Abandoning at a
                # guessed boundary is sound regardless of whether the
                # guess was right — the evidence is a true lower bound
                # on the pair's distance either way — because every
                # abandon verdict is re-validated against the *pinned*
                # boundary below, and unproven pairs rerun exactly.
                denom_guess = max(dmax_low - dmin_low, 0.0)
                c_guess = dmin_up + cutoff * denom_guess
                c_guess = min(max(c_guess, c_low), c_up)
                c_guess_safe = c_guess + _ABANDON_GUARD * (
                    abs(c_guess) + denom_up
                )
                for pair in list(bounds):
                    bound = bounds[pair]
                    if bound.lower <= dmin_up or bound.upper >= dmax_low:
                        # Could be an extreme: its exact value may set
                        # dmin/dmax, so it runs to completion.  (The
                        # non-strict test keeps every achiever of
                        # dmin_up/dmax_low exact, which is what makes
                        # the extremes of the exact set the true ones.)
                        jobs[pair] = _INF
                    elif bound.upper <= c_low or bound.lower > c_up:
                        # Decidable from bounds alone against any
                        # possible boundary; the flag itself is
                        # assigned after pinning, with the exact
                        # path's own float expressions.
                        deferred[pair] = bounds.pop(pair)
                    else:
                        # Near some possible boundary: abandon at the
                        # predicted boundary; the verdict is validated
                        # (or revoked) once the true one is pinned.
                        jobs[pair] = c_guess_safe
            abandoned = run_batch(jobs)
            # Safety net (no-op when the candidate selection above is
            # exhaustive): any surviving bound that could still beat an
            # exact extreme runs exactly, one batched round at a time.
            while bounds:
                dmin_est = min(exact.values())
                todo = [p for p in bounds if bounds[p].lower < dmin_est]
                if not todo:
                    break
                for pair, triple in zip(todo, self._run_kernels(todo, arrays)):
                    run_exact(pair, triple)
            while bounds:
                dmax_est = max(exact.values())
                todo = [p for p in bounds if bounds[p].upper > dmax_est]
                if not todo:
                    break
                for pair, triple in zip(todo, self._run_kernels(todo, arrays)):
                    run_exact(pair, triple)
            dmin = min(exact.values())
            dmax = max(exact.values())
            denom = dmax - dmin
            if denom < _SIGMA_FLOOR:
                # Degenerate spread: exact mode maps every margin to
                # 0.0, overriding every per-pair decision (including
                # any abandon verdict — unreachable in practice, but
                # the override keeps the contract airtight).
                flag_all = 0.0 <= cutoff
                for pair in pairs:
                    flags[pair] = flag_all
                for pair, bound in deferred.items():
                    surrogates[pair] = min(max(bound.lower, dmin), dmax)
                    stats.pruned += 1
                    stats.cells_saved += bound.cells
                    if prov is not None:
                        prov[pair] = {
                            "tag": PROV_PRUNED_DEGENERATE,
                            "bound": bound.lower,
                        }
                for pair, (evidence, _saved) in abandoned.items():
                    surrogates[pair] = min(max(evidence, dmin), dmax)
            else:
                for pair, bound in deferred.items():
                    if (bound.upper - dmin) / denom <= cutoff:
                        flags[pair] = True
                        surrogates[pair] = min(bound.upper, dmax)
                        stats.pruned += 1
                        stats.cells_saved += bound.cells
                        if prov is not None:
                            prov[pair] = {
                                "tag": PROV_PRUNED_UPPER,
                                "bound": bound.upper,
                            }
                    elif (bound.lower - dmin) / denom > cutoff:
                        flags[pair] = False
                        surrogates[pair] = max(bound.lower, dmin)
                        stats.pruned += 1
                        stats.cells_saved += bound.cells
                        if prov is not None:
                            prov[pair] = {
                                "tag": PROV_PRUNED_LOWER,
                                "bound": bound.lower,
                            }
                    else:
                        # The float-evaluated bounds straddle the final
                        # boundary (conservative selection can't rule
                        # this out to the last ulp): run it exactly.
                        run_exact(pair)
                # Validate each abandon verdict against the *pinned*
                # boundary with the exact path's own float expression:
                # the evidence is a proven lower bound on the pair's
                # distance, and IEEE rounding is monotone in the
                # numerator, so evidence failing the cutoff test proves
                # the true distance fails it too.  Pairs whose evidence
                # does not clear the pinned boundary (the prediction
                # was too tight) rerun exactly, with their abandon
                # bookkeeping refunded.
                stragglers: List[Pair] = []
                for pair, (evidence, saved) in abandoned.items():
                    if (evidence - dmin) / denom > cutoff:
                        flags[pair] = False
                        surrogates[pair] = min(max(evidence, dmin), dmax)
                    else:
                        stats.abandoned -= 1
                        stats.cells_saved -= saved
                        stragglers.append(pair)
                run_batch({pair: _INF for pair in stragglers})
                for pair, value in exact.items():
                    flags[pair] = (value - dmin) / denom <= cutoff

        for pair in pairs:
            state = self._pair_states.get(pair)
            if (
                state is not None
                and state.key_a == keys[pair[0]]
                and state.key_b == keys[pair[1]]
                and state.scale_tag == scale_tag
            ):
                state.flag = flags[pair]
        distances = {
            pair: exact[pair] if pair in exact else surrogates[pair]
            for pair in pairs
        }
        self._flush(stats)
        return distances, flags, stats
