"""Fast pairwise comparison engine for the Voiceprint comparison phase.

The paper's comparison phase (Section IV-C, Algorithm 1) measures a DTW
distance for every pair of heard identities — O(n²) FastDTW runs per
detection period, which is the entire computational cost of Voiceprint.
This module makes that stage cheap without changing a single decision:

* :func:`dtw_banded_vec` — the Sakoe–Chiba banded DTW kernel relaxed
  along anti-diagonals with numpy slice arithmetic instead of a
  per-cell Python loop.  Every cell performs the identical IEEE-754
  operations as the scalar DP (:func:`repro.core.fastdtw.dtw_banded_fast`
  over the same :func:`repro.core.fastdtw.sakoe_chiba_band` geometry),
  so distances, warp paths, and the ``cells`` work metric are
  *bit-identical*, not merely close.  Narrow bands make single-pair
  diagonals too small for numpy to win, so the engine also carries
  :func:`dtw_banded_batch`, which relaxes *all pairs of one shape at
  once* — each anti-diagonal becomes one ``(pairs × width)`` block op —
  and tracks optimal warp-path lengths forward instead of storing the
  cost matrix for traceback.

* **Bound cascade** — cheap lower bounds (an LB_Kim-style first/last
  bound and LB_Keogh-style band-envelope bounds in both directions) and
  a cheap upper bound (the cost of an explicit monotone path inside the
  band) sandwich the banded-DTW distance.  When the sandwich lands
  clearly on one side of the decision threshold the pair is *decided
  without running DTW at all*.  For the paper-default min–max-normalised
  threshold (Eq. 8) the decision region depends on the per-report
  min/max distance, so the engine first pins those down exactly by an
  adaptive best-bound-first refinement, then decides the remaining
  pairs from their bounds (see ``DESIGN.md`` for the proof sketch).

* **Incremental pair cache** — an LRU cache keyed by per-identity
  window fingerprints (the exact bytes of the normalised series, plus
  the common scale factor), so a detection period only recomputes pairs
  whose series actually changed since the previous period.  A hit
  returns the stored distance/path-length verbatim — bit-identical to
  recomputation.

* **Optional parallel executor** — a bounded thread pool (off by
  default) for the exact kernel evaluations that survive the cascade.

Everything is instrumented through :mod:`repro.obs` (pairs pruned,
cache hits/misses, cells relaxed and saved) and configured through
:class:`repro.core.detector.DetectorConfig` knobs or the process-wide
defaults (:func:`set_engine_defaults`, wired to CLI flags).
"""

from __future__ import annotations

import math
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from ..obs.metrics import MetricsRegistry, default_registry
from .dtw import DTWResult, dtw
from .fastdtw import dtw_banded_fast, fastdtw, sakoe_chiba_band
from .normalization import _SIGMA_FLOOR

__all__ = [
    "EngineDefaults",
    "PROV_CACHE",
    "PROV_EXACT",
    "PROV_PRUNED_DEGENERATE",
    "PROV_PRUNED_LOWER",
    "PROV_PRUNED_UPPER",
    "PairwiseEngine",
    "PairwiseStats",
    "band_cells",
    "dtw_banded_batch",
    "dtw_banded_vec",
    "dtw_band_lower_bound",
    "dtw_band_upper_bound",
    "lb_kim",
    "get_engine_defaults",
    "set_engine_defaults",
]

Pair = Tuple[str, str]

#: Provenance tags recorded per pair when
#: :attr:`PairwiseEngine.record_provenance` is on — how the reported
#: distance was obtained (see ``repro.obs.audit``).
PROV_EXACT = "exact"
PROV_CACHE = "cache-hit"
PROV_PRUNED_LOWER = "pruned-lower"
PROV_PRUNED_UPPER = "pruned-upper"
PROV_PRUNED_DEGENERATE = "pruned-degenerate"

_INF = math.inf


#: Minimum *average anti-diagonal width* (band area / diagonal count)
#: at which the single-pair vectorised kernel beats the scalar interval
#: DP.  Narrow bands make each diagonal a tiny numpy op whose call
#: overhead dominates; both kernels produce bit-identical results, so
#: the switch is purely a speed heuristic.  (The batched kernel does
#: not need this: it amortises the per-diagonal overhead across pairs.)
_VEC_MIN_AVG_WIDTH = 32


# ----------------------------------------------------------------------
# Process-wide engine defaults (CLI-configurable)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EngineDefaults:
    """Process-wide defaults for detectors that leave engine knobs unset.

    Attributes:
        engine: Use the pairwise engine (vectorised kernel + cache)
            behind ``VoiceprintDetector.compare``.  Disabling falls back
            to the legacy per-pair Python loop.
        pruning: Decide pairs from the bound cascade inside ``detect``
            when the bounds land clearly outside the decision region.
            Off by default because pruned pairs carry *bound surrogates*
            instead of exact distances in ``DetectionReport`` (decisions
            are unaffected; analysis/training consumers that read raw
            distances should leave this off — see DESIGN.md).
        cache_size: Maximum cached pair results (LRU).  0 disables.
        workers: Thread-pool width for exact kernel evaluations.
            0 runs inline.
    """

    engine: bool = True
    pruning: bool = False
    cache_size: int = 256
    workers: int = 0

    def __post_init__(self) -> None:
        if self.cache_size < 0:
            raise ValueError(f"cache_size must be >= 0, got {self.cache_size}")
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")


_defaults = EngineDefaults()


def get_engine_defaults() -> EngineDefaults:
    """The current process-wide pairwise-engine defaults."""
    return _defaults


def set_engine_defaults(
    engine: Optional[bool] = None,
    pruning: Optional[bool] = None,
    cache_size: Optional[int] = None,
    workers: Optional[int] = None,
) -> EngineDefaults:
    """Override process-wide engine defaults; ``None`` keeps a field.

    Returns the *previous* defaults so callers (e.g. the CLI, tests)
    can restore them.
    """
    global _defaults
    previous = _defaults
    updates = {
        key: value
        for key, value in (
            ("engine", engine),
            ("pruning", pruning),
            ("cache_size", cache_size),
            ("workers", workers),
        )
        if value is not None
    }
    _defaults = replace(previous, **updates)
    return previous


# ----------------------------------------------------------------------
# Vectorised banded DTW kernel
# ----------------------------------------------------------------------
@lru_cache(maxsize=256)
def _band_arrays(
    n: int, m: int, radius: int
) -> Tuple[np.ndarray, np.ndarray, bool, int]:
    """Band geometry as read-only arrays, plus monotonicity and area.

    Returns ``(lo, hi, monotone, n_cells)`` where ``lo``/``hi`` are the
    0-indexed-by-row (value still 1-indexed column) interval arrays of
    :func:`sakoe_chiba_band`, ``monotone`` says both ends are
    non-decreasing (required by the vectorised kernel and the
    column-direction bound), and ``n_cells`` is the band area — the DP
    work a full kernel run would perform.
    """
    lo_list, hi_list = sakoe_chiba_band(n, m, radius)
    lo = np.asarray(lo_list[1:], dtype=np.int64)
    hi = np.asarray(hi_list[1:], dtype=np.int64)
    lo.setflags(write=False)
    hi.setflags(write=False)
    monotone = bool(np.all(lo[1:] >= lo[:-1]) and np.all(hi[1:] >= hi[:-1]))
    n_cells = int(np.sum(hi - lo + 1))
    return lo, hi, monotone, n_cells


def band_cells(n: int, m: int, radius: int) -> int:
    """Number of DP cells a banded kernel run relaxes for ``(n, m)``."""
    return _band_arrays(n, m, radius)[3]


def dtw_banded_vec(x, y, radius: int) -> DTWResult:
    """Sakoe–Chiba banded DTW relaxed along anti-diagonals with numpy.

    Bit-identical to :func:`repro.core.fastdtw.dtw_banded_fast` —
    same band geometry (:func:`sakoe_chiba_band`), same per-cell
    IEEE-754 operations (``(x_i - y_j)² + min(up, left, diag)``), same
    traceback tie-breaking — but the inner loop runs once per
    anti-diagonal instead of once per cell, using only contiguous
    slices (cells ``(i, j)`` with ``i + j = k`` depend only on
    diagonals ``k-1`` and ``k-2``, which removes the within-row
    ``curr[j-1]`` data dependency that defeats row-wise vectorisation).

    Memory: the accumulated-cost diagonals are kept for traceback,
    ``O((n+m)·n)`` floats — ~650 kB for the 20 s / 10 Hz series the
    detector compares, freed on return.

    Args:
        x: First series (length ``N``).
        y: Second series (length ``M``).
        radius: Band half-width in samples (``>= 0``).

    Returns:
        :class:`repro.core.dtw.DTWResult` for the best in-band path.
    """
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    a = np.ascontiguousarray(x, dtype=float)
    b = np.ascontiguousarray(y, dtype=float)
    if a.ndim != 1 or b.ndim != 1:
        raise ValueError(f"expected 1-D series, got shapes {a.shape}, {b.shape}")
    if a.size == 0 or b.size == 0:
        raise ValueError("DTW is undefined for empty series")
    n, m = a.size, b.size
    lo, hi, monotone, _ = _band_arrays(n, m, radius)
    if not monotone:  # pragma: no cover - no known geometry triggers this
        return dtw_banded_fast(a, b, radius)

    rows = np.arange(1, n + 1, dtype=np.int64)
    row_first_diag = rows + lo  # strictly increasing: diag where row i starts
    row_last_diag = rows + hi  # strictly increasing: diag where row i ends
    ks = np.arange(2, n + m + 1, dtype=np.int64)
    # Rows alive on diagonal k form a contiguous range (band ends are
    # monotone): those whose [first, last] diagonal interval contains k.
    top = np.searchsorted(row_first_diag, ks, side="right")  # max row (1-based)
    bottom = np.searchsorted(row_last_diag, ks, side="left") + 1  # min row

    # store[k, i] = accumulated cost D(i, k - i); row 0 holds D(0, 0)=0
    # and the infinite borders, exactly the scalar DP's boundary.
    store = np.full((n + m + 1, n + 1), _INF)
    store[0, 0] = 0.0
    cells = 0
    for k in range(2, n + m + 1):
        i1 = int(top[k - 2])
        i0 = int(bottom[k - 2])
        if i0 > i1:
            continue
        up = store[k - 1, i0 - 1 : i1]  # D(i-1, j)
        left = store[k - 1, i0 : i1 + 1]  # D(i, j-1)
        diag = store[k - 2, i0 - 1 : i1]  # D(i-1, j-1)
        best = np.minimum(np.minimum(up, left), diag)
        seg = a[i0 - 1 : i1] - b[k - i1 - 1 : k - i0][::-1]
        store[k, i0 : i1 + 1] = seg * seg + best
        cells += i1 - i0 + 1

    distance = float(store[n + m, n])
    if math.isinf(distance):
        raise ValueError("window admits no monotone warp path")

    # Traceback — identical candidate order and strict-< tie-breaking
    # as the scalar interval DP, so paths match exactly.
    path: List[Tuple[int, int]] = [(n, m)]
    i, j = n, m
    while (i, j) != (1, 1):
        best_v = _INF
        best_cell: Optional[Tuple[int, int]] = None
        for (pi, pj) in ((i - 1, j - 1), (i - 1, j), (i, j - 1)):
            if pi < 1 or pj < 1:
                continue
            if lo[pi - 1] <= pj <= hi[pi - 1]:
                value = store[pi + pj, pi]
                if value < best_v:
                    best_v = value
                    best_cell = (pi, pj)
        if best_cell is None:  # pragma: no cover - band is connected
            raise ValueError("traceback escaped the window")
        i, j = best_cell
        path.append(best_cell)
    path.reverse()
    return DTWResult(distance=distance, path=tuple(path), cells=cells)


def _result_triple(result: DTWResult) -> Tuple[float, int, int]:
    return result.distance, len(result.path), result.cells


def dtw_banded_batch(
    xs: List[np.ndarray], ys: List[np.ndarray], radius: int
) -> List[Tuple[float, int, int]]:
    """Banded DTW for a batch of pairs sharing one ``(n, m)`` shape.

    Relaxes every pair's band simultaneously: each anti-diagonal is one
    set of numpy ops on ``(pairs × width)`` blocks, which amortises the
    per-diagonal overhead that makes :func:`dtw_banded_vec` unprofitable
    for narrow bands.  Only three diagonals are live at a time (compact,
    INF-padded rolling buffers), so no full cost matrix is stored;
    instead of a traceback, the optimal warp-path *length* is tracked
    forward with the scalar traceback's exact tie-breaking rule
    (diagonal, then up, then left, strict ``<``), which is all the
    detector needs for path-length normalisation.

    Returns:
        One ``(distance, path_length, cells)`` triple per pair —
        bit-identical to running
        :func:`repro.core.fastdtw.dtw_banded_fast` on each pair.
    """
    count = len(xs)
    if count == 0:
        return []
    if len(ys) != count:
        raise ValueError(f"batch mismatch: {count} x-series, {len(ys)} y-series")
    n, m = xs[0].size, ys[0].size
    if any(x.size != n for x in xs) or any(y.size != m for y in ys):
        raise ValueError("dtw_banded_batch requires one common (n, m) shape")

    def fallback() -> List[Tuple[float, int, int]]:
        return [
            _result_triple(dtw_banded_fast(x, y, radius)) for x, y in zip(xs, ys)
        ]

    if n < 2 or m < 2:
        return fallback()
    lo, hi, monotone, n_cells = _band_arrays(n, m, radius)
    if not monotone:  # pragma: no cover - no known geometry triggers this
        return fallback()

    rows = np.arange(1, n + 1, dtype=np.int64)
    ks = np.arange(2, n + m + 1, dtype=np.int64)
    i1s = np.minimum(
        np.minimum(np.searchsorted(rows + lo, ks, side="right"), n), ks - 1
    )
    i0s = np.maximum(
        np.maximum(np.searchsorted(rows + hi, ks, side="left") + 1, 1), ks - m
    )
    if np.any(i0s > i1s):  # pragma: no cover - bands are connected
        return fallback()
    widths = i1s - i0s + 1
    wpad = int(widths.max()) + 2
    # Per-diagonal storage offset: row i of diagonal k lives at column
    # i - off[k] + 1, keeping column 0 (and any tail) as INF padding so
    # predecessor reads outside a diagonal's band resolve to INF.
    off = np.empty(n + m + 1, dtype=np.int64)
    off[0] = 0
    off[1] = 1  # diagonal 1 has no interior cells; buffer stays all-INF
    off[2:] = i0s
    sus = i0s - off[1:-1]  # up:   row i-1 on diagonal k-1
    sds = i0s - off[:-2]  # diag: row i-1 on diagonal k-2
    ok = (
        np.all(sus >= 0)
        and np.all(sus + 1 + widths <= wpad)  # left slice = up slice + 1
        and np.all(sds >= 0)
        and np.all(sds + widths <= wpad)
    )
    if not ok:  # pragma: no cover - guards the offset algebra
        return fallback()

    a_stack = np.ascontiguousarray(np.stack(xs).astype(float, copy=False))
    b_rev = np.ascontiguousarray(np.stack(ys).astype(float, copy=False)[:, ::-1])

    v_km2 = np.full((count, wpad), _INF)
    v_km2[:, 1] = 0.0  # D(0, 0)
    v_km1 = np.full((count, wpad), _INF)
    v_new = np.empty((count, wpad))
    l_km2 = np.zeros((count, wpad), dtype=np.int64)
    l_km1 = np.zeros((count, wpad), dtype=np.int64)
    l_new = np.zeros((count, wpad), dtype=np.int64)
    for kidx in range(n + m - 1):
        k = kidx + 2
        i0 = int(i0s[kidx])
        w = int(widths[kidx])
        su = int(sus[kidx])
        sd = int(sds[kidx])
        up = v_km1[:, su : su + w]
        left = v_km1[:, su + 1 : su + 1 + w]
        diag = v_km2[:, sd : sd + w]
        min_du = np.minimum(diag, up)
        best = np.minimum(min_du, left)
        seg = a_stack[:, i0 - 1 : i0 - 1 + w] - b_rev[:, m - k + i0 : m - k + i0 + w]
        v_new[:] = _INF
        v_new[:, 1 : w + 1] = seg * seg + best
        # Warp-path length of the predecessor the scalar traceback would
        # pick: left only if strictly best, else up only if strictly
        # better than diag, else diag.  Stale lengths under INF cells
        # never propagate to a finite total.
        l_new[:, 1 : w + 1] = (
            np.where(
                left < min_du,
                l_km1[:, su + 1 : su + 1 + w],
                np.where(up < diag, l_km1[:, su : su + w], l_km2[:, sd : sd + w]),
            )
            + 1
        )
        v_km2, v_km1, v_new = v_km1, v_new, v_km2
        l_km2, l_km1, l_new = l_km1, l_new, l_km2

    pos = n - int(i0s[-1]) + 1
    out: List[Tuple[float, int, int]] = []
    for p in range(count):
        distance = float(v_km1[p, pos])
        if math.isinf(distance):
            raise ValueError("window admits no monotone warp path")
        out.append((distance, int(l_km1[p, pos]), n_cells))
    return out


# ----------------------------------------------------------------------
# Bound cascade: LB_Kim / LB_Keogh-style lower bounds, path upper bound
# ----------------------------------------------------------------------
def lb_kim(x: np.ndarray, y: np.ndarray) -> float:
    """Constant-time lower bound on any DTW distance (LB_Kim variant).

    Every monotone warp path matches the first samples together and the
    last samples together, and all step costs are non-negative, so the
    sum of those two squared differences never exceeds the DTW distance.
    """
    d0 = float(x[0]) - float(y[0])
    d1 = float(x[-1]) - float(y[-1])
    return d0 * d0 + d1 * d1


def _envelope_exceedance(
    query: np.ndarray, ref: np.ndarray, lo0: np.ndarray, hi0: np.ndarray
) -> float:
    """Sum of squared exceedances of ``query`` over per-sample envelopes.

    ``lo0``/``hi0`` give, per query sample, the 0-indexed inclusive
    window of ``ref`` samples any in-band warp path may match it with.
    The envelope is evaluated over a fixed-width window that is a
    *superset* of each true interval (sliding min/max), which can only
    loosen — never invalidate — the bound.
    """
    size = ref.size
    width = int(np.max(hi0 - lo0)) + 1
    if width >= size:
        env_lo = float(np.min(ref))
        env_hi = float(np.max(ref))
        d = np.maximum(query - env_hi, 0.0) + np.maximum(env_lo - query, 0.0)
        return float(d @ d)
    windows = sliding_window_view(ref, width)
    starts = np.minimum(lo0, size - width)
    env_lo = windows.min(axis=1)[starts]
    env_hi = windows.max(axis=1)[starts]
    d = np.maximum(query - env_hi, 0.0) + np.maximum(env_lo - query, 0.0)
    return float(d @ d)


def dtw_band_lower_bound(x: np.ndarray, y: np.ndarray, radius: int) -> float:
    """Lower bound on the banded DTW distance of ``(x, y)``.

    The max of three individually valid bounds:

    * :func:`lb_kim` (first/last cells are on every path);
    * the row-direction LB_Keogh generalisation: every warp path
      matches ``x_i`` with some ``y_j`` inside row ``i``'s band
      interval, so the squared exceedance of ``x_i`` over the interval
      envelope is a per-row cost floor;
    * the column-direction mirror (every path also visits every
      column).

    Unlike classic LB_Keogh this works for unequal lengths, because the
    envelopes come from the actual :func:`sakoe_chiba_band` intervals.
    """
    n, m = x.size, y.size
    lo, hi, monotone, _ = _band_arrays(n, m, radius)
    bound = lb_kim(x, y)
    bound = max(bound, _envelope_exceedance(x, y, lo - 1, hi - 1))
    if monotone:
        cols = np.arange(1, m + 1, dtype=np.int64)
        row_hi = np.searchsorted(lo, cols, side="right")  # last row covering j
        row_lo = np.searchsorted(hi, cols, side="left") + 1  # first row
        if np.all(row_lo <= row_hi):
            bound = max(
                bound, _envelope_exceedance(y, x, row_lo - 1, row_hi - 1)
            )
    return bound


def _ranges_to_indices(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``[arange(s, s + c) for s, c in zip(starts, counts)]``."""
    total = int(counts.sum())
    offsets = np.repeat(np.cumsum(counts) - counts, counts)
    return np.arange(total, dtype=np.int64) - offsets + np.repeat(starts, counts)


def dtw_band_upper_bound(
    x: np.ndarray, y: np.ndarray, radius: int
) -> Tuple[float, int]:
    """Cost and length of an explicit monotone warp path inside the band.

    The path follows the length-scaled pseudo-diagonal, clipped into the
    band and stitched with the horizontal/diagonal fills needed for
    step-validity; its cost therefore upper-bounds the banded DTW
    distance (which minimises over all in-band paths).  For equal-length
    series with any non-negative radius this degenerates to the plain
    Euclidean path ``Σ (x_i - y_i)²`` of length ``n``.

    Returns:
        ``(cost, path_length)``; ``(inf, max(n, m))`` if the band
        geometry is not monotone (never observed; keeps the bound safe).
    """
    n, m = x.size, y.size
    lo, hi, monotone, _ = _band_arrays(n, m, radius)
    if not monotone:  # pragma: no cover - no known geometry triggers this
        return _INF, max(n, m)
    rows = np.arange(1, n + 1, dtype=np.int64)
    target = np.clip(np.round(rows * (m / n)).astype(np.int64), 1, m)
    target[-1] = m
    # t: rightmost column matched in row i; e: leftmost; u extends t so
    # the step into row i+1 is diagonal or vertical.  All stay in-band
    # by the band's overlap guarantees (lo[i+1] <= hi[i] + 1).
    t = np.minimum(hi, np.maximum(target, lo))
    prev = np.concatenate((np.asarray([0], dtype=np.int64), t[:-1]))
    e = np.maximum(lo, np.minimum(prev + 1, t))
    u = np.maximum(t, np.concatenate((e[1:] - 1, t[-1:])))
    counts = u - e + 1
    idx = _ranges_to_indices(e - 1, counts)
    d = np.repeat(x, counts) - y[idx]
    return float(d @ d), int(counts.sum())


# ----------------------------------------------------------------------
# LRU pair cache
# ----------------------------------------------------------------------
class _LRUCache:
    """Tiny ordered-dict LRU mapping pair keys to kernel results."""

    __slots__ = ("capacity", "_data")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._data: "OrderedDict[tuple, Tuple[float, int, int]]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: tuple) -> Optional[Tuple[float, int, int]]:
        entry = self._data.get(key)
        if entry is not None:
            self._data.move_to_end(key)
        return entry

    def put(self, key: tuple, value: Tuple[float, int, int]) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)

    def clear(self) -> None:
        self._data.clear()


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
@dataclass
class PairwiseStats:
    """Work accounting for one comparison phase (or cumulatively).

    Attributes:
        pairs: Identity pairs considered.
        exact: Pairs whose distance came from a kernel run.
        pruned: Pairs decided from bounds without running DTW.
        cache_hits: Pairs answered from the incremental cache.
        cache_misses: Kernel runs that went through an enabled cache.
        cells: DP cells actually relaxed by kernel runs.
        cells_saved: DP cells avoided via cache hits and pruning.
    """

    pairs: int = 0
    exact: int = 0
    pruned: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cells: int = 0
    cells_saved: int = 0

    def add(self, other: "PairwiseStats") -> None:
        """Accumulate ``other`` into this instance."""
        self.pairs += other.pairs
        self.exact += other.exact
        self.pruned += other.pruned
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.cells += other.cells
        self.cells_saved += other.cells_saved

    @property
    def hit_rate(self) -> float:
        """Cache hits per considered pair (0.0 when nothing compared)."""
        return self.cache_hits / self.pairs if self.pairs else 0.0


@dataclass(frozen=True)
class _PairBounds:
    """Decision-space bounds for one undecided pair."""

    lower: float
    upper: float
    cells: int  # kernel work a prune avoids


class PairwiseEngine:
    """Pairwise DTW evaluation with kernel, cache, bounds, and pool.

    One engine instance serves one detector; the kernel configuration
    mirrors the detector's comparison knobs so cached entries are only
    ever reused under identical semantics.

    Args:
        band_radius: Sakoe–Chiba half-width in samples, or ``None`` for
            FastDTW mode.
        use_exact_dtw: Use exact unconstrained DTW (ablations).
        fastdtw_radius: FastDTW refinement radius (band disabled only).
        normalize_by_path_length: Divide distances by warp-path length.
        pruning: Allow bound-cascade decisions in
            :meth:`compare_decided` (band mode only).
        cache_size: LRU capacity in pairs; 0 disables caching.
        workers: Thread-pool width for exact evaluations; 0 = inline.
        registry: Metrics registry (defaults to the process-global one).
        metric_prefix: Instrument-name prefix (``"detector"`` so the
            engine's counters extend the detector's existing family).
    """

    def __init__(
        self,
        band_radius: Optional[int] = 10,
        use_exact_dtw: bool = False,
        fastdtw_radius: int = 1,
        normalize_by_path_length: bool = True,
        pruning: bool = False,
        cache_size: int = 256,
        workers: int = 0,
        registry: Optional[MetricsRegistry] = None,
        metric_prefix: str = "detector",
    ) -> None:
        self.band_radius = band_radius
        self.use_exact_dtw = use_exact_dtw
        self.fastdtw_radius = fastdtw_radius
        self.normalize_by_path_length = normalize_by_path_length
        self.pruning = pruning
        self.workers = workers
        self._cache = _LRUCache(cache_size) if cache_size > 0 else None
        self.stats = PairwiseStats()
        #: When True, each compare call leaves a per-pair provenance map
        #: in :attr:`last_provenance` (tag + cache key + deciding bound)
        #: for the audit trail.  Off by default: the hot path then pays
        #: one boolean check per call and builds nothing.
        self.record_provenance = False
        self.last_provenance: Optional[Dict[Pair, Dict[str, Any]]] = None
        metrics = registry if registry is not None else default_registry()
        prefix = metric_prefix
        self._c_pairs = metrics.counter(f"{prefix}.pairs_compared")
        self._c_exact = metrics.counter(f"{prefix}.pairs_exact")
        self._c_pruned = metrics.counter(f"{prefix}.pairs_pruned")
        self._c_hits = metrics.counter(f"{prefix}.cache_hits")
        self._c_misses = metrics.counter(f"{prefix}.cache_misses")
        self._c_cells = metrics.counter(f"{prefix}.dtw_cells")
        self._c_cells_saved = metrics.counter(f"{prefix}.cells_saved")

    # -- properties -----------------------------------------------------
    @property
    def cache_enabled(self) -> bool:
        """Whether the incremental pair cache is active."""
        return self._cache is not None

    @property
    def cache_len(self) -> int:
        """Number of cached pair results."""
        return len(self._cache) if self._cache is not None else 0

    @property
    def can_prune(self) -> bool:
        """Bound-cascade decisions are sound only for the banded kernel
        (the bounds are built from the same band geometry; FastDTW's
        refinement window need not contain the upper-bound path)."""
        return (
            self.pruning
            and self.band_radius is not None
            and not self.use_exact_dtw
        )

    def clear_cache(self) -> None:
        """Drop every cached pair result."""
        if self._cache is not None:
            self._cache.clear()

    # -- kernel ---------------------------------------------------------
    def _kernel(self, a: np.ndarray, b: np.ndarray) -> DTWResult:
        if self.use_exact_dtw:
            return dtw(a, b)
        if self.band_radius is not None:
            n, m = a.size, b.size
            if n >= 2 and m >= 2:
                _, _, monotone, n_cells = _band_arrays(n, m, self.band_radius)
                if monotone and n_cells >= _VEC_MIN_AVG_WIDTH * (n + m):
                    return dtw_banded_vec(a, b, self.band_radius)
            return dtw_banded_fast(a, b, self.band_radius)
        return fastdtw(a, b, radius=self.fastdtw_radius)

    def _finish(self, distance: float, path_len: int) -> float:
        if self.normalize_by_path_length:
            return distance / path_len
        return distance

    def _pair_key(
        self,
        a: str,
        b: str,
        keys: Optional[Mapping[str, bytes]],
        scale_tag: str,
    ) -> Optional[tuple]:
        if self._cache is None or keys is None:
            return None
        return (keys[a], keys[b], scale_tag)

    def _lookup(
        self, key: Optional[tuple], stats: PairwiseStats
    ) -> Optional[float]:
        """Cache probe; returns the finished distance on a hit."""
        if key is None or self._cache is None:
            return None
        entry = self._cache.get(key)
        if entry is None:
            return None
        distance, path_len, cells = entry
        stats.cache_hits += 1
        stats.cells_saved += cells
        return self._finish(distance, path_len)

    def _compute(
        self,
        a: np.ndarray,
        b: np.ndarray,
        key: Optional[tuple],
        stats: PairwiseStats,
        triple: Optional[Tuple[float, int, int]] = None,
    ) -> float:
        """Exact evaluation (kernel run unless ``triple`` is supplied)."""
        if triple is None:
            triple = _result_triple(self._kernel(a, b))
        distance, path_len, cells = triple
        if key is not None and self._cache is not None:
            self._cache.put(key, triple)
            stats.cache_misses += 1
        stats.exact += 1
        stats.cells += cells
        return self._finish(distance, path_len)

    def _begin_provenance(self) -> Optional[Dict[Pair, Dict[str, Any]]]:
        """Fresh provenance map for one compare call (None when off)."""
        prov: Optional[Dict[Pair, Dict[str, Any]]] = (
            {} if self.record_provenance else None
        )
        self.last_provenance = prov
        return prov

    def _flush(self, stats: PairwiseStats) -> None:
        """Publish one comparison phase's stats to metrics + cumulative."""
        self.stats.add(stats)
        self._c_pairs.inc(stats.pairs)
        self._c_exact.inc(stats.exact)
        self._c_pruned.inc(stats.pruned)
        self._c_hits.inc(stats.cache_hits)
        self._c_misses.inc(stats.cache_misses)
        self._c_cells.inc(stats.cells)
        self._c_cells_saved.inc(stats.cells_saved)

    # -- exact all-pairs comparison --------------------------------------
    def compare(
        self,
        arrays: Mapping[str, np.ndarray],
        keys: Optional[Mapping[str, bytes]] = None,
        scale_tag: str = "",
    ) -> Tuple[Dict[Pair, float], PairwiseStats]:
        """Exact pairwise distances for every identity pair.

        Args:
            arrays: Identity → normalised series (as the scalar
                comparison loop would see them).
            keys: Identity → cache fingerprint (normally the exact bytes
                of the pre-scale series window); ``None`` disables the
                cache for this call.
            scale_tag: Fingerprint of the common scale divisor shared by
                every series this call (empty when the scale is baked
                into the arrays).

        Returns:
            ``(distances, stats)`` with pairs in sorted-identity order —
            values bit-identical to the legacy per-pair loop.
        """
        stats = PairwiseStats()
        prov = self._begin_provenance()
        ids = sorted(arrays)
        distances: Dict[Pair, float] = {}
        pending: List[Tuple[Pair, Optional[tuple]]] = []
        for index, a in enumerate(ids):
            for b in ids[index + 1 :]:
                stats.pairs += 1
                key = self._pair_key(a, b, keys, scale_tag)
                hit = self._lookup(key, stats)
                if hit is not None:
                    distances[(a, b)] = hit
                    if prov is not None:
                        prov[(a, b)] = {
                            "tag": PROV_CACHE,
                            "key": key,
                        }
                else:
                    distances[(a, b)] = _INF  # placeholder, keeps order
                    pending.append(((a, b), key))
        for (pair, key), triple in zip(
            pending, self._run_kernels([p for p, _ in pending], arrays)
        ):
            distances[pair] = self._compute(
                arrays[pair[0]], arrays[pair[1]], key, stats, triple=triple
            )
            if prov is not None:
                prov[pair] = {
                    "tag": PROV_EXACT,
                    "key": key,
                }
        self._flush(stats)
        return distances, stats

    def _run_kernels(
        self, pairs: List[Pair], arrays: Mapping[str, np.ndarray]
    ) -> List[Tuple[float, int, int]]:
        """Kernel runs for ``pairs`` as ``(distance, path_len, cells)``.

        In banded mode, pairs sharing one ``(n, m)`` shape are relaxed
        together through :func:`dtw_banded_batch`; singleton shapes use
        the per-pair kernel.  Tasks optionally spread over the thread
        pool; results always come back in ``pairs`` order.
        """
        if not pairs:
            return []
        banded = self.band_radius is not None and not self.use_exact_dtw
        tasks: List[List[int]] = []
        if banded:
            groups: Dict[Tuple[int, int], List[int]] = {}
            for index, (a, b) in enumerate(pairs):
                shape = (arrays[a].size, arrays[b].size)
                groups.setdefault(shape, []).append(index)
            for indices in groups.values():
                if self.workers > 1 and len(indices) > 2 * self.workers:
                    step = -(-len(indices) // self.workers)  # ceil division
                    tasks.extend(
                        indices[i : i + step] for i in range(0, len(indices), step)
                    )
                else:
                    tasks.append(indices)
        else:
            tasks = [[index] for index in range(len(pairs))]

        def run(indices: List[int]) -> List[Tuple[float, int, int]]:
            if banded and len(indices) > 1:
                assert self.band_radius is not None
                return dtw_banded_batch(
                    [arrays[pairs[i][0]] for i in indices],
                    [arrays[pairs[i][1]] for i in indices],
                    self.band_radius,
                )
            a, b = pairs[indices[0]]
            return [_result_triple(self._kernel(arrays[a], arrays[b]))]

        if self.workers > 0 and len(tasks) > 1:
            with ThreadPoolExecutor(max_workers=self.workers) as pool:
                outputs = list(pool.map(run, tasks))
        else:
            outputs = [run(task) for task in tasks]
        results: List[Optional[Tuple[float, int, int]]] = [None] * len(pairs)
        for indices, output in zip(tasks, outputs):
            for index, triple in zip(indices, output):
                results[index] = triple
        assert all(triple is not None for triple in results)
        return results  # type: ignore[return-value]

    # -- threshold-aware comparison (bound cascade) ----------------------
    def compare_decided(
        self,
        arrays: Mapping[str, np.ndarray],
        keys: Optional[Mapping[str, bytes]],
        scale_tag: str,
        cutoff: float,
        threshold_on: str,
    ) -> Tuple[Dict[Pair, float], Dict[Pair, bool], PairwiseStats]:
        """Flag every pair against the threshold, running DTW lazily.

        Produces exactly the flag set the exact pairwise loop followed
        by the threshold rule would (``distance <= cutoff``, on min–max
        normalised distances when ``threshold_on == "normalized"``),
        while replacing DTW runs with bound decisions wherever the
        bounds cannot change the outcome.  Pairs decided from bounds
        carry a *surrogate* distance (their deciding bound, clipped into
        the observed ``[dmin, dmax]``) that sits on the correct side of
        the threshold after min–max normalisation.

        Requires :attr:`can_prune`; callers fall back to
        :meth:`compare` + explicit thresholding otherwise.

        Returns:
            ``(distances, flags, stats)`` in sorted-identity order.
        """
        if not self.can_prune:
            raise RuntimeError("compare_decided requires banded-kernel pruning")
        assert self.band_radius is not None
        radius = self.band_radius
        stats = PairwiseStats()
        prov = self._begin_provenance()
        ids = sorted(arrays)
        pairs: List[Pair] = [
            (a, b) for i, a in enumerate(ids) for b in ids[i + 1 :]
        ]
        stats.pairs = len(pairs)
        if not pairs:
            self._flush(stats)
            return {}, {}, stats

        exact: Dict[Pair, float] = {}
        pair_keys: Dict[Pair, Optional[tuple]] = {}
        bounds: Dict[Pair, _PairBounds] = {}
        for pair in pairs:
            a, b = pair
            key = self._pair_key(a, b, keys, scale_tag)
            pair_keys[pair] = key
            hit = self._lookup(key, stats)
            if hit is not None:
                exact[pair] = hit
                if prov is not None:
                    prov[pair] = {
                        "tag": PROV_CACHE,
                        "key": key,
                    }
                continue
            xa, xb = arrays[a], arrays[b]
            n, m = xa.size, xb.size
            lower = dtw_band_lower_bound(xa, xb, radius)
            upper_cost, _upper_len = dtw_band_upper_bound(xa, xb, radius)
            if self.normalize_by_path_length:
                lower /= n + m - 1  # longest possible warp path
                upper = upper_cost / max(n, m)  # shortest possible path
            else:
                upper = upper_cost
            bounds[pair] = _PairBounds(lower, upper, band_cells(n, m, radius))

        def run_exact(
            pair: Pair, triple: Optional[Tuple[float, int, int]] = None
        ) -> float:
            value = self._compute(
                arrays[pair[0]], arrays[pair[1]], pair_keys[pair], stats, triple
            )
            exact[pair] = value
            del bounds[pair]
            if prov is not None:
                prov[pair] = {
                    "tag": PROV_EXACT,
                    "key": pair_keys[pair],
                }
            return value

        def run_exact_batch(batch: List[Pair]) -> None:
            for pair, triple in zip(batch, self._run_kernels(batch, arrays)):
                run_exact(pair, triple)

        flags: Dict[Pair, bool] = {}
        surrogates: Dict[Pair, float] = {}

        if threshold_on == "raw":
            ambiguous: List[Pair] = []
            for pair in pairs:
                if pair in exact:
                    continue
                bound = bounds[pair]
                if bound.upper <= cutoff:
                    flags[pair] = True
                    surrogates[pair] = bound.upper
                    stats.pruned += 1
                    stats.cells_saved += bound.cells
                    if prov is not None:
                        prov[pair] = {
                            "tag": PROV_PRUNED_UPPER,
                            "bound": bound.upper,
                        }
                elif bound.lower > cutoff:
                    flags[pair] = False
                    surrogates[pair] = bound.lower
                    stats.pruned += 1
                    stats.cells_saved += bound.cells
                    if prov is not None:
                        prov[pair] = {
                            "tag": PROV_PRUNED_LOWER,
                            "bound": bound.lower,
                        }
                else:
                    ambiguous.append(pair)
            run_exact_batch(ambiguous)
            for pair, value in exact.items():
                flags[pair] = value <= cutoff
        else:  # "normalized": Eq. 8 min–max, then threshold
            # Pin down the report's exact min and max distance by
            # best-bound-first refinement: the true min cannot hide in a
            # pair whose lower bound exceeds an already-computed value.
            by_lower = sorted(bounds, key=lambda p: bounds[p].lower)
            while by_lower:
                by_lower = [p for p in by_lower if p in bounds]
                if not by_lower:
                    break
                if exact and min(exact.values()) <= bounds[by_lower[0]].lower:
                    break
                run_exact(by_lower.pop(0))
            by_upper = sorted(
                bounds, key=lambda p: bounds[p].upper, reverse=True
            )
            while by_upper:
                by_upper = [p for p in by_upper if p in bounds]
                if not by_upper:
                    break
                if exact and max(exact.values()) >= bounds[by_upper[0]].upper:
                    break
                run_exact(by_upper.pop(0))
            dmin = min(exact.values())
            dmax = max(exact.values())
            denom = dmax - dmin
            if denom < _SIGMA_FLOOR:
                # Degenerate min–max: every distance normalises to 0
                # (maximal similarity), exactly as minmax() defines it.
                flag_all = 0.0 <= cutoff
                for pair in pairs:
                    flags[pair] = flag_all
                    if pair not in exact:
                        bound = bounds[pair]
                        surrogates[pair] = min(max(bound.lower, dmin), dmax)
                        stats.pruned += 1
                        stats.cells_saved += bound.cells
                        if prov is not None:
                            prov[pair] = {
                                "tag": PROV_PRUNED_DEGENERATE,
                                "bound": bound.lower,
                            }
            else:
                ambiguous = []
                for pair in pairs:
                    if pair in exact:
                        continue
                    bound = bounds[pair]
                    if (bound.upper - dmin) / denom <= cutoff:
                        flags[pair] = True
                        surrogates[pair] = min(bound.upper, dmax)
                        stats.pruned += 1
                        stats.cells_saved += bound.cells
                        if prov is not None:
                            prov[pair] = {
                                "tag": PROV_PRUNED_UPPER,
                                "bound": bound.upper,
                            }
                    elif (bound.lower - dmin) / denom > cutoff:
                        flags[pair] = False
                        surrogates[pair] = max(bound.lower, dmin)
                        stats.pruned += 1
                        stats.cells_saved += bound.cells
                        if prov is not None:
                            prov[pair] = {
                                "tag": PROV_PRUNED_LOWER,
                                "bound": bound.lower,
                            }
                    else:
                        ambiguous.append(pair)
                run_exact_batch(ambiguous)
                for pair, value in exact.items():
                    flags[pair] = (value - dmin) / denom <= cutoff

        distances = {
            pair: exact[pair] if pair in exact else surrogates[pair]
            for pair in pairs
        }
        self._flush(stats)
        return distances, flags, stats
