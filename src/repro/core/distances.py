"""Point-wise time-series distances (paper Eq. 2).

The classical :math:`L_p` family matches series point-to-point, which
requires equal lengths.  The paper uses these as the conceptual baseline
that DTW improves on: packet loss in VANETs routinely yields unequal
series, and even equal-length series can be temporally shifted, which a
point-wise metric punishes.  The Euclidean distance (``p = 2``) is kept
as a named convenience because it is the robust standard the paper cites
from Wang et al.'s distance-measure study.
"""

from __future__ import annotations

from typing import Callable, Sequence, Union

import numpy as np

__all__ = [
    "lp_distance",
    "euclidean_distance",
    "manhattan_distance",
    "chebyshev_distance",
    "squared_cost",
    "absolute_cost",
]

ArrayLike = Union[Sequence[float], np.ndarray]


def _as_equal_length_arrays(x: ArrayLike, y: ArrayLike) -> tuple:
    a = np.asarray(x, dtype=float)
    b = np.asarray(y, dtype=float)
    if a.ndim != 1 or b.ndim != 1:
        raise ValueError(
            f"expected 1-D series, got shapes {a.shape} and {b.shape}"
        )
    if a.shape != b.shape:
        raise ValueError(
            "Lp distances require equal-length series "
            f"(got {a.size} and {b.size}); use DTW for unequal lengths"
        )
    return a, b


def lp_distance(x: ArrayLike, y: ArrayLike, p: int = 2) -> float:
    """The :math:`L_p` norm distance between two equal-length series.

    Implements Eq. 2: ``(sum |x_i - y_i|^p)^(1/p)``.

    Args:
        x: First series.
        y: Second series (same length as ``x``).
        p: Positive integer norm order.

    Raises:
        ValueError: On unequal lengths or non-positive ``p``.
    """
    if p < 1:
        raise ValueError(f"p must be a positive integer, got {p}")
    a, b = _as_equal_length_arrays(x, y)
    if a.size == 0:
        return 0.0
    return float(np.sum(np.abs(a - b) ** p) ** (1.0 / p))


def euclidean_distance(x: ArrayLike, y: ArrayLike) -> float:
    """The Euclidean distance (:math:`L_2`), the ``p = 2`` special case."""
    return lp_distance(x, y, p=2)


def manhattan_distance(x: ArrayLike, y: ArrayLike) -> float:
    """The Manhattan distance (:math:`L_1`)."""
    return lp_distance(x, y, p=1)


def chebyshev_distance(x: ArrayLike, y: ArrayLike) -> float:
    """The Chebyshev distance (:math:`L_\\infty`), the ``p → ∞`` limit."""
    a, b = _as_equal_length_arrays(x, y)
    if a.size == 0:
        return 0.0
    return float(np.max(np.abs(a - b)))


def squared_cost(xi: float, yj: float) -> float:
    """DTW local cost ``(x_i - y_j)^2`` (paper Eq. 3)."""
    d = xi - yj
    return d * d


def absolute_cost(xi: float, yj: float) -> float:
    """Alternative DTW local cost ``|x_i - y_j|``.

    Not the paper's choice, but a common variant; exposed so the
    ablation benches can quantify how little the local cost matters
    after min–max normalisation.
    """
    return abs(xi - yj)


CostFunction = Callable[[float, float], float]
