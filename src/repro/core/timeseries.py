"""RSSI time-series primitives.

The Voiceprint collection phase stores, per heard identity, a 2-tuple
``<ID, RSSI>`` for every successfully received beacon (paper Section
IV-C-1).  :class:`RSSITimeSeries` is the append-only record of those
tuples together with their reception timestamps, plus the windowing and
gap bookkeeping the detector needs.

All RSSI values are in dBm.  All timestamps are in seconds (simulation
time or wall-clock time; the detector only uses them relatively).
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence

import numpy as np

__all__ = ["RSSISample", "RSSITimeSeries", "merge_series"]


@dataclass(frozen=True, order=True)
class RSSISample:
    """A single RSSI measurement from one received beacon.

    Attributes:
        timestamp: Reception time in seconds.
        rssi: Received signal strength in dBm.
    """

    timestamp: float
    rssi: float

    def __post_init__(self) -> None:
        if not math.isfinite(self.timestamp):
            raise ValueError(f"timestamp must be finite, got {self.timestamp!r}")
        if not math.isfinite(self.rssi):
            raise ValueError(f"rssi must be finite, got {self.rssi!r}")


class RSSITimeSeries:
    """Append-only time series of RSSI measurements for one identity.

    Samples must be appended in non-decreasing timestamp order; the
    collection phase observes the channel causally, so out-of-order
    appends indicate a bug in the caller and raise ``ValueError``.

    Args:
        identity: The claimed identity the samples belong to.
        samples: Optional initial samples, already time-ordered.
    """

    __slots__ = ("identity", "_timestamps", "_values")

    def __init__(
        self,
        identity: str,
        samples: Optional[Iterable[RSSISample]] = None,
    ) -> None:
        self.identity = str(identity)
        self._timestamps: List[float] = []
        self._values: List[float] = []
        if samples is not None:
            for sample in samples:
                self.append(sample.timestamp, sample.rssi)

    # ------------------------------------------------------------------
    # Construction / mutation
    # ------------------------------------------------------------------
    def append(self, timestamp: float, rssi: float) -> None:
        """Record one received beacon's RSSI.

        Raises:
            ValueError: If ``timestamp`` precedes the last recorded one
                or either argument is non-finite.
        """
        if not math.isfinite(timestamp) or not math.isfinite(rssi):
            raise ValueError(
                f"non-finite sample (timestamp={timestamp!r}, rssi={rssi!r})"
            )
        if self._timestamps and timestamp < self._timestamps[-1]:
            raise ValueError(
                f"out-of-order append: {timestamp} < {self._timestamps[-1]}"
            )
        self._timestamps.append(float(timestamp))
        self._values.append(float(rssi))

    @classmethod
    def from_values(
        cls,
        identity: str,
        values: Sequence[float],
        start: float = 0.0,
        interval: float = 0.1,
    ) -> "RSSITimeSeries":
        """Build a series from raw values at a fixed sampling interval.

        Convenient for tests and for replaying the paper's 10 Hz beacon
        cadence (``interval=0.1``).
        """
        series = cls(identity)
        for i, value in enumerate(values):
            series.append(start + i * interval, value)
        return series

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[RSSISample]:
        for t, v in zip(self._timestamps, self._values):
            yield RSSISample(t, v)

    def __repr__(self) -> str:
        span = f"{self.start:.2f}..{self.end:.2f}s" if self._timestamps else "empty"
        return (
            f"RSSITimeSeries(identity={self.identity!r}, "
            f"n={len(self)}, span={span})"
        )

    @property
    def values(self) -> np.ndarray:
        """RSSI values (dBm) as a float array, in time order."""
        return np.asarray(self._values, dtype=float)

    @property
    def timestamps(self) -> np.ndarray:
        """Sample timestamps (s) as a float array, in time order."""
        return np.asarray(self._timestamps, dtype=float)

    @property
    def start(self) -> float:
        """Timestamp of the first sample. Raises on an empty series."""
        if not self._timestamps:
            raise ValueError("empty series has no start")
        return self._timestamps[0]

    @property
    def end(self) -> float:
        """Timestamp of the last sample. Raises on an empty series."""
        if not self._timestamps:
            raise ValueError("empty series has no end")
        return self._timestamps[-1]

    @property
    def duration(self) -> float:
        """Time spanned by the samples (0 for fewer than two samples)."""
        if len(self._timestamps) < 2:
            return 0.0
        return self._timestamps[-1] - self._timestamps[0]

    def mean(self) -> float:
        """Mean RSSI in dBm. Raises on an empty series."""
        if not self._values:
            raise ValueError("empty series has no mean")
        return float(np.mean(self._values))

    def std(self) -> float:
        """Population standard deviation of the RSSI values (dBm)."""
        if not self._values:
            raise ValueError("empty series has no std")
        return float(np.std(self._values))

    # ------------------------------------------------------------------
    # Windowing and loss statistics
    # ------------------------------------------------------------------
    def window(self, start: float, end: float) -> "RSSITimeSeries":
        """Return the sub-series with ``start <= timestamp < end``.

        Used by the detector to cut one observation-time window out of
        the rolling collection buffer.
        """
        if end < start:
            raise ValueError(f"window end {end} precedes start {start}")
        # The timestamp list is kept sorted by append(), so bisect cuts
        # the window without materialising a numpy copy of the buffer.
        lo = bisect_left(self._timestamps, start)
        hi = bisect_left(self._timestamps, end)
        out = RSSITimeSeries(self.identity)
        out._timestamps = self._timestamps[lo:hi]
        out._values = self._values[lo:hi]
        return out

    def tail(self, duration: float) -> "RSSITimeSeries":
        """Return the most recent ``duration`` seconds of samples."""
        if duration < 0:
            raise ValueError(f"duration must be non-negative, got {duration}")
        if not self._timestamps:
            return RSSITimeSeries(self.identity)
        cutoff = self._timestamps[-1] - duration
        # Keep samples with timestamp >= cutoff (inclusive of the edge).
        lo = bisect_left(self._timestamps, cutoff)
        out = RSSITimeSeries(self.identity)
        out._timestamps = self._timestamps[lo:]
        out._values = self._values[lo:]
        return out

    def drop_before(self, timestamp: float) -> None:
        """Discard samples strictly older than ``timestamp`` in place.

        Keeps the rolling collection buffer bounded during long runs.
        Called per received beacon (lazy trim), so it must stay O(log
        window) — bisect on the sorted list, never a numpy round-trip.
        """
        lo = bisect_left(self._timestamps, timestamp)
        if lo:
            del self._timestamps[:lo]
            del self._values[:lo]

    def expected_samples(self, beacon_interval: float = 0.1) -> int:
        """Number of beacons the span *should* contain at a fixed cadence.

        With the DSRC 10 Hz cadence (``beacon_interval=0.1``) a 20 s
        window should hold about 200 samples; the shortfall versus
        :func:`len` measures packet loss.
        """
        if beacon_interval <= 0:
            raise ValueError("beacon_interval must be positive")
        if len(self._timestamps) < 2:
            return len(self._timestamps)
        return int(round(self.duration / beacon_interval)) + 1

    def loss_rate(self, beacon_interval: float = 0.1) -> float:
        """Estimated fraction of beacons lost within the sample span."""
        expected = self.expected_samples(beacon_interval)
        if expected <= 0:
            return 0.0
        return max(0.0, 1.0 - len(self) / expected)

    def largest_gap(self) -> float:
        """Longest inter-sample gap in seconds (0 for < 2 samples)."""
        if len(self._timestamps) < 2:
            return 0.0
        return float(np.max(np.diff(self.timestamps)))


def merge_series(
    identity: str, parts: Sequence[RSSITimeSeries]
) -> RSSITimeSeries:
    """Merge time-ordered series fragments into one series.

    Fragments may interleave in time; the merged result is globally
    sorted by timestamp.  Useful when collection is sharded (e.g. one
    buffer per MAC queue) and the detector wants a single view.
    """
    samples = sorted(
        (sample for part in parts for sample in part),
        key=lambda s: s.timestamp,
    )
    return RSSITimeSeries(identity, samples)
