"""Dynamic Time Warping (paper Section IV-B, Eqs. 3–6).

DTW finds the minimum-cost monotone alignment between two series of
possibly different lengths, tolerating the shifting/scaling/warping that
packet loss and clock offsets introduce into VANET RSSI series.  The
recursion is exactly the paper's:

.. math::

    c_{i,j} = (x_i - y_j)^2

    D_{i,j} = c_{i,j} + \\min(D_{i-1,j},\\ D_{i,j-1},\\ D_{i-1,j-1})

with :math:`D_{0,0} = 0` and every other border cell :math:`\\infty`;
the DTW distance is :math:`D_{N,M}`.

This module provides the exact :math:`O(NM)` algorithm, warp-path
recovery, and a Sakoe–Chiba banded variant.  The windowed variant that
FastDTW needs lives here too (:func:`dtw_windowed`), operating on an
explicit set of admissible cells.

Note on the paper's worked example (Fig. 9): for
``X = {1, 1, 4, 1, 1}``, ``Y = {2, 2, 2, 4, 2, 2}`` this recursion
yields a distance of **5** with the squared cost of Eq. 3 (and 5 with an
absolute cost as well), not the 9 printed in the figure.  We implement
the equations as written; see EXPERIMENTS.md (E4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple, Union

import numpy as np

from .distances import CostFunction, squared_cost

__all__ = [
    "DTWResult",
    "dtw",
    "dtw_distance",
    "dtw_banded",
    "dtw_windowed",
    "path_cost_steps",
    "warp_path_cells",
]

ArrayLike = Union[Sequence[float], np.ndarray]
Cell = Tuple[int, int]

_INF = math.inf


@dataclass(frozen=True)
class DTWResult:
    """Outcome of one DTW alignment.

    Attributes:
        distance: The total accumulated cost :math:`D_{N,M}` (Eq. 6).
        path: The optimal warp path as 1-indexed ``(i, j)`` pairs from
            ``(1, 1)`` to ``(N, M)``, satisfying the monotonicity
            constraint of Eq. 5.
        cells: Number of cost-matrix cells evaluated to produce this
            result — the work metric the observability layer aggregates
            (``N * M`` for exact DTW, the window size for banded /
            FastDTW variants; 0 when the producer predates the field).
    """

    distance: float
    path: Tuple[Cell, ...]
    cells: int = 0

    def __len__(self) -> int:
        return len(self.path)


def _validate(x: ArrayLike, y: ArrayLike) -> Tuple[np.ndarray, np.ndarray]:
    a = np.asarray(x, dtype=float)
    b = np.asarray(y, dtype=float)
    if a.ndim != 1 or b.ndim != 1:
        raise ValueError(f"expected 1-D series, got shapes {a.shape}, {b.shape}")
    if a.size == 0 or b.size == 0:
        raise ValueError("DTW is undefined for empty series")
    if not (np.all(np.isfinite(a)) and np.all(np.isfinite(b))):
        raise ValueError("DTW requires finite series values")
    return a, b


def _accumulate_full(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Fill the full accumulated-cost matrix with the squared local cost.

    Returns an ``(N+1) x (M+1)`` matrix whose ``[i, j]`` entry is
    :math:`D_{i,j}` (1-indexed as in the paper; row/column 0 are the
    infinite borders except ``D[0, 0] = 0``).
    """
    n, m = a.size, b.size
    cost = (a[:, None] - b[None, :]) ** 2
    acc = np.full((n + 1, m + 1), _INF, dtype=float)
    acc[0, 0] = 0.0
    for i in range(1, n + 1):
        row = acc[i]
        prev = acc[i - 1]
        crow = cost[i - 1]
        for j in range(1, m + 1):
            best = prev[j - 1]
            if prev[j] < best:
                best = prev[j]
            if row[j - 1] < best:
                best = row[j - 1]
            row[j] = crow[j - 1] + best
    return acc


def _traceback(acc: np.ndarray) -> Tuple[Cell, ...]:
    """Recover the optimal warp path from an accumulated-cost matrix."""
    i = acc.shape[0] - 1
    j = acc.shape[1] - 1
    path: List[Cell] = [(i, j)]
    while (i, j) != (1, 1):
        candidates = (
            (acc[i - 1, j - 1], (i - 1, j - 1)),
            (acc[i - 1, j], (i - 1, j)),
            (acc[i, j - 1], (i, j - 1)),
        )
        _, (i, j) = min(candidates, key=lambda c: c[0])
        path.append((i, j))
    path.reverse()
    return tuple(path)


def dtw(x: ArrayLike, y: ArrayLike) -> DTWResult:
    """Exact DTW between two series, with warp-path recovery.

    Args:
        x: First series (length ``N``).
        y: Second series (length ``M``).

    Returns:
        :class:`DTWResult` with the distance :math:`D_{N,M}` and the
        optimal 1-indexed warp path.
    """
    a, b = _validate(x, y)
    acc = _accumulate_full(a, b)
    return DTWResult(
        distance=float(acc[-1, -1]),
        path=_traceback(acc),
        cells=a.size * b.size,
    )


def dtw_distance(x: ArrayLike, y: ArrayLike) -> float:
    """Exact DTW distance only (no path), vectorised row-sweep.

    Equivalent to ``dtw(x, y).distance`` but faster because each row
    relaxation is a single numpy expression.
    """
    a, b = _validate(x, y)
    m = b.size
    prev = np.full(m + 1, _INF)
    prev[0] = 0.0
    curr = np.empty(m + 1)
    for i in range(a.size):
        curr[0] = _INF
        cost = (a[i] - b) ** 2
        # curr[j] = cost[j-1] + min(prev[j], prev[j-1], curr[j-1]);
        # the curr[j-1] term forces a left-to-right scan.
        best_up = np.minimum(prev[1:], prev[:-1])
        running = _INF
        for j in range(m):
            step = best_up[j]
            if running < step:
                step = running
            running = cost[j] + step
            curr[j + 1] = running
        prev, curr = curr, prev
    return float(prev[-1])


def dtw_banded(x: ArrayLike, y: ArrayLike, radius: int) -> DTWResult:
    """DTW restricted to a Sakoe–Chiba band of half-width ``radius``.

    Cells ``(i, j)`` are admissible when the point ``j`` lies within
    ``radius`` of the diagonal projection of ``i`` (after scaling for
    unequal lengths).  The band always contains the corners, so a valid
    path exists for any non-negative radius.

    Args:
        x: First series.
        y: Second series.
        radius: Band half-width in cells (``>= 0``).

    Returns:
        :class:`DTWResult`; its distance upper-bounds nothing and
        lower-bounds nothing in general, but equals the exact DTW
        distance whenever the optimal path fits inside the band.
    """
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    a, b = _validate(x, y)
    n, m = a.size, b.size
    scale = m / n
    window: List[Cell] = []
    for i in range(1, n + 1):
        centre = i * scale
        lo = max(1, int(math.floor(centre - radius - scale)))
        hi = min(m, int(math.ceil(centre + radius)))
        for j in range(lo, hi + 1):
            window.append((i, j))
    return dtw_windowed(a, b, window)


def dtw_windowed(
    x: ArrayLike,
    y: ArrayLike,
    window: Iterable[Cell],
    cost_fn: CostFunction = squared_cost,
) -> DTWResult:
    """DTW evaluated only on an explicit set of admissible cells.

    This is the engine underneath both :func:`dtw_banded` and FastDTW's
    projected-window refinement.  Cells are 1-indexed ``(i, j)`` pairs;
    the window must contain ``(1, 1)`` and ``(N, M)`` and be connected
    enough for at least one monotone path to exist, otherwise a
    ``ValueError`` is raised.

    Args:
        x: First series (length ``N``).
        y: Second series (length ``M``).
        window: Admissible 1-indexed cells.
        cost_fn: Local cost; defaults to the paper's squared difference.

    Returns:
        :class:`DTWResult` for the best path inside the window.
    """
    a, b = _validate(x, y)
    n, m = a.size, b.size
    cells = sorted(set(window))
    if not cells:
        raise ValueError("window is empty")
    for (i, j) in (cells[0], cells[-1]):
        if not (1 <= i <= n and 1 <= j <= m):
            raise ValueError(f"window cell ({i}, {j}) outside series bounds")
    if cells[0] != (1, 1):
        raise ValueError("window must contain the start cell (1, 1)")
    if cells[-1] != (n, m):
        raise ValueError(f"window must contain the end cell ({n}, {m})")

    acc: Dict[Cell, float] = {(0, 0): 0.0}
    # Cells are sorted lexicographically, so predecessors (i-1, *) and
    # (i, j-1) are always relaxed before (i, j).
    for (i, j) in cells:
        best = min(
            acc.get((i - 1, j), _INF),
            acc.get((i, j - 1), _INF),
            acc.get((i - 1, j - 1), _INF),
        )
        if math.isinf(best):
            continue
        acc[(i, j)] = cost_fn(float(a[i - 1]), float(b[j - 1])) + best

    end = (n, m)
    if end not in acc:
        raise ValueError("window admits no monotone warp path")

    # Traceback through the sparse accumulated map.
    path: List[Cell] = [end]
    i, j = end
    while (i, j) != (1, 1):
        candidates = [
            (acc[(pi, pj)], (pi, pj))
            for (pi, pj) in ((i - 1, j - 1), (i - 1, j), (i, j - 1))
            if (pi, pj) in acc or (pi, pj) == (0, 0)
        ]
        candidates = [(d, c) for d, c in candidates if c != (0, 0)]
        if not candidates:
            raise ValueError("traceback escaped the window")
        _, (i, j) = min(candidates, key=lambda c: c[0])
        path.append((i, j))
    path.reverse()
    return DTWResult(
        distance=float(acc[end]), path=tuple(path), cells=len(cells)
    )


def warp_path_cells(path: Sequence[Cell]) -> bool:
    """Check a warp path against the paper's constraints (Eq. 5).

    Returns ``True`` when the path starts at ``(1, 1)``, is monotone
    with unit steps, and each coordinate advances by at most one per
    step; ``False`` otherwise.
    """
    if not path or path[0] != (1, 1):
        return False
    for (i, j), (i2, j2) in zip(path, path[1:]):
        if not (i <= i2 <= i + 1 and j <= j2 <= j + 1):
            return False
        if (i2, j2) == (i, j):
            return False
    return True


def path_cost_steps(
    x: ArrayLike, y: ArrayLike, path: Sequence[Cell]
) -> List[Tuple[int, int, float, float]]:
    """Decompose a warp path into per-step costs (Eq. 3 along Eq. 5).

    For each 1-indexed ``(i, j)`` cell of ``path`` in order, yields
    ``(i, j, cost, cumulative)`` where ``cost`` is the squared local
    cost :math:`(x_i - y_j)^2` and ``cumulative`` the running total —
    the last entry's cumulative equals the (unnormalised) DTW distance
    for the optimal path.  This is what ``repro explain`` renders to
    show *where* along two RSSI windows their distance was earned.

    Raises:
        ValueError: On an invalid path (see :func:`warp_path_cells`) or
            a cell outside the series' bounds.
    """
    a, b = _validate(x, y)
    if not warp_path_cells(path):
        raise ValueError("not a valid warp path (must satisfy Eq. 5)")
    if path[-1] != (a.size, b.size):
        raise ValueError(
            f"path ends at {path[-1]}, series ends at {(a.size, b.size)}"
        )
    steps: List[Tuple[int, int, float, float]] = []
    cumulative = 0.0
    for i, j in path:
        diff = float(a[i - 1]) - float(b[j - 1])
        cost = diff * diff
        cumulative += cost
        steps.append((i, j, cost, cumulative))
    return steps
