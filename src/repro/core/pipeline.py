"""The online Voiceprint pipeline — the piece an OBU would actually run.

:class:`VoiceprintDetector` is deliberately low-level: it holds buffers
and answers "detect now at this density".  A deployed system also has
to *schedule* detections, estimate the density itself (Eq. 9), and
apply the paper's multi-period confirmation before acting on a flag.
:class:`OnlineVoiceprint` wires those pieces behind two calls:

    pipeline = OnlineVoiceprint(max_range_m=650.0)
    for beacon in radio:
        report = pipeline.on_beacon(beacon.identity, beacon.t, beacon.rssi)
        if report is not None:                 # a detection period elapsed
            act_on(pipeline.confirmed_sybils)  # debounced verdicts

Detections fire automatically once per detection period (driven by the
beacon timestamps — an OBU has no other clock worth trusting); density
estimation periods roll independently, and confirmed verdicts require a
majority of recent periods, which prunes red-light-style transients
(paper Section VI-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional

from ..obs.health import HealthMonitor, default_monitor
from ..obs.logging import get_logger
from ..obs.metrics import MetricsRegistry, default_registry
from ..obs.trace import Tracer, default_tracer
from .confirmation import MultiPeriodConfirmer
from .density import DensityEstimator
from .detector import DetectionReport, DetectorConfig, VoiceprintDetector
from .thresholds import LinearThreshold, ThresholdPolicy

__all__ = ["OnlineVoiceprintConfig", "OnlineVoiceprint"]

_log = get_logger("core.pipeline")


@dataclass(frozen=True)
class OnlineVoiceprintConfig:
    """Scheduling parameters of the online pipeline (Table V defaults).

    Attributes:
        detection_period_s: Seconds between detections (20 s).
        density_period_s: Density-estimation period (10 s).
        warmup_s: No detection before this much observation has
            accumulated (defaults to the detector's observation time).
        confirmation_window: Detection periods in the confirmation vote.
        confirmation_min_flags: Flags needed within the window
            (0 → strict majority).
    """

    detection_period_s: float = 20.0
    density_period_s: float = 10.0
    warmup_s: Optional[float] = None
    confirmation_window: int = 3
    confirmation_min_flags: int = 0

    def __post_init__(self) -> None:
        if self.detection_period_s <= 0:
            raise ValueError(
                f"detection period must be positive, got {self.detection_period_s}"
            )
        if self.density_period_s <= 0:
            raise ValueError(
                f"density period must be positive, got {self.density_period_s}"
            )
        if self.warmup_s is not None and self.warmup_s < 0:
            raise ValueError(f"warmup must be non-negative, got {self.warmup_s}")


class OnlineVoiceprint:
    """Streaming Sybil detection for one vehicle.

    Args:
        max_range_m: Maximum transmission range for Eq. 9's density
            denominator.
        threshold: Confirmation threshold policy (trained line).
        detector_config: Comparison-phase tunables.
        config: Scheduling and confirmation parameters.
        registry: Metrics registry (default: the process-global one,
            a no-op until observability is configured).
        tracer: Span tracer, forwarded to the detector.
        health: Streaming health monitor fed every beacon (staleness
            watchdog) and every detection report (latency / flag-rate /
            density windows).  Defaults to the process-global monitor
            installed via :func:`repro.obs.set_default_monitor` — which
            is None unless telemetry is configured, keeping the
            unmonitored fast path at a single None check.
    """

    def __init__(
        self,
        max_range_m: float,
        threshold: Optional[ThresholdPolicy] = None,
        detector_config: Optional[DetectorConfig] = None,
        config: Optional[OnlineVoiceprintConfig] = None,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        health: Optional[HealthMonitor] = None,
    ) -> None:
        self.config = config or OnlineVoiceprintConfig()
        metrics = registry if registry is not None else default_registry()
        self._c_periods = metrics.counter("pipeline.detection_periods")
        self._g_density = metrics.gauge("pipeline.density_vhls_per_km")
        self._g_confirmed = metrics.gauge("pipeline.confirmed_sybils")
        self._g_hit_rate = metrics.gauge("pipeline.pairwise_cache_hit_rate")
        self._tracer = tracer if tracer is not None else default_tracer()
        self._health = health if health is not None else default_monitor()
        # The detector feeds the monitor itself (beat per beacon,
        # on_report per detection), so the pipeline only passes it down.
        self.detector = VoiceprintDetector(
            threshold=threshold or LinearThreshold(),
            config=detector_config,
            registry=metrics,
            tracer=self._tracer,
            health=self._health,
        )
        self.estimator = DensityEstimator(max_range_m=max_range_m)
        self.confirmer = MultiPeriodConfirmer(
            window=self.config.confirmation_window,
            min_flags=self.config.confirmation_min_flags,
        )
        self._first_beacon_t: Optional[float] = None
        self._next_detection_t: Optional[float] = None
        self._next_density_t: Optional[float] = None
        self._density_per_km: float = 0.0
        self._reports: List[DetectionReport] = []
        self._confirmed: FrozenSet[str] = frozenset()

    # ------------------------------------------------------------------
    @property
    def confirmed_sybils(self) -> FrozenSet[str]:
        """Identities confirmed over the multi-period vote."""
        return self._confirmed

    @property
    def last_report(self) -> Optional[DetectionReport]:
        """The most recent detection period's report."""
        return self._reports[-1] if self._reports else None

    @property
    def reports(self) -> List[DetectionReport]:
        """All detection reports so far (oldest first)."""
        return list(self._reports)

    @property
    def current_density_vhls_per_km(self) -> float:
        """The density estimate the next detection will use."""
        return self._density_per_km

    @property
    def pairwise_stats(self):
        """Cumulative pairwise-engine work accounting.

        ``repro.core.pairwise.PairwiseStats`` (pairs, exact kernel runs,
        pruned pairs, cache hits, DP cells relaxed/saved) — or ``None``
        when the detector runs the legacy pairwise loop.
        """
        return self.detector.pairwise_stats

    # ------------------------------------------------------------------
    def on_beacon(
        self, identity: str, timestamp: float, rssi_dbm: float
    ) -> Optional[DetectionReport]:
        """Feed one received beacon; returns a report when a period fires.

        Beacons must arrive in non-decreasing timestamp order (a single
        radio's log always does).
        """
        self.detector.observe(identity, timestamp, rssi_dbm)
        self.estimator.hear(identity)

        if self._first_beacon_t is None:
            self._first_beacon_t = timestamp
            warmup = (
                self.config.warmup_s
                if self.config.warmup_s is not None
                else self.detector.config.observation_time
            )
            self._next_detection_t = timestamp + max(
                warmup, self.config.detection_period_s
            )
            self._next_density_t = timestamp + self.config.density_period_s
            # Seed the density with something sane before the first
            # period completes.
            self._density_per_km = 0.0

        assert self._next_density_t is not None
        while timestamp >= self._next_density_t:
            self._density_per_km = self.estimator.estimate() * 1000.0
            self._g_density.set(self._density_per_km)
            self.estimator.reset_period()
            self._next_density_t += self.config.density_period_s

        assert self._next_detection_t is not None
        if timestamp >= self._next_detection_t:
            report = self._detect(self._next_detection_t)
            self._next_detection_t += self.config.detection_period_s
            return report
        return None

    def _detect(self, now: float) -> DetectionReport:
        density = self._density_per_km
        if density == 0.0:
            # First period before any density estimate completed: use
            # what has been heard so far (the paper's bootstrap rule).
            density = self.estimator.estimate() * 1000.0
            self.estimator.reset_period()
        report = self.detector.detect(density=density, now=now)
        self._reports.append(report)
        with self._tracer.span("confirmation") as span:
            self._confirmed = self.confirmer.update(report)
            span.set_attribute("confirmed", len(self._confirmed))
        for identity in report.sybil_ids:
            self.estimator.mark_illegitimate(identity)
        self._c_periods.inc()
        self._g_confirmed.set(len(self._confirmed))
        stats = self.detector.pairwise_stats
        if stats is not None:
            self._g_hit_rate.set(stats.hit_rate)
        if self._confirmed:
            _log.info(
                "sybil identities confirmed",
                extra={
                    "t": report.timestamp,
                    "confirmed": ",".join(sorted(self._confirmed)),
                },
            )
        return report

    def force_detection(self, now: float) -> DetectionReport:
        """Run a detection immediately (e.g. on an application trigger)."""
        return self._detect(now)

    def reset(self) -> None:
        """Forget everything (new trip).

        Everything includes the density estimator's illegitimate-identity
        set and its first-estimate bootstrap flag: verdicts from the
        previous trip must not silently bias the new trip's density
        estimates.
        """
        self.detector.reset()
        self.confirmer.reset()
        self.estimator.reset()
        self._first_beacon_t = None
        self._next_detection_t = None
        self._next_density_t = None
        self._density_per_km = 0.0
        self._reports.clear()
        self._confirmed = frozenset()
