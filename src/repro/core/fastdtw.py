"""FastDTW — linear-time approximate DTW (Salvador & Chan 2007).

The exact DTW of :mod:`repro.core.dtw` fills an ``N × M`` cost matrix,
which is quadratic; the paper adopts FastDTW to keep per-pair comparison
affordable at 10 Hz × 20 s series (Section IV-B), citing ~1 % accuracy
loss at ``O(N)`` cost.

FastDTW works recursively:

1. **Coarsen** both series to half resolution (average adjacent pairs).
2. **Recurse** to find a warp path at the lower resolution (base case:
   exact DTW once a series is shorter than ``radius + 2``).
3. **Project** that path back to full resolution and **expand** it by
   ``radius`` cells in every direction, producing a search window.
4. Run exact DTW restricted to the window.

A larger ``radius`` trades speed for accuracy; at ``radius >= max(N, M)``
the result is exact.

Implementation note: the refinement window of a monotone path is, per
row, one contiguous column interval, so the window is carried as two
``lo/hi`` integer lists and the DP runs on plain Python lists — an order
of magnitude faster in CPython than a sparse cell-set DP, which is what
keeps the full highway sweeps (tens of thousands of pairwise
comparisons) tractable.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from .dtw import Cell, DTWResult, dtw

__all__ = [
    "fastdtw",
    "fastdtw_distance",
    "dtw_banded_fast",
    "sakoe_chiba_band",
    "coarsen",
    "expand_window",
]

ArrayLike = Union[Sequence[float], np.ndarray]

#: Default band radius, as in Salvador & Chan's reference
#: implementation.  Radius 1 already tracks the optimal path on smooth,
#: similarly-paced series such as z-scored RSSI streams; the ablation
#: bench (E12) quantifies the residual error per radius.
DEFAULT_RADIUS = 1

_INF = math.inf


def coarsen(values: np.ndarray) -> np.ndarray:
    """Halve a series' resolution by averaging adjacent pairs.

    An odd trailing element is kept as-is, so ``len(out) == ceil(n / 2)``.
    """
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"expected a 1-D series, got shape {arr.shape}")
    if arr.size <= 1:
        return arr.copy()
    n_pairs = arr.size // 2
    paired = (arr[: 2 * n_pairs : 2] + arr[1 : 2 * n_pairs : 2]) / 2.0
    if arr.size % 2:
        return np.concatenate([paired, arr[-1:]])
    return paired


def expand_window(
    path: Sequence[Cell],
    n: int,
    m: int,
    radius: int,
) -> List[Cell]:
    """Project a half-resolution warp path up and widen it by ``radius``.

    Kept for introspection and tests; the solver itself uses the
    interval form (:func:`_project_intervals`), which enumerates the
    same cell set row by row.

    Args:
        path: 1-indexed warp path found on the coarsened series.
        n: Full-resolution length of the first series.
        m: Full-resolution length of the second series.
        radius: Expansion radius in cells (applied at the coarse level,
            as in the original algorithm).

    Returns:
        Sorted, 1-indexed admissible cells, always containing ``(1, 1)``
        and ``(n, m)`` and connected enough for a monotone path.
    """
    lo, hi = _project_intervals(path, n, m, radius)
    cells: List[Cell] = []
    for i in range(1, n + 1):
        for j in range(lo[i], hi[i] + 1):
            cells.append((i, j))
    return cells


def _project_intervals(
    path: Sequence[Cell],
    n: int,
    m: int,
    radius: int,
) -> Tuple[List[int], List[int]]:
    """Per-row column intervals of the radius-expanded projected path.

    Returns 1-indexed ``(lo, hi)`` lists of length ``n + 1`` (index 0
    unused).  Every row is guaranteed non-empty, the first row contains
    column 1 and the last row contains column ``m``.
    """
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    n_coarse = (n + 1) // 2
    # Min/max coarse column per coarse row, after radius expansion.
    cmin = [m + 1] * (n_coarse + 2)
    cmax = [0] * (n_coarse + 2)
    for (ci, cj) in path:
        lo_row = max(1, ci - radius)
        hi_row = min(n_coarse, ci + radius)
        lo_col = cj - radius
        hi_col = cj + radius
        for cr in range(lo_row, hi_row + 1):
            if lo_col < cmin[cr]:
                cmin[cr] = lo_col
            if hi_col > cmax[cr]:
                cmax[cr] = hi_col

    lo = [0] * (n + 1)
    hi = [0] * (n + 1)
    for i in range(1, n + 1):
        cr = (i + 1) // 2
        lo[i] = max(1, 2 * cmin[cr] - 1)
        hi[i] = min(m, 2 * cmax[cr])
        if hi[i] < lo[i]:
            # Degenerate rows can only appear through clipping; fall
            # back to the nearest admissible column.
            lo[i] = hi[i] = min(m, max(1, lo[i]))
    lo[1] = 1
    hi[n] = m
    # Monotonicity repair: a warp path can never step left, so each
    # row's interval must reach at least as far as the previous row's
    # start; clipping at the corners preserves this by construction,
    # but radius-0 paths around odd-length coarsening can violate it.
    for i in range(2, n + 1):
        if lo[i] > hi[i - 1] + 1:
            lo[i] = hi[i - 1] + 1
        if hi[i] < hi[i - 1]:
            hi[i] = hi[i - 1]
    return lo, hi


def _dp_intervals(
    x_list: List[float],
    y_list: List[float],
    lo: List[int],
    hi: List[int],
) -> Tuple[float, List[Cell], int]:
    """Windowed DTW over per-row column intervals (paper Eqs. 3–4).

    Runs on plain Python lists for speed; returns the accumulated
    distance, the optimal 1-indexed warp path, and the number of window
    cells evaluated (the DP's work, reported via ``DTWResult.cells``).
    """
    n = len(x_list)
    m = len(y_list)
    rows: List[List[float]] = [[]] * (n + 1)
    for i in range(1, n + 1):
        li, hi_i = lo[i], hi[i]
        xi = x_list[i - 1]
        width = hi_i - li + 1
        row = [_INF] * width
        if i == 1:
            prev_row: List[float] = []
            p_lo, p_hi = 1, 0
        else:
            prev_row = rows[i - 1]
            p_lo, p_hi = lo[i - 1], hi[i - 1]
        running = _INF
        for idx in range(width):
            j = li + idx
            best = _INF
            if i == 1 and j == 1:
                best = 0.0
            if p_lo <= j <= p_hi:
                candidate = prev_row[j - p_lo]
                if candidate < best:
                    best = candidate
            if p_lo <= j - 1 <= p_hi:
                candidate = prev_row[j - 1 - p_lo]
                if candidate < best:
                    best = candidate
            if running < best:
                best = running
            if best < _INF:
                diff = xi - y_list[j - 1]
                running = diff * diff + best
                row[idx] = running
            else:
                running = _INF
        rows[i] = row

    end_value = rows[n][m - lo[n]] if lo[n] <= m <= hi[n] else _INF
    if math.isinf(end_value):
        raise ValueError("window admits no monotone warp path")

    path: List[Cell] = [(n, m)]
    i, j = n, m
    while (i, j) != (1, 1):
        best = _INF
        best_cell: Optional[Cell] = None
        for (pi, pj) in ((i - 1, j - 1), (i - 1, j), (i, j - 1)):
            if pi < 1 or pj < 1:
                continue
            if lo[pi] <= pj <= hi[pi]:
                value = rows[pi][pj - lo[pi]]
                if value < best:
                    best = value
                    best_cell = (pi, pj)
        if best_cell is None:
            raise ValueError("traceback escaped the window")
        i, j = best_cell
        path.append(best_cell)
    path.reverse()
    n_cells = sum(hi[i] - lo[i] + 1 for i in range(1, n + 1))
    return end_value, path, n_cells


def _fastdtw_recursive(
    a: np.ndarray,
    b: np.ndarray,
    radius: int,
) -> Tuple[float, List[Cell], int]:
    min_size = radius + 2
    if a.size <= min_size or b.size <= min_size:
        result = dtw(a, b)
        return result.distance, list(result.path), result.cells
    coarse_distance, coarse_path, coarse_cells = _fastdtw_recursive(
        coarsen(a), coarsen(b), radius
    )
    del coarse_distance
    lo, hi = _project_intervals(coarse_path, a.size, b.size, radius)
    distance, path, n_cells = _dp_intervals(a.tolist(), b.tolist(), lo, hi)
    return distance, path, n_cells + coarse_cells


def fastdtw(
    x: ArrayLike,
    y: ArrayLike,
    radius: int = DEFAULT_RADIUS,
) -> DTWResult:
    """Approximate DTW via multi-resolution refinement.

    Args:
        x: First series.
        y: Second series.
        radius: Window half-width; larger is more accurate and slower.

    Returns:
        :class:`repro.core.dtw.DTWResult` whose distance is an upper
        bound on — and typically close to — the exact DTW distance.
    """
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    a = np.asarray(x, dtype=float)
    b = np.asarray(y, dtype=float)
    if a.ndim != 1 or b.ndim != 1:
        raise ValueError(f"expected 1-D series, got shapes {a.shape}, {b.shape}")
    if a.size == 0 or b.size == 0:
        raise ValueError("FastDTW is undefined for empty series")
    distance, path, cells = _fastdtw_recursive(a, b, radius)
    return DTWResult(distance=float(distance), path=tuple(path), cells=cells)


def fastdtw_distance(
    x: ArrayLike,
    y: ArrayLike,
    radius: int = DEFAULT_RADIUS,
) -> float:
    """FastDTW distance only — the detector's per-pair similarity measure."""
    return fastdtw(x, y, radius=radius).distance


def sakoe_chiba_band(n: int, m: int, radius: int) -> Tuple[List[int], List[int]]:
    """Per-row column intervals of the Sakoe–Chiba band.

    This is the canonical band geometry shared by every banded-DTW
    implementation in the package (:func:`dtw_banded_fast`, the
    vectorised kernel in :mod:`repro.core.pairwise`, and the
    envelope-based bounds built on top of it) — they must agree cell
    for cell, so the geometry lives in exactly one place.

    Args:
        n: Length of the first series (rows).
        m: Length of the second series (columns).
        radius: Band half-width in samples (``>= 0``).

    Returns:
        1-indexed ``(lo, hi)`` lists of length ``n + 1`` (index 0
        unused).  Every row interval is non-empty, row 1 contains
        column 1, row ``n`` contains column ``m``, the upper interval
        ends are non-decreasing in the row index (the lower ends are
        too in every practical geometry — consumers that require it
        verify), and consecutive intervals overlap enough for a
        monotone warp path to exist.
    """
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    if n < 1 or m < 1:
        raise ValueError(f"series lengths must be positive, got {n}, {m}")
    scale = m / n
    lo = [0] * (n + 1)
    hi = [0] * (n + 1)
    for i in range(1, n + 1):
        centre = i * scale
        lo[i] = max(1, int(math.floor(centre - radius - scale + 1)))
        hi[i] = min(m, int(math.ceil(centre + radius)))
        if hi[i] < lo[i]:
            lo[i] = hi[i] = min(m, max(1, int(round(centre))))
    lo[1] = 1
    hi[n] = m
    for i in range(2, n + 1):
        if lo[i] > hi[i - 1] + 1:
            lo[i] = hi[i - 1] + 1
        if hi[i] < hi[i - 1]:
            hi[i] = hi[i - 1]
    return lo, hi


def dtw_banded_fast(
    x: ArrayLike,
    y: ArrayLike,
    radius: int,
) -> DTWResult:
    """Sakoe–Chiba banded DTW on the fast interval DP.

    Equivalent in result to :func:`repro.core.dtw.dtw_banded` but an
    order of magnitude faster.  A band limits how far the warp path may
    stray from the (length-scaled) diagonal — i.e. how much *temporal*
    misalignment DTW may forgive.  For RSSI voiceprints this matters:
    unconstrained warping aligns any two smooth drive-by sweeps almost
    perfectly regardless of when they happened, destroying the contrast
    between Sybil streams (truly synchronous) and coincidentally
    similar-shaped neighbours.

    Args:
        x: First series (length ``N``).
        y: Second series (length ``M``).
        radius: Band half-width in samples (``>= 0``).

    Returns:
        :class:`repro.core.dtw.DTWResult` for the best in-band path.
    """
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    a = np.asarray(x, dtype=float)
    b = np.asarray(y, dtype=float)
    if a.ndim != 1 or b.ndim != 1:
        raise ValueError(f"expected 1-D series, got shapes {a.shape}, {b.shape}")
    if a.size == 0 or b.size == 0:
        raise ValueError("DTW is undefined for empty series")
    lo, hi = sakoe_chiba_band(a.size, b.size, radius)
    distance, path, cells = _dp_intervals(a.tolist(), b.tolist(), lo, hi)
    return DTWResult(distance=float(distance), path=tuple(path), cells=cells)
