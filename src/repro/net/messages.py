"""DSRC safety messages.

On the Control Channel every identity broadcasts a Basic Safety Message
10 times per second carrying identity, location, velocity, acceleration
and direction (paper Section I / Assumption 2).  For Voiceprint only the
claimed identity matters — the detector deliberately ignores the claimed
kinematics because the attacker forges them freely — but the baselines
(CPVSAD and friends) *do* consume the claimed position, so the beacon
carries the full payload.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

__all__ = ["Beacon", "BEACON_SIZE_BYTES", "BEACON_RATE_HZ", "BEACON_INTERVAL_S"]

#: Table III / Table V: 500-byte WSMP broadcasts.
BEACON_SIZE_BYTES = 500
#: DSRC CCH safety-message cadence (Assumption 2).
BEACON_RATE_HZ = 10.0
#: Convenience: one beacon interval in seconds.
BEACON_INTERVAL_S = 1.0 / BEACON_RATE_HZ


@dataclass(frozen=True)
class Beacon:
    """One single-hop CCH broadcast.

    Attributes:
        identity: Claimed sender identity (forged for Sybil nodes).
        timestamp: Transmission time, seconds.
        claimed_position: Claimed (x, y), metres.  For Sybil identities
            this is the attacker's fabricated location, not the radio's.
        speed: Claimed speed, m/s.
        heading: Claimed heading, radians.
        sequence: Per-identity monotonically increasing counter.
        size_bytes: Wire size used for airtime accounting.
    """

    identity: str
    timestamp: float
    claimed_position: Tuple[float, float]
    speed: float = 0.0
    heading: float = 0.0
    sequence: int = 0
    size_bytes: int = BEACON_SIZE_BYTES

    def __post_init__(self) -> None:
        if not math.isfinite(self.timestamp):
            raise ValueError(f"timestamp must be finite, got {self.timestamp!r}")
        x, y = self.claimed_position
        if not (math.isfinite(x) and math.isfinite(y)):
            raise ValueError(f"claimed position must be finite, got {(x, y)!r}")
        if self.size_bytes <= 0:
            raise ValueError(f"size must be positive, got {self.size_bytes}")
        if self.sequence < 0:
            raise ValueError(f"sequence must be non-negative, got {self.sequence}")
