"""Beacon-level CSMA/CA MAC (802.11p CCH broadcasts).

Broadcast safety messages on the CCH are send-and-forget: no RTS/CTS,
no ACK, no retransmission.  What remains of CSMA/CA — and what shapes
the packet-loss pattern Voiceprint lives with — is:

* **carrier-sense deferral**: a radio defers while it senses another
  transmission, so transmitters within carrier-sense range serialise;
* **random backoff**: a fixed contention window spreads deferred
  starts;
* **hidden terminals**: transmitters out of carrier-sense range of each
  other may overlap in time and collide at receivers in between;
* **saturation drops**: at high density the CCH runs out of airtime
  within a beacon interval and late beacons are dropped unsent — the
  severe-collision effect the paper blames for Voiceprint's detection
  rate declining with density.

The scheduler works one beacon interval (100 ms) at a time, which is
exact for the paper's workload because every identity transmits exactly
once per interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .messages import Beacon
from .radio import RadioProfile

__all__ = [
    "TransmissionRequest",
    "ScheduledTransmission",
    "CsmaCaMac",
    "CellularCsmaMac",
]

Point = Tuple[float, float]


@dataclass(frozen=True)
class TransmissionRequest:
    """One beacon a physical radio wants to send this interval.

    Attributes:
        beacon: The message (its ``identity`` may be forged).
        tx_node: The *physical* radio's identifier — the malicious
            node's requests share one ``tx_node`` across all its Sybil
            identities, which is what serialises them on one antenna.
        tx_xy: True transmitter position, metres.
        eirp_dbm: Radiated power for this transmission (Sybil
            identities may use individually spoofed powers).
        desired_offset_s: Offset within the interval at which the
            radio first tries to send.
    """

    beacon: Beacon
    tx_node: str
    tx_xy: Point
    eirp_dbm: float
    desired_offset_s: float


@dataclass(frozen=True)
class ScheduledTransmission:
    """A transmission with its resolved on-air window.

    Attributes:
        request: The originating request.
        start_s: Absolute on-air start time.
        end_s: Absolute on-air end time.
    """

    request: TransmissionRequest
    start_s: float
    end_s: float

    @property
    def tx_node(self) -> str:
        return self.request.tx_node

    def overlaps(self, other: "ScheduledTransmission") -> bool:
        """Whether the two on-air windows intersect."""
        return self.start_s < other.end_s and other.start_s < self.end_s


class CsmaCaMac:
    """Carrier-sense scheduler for one shared broadcast channel.

    Args:
        profile: Timing constants (slot, SIFS, contention window,
            airtime computation).
        carrier_sense_range_m: Distance within which two transmitters
            hear (and defer to) each other.  Derive it from the channel
            model's mean loss at the carrier-sense threshold.
        rng: Random generator for backoff draws.
        max_defer_attempts: Safety bound on the defer loop.
    """

    def __init__(
        self,
        profile: RadioProfile,
        carrier_sense_range_m: float,
        rng: np.random.Generator,
        max_defer_attempts: int = 200,
    ) -> None:
        if carrier_sense_range_m <= 0:
            raise ValueError(
                f"carrier-sense range must be positive, got {carrier_sense_range_m}"
            )
        if max_defer_attempts < 1:
            raise ValueError(
                f"max_defer_attempts must be >= 1, got {max_defer_attempts}"
            )
        self.profile = profile
        self.carrier_sense_range_m = carrier_sense_range_m
        self._rng = rng
        self.max_defer_attempts = max_defer_attempts

    def _backoff_s(self) -> float:
        slots = int(self._rng.integers(0, self.profile.cw_slots + 1))
        return self.profile.sifs_s + slots * self.profile.slot_time_s

    def _in_cs_range(self, a: Point, b: Point) -> bool:
        return math.hypot(a[0] - b[0], a[1] - b[1]) <= self.carrier_sense_range_m

    def schedule_interval(
        self,
        requests: Sequence[TransmissionRequest],
        interval_start_s: float,
        interval_end_s: float,
    ) -> Tuple[List[ScheduledTransmission], List[TransmissionRequest]]:
        """Resolve one beacon interval's transmissions.

        Requests are served in desired-offset order.  A request defers
        past any already-scheduled, time-overlapping transmission whose
        transmitter it can carrier-sense — including, always, its own
        radio's earlier transmissions (one antenna, Assumption 2).
        Requests that cannot fit before the interval ends are dropped,
        modelling CCH saturation.

        Returns:
            ``(scheduled, dropped)`` — on-air transmissions with their
            final windows, and requests lost to saturation.
        """
        if interval_end_s <= interval_start_s:
            raise ValueError(
                f"empty interval [{interval_start_s}, {interval_end_s}]"
            )
        airtime = {
            id(req): self.profile.airtime_s(req.beacon.size_bytes)
            for req in requests
        }
        ordered = sorted(requests, key=lambda r: (r.desired_offset_s, r.tx_node))
        scheduled: List[ScheduledTransmission] = []
        dropped: List[TransmissionRequest] = []
        for request in ordered:
            duration = airtime[id(request)]
            start = interval_start_s + max(request.desired_offset_s, 0.0)
            placed = False
            for _ in range(self.max_defer_attempts):
                end = start + duration
                if end > interval_end_s:
                    break
                blocker_end: Optional[float] = None
                for other in scheduled:
                    if other.end_s <= start or other.start_s >= end:
                        continue
                    same_radio = other.tx_node == request.tx_node
                    if same_radio or self._in_cs_range(
                        other.request.tx_xy, request.tx_xy
                    ):
                        if blocker_end is None or other.end_s > blocker_end:
                            blocker_end = other.end_s
                if blocker_end is None:
                    scheduled.append(
                        ScheduledTransmission(
                            request=request, start_s=start, end_s=end
                        )
                    )
                    placed = True
                    break
                start = blocker_end + self._backoff_s()
            if not placed:
                dropped.append(request)
        scheduled.sort(key=lambda s: s.start_s)
        return scheduled, dropped


class CellularCsmaMac:
    """Fast approximate CSMA/CA using spatial busy-cells.

    The exact :class:`CsmaCaMac` re-scans every scheduled transmission
    per defer attempt, which is quadratic-and-then-some; at the paper's
    densest setting (200 vehicles plus Sybil identities per beacon
    interval) it dominates the simulation.  This variant discretises the
    road into cells of one carrier-sense range and keeps a single
    *busy-until* clock per cell:

    * a transmission occupies every cell within carrier-sense range of
      its transmitter;
    * a request starts at ``max(desired, busy-until of its cells)`` plus
      a random backoff when it had to defer;
    * requests that cannot finish inside the interval are dropped
      (CCH saturation), exactly as in the exact MAC.

    The cell granularity slightly over-serialises borderline-range
    transmitter pairs — a conservative approximation that preserves the
    load/loss trend Fig. 11 depends on while making scheduling O(1) per
    request.
    """

    #: Cells per carrier-sense range; finer cells reduce the scheme's
    #: over-serialisation (a transmission blocks every cell overlapping
    #: its CS disc, so the blocking width overshoots by one cell size).
    CELLS_PER_RANGE = 4

    def __init__(
        self,
        profile: RadioProfile,
        carrier_sense_range_m: float,
        rng: np.random.Generator,
    ) -> None:
        if carrier_sense_range_m <= 0:
            raise ValueError(
                f"carrier-sense range must be positive, got {carrier_sense_range_m}"
            )
        self.profile = profile
        self.carrier_sense_range_m = carrier_sense_range_m
        self._cell_size_m = carrier_sense_range_m / self.CELLS_PER_RANGE
        self._rng = rng

    def _backoff_s(self) -> float:
        slots = int(self._rng.integers(0, self.profile.cw_slots + 1))
        return self.profile.sifs_s + slots * self.profile.slot_time_s

    def _cells_for(self, x: float) -> range:
        # Each transmitter marks (and checks) the cells overlapping a
        # disc of HALF the carrier-sense range: two such discs intersect
        # exactly when the transmitters are within one CS range of each
        # other, which is the true CSMA deferral condition.  Marking the
        # full CS disc would serialise radios up to 2x the CS range
        # apart and roughly halve the channel's spatial reuse.
        size = self._cell_size_m
        half = self.carrier_sense_range_m / 2.0
        lo = int(math.floor((x - half) / size))
        hi = int(math.floor((x + half) / size))
        return range(lo, hi + 1)

    def schedule_interval(
        self,
        requests: Sequence[TransmissionRequest],
        interval_start_s: float,
        interval_end_s: float,
    ) -> Tuple[List[ScheduledTransmission], List[TransmissionRequest]]:
        """Resolve one beacon interval (same contract as the exact MAC)."""
        if interval_end_s <= interval_start_s:
            raise ValueError(
                f"empty interval [{interval_start_s}, {interval_end_s}]"
            )
        busy_until: dict = {}
        radio_busy_until: dict = {}
        ordered = sorted(requests, key=lambda r: (r.desired_offset_s, r.tx_node))
        scheduled: List[ScheduledTransmission] = []
        dropped: List[TransmissionRequest] = []
        for request in ordered:
            duration = self.profile.airtime_s(request.beacon.size_bytes)
            desired = interval_start_s + max(request.desired_offset_s, 0.0)
            cells = self._cells_for(request.tx_xy[0])
            earliest = max(
                (busy_until.get(c, interval_start_s) for c in cells),
                default=interval_start_s,
            )
            earliest = max(
                earliest, radio_busy_until.get(request.tx_node, interval_start_s)
            )
            if earliest > desired:
                start = earliest + self._backoff_s()
            else:
                start = desired
            end = start + duration
            if end > interval_end_s:
                dropped.append(request)
                continue
            for c in cells:
                busy_until[c] = end
            radio_busy_until[request.tx_node] = end
            scheduled.append(
                ScheduledTransmission(request=request, start_s=start, end_s=end)
            )
        scheduled.sort(key=lambda s: s.start_s)
        return scheduled, dropped
