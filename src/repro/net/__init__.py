"""DSRC network substrate: beacons, radios, CSMA/CA MAC, channel."""

from .channel import Reception, ReceiverState, VANETChannel
from .mac import CsmaCaMac, ScheduledTransmission, TransmissionRequest
from .messages import BEACON_INTERVAL_S, BEACON_RATE_HZ, BEACON_SIZE_BYTES, Beacon
from .radio import IWCU_OBU42, RadioProfile

__all__ = [
    "Reception",
    "ReceiverState",
    "VANETChannel",
    "CsmaCaMac",
    "ScheduledTransmission",
    "TransmissionRequest",
    "BEACON_INTERVAL_S",
    "BEACON_RATE_HZ",
    "BEACON_SIZE_BYTES",
    "Beacon",
    "IWCU_OBU42",
    "RadioProfile",
]
