"""The wireless channel: RSSI synthesis and reception decisions.

:class:`VANETChannel` composes three layers, mirroring the structure of
the paper's measured channel (Section III):

1. **Mean path loss** — the dual-slope empirical model (Eq. 1).  The
   model object is swappable at runtime, which is how the Fig. 11b
   experiment changes propagation parameters every 30 s under the
   detectors' feet.
2. **Correlated shadowing** — a deterministic
   :class:`~repro.radio.noise.SpatialNoiseField` scaled by the model's
   regime deviation.  Because it depends on *positions*, not claimed
   identities, all of an attacker's Sybil streams share it: this is the
   physical layer of Observation 3.
3. **Fast fading** — a second noise field with *short* coherence
   (half a metre, a fraction of a second).  Coherence is the crux of
   Observation 3: an attacker's Sybil beacons leave the same antenna
   milliseconds apart and ride almost the same fade, while a normal
   vehicle even 3 m away (Scenario 3's node 2) sees an independent
   fade.  Plain i.i.d. per-packet noise would erase exactly this
   distinction — it would give Sybil streams independent noise, making
   them no more alike than strangers.
4. **Measurement noise + quantisation** — a small i.i.d. residual plus
   rounding to whole dBm, as real radios report (Fig. 5's histograms
   are integer-binned).

Reception requires the RSSI to clear the receiver's sensitivity *and*
the SINR against time-overlapping transmissions (hidden terminals) plus
the noise floor to clear a capture threshold; a radio that is itself
transmitting cannot receive (half-duplex).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..radio.dual_slope import DualSlopeModel
from ..radio.noise import SpatialNoiseField
from .mac import ScheduledTransmission
from .radio import RadioProfile

__all__ = ["ReceiverState", "Reception", "VANETChannel"]

Point = Tuple[float, float]


@dataclass(frozen=True)
class ReceiverState:
    """A listening radio during one beacon interval.

    Attributes:
        node: Physical node identifier.
        xy: Receiver position, metres.
        profile: The receiver's radio hardware.
    """

    node: str
    xy: Point
    profile: RadioProfile


@dataclass(frozen=True)
class Reception:
    """One successfully decoded beacon at one receiver.

    Attributes:
        receiver: Physical node that decoded the frame.
        identity: Claimed sender identity from the beacon.
        rssi_dbm: Measured RSSI.
        timestamp: On-air start time of the frame.
        beacon: The full decoded message.
    """

    receiver: str
    identity: str
    rssi_dbm: float
    timestamp: float
    beacon: object


class VANETChannel:
    """Stochastic DSRC channel with swappable propagation parameters.

    Args:
        model: Dual-slope propagation model (the "true" channel).
        shadowing: Correlated shadowing field; ``None`` disables
            shadowing entirely (useful in unit tests).
        fading: Short-coherence fast-fading field; ``None`` disables it.
            Built automatically (seeded off ``rng``) when left at the
            sentinel default.
        fast_fading_sigma_db: Fading deviation in dB.
        measurement_noise_db: i.i.d. per-sample receiver noise.
        quantisation_db: RSSI reporting step (real radios report whole
            dBm); 0 disables rounding.
        noise_floor_dbm: Thermal noise + receiver noise figure for a
            10 MHz channel (≈ −104 dBm + 5 dB NF).
        capture_threshold_db: SINR needed to decode under interference.
        rng: Random generator for measurement noise and field seeding.
            Pass one derived from the scenario seed (the simulators
            do); when omitted, a generator seeded with the fixed
            :data:`DEFAULT_RNG_SEED` is used, so two runs built the
            same way measure the same noise — an unseeded fallback here
            would silently break run-to-run reproducibility.
    """

    #: Seed of the generator built when ``rng`` is omitted.  Every
    #: in-tree caller passes a scenario-seeded generator (the other
    #: ``np.random.default_rng`` call sites in the package all derive
    #: from an explicit seed); this constant only guards ad-hoc
    #: construction in tests and notebooks.
    DEFAULT_RNG_SEED = 0x5EED

    #: Sentinel so ``fading=None`` can mean "explicitly disabled".
    _AUTO = object()

    #: Fading decorrelation scales: ~10 wavelengths in space, a couple
    #: of beacon intervals in time — Sybil beacons (same antenna, ms
    #: apart) stay correlated, a 3 m neighbour does not.
    FADING_CORRELATION_DISTANCE_M = 0.5
    FADING_CORRELATION_TIME_S = 1.0

    def __init__(
        self,
        model: DualSlopeModel,
        shadowing: Optional[SpatialNoiseField] = None,
        fading=_AUTO,
        fast_fading_sigma_db: float = 2.0,
        measurement_noise_db: float = 0.15,
        quantisation_db: float = 1.0,
        noise_floor_dbm: float = -99.0,
        capture_threshold_db: float = 6.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if fast_fading_sigma_db < 0:
            raise ValueError(
                f"fast fading sigma must be non-negative, got {fast_fading_sigma_db}"
            )
        if measurement_noise_db < 0:
            raise ValueError(
                f"measurement noise must be non-negative, got {measurement_noise_db}"
            )
        if quantisation_db < 0:
            raise ValueError(
                f"quantisation step must be non-negative, got {quantisation_db}"
            )
        self._model = model
        self.shadowing = shadowing
        self._rng = (
            rng if rng is not None else np.random.default_rng(self.DEFAULT_RNG_SEED)
        )
        if fading is self._AUTO:
            fading = SpatialNoiseField(
                seed=int(self._rng.integers(0, 2**62)),
                correlation_distance_m=self.FADING_CORRELATION_DISTANCE_M,
                correlation_time_s=self.FADING_CORRELATION_TIME_S,
            )
        self.fading: Optional[SpatialNoiseField] = fading
        self.fast_fading_sigma_db = fast_fading_sigma_db
        self.measurement_noise_db = measurement_noise_db
        self.quantisation_db = quantisation_db
        self.noise_floor_dbm = noise_floor_dbm
        self.capture_threshold_db = capture_threshold_db

    # ------------------------------------------------------------------
    # Model management (Fig. 11b's periodic parameter change)
    # ------------------------------------------------------------------
    @property
    def model(self) -> DualSlopeModel:
        """The current propagation model."""
        return self._model

    def set_model(self, model: DualSlopeModel) -> None:
        """Swap the propagation parameters mid-run."""
        self._model = model

    # ------------------------------------------------------------------
    # RSSI synthesis
    # ------------------------------------------------------------------
    def max_range_m(self, eirp_dbm: float, rx_gain_dbi: float, floor_dbm: float) -> float:
        """Distance at which the *mean* RSSI crosses a floor (bisection)."""
        lo = self._model.params.reference_distance_m
        hi = 1e5

        def mean_rssi(d: float) -> float:
            return eirp_dbm + rx_gain_dbi - self._model.path_loss_db(d)

        if mean_rssi(lo) <= floor_dbm:
            return lo
        if mean_rssi(hi) >= floor_dbm:
            return hi
        while hi - lo > 0.01:
            mid = 0.5 * (lo + hi)
            if mean_rssi(mid) > floor_dbm:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)

    def rssi_matrix(
        self,
        tx_xy: np.ndarray,
        rx_xy: np.ndarray,
        eirp_dbm: np.ndarray,
        rx_gain_dbi: np.ndarray,
        t: float,
        tx_times: Optional[np.ndarray] = None,
        include_noise: bool = True,
    ) -> np.ndarray:
        """RSSI of every (transmission, receiver) pair.

        Args:
            tx_xy: ``(k, 2)`` true transmitter positions.
            rx_xy: ``(m, 2)`` receiver positions.
            eirp_dbm: ``(k,)`` radiated powers.
            rx_gain_dbi: ``(m,)`` receiver antenna gains.
            t: Shadowing-field evaluation time (one beacon interval is
                far shorter than the shadowing coherence time, so one
                instant per interval is accurate).
            tx_times: ``(k,)`` per-transmission on-air times for the
                fast-fading field; defaults to ``t`` for all.
            include_noise: Disable to get the repeatable
                mean-plus-shadowing component only (no fading, noise or
                quantisation) — useful for calibration and tests.

        Returns:
            ``(k, m)`` RSSI in dBm.
        """
        tx = np.atleast_2d(np.asarray(tx_xy, dtype=float))
        rx = np.atleast_2d(np.asarray(rx_xy, dtype=float))
        eirp = np.asarray(eirp_dbm, dtype=float)
        gains = np.asarray(rx_gain_dbi, dtype=float)
        diff = tx[:, None, :] - rx[None, :, :]
        distances = np.hypot(diff[..., 0], diff[..., 1])
        rssi = (
            eirp[:, None]
            + gains[None, :]
            - self._model.path_loss_db_array(distances)
        )
        if self.shadowing is not None:
            sigma = self._model.sigma_db_array(distances)
            rssi = rssi + sigma * self.shadowing.unit_shadowing_matrix(tx, rx, t)
        if not include_noise:
            return rssi
        if self.fading is not None and self.fast_fading_sigma_db > 0:
            times = (
                np.full(tx.shape[0], t, dtype=float)
                if tx_times is None
                else np.asarray(tx_times, dtype=float)
            )
            rssi = rssi + self.fast_fading_sigma_db * self.fading.unit_shadowing_pairs(
                tx, rx, times
            )
        if self.measurement_noise_db > 0:
            rssi = rssi + self._rng.normal(
                0.0, self.measurement_noise_db, size=rssi.shape
            )
        if self.quantisation_db > 0:
            rssi = np.round(rssi / self.quantisation_db) * self.quantisation_db
        return rssi

    def link_rssi(
        self,
        tx_xy: Point,
        rx_xy: Point,
        eirp_dbm: float,
        rx_gain_dbi: float,
        t: float,
        include_noise: bool = True,
    ) -> float:
        """Scalar convenience wrapper around :meth:`rssi_matrix`."""
        matrix = self.rssi_matrix(
            np.array([tx_xy]),
            np.array([rx_xy]),
            np.array([eirp_dbm]),
            np.array([rx_gain_dbi]),
            t,
            tx_times=np.array([t]),
            include_noise=include_noise,
        )
        return float(matrix[0, 0])

    # ------------------------------------------------------------------
    # Reception
    # ------------------------------------------------------------------
    def deliver(
        self,
        transmissions: Sequence[ScheduledTransmission],
        receivers: Sequence[ReceiverState],
        t: float,
    ) -> List[Reception]:
        """Decide which receivers decode which scheduled transmissions.

        Args:
            transmissions: MAC-resolved on-air transmissions for one
                beacon interval (time-sorted or not; sorted internally).
            receivers: Listening radios, including ones that also
                transmit this interval (they simply cannot receive
                during their own airtime).
            t: Channel time used for the shadowing field (one beacon
                interval is far shorter than the shadowing coherence
                time, so a single evaluation instant per interval is
                accurate).

        Returns:
            All successful :class:`Reception` events, time-ordered.
        """
        if not transmissions or not receivers:
            return []
        txs = sorted(transmissions, key=lambda s: s.start_s)
        k = len(txs)
        m = len(receivers)
        tx_xy = np.array([s.request.tx_xy for s in txs], dtype=float)
        rx_xy = np.array([r.xy for r in receivers], dtype=float)
        eirp = np.array([s.request.eirp_dbm for s in txs], dtype=float)
        gains = np.array([r.profile.antenna_gain_dbi for r in receivers], dtype=float)
        tx_times = np.array([s.start_s for s in txs], dtype=float)
        rssi = self.rssi_matrix(tx_xy, rx_xy, eirp, gains, t, tx_times=tx_times)
        power_mw = 10.0 ** (rssi / 10.0)
        noise_mw = 10.0 ** (self.noise_floor_dbm / 10.0)
        sensitivity = np.array(
            [r.profile.rx_sensitivity_dbm for r in receivers], dtype=float
        )
        receiver_nodes = [r.node for r in receivers]

        # Half-duplex: a node cannot decode frames overlapping its own
        # transmissions.  Map node -> list of its on-air windows.
        own_windows: Dict[str, List[Tuple[float, float]]] = {}
        for s in txs:
            own_windows.setdefault(s.tx_node, []).append((s.start_s, s.end_s))

        # Time-overlap sets via a sweep over the sorted starts.
        overlaps: List[List[int]] = [[] for _ in range(k)]
        for i in range(k):
            for j in range(i + 1, k):
                if txs[j].start_s >= txs[i].end_s:
                    break
                overlaps[i].append(j)
                overlaps[j].append(i)

        receptions: List[Reception] = []
        capture_linear = 10.0 ** (self.capture_threshold_db / 10.0)
        for i, s in enumerate(txs):
            signal = power_mw[i]
            interference = noise_mw + (
                power_mw[overlaps[i]].sum(axis=0) if overlaps[i] else 0.0
            )
            ok = (rssi[i] >= sensitivity) & (signal / interference >= capture_linear)
            for r_index in np.nonzero(ok)[0]:
                node = receiver_nodes[r_index]
                if node == s.tx_node:
                    continue
                busy = any(
                    start < s.end_s and s.start_s < end
                    for start, end in own_windows.get(node, ())
                )
                if busy:
                    continue
                receptions.append(
                    Reception(
                        receiver=node,
                        identity=s.request.beacon.identity,
                        rssi_dbm=float(rssi[i, r_index]),
                        timestamp=s.start_s,
                        beacon=s.request.beacon,
                    )
                )
        receptions.sort(key=lambda r: (r.timestamp, r.receiver, r.identity))
        return receptions
