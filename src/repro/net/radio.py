"""On-board radio hardware model (paper Tables II–III).

One :class:`RadioProfile` captures everything the channel and MAC need
to know about an OBU: transmit power, antenna gain, receive sensitivity,
data rate, and the timing constants of the 802.11p MAC.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..radio.base import LinkBudget

__all__ = ["RadioProfile", "IWCU_OBU42"]


@dataclass(frozen=True)
class RadioProfile:
    """DSRC radio parameters for one on-board unit.

    Attributes:
        tx_power_dbm: Conducted TX power (paper sims: 17–23 dBm).
        antenna_gain_dbi: Antenna gain, applied at both TX and RX
            (paper hardware: 7 dBi omni).
        rx_sensitivity_dbm: Minimum decodable RSSI (IWCU: −95 dBm).
        data_rate_bps: PHY data rate (Table III: 3 Mbps).
        slot_time_s: MAC slot time (Table V: 13 µs).
        sifs_s: Short inter-frame space (Table V: 32 µs).
        preamble_s: PHY preamble + header duration (802.11p @10 MHz:
            40 µs).
        cw_slots: Contention-window size in slots for broadcast frames
            (802.11p CCH broadcasts use a fixed CW of 15).
    """

    tx_power_dbm: float = 20.0
    antenna_gain_dbi: float = 7.0
    rx_sensitivity_dbm: float = -95.0
    data_rate_bps: float = 3e6
    slot_time_s: float = 13e-6
    sifs_s: float = 32e-6
    preamble_s: float = 40e-6
    cw_slots: int = 15

    def __post_init__(self) -> None:
        if self.data_rate_bps <= 0:
            raise ValueError(f"data rate must be positive, got {self.data_rate_bps}")
        for label, value in (
            ("slot_time_s", self.slot_time_s),
            ("sifs_s", self.sifs_s),
            ("preamble_s", self.preamble_s),
        ):
            if value <= 0:
                raise ValueError(f"{label} must be positive, got {value}")
        if self.cw_slots < 1:
            raise ValueError(f"cw_slots must be >= 1, got {self.cw_slots}")

    def airtime_s(self, size_bytes: int) -> float:
        """On-air duration of a frame: preamble plus payload bits."""
        if size_bytes <= 0:
            raise ValueError(f"size must be positive, got {size_bytes}")
        return self.preamble_s + (size_bytes * 8) / self.data_rate_bps

    def link_budget(self, tx_power_dbm: float = None) -> LinkBudget:  # type: ignore[assignment]
        """The link budget this radio presents (optionally overriding power).

        The antenna gain counts on both ends because every vehicle in
        the paper's testbed mounts the same 7 dBi omni.
        """
        power = self.tx_power_dbm if tx_power_dbm is None else tx_power_dbm
        return LinkBudget(
            tx_power_dbm=power,
            tx_gain_dbi=self.antenna_gain_dbi,
            rx_gain_dbi=self.antenna_gain_dbi,
        )

    def with_tx_power(self, tx_power_dbm: float) -> "RadioProfile":
        """A copy of this profile at a different TX power."""
        return replace(self, tx_power_dbm=tx_power_dbm)


#: The paper's measurement hardware (Tables II–III).
IWCU_OBU42 = RadioProfile()
