"""Bounded flight recorder: post-mortem capture for online detection.

When the health monitor fires an alert (or an exception escapes the
run), the most valuable debugging data is the *recent past*: the spans,
log lines, and detection reports leading up to the event.  Holding a
full trace for a multi-hour drive is exactly the unbounded growth the
telemetry layer exists to avoid, so :class:`FlightRecorder` keeps
fixed-size ring buffers instead and serialises them on demand:

* **spans** — the recorder *is* a :class:`SpanExporter`; attach it to a
  tracer directly or tee it next to a JSONL exporter with
  :class:`TeeSpanExporter`.
* **log events** — :meth:`install_log_capture` hangs a stdlib handler
  off the ``repro`` logger and records every structured event.
* **reports** — :meth:`record_report` keeps one summary row per
  :class:`~repro.core.detector.DetectionReport` (the health monitor
  forwards these when wired via ``attach_recorder``).  When lineage is
  active each row is stamped with the in-flight trace's correlation
  id, so a post-mortem joins back to the trace ring and the audit log
  on one key.
* **sheds** — :meth:`record_shed` keeps one row per beacon the serve
  layer dropped under the ``"shed"`` ingest policy, with observer and
  per-observer sequence context — a post-mortem shows *which*
  observers lost beacons, not just how many
  (``serve.beacons_shed``).

:meth:`dump` writes one self-describing JSONL bundle — a header line,
then every buffered record tagged with its ``type`` — to
``<out>`` (first dump) / ``<out>.N`` (subsequent dumps), so repeated
alerts never overwrite the first post-mortem.  :meth:`install_excepthook`
chains onto ``sys.excepthook`` to flush the tracer's open spans and
dump automatically on an unhandled exception.
"""

from __future__ import annotations

import json
import logging
import sys
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional

from .lineage import current_correlation_id
from .logging import ROOT_LOGGER, _STANDARD_ATTRS
from .paths import counted_path
from .trace import SpanExporter, Tracer

__all__ = [
    "FlightRecorder",
    "TeeSpanExporter",
    "default_recorder",
    "set_default_recorder",
]


class TeeSpanExporter(SpanExporter):
    """Fans each finished span out to several exporters."""

    def __init__(self, *exporters: SpanExporter) -> None:
        self.exporters: List[SpanExporter] = [
            e for e in exporters if e is not None
        ]

    def export(self, record: Dict[str, Any]) -> None:
        for exporter in self.exporters:
            exporter.export(record)

    def flush(self) -> None:
        for exporter in self.exporters:
            exporter.flush()

    def close(self) -> None:
        for exporter in self.exporters:
            exporter.close()


class _RecorderHandler(logging.Handler):
    """Feeds ``repro`` log records into the recorder's ring buffer."""

    def __init__(self, recorder: "FlightRecorder") -> None:
        super().__init__(level=logging.DEBUG)
        self._recorder = recorder

    def emit(self, record: logging.LogRecord) -> None:
        fields = {
            key: value
            for key, value in vars(record).items()
            if key not in _STANDARD_ATTRS and not key.startswith("_")
        }
        self._recorder._record_log(
            {
                "ts": record.created,
                "level": record.levelname,
                "logger": record.name,
                "msg": record.getMessage(),
                **fields,
            }
        )


class FlightRecorder(SpanExporter):
    """Ring buffers of recent spans / logs / reports with JSONL dumps.

    Args:
        out: Dump destination path.  The first dump writes ``out``
            itself, later dumps ``out.1``, ``out.2``, ...
        capacity: Ring size *per stream* (spans, log events, reports).
        tracer: Tracer whose open spans are flushed into the span ring
            before a dump (so a post-mortem never contains truncated
            span records); optional.

    The recorder is itself a :class:`SpanExporter` — pass it to
    ``Tracer(exporter=...)`` or tee it with :class:`TeeSpanExporter`.
    """

    def __init__(
        self,
        out: str,
        capacity: int = 512,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.out = out
        self.capacity = capacity
        self._tracer = tracer
        self._lock = threading.Lock()
        self._spans: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self._logs: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self._reports: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self._alerts: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self._sheds: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self._dumps = 0
        self._handler: Optional[_RecorderHandler] = None
        self._previous_excepthook: Optional[Any] = None

    # -- capture -------------------------------------------------------
    def export(self, record: Dict[str, Any]) -> None:
        """SpanExporter interface: buffer one finished span record."""
        with self._lock:
            self._spans.append(record)

    def _record_log(self, record: Dict[str, Any]) -> None:
        with self._lock:
            self._logs.append(record)

    def record_report(self, report: "Any") -> None:
        """Buffer a one-row summary of a detection report.

        When a lineage trace context is bound to this thread (serve
        shard workers during ``on_beacon``), the row carries its
        correlation id — the join key shared with the trace ring and
        the audit bundle for the same detection.
        """
        row = {
            "t": float(report.timestamp),
            "density": float(report.density),
            "threshold": float(report.threshold),
            "compared": len(report.compared_ids),
            "skipped": len(report.skipped_ids),
            "pairs": len(report.raw_distances),
            "flagged_pairs": len(report.sybil_pairs),
            "sybil_ids": sorted(report.sybil_ids),
        }
        correlation_id = current_correlation_id()
        if correlation_id is not None:
            row["correlation_id"] = correlation_id
        with self._lock:
            self._reports.append(row)

    def record_shed(self, observer: str, t: float, seq: int) -> None:
        """Buffer one shed beacon: who lost it and its shed ordinal.

        Args:
            observer: The observer whose beacon was dropped.
            t: The beacon's event timestamp.
            seq: This observer's 1-based shed count (not the beacon
                sequence — sheds are what the ring is sized for).
        """
        row = {"observer": observer, "t": float(t), "seq": int(seq)}
        with self._lock:
            self._sheds.append(row)

    def on_alert(self, alert: "Any") -> str:
        """Health-monitor hook: buffer the alert and dump a post-mortem.

        Returns:
            The path the bundle was written to.
        """
        with self._lock:
            self._alerts.append(alert.to_record())
        return self.dump(reason=f"alert:{alert.kind}")

    # -- log / exception integration -----------------------------------
    def install_log_capture(self, logger: str = ROOT_LOGGER) -> None:
        """Start buffering every record the ``repro`` hierarchy emits."""
        if self._handler is not None:
            return
        self._handler = _RecorderHandler(self)
        logging.getLogger(logger).addHandler(self._handler)

    def uninstall_log_capture(self, logger: str = ROOT_LOGGER) -> None:
        """Detach the log-capture handler (idempotent)."""
        if self._handler is not None:
            logging.getLogger(logger).removeHandler(self._handler)
            self._handler = None

    def install_excepthook(self) -> None:
        """Dump a post-mortem when an exception escapes the program.

        Chains onto the previous ``sys.excepthook`` (which still runs
        afterwards, so tracebacks keep printing).
        """
        if self._previous_excepthook is not None:
            return
        previous = sys.excepthook

        def hook(exc_type, exc, tb) -> None:
            try:
                self.dump(reason=f"unhandled:{exc_type.__name__}")
            except Exception:  # the post-mortem must never mask the crash
                pass
            previous(exc_type, exc, tb)

        self._previous_excepthook = previous
        sys.excepthook = hook

    def uninstall_excepthook(self) -> None:
        """Restore the previous ``sys.excepthook`` (idempotent)."""
        if self._previous_excepthook is not None:
            sys.excepthook = self._previous_excepthook
            self._previous_excepthook = None

    # -- dumping -------------------------------------------------------
    @property
    def dumps_written(self) -> int:
        """Number of post-mortem bundles written so far."""
        return self._dumps

    def dump(self, reason: str = "manual") -> str:
        """Write the current rings as one JSONL bundle; returns the path.

        The first line is a ``postmortem`` header (reason, wall-clock
        time, per-stream record counts); every following line is one
        buffered record tagged
        ``type: span | log | report | alert | shed``.
        """
        if self._tracer is not None:
            # Rescue still-open spans into the ring before serialising.
            self._tracer.flush_open(reason=f"flight_recorder:{reason}")
        with self._lock:
            spans = list(self._spans)
            logs = list(self._logs)
            reports = list(self._reports)
            alerts = list(self._alerts)
            sheds = list(self._sheds)
            self._dumps += 1
            index = self._dumps
        path = counted_path(self.out, index)
        header = {
            "type": "postmortem",
            "reason": reason,
            "ts": time.time(),
            "spans": len(spans),
            "logs": len(logs),
            "reports": len(reports),
            "alerts": len(alerts),
            "sheds": len(sheds),
            "capacity": self.capacity,
        }
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(header) + "\n")
            for kind, records in (
                ("alert", alerts),
                ("report", reports),
                ("shed", sheds),
                ("span", spans),
                ("log", logs),
            ):
                for record in records:
                    handle.write(
                        json.dumps({"type": kind, **record}, default=str)
                        + "\n"
                    )
        return path

    def close(self) -> None:
        """Detach every installed integration (exporter stays usable)."""
        self.uninstall_log_capture()
        self.uninstall_excepthook()


# ----------------------------------------------------------------------
# Process-global recorder (so the serve layer can feed shed events
# without threading a recorder handle through every constructor)
# ----------------------------------------------------------------------
_DEFAULT: Optional[FlightRecorder] = None


def default_recorder() -> Optional[FlightRecorder]:
    """The process-global flight recorder, or None when not armed."""
    return _DEFAULT


def set_default_recorder(
    recorder: Optional[FlightRecorder],
) -> Optional[FlightRecorder]:
    """Install (or clear, with None) the process-global recorder;
    returns the previous one so callers can restore it."""
    global _DEFAULT
    previous = _DEFAULT
    _DEFAULT = recorder
    return previous
