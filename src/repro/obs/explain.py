"""Forensic rendering of audit records — the ``repro explain`` command.

Given an audit log written by ``--audit-out`` (see
:mod:`repro.obs.audit`), this module answers the operator's question
*"why was this pair flagged?"* with evidence instead of a bare bit:

* the two RSSI windows (sparkline + normalisation stats + byte hash),
* the DTW warping path with its per-step cost decomposition
  (:func:`repro.core.dtw.path_cost_steps` over the recorded windows),
* the signed margin rendered as a distance-to-threshold bar,
* the prune/cache provenance of the recorded distance,
* and, with ``--verify``, a bit-replay of every ``exact`` record
  through :mod:`repro.core.pairwise` (the contract check).

Everything renders to plain text — the CLI prints the returned string.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from .audit import (
    get_near_miss_epsilon,
    iter_pair_records,
    load_audit_log,
    normalised_window,
    verify_bundle,
)

__all__ = [
    "render_pair_report",
    "render_verification",
    "run_explain",
    "select_pair_records",
    "sparkline",
]

#: Most pair reports rendered in one invocation (a pair recurs once per
#: detection period; unbounded output helps nobody).
MAX_REPORTS = 5

_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: np.ndarray, width: int = 64) -> str:
    """Fixed-width unicode sparkline of a series (shared with the
    ``repro watch`` dashboard and the end-of-run report)."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        return ""
    if values.size > width:
        idx = np.linspace(0, values.size - 1, width).round().astype(int)
        values = values[idx]
    lo = float(np.min(values))
    hi = float(np.max(values))
    span = hi - lo
    if span <= 0.0:
        return _BLOCKS[1] * values.size
    levels = ((values - lo) / span * (len(_BLOCKS) - 1)).round().astype(int)
    return "".join(_BLOCKS[level] for level in levels)


def _margin_bar(margin: Optional[float], width: int = 41) -> str:
    """ASCII distance-to-threshold bar; ``|`` marks the threshold."""
    if margin is None or not math.isfinite(margin):
        return f"(margin {margin})"
    epsilon = get_near_miss_epsilon()
    scale = max(abs(margin), 2.0 * epsilon)
    half = (width - 1) // 2
    cells = [" "] * (2 * half + 1)
    cells[half] = "|"
    offset = int(round(max(-1.0, min(1.0, margin / scale)) * half))
    step = 1 if offset >= 0 else -1
    for position in range(step, offset + step, step):
        cells[half + position] = "="
    if offset != 0:
        cells[half + offset] = "#"
    return "[" + "".join(cells) + "]"


def _select_sort_key(record: Dict[str, Any]) -> float:
    margin = record.get("margin")
    if margin is None:
        return math.inf
    return abs(margin)


def select_pair_records(
    bundles: List[Dict[str, Any]],
    pair: Optional[Tuple[str, str]] = None,
    observer: Optional[str] = None,
    worst: bool = False,
    near_misses: Optional[int] = None,
) -> List[Tuple[Dict[str, Any], Dict[str, Any]]]:
    """Pick the ``(bundle, pair record)`` entries a query asks for.

    Exactly one selector must be active: ``pair`` (all of one pair's
    periods), ``worst`` (the single verdict closest to its threshold),
    or ``near_misses`` (the N closest).  ``observer`` further restricts
    any of them.
    """
    selectors = sum((pair is not None, bool(worst), near_misses is not None))
    if selectors != 1:
        raise ValueError(
            "specify exactly one of --pair, --worst, --near-misses"
        )
    entries = [
        (bundle, record)
        for bundle, record in iter_pair_records(bundles)
        if observer is None or bundle.get("observer") == observer
    ]
    if not entries:
        raise ValueError("no pair records match the query")
    if pair is not None:
        wanted = tuple(sorted(pair))
        matches = [
            (bundle, record)
            for bundle, record in entries
            if (record["a"], record["b"]) == wanted
        ]
        if not matches:
            raise ValueError(f"pair {wanted[0]},{wanted[1]} not in the log")
        return matches
    ranked = sorted(entries, key=lambda entry: _select_sort_key(entry[1]))
    if worst:
        return ranked[:1]
    assert near_misses is not None
    if near_misses < 1:
        raise ValueError(f"--near-misses wants a positive N, got {near_misses}")
    return ranked[:near_misses]


def _dtw_section(bundle: Dict[str, Any], record: Dict[str, Any]) -> List[str]:
    """Warping-path cost decomposition (needs window bytes + a real run)."""
    from ..core.dtw import path_cost_steps

    from .audit import _replay_engine

    a, b = record["a"], record["b"]
    try:
        xa = normalised_window(bundle, a)
        xb = normalised_window(bundle, b)
    except ValueError as error:
        return [f"dtw     : (no decomposition: {error})"]
    engine = _replay_engine(bundle)
    result = engine._kernel(xa, xb)
    steps = path_cost_steps(xa, xb, result.path)
    total = steps[-1][3] if steps else 0.0
    lines = [
        f"dtw     : path_len={len(steps)}  cells={result.cells}  "
        f"accumulated_cost={total:.6g}"
        + (
            f"  (/{len(steps)} path steps -> {result.distance / len(steps):.6g})"
            if bundle["normalize_by_path_length"] and steps
            else ""
        ),
        "          top warp-path steps by cost:",
        "            step     i     j       cost    cum%",
    ]
    order = sorted(range(len(steps)), key=lambda k: steps[k][2], reverse=True)
    for rank in sorted(order[:8]):
        i, j, cost, cumulative = steps[rank]
        share = 100.0 * cumulative / total if total > 0 else 0.0
        lines.append(
            f"            {rank + 1:>4}  {i:>4}  {j:>4}  {cost:>9.4g}  {share:>5.1f}"
        )
    return lines


def render_pair_report(
    bundle: Dict[str, Any], record: Dict[str, Any]
) -> str:
    """One pair's full forensic report as multi-line text."""
    a, b = record["a"], record["b"]
    observer = bundle.get("observer") or "-"
    period = bundle.get("period")
    margin = record.get("margin")
    flagged = record["flagged"]
    lines = [
        f"=== {a} × {b} — observer {observer}, period "
        f"{period if period is not None else '-'}, "
        f"t={bundle['timestamp']:.1f}s, density "
        f"{bundle['density']:.1f}/km ===",
        f"verdict : {'FLAGGED' if flagged else 'clear'}  "
        f"(judged {record['judged_distance']:.6g} "
        f"{'<=' if flagged else '>'} threshold {bundle['threshold']:.6g} "
        f"on {bundle['threshold_on']} distance)"
        + (
            f"   confirmed ids: {', '.join(record['confirmed_ids'])}"
            if record["confirmed_ids"]
            else ""
        ),
        f"distance: raw {record['raw_distance']:.6g}"
        + (
            f"   normalized {record['normalized_distance']:.6g}"
            if record.get("normalized_distance") is not None
            else ""
        ),
        f"margin  : {margin:+.1%}  {_margin_bar(margin)}  "
        "(| = threshold; <- flagged side)"
        if margin is not None and math.isfinite(margin)
        else f"margin  : {margin}",
    ]
    provenance = record["provenance"]
    detail = ""
    if record.get("cache_key"):
        detail = f"  (cache key {record['cache_key'][:16]}…)"
    elif record.get("bound") is not None:
        detail = f"  (deciding bound {record['bound']:.6g}; distance is a surrogate)"
    lines.append(f"prov    : {provenance}{detail}")
    for identity in (a, b):
        series = bundle["series"].get(identity)
        if series is None:
            lines.append(f"window  : {identity}  (not recorded)")
            continue
        lines.append(
            f"window  : {identity}  len={series['len']}  "
            f"mean={series['mean']:.2f} dBm  divisor={series['divisor']:.4g}  "
            f"sha256={series['sha256'][:16]}…"
        )
        if "window_b64" in series:
            lines.append(f"          {sparkline(normalised_window(bundle, identity))}")
    if provenance in ("exact", "cache-hit"):
        lines.extend(_dtw_section(bundle, record))
    else:
        lines.append(
            "dtw     : (pair decided from bounds; no kernel run to decompose)"
        )
    return "\n".join(lines)


def render_verification(bundles: List[Dict[str, Any]]) -> Tuple[str, bool]:
    """Replay-verify every bundle; returns ``(text, all_ok)``."""
    verified = 0
    skipped: Dict[str, int] = {}
    mismatches: List[str] = []
    for index, bundle in enumerate(bundles):
        for result in verify_bundle(bundle):
            if result["status"] == "skipped":
                skipped[result["provenance"]] = (
                    skipped.get(result["provenance"], 0) + 1
                )
            elif result["status"] == "ok":
                verified += 1
            else:
                a, b = result["pair"]
                mismatches.append(
                    f"  detection #{index} {a}×{b}: recorded "
                    f"{result['recorded'].hex()} != replayed "
                    f"{result['replayed'].hex()}"
                )
    lines = [
        f"replayed {verified} exact pair record(s) through "
        f"repro.core.pairwise: "
        + ("all bit-identical" if not mismatches else
           f"{len(mismatches)} MISMATCH(ES)"),
    ]
    if skipped:
        detail = ", ".join(
            f"{count} {tag}" for tag, count in sorted(skipped.items())
        )
        lines.append(f"skipped (no replay obligation): {detail}")
    lines.extend(mismatches)
    return "\n".join(lines), not mismatches


def run_explain(
    log_path: str,
    pair: Optional[Tuple[str, str]] = None,
    observer: Optional[str] = None,
    worst: bool = False,
    near_misses: Optional[int] = None,
    verify: bool = False,
) -> str:
    """The ``repro explain`` entry point; returns the rendered text.

    Raises:
        ValueError: Bad query or unreadable/malformed log.
        RuntimeError: ``verify`` found a non-bit-identical replay.
    """
    bundles = load_audit_log(log_path)
    sections: List[str] = []
    if pair is not None or worst or near_misses is not None:
        selected = select_pair_records(
            bundles,
            pair=pair,
            observer=observer,
            worst=worst,
            near_misses=near_misses,
        )
        shown = selected[:MAX_REPORTS]
        sections.extend(
            render_pair_report(bundle, record) for bundle, record in shown
        )
        if len(selected) > len(shown):
            sections.append(
                f"... {len(selected) - len(shown)} more matching record(s) "
                "not shown"
            )
    elif not verify:
        raise ValueError(
            "specify --pair A,B, --worst, --near-misses N, or --verify"
        )
    if verify:
        text, ok = render_verification(bundles)
        sections.append(text)
        if not ok:
            raise RuntimeError(
                "audit replay mismatch:\n" + "\n\n".join(sections)
            )
    return "\n\n".join(sections)
