"""Stopwatch timing that records straight into metrics histograms.

One primitive covers every timing need in the repo::

    with Stopwatch(registry.histogram("detector.detect_ms")):
        detector.detect(density=40.0)

    @Stopwatch(registry.histogram("eval.run_ms"))
    def run(): ...

    sw = Stopwatch()            # no histogram: just measure
    with sw:
        work()
    print(sw.elapsed_ms)

Durations are measured with ``time.perf_counter`` and recorded in
milliseconds — the unit the paper's Section VI-B timing discussion uses.
"""

from __future__ import annotations

import functools
import time
from typing import Any, Callable, Optional, TypeVar

from .metrics import Histogram

__all__ = ["Stopwatch"]

F = TypeVar("F", bound=Callable[..., Any])


class Stopwatch:
    """Context manager / decorator measuring wall time in milliseconds.

    Args:
        histogram: Optional histogram each measured duration is recorded
            into.  Omit it to use the stopwatch purely for reading
            :attr:`elapsed_ms`.

    The same instance may be reused; each ``with`` block records one
    sample and overwrites :attr:`elapsed_ms`.
    """

    __slots__ = ("histogram", "_start", "elapsed_ms")

    def __init__(self, histogram: Optional[Histogram] = None) -> None:
        self.histogram = histogram
        self._start: Optional[float] = None
        #: Duration of the most recently completed measurement (ms).
        self.elapsed_ms: Optional[float] = None

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        assert self._start is not None, "Stopwatch exited without entering"
        self.elapsed_ms = (time.perf_counter() - self._start) * 1000.0
        self._start = None
        if self.histogram is not None:
            self.histogram.observe(self.elapsed_ms)

    def __call__(self, fn: F) -> F:
        """Use the stopwatch as a decorator timing every call of ``fn``."""

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            with self:
                return fn(*args, **kwargs)

        return wrapper  # type: ignore[return-value]
