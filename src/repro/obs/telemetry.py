"""Runtime telemetry: periodic snapshots and a live ``/metrics`` endpoint.

PR 1's observability layer dumps metrics *after* a run; an online
detector needs its health visible *during* one.  This module adds the
two runtime consumers, both stdlib-only and fully opt-in:

* :class:`Snapshotter` — periodically diffs the
  :class:`~repro.obs.metrics.MetricsRegistry` against its previous
  snapshot and turns the deltas into **rates** (beacons/s,
  detections/s, events/s, a windowed pairwise cache hit rate) plus the
  current histogram quantiles.  Each tick appends one JSONL record and
  publishes the rates back into the registry as ``rate.*`` gauges, so
  the Prometheus exposition (and hence a Grafana panel) sees them with
  zero extra plumbing.
* :class:`TelemetryServer` — a background
  :class:`~http.server.ThreadingHTTPServer` serving ``GET /metrics``
  (Prometheus text format, see :mod:`repro.obs.prometheus`),
  ``GET /health`` (the :class:`~repro.obs.health.HealthMonitor` status
  document as JSON; 503 once an alert has fired — ready to back a
  vehicle-stack liveness probe) and ``GET /series`` (the attached
  :class:`~repro.obs.tsdb.TimeSeriesDB` as JSON — what a live
  ``repro watch`` polls).
* :class:`SpanLatencyRecorder` — a :class:`SpanExporter` that records
  every finished span's duration into a ``phase.<name>_ms`` histogram,
  turning the tracer's per-phase spans (``normalise``,
  ``pairwise_dtw``, ``minmax``, ``threshold``, ``confirmation``) into
  scrapeable p50/p95/p99 latency series.

The serve layer's lineage stage histograms (``serve.stage.*_ms``, see
:mod:`repro.obs.lineage`) need no extra plumbing here: they live in the
same registry, so each Snapshotter tick derives their
``.tick_mean``/``.p50``/``.p99`` series and ``/series`` (hence
``repro watch``) picks them up automatically.

Nothing here runs unless explicitly constructed and started; the
disabled path costs the library nothing.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import IO, Any, Dict, Optional, Union

from .drift import DriftMonitor
from .health import HealthMonitor
from .metrics import MetricsRegistry, default_registry
from .prometheus import CONTENT_TYPE, render_prometheus, sanitize_metric_name
from .trace import SpanExporter
from .tsdb import TimeSeriesDB

__all__ = ["Snapshotter", "SpanLatencyRecorder", "TelemetryServer"]


class SpanLatencyRecorder(SpanExporter):
    """Folds finished spans into per-phase latency histograms.

    Args:
        registry: Histograms are created as ``phase.<span name>_ms``
            in this registry (default: the process-global one).
        max_samples: Reservoir cap for the created histograms — a
            long online run finishes millions of spans, so the cap
            defaults on here (see :class:`~repro.obs.metrics.Histogram`).
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        max_samples: Optional[int] = 4096,
    ) -> None:
        self._registry = (
            registry if registry is not None else default_registry()
        )
        self._max_samples = max_samples
        self._histograms: Dict[str, Any] = {}

    def export(self, record: Dict[str, Any]) -> None:
        name = record.get("name")
        duration = record.get("duration_ms")
        if name is None or duration is None:
            return
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._registry.histogram(
                f"phase.{sanitize_metric_name(str(name))}_ms",
                max_samples=self._max_samples,
            )
            self._histograms[name] = histogram
        histogram.observe(duration)


#: Counter-delta pairs the snapshotter derives ratio gauges from:
#: gauge name -> (numerator counter, denominator counter).
_RATIO_GAUGES = {
    "rate.pairwise_cache_hit_rate": (
        "detector.cache_hits",
        "detector.pairs_compared",
    ),
    # Fraction of this tick's verdicts that landed within the near-miss
    # margin ε of the threshold (see repro.obs.audit) — the windowed
    # fragility signal, scrapeable at /metrics like any rate.* gauge.
    "rate.margin_near_miss_rate": (
        "pipeline.margin.near_miss",
        "detector.pairs_compared",
    ),
}


class Snapshotter:
    """Periodic registry snapshots: deltas, rates, and JSONL emission.

    Args:
        registry: Registry to snapshot (default: process-global).
        interval_s: Tick period for the background thread; manual
            :meth:`tick` calls may use any cadence.
        out: JSONL destination — a path (opened lazily, closed by
            :meth:`close`) or an open text stream (left open).
        health: Optional monitor whose wall-clock staleness watchdog
            is driven once per tick (:meth:`HealthMonitor.watchdog`).
        tsdb: Optional :class:`~repro.obs.tsdb.TimeSeriesDB`; every
            tick record is folded in (counter rates, gauges, histogram
            tick means and quantiles) so the run keeps a bounded
            multi-resolution trajectory.
        drift: Optional :class:`~repro.obs.drift.DriftMonitor`; every
            tick record feeds its CUSUM/Page–Hinkley detectors and SLO
            burn-rate windows.
        clock: Monotonic time source (injectable for tests).
        wall_clock: Wall time stamped into records (injectable).

    Each tick writes one record::

        {"type": "snapshot", "ts": ..., "t": ..., "dt_s": ...,
         "counters": {name: {"value": v, "delta": d, "rate": d/dt}},
         "gauges": {name: value},
         "histograms": {name: {count, sum, ...,
                               "count_delta": d, "sum_delta": s}}}

    and mirrors every counter rate into the registry as a
    ``rate.<name>_per_s`` gauge (plus the ratio gauges above), which is
    what makes rates scrapeable at ``/metrics``.  A counter that moved
    *backwards* between ticks (the registry was reset mid-run, e.g. by
    ``detector.reset()`` test harnesses re-arming observability) is
    treated like a process restart in Prometheus: the new value counts
    as the whole delta instead of producing a negative rate.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        interval_s: float = 10.0,
        out: Optional[Union[str, IO[str]]] = None,
        health: Optional[HealthMonitor] = None,
        tsdb: Optional[TimeSeriesDB] = None,
        drift: Optional[DriftMonitor] = None,
        clock=time.monotonic,
        wall_clock=time.time,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval must be positive, got {interval_s}")
        self._registry = (
            registry if registry is not None else default_registry()
        )
        self.interval_s = float(interval_s)
        self._health = health
        self.tsdb = tsdb
        self.drift = drift
        self._clock = clock
        self._wall_clock = wall_clock
        self._lock = threading.Lock()
        self._last_counters: Dict[str, float] = {}
        self._last_hist_counts: Dict[str, int] = {}
        self._last_hist_sums: Dict[str, float] = {}
        self._last_t: Optional[float] = None
        self.ticks = 0
        self._out_path: Optional[str] = None
        self._handle: Optional[IO[str]] = None
        self._owns_handle = False
        if isinstance(out, str):
            self._out_path = out
        elif out is not None:
            self._handle = out
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- snapshot math -------------------------------------------------
    def tick(self, now: Optional[float] = None) -> Dict[str, Any]:
        """Take one snapshot; returns (and emits) the delta record."""
        t = self._clock() if now is None else now
        snapshot = self._registry.to_dict()
        with self._lock:
            dt = None if self._last_t is None else t - self._last_t
            counters: Dict[str, Dict[str, float]] = {}
            deltas: Dict[str, float] = {}
            for name, value in snapshot["counters"].items():
                delta = value - self._last_counters.get(name, 0.0)
                if delta < 0:
                    # Counter reset (registry.reset() mid-run): treat
                    # the new value as the delta, Prometheus-style,
                    # instead of reporting a negative rate.
                    delta = value
                deltas[name] = delta
                rate = (delta / dt) if dt else None
                counters[name] = {"value": value, "delta": delta}
                if rate is not None:
                    counters[name]["rate"] = rate
                self._last_counters[name] = value
            histograms: Dict[str, Dict[str, Any]] = {}
            for name, summary in snapshot["histograms"].items():
                count_delta = summary["count"] - self._last_hist_counts.get(
                    name, 0
                )
                sum_delta = (summary["sum"] or 0.0) - self._last_hist_sums.get(
                    name, 0.0
                )
                if count_delta < 0:  # histogram reset, as for counters
                    count_delta = summary["count"]
                    sum_delta = summary["sum"] or 0.0
                self._last_hist_counts[name] = summary["count"]
                self._last_hist_sums[name] = summary["sum"] or 0.0
                histograms[name] = dict(
                    summary, count_delta=count_delta, sum_delta=sum_delta
                )
            self._last_t = t
            self.ticks += 1
        record: Dict[str, Any] = {
            "type": "snapshot",
            "ts": self._wall_clock(),
            "t": t,
            "dt_s": dt,
            "counters": counters,
            "gauges": dict(snapshot["gauges"]),
            "histograms": histograms,
        }
        # Publish rates first so this tick's ratio gauges are part of
        # the record the TSDB and drift monitor see (the registry
        # snapshot above predates them).
        self._publish_rates(counters, deltas, dt, record["gauges"])
        if self._health is not None:
            # Wall-based staleness tick: the snapshotter has no event
            # clock, so asking "did the feed stall" with its monotonic
            # t against event-time beats would confuse timebases (the
            # monitor's clock-source contract; see HealthMonitor).
            self._health.watchdog()
        if self.tsdb is not None:
            self.tsdb.observe_snapshot(record, t)
        if self.drift is not None:
            self.drift.observe(record, t)
        self._emit(record)
        return record

    def _publish_rates(
        self,
        counters: Dict[str, Dict[str, float]],
        deltas: Dict[str, float],
        dt: Optional[float],
        gauges_out: Dict[str, Any],
    ) -> None:
        if not dt:
            return
        for name, entry in counters.items():
            rate = entry.get("rate")
            if rate is not None:
                self._registry.gauge(f"rate.{name}_per_s").set(rate)
        for gauge_name, (num, den) in _RATIO_GAUGES.items():
            denominator = deltas.get(den, 0.0)
            if denominator > 0:
                ratio = deltas.get(num, 0.0) / denominator
                self._registry.gauge(gauge_name).set(ratio)
                gauges_out[gauge_name] = ratio

    def _emit(self, record: Dict[str, Any]) -> None:
        handle = self._handle
        if handle is None and self._out_path is not None:
            handle = self._handle = open(
                self._out_path, "w", encoding="utf-8"
            )
            self._owns_handle = True
        if handle is not None:
            handle.write(json.dumps(record) + "\n")
            handle.flush()

    # -- background thread ---------------------------------------------
    def start(self) -> "Snapshotter":
        """Begin ticking every ``interval_s`` on a daemon thread."""
        if self._thread is not None:
            return self
        self._stop.clear()

        def loop() -> None:
            while not self._stop.wait(self.interval_s):
                self.tick()

        self._thread = threading.Thread(
            target=loop, name="repro-snapshotter", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, final_tick: bool = True) -> None:
        """Stop the thread; by default take one last snapshot."""
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=5.0)
            self._thread = None
        if final_tick:
            self.tick()

    def close(self) -> None:
        """Stop and release the output file (if this object opened it).

        Always takes a last snapshot: a run shorter than the interval
        still deserves its end-of-run record.
        """
        self.stop(final_tick=True)
        if self._handle is not None and self._owns_handle:
            self._handle.close()
            self._handle = None


class _TelemetryHandler(BaseHTTPRequestHandler):
    """Serves ``/metrics``, ``/health`` and ``/series``; else 404.

    Hardened for long-lived watch clients: every connection gets an
    explicit socket timeout (a stalled or half-open reader is dropped
    instead of pinning its handler thread forever) and every response
    carries ``Connection: close`` so clients cannot keep handler
    threads alive between polls.
    """

    server: "TelemetryServer.Server"

    def setup(self) -> None:
        super().setup()
        self.connection.settimeout(self.server.request_timeout_s)

    def handle(self) -> None:
        try:
            super().handle()
        except (socket.timeout, TimeoutError, ConnectionError, OSError):
            # A stalled reader timed out or vanished mid-write; drop
            # the connection quietly — the next scrape starts fresh.
            self.close_connection = True

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            body = render_prometheus(self.server.registry).encode("utf-8")
            self._respond(200, CONTENT_TYPE, body)
        elif path == "/health":
            health = self.server.health
            document = (
                health.status() if health is not None else {"status": "ok"}
            )
            code = 200 if document["status"] == "ok" else 503
            self._respond(
                code,
                "application/json; charset=utf-8",
                json.dumps(document).encode("utf-8"),
            )
        elif path == "/series":
            tsdb = self.server.tsdb
            if tsdb is None:
                self._respond(
                    404,
                    "text/plain; charset=utf-8",
                    b"no time-series store attached "
                    b"(run with --watch-record)\n",
                )
            else:
                self._respond(
                    200,
                    "application/json; charset=utf-8",
                    json.dumps(tsdb.to_payload()).encode("utf-8"),
                )
        else:
            self._respond(
                404, "text/plain; charset=utf-8", b"not found\n"
            )

    def _respond(self, code: int, content_type: str, body: bytes) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)
        self.close_connection = True

    def log_message(self, format: str, *args: Any) -> None:
        """Silence per-request stderr chatter (scrapes are periodic)."""


class TelemetryServer:
    """Background HTTP endpoint exposing live metrics and health.

    Args:
        registry: Registry served at ``/metrics`` (default:
            process-global).
        health: Monitor served at ``/health`` (optional; without one
            the endpoint reports a plain ``{"status": "ok"}``).
        tsdb: Optional :class:`~repro.obs.tsdb.TimeSeriesDB` served as
            JSON at ``/series`` (404 without one) — what a live
            ``repro watch`` polls.
        host: Bind address — loopback by default; an OBU's telemetry
            is for the local vehicle stack, not the open network.
        port: TCP port; 0 picks an ephemeral one (see :attr:`port`).
        request_timeout_s: Per-connection socket timeout; a reader
            that stalls longer is dropped (see
            :class:`_TelemetryHandler`).

    Usage::

        server = TelemetryServer(registry, port=9110).start()
        ... run ...
        server.stop()
    """

    class Server(ThreadingHTTPServer):
        daemon_threads = True
        registry: MetricsRegistry
        health: Optional[HealthMonitor]
        tsdb: Optional[TimeSeriesDB]
        request_timeout_s: float

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        health: Optional[HealthMonitor] = None,
        tsdb: Optional[TimeSeriesDB] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        request_timeout_s: float = 10.0,
    ) -> None:
        if request_timeout_s <= 0:
            raise ValueError(
                f"request timeout must be positive, got {request_timeout_s}"
            )
        self._registry = (
            registry if registry is not None else default_registry()
        )
        self._health = health
        self._tsdb = tsdb
        self._host = host
        self._requested_port = port
        self._request_timeout_s = float(request_timeout_s)
        self._server: Optional[TelemetryServer.Server] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> Optional[int]:
        """The bound port once started (resolves port=0), else None."""
        return self._server.server_address[1] if self._server else None

    @property
    def url(self) -> Optional[str]:
        """Base URL once started, e.g. ``http://127.0.0.1:9110``."""
        return f"http://{self._host}:{self.port}" if self._server else None

    def start(self) -> "TelemetryServer":
        """Bind and serve on a daemon thread; returns self."""
        if self._server is not None:
            return self
        server = TelemetryServer.Server(
            (self._host, self._requested_port), _TelemetryHandler
        )
        server.registry = self._registry
        server.health = self._health
        server.tsdb = self._tsdb
        server.request_timeout_s = self._request_timeout_s
        self._server = server
        self._thread = threading.Thread(
            target=server.serve_forever,
            name="repro-telemetry",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the server down and join its thread (idempotent)."""
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
