"""Beacon-to-verdict causal lineage with tail-based sampling.

The serve layer's single ``serve.ingest_to_verdict_ms`` histogram says
*how slow* the tail is but not *where* the time went or *which*
verdicts are behind the bucket.  This module decomposes every
beacon→verdict path into explicit stages and keeps the interesting
traces:

* :meth:`~repro.serve.service.DetectionService.submit` ships two
  monotonic stamps *through* the shard's
  :class:`~repro.serve.qos.BoundedQueue` as extra tuple elements — the
  producer thread allocates no context object, keeping ingest
  throughput intact.  The shard worker parks the stamps in a
  per-thread hot-path cell (:meth:`Lineage.register_worker`) and a
  full :class:`TraceContext` is only materialised lazily, for the rare
  beacons whose dequeue triggers a detection (the span listener, the
  audit layer's correlation-id lookup, or verdict completion forces
  it); the context is stamped again on the way out through the
  :class:`~repro.serve.qos.ReportBus`.  Under the GIL every per-beacon
  bytecode on any thread taxes ingest throughput, so the common
  no-verdict path is three list stores and one clock read.
* Stages: ``ingest_enqueue`` (submit → enqueue attempt, the routing
  cut), ``queue_wait`` (enqueue attempt → dequeued, which includes
  block-policy backpressure), ``detect``
  (dequeued → verdict).  These three are disjoint cuts of the same
  monotonic clock, so they sum to the event's ``ingest_to_verdict_ms``
  latency.  ``publish`` and ``subscriber_delivery`` cover the
  post-verdict fan-out; ``compare`` and ``audit_write`` are sub-stages
  of ``detect`` captured from the tracer's ``pairwise_dtw`` /
  ``audit_write`` spans via a span listener (the lineage object *is*
  the listener).
* Every completed verdict trace feeds ``serve.stage.<stage>_ms``
  histograms — Prometheus, ``/series`` and the watch dashboard pick
  them up through the normal registry → Snapshotter path.

**Tail-based sampling** keeps the ring useful without unbounded
growth: traces for flagged verdicts, near-misses (margin within the
audit layer's epsilon), p99-slow paths and shed-adjacent completions
are always retained; everything else is sampled at ``sample``
probability from a seeded RNG.  Every retained trace carries a
``correlation_id`` that the detector also writes into the matching
audit bundle and the flight recorder stamps onto its report rows —
so trace ↔ audit ↔ post-mortem join on one key (``repro trace
--follow`` walks the join).

Everything is **off by default**: :func:`default_lineage` returns
``None`` until :func:`start_lineage` installs the process-global
instance, and the serve hot path guards every touch behind a single
``is None`` check — zero extra allocations per beacon while disabled
(asserted by test).  :meth:`Lineage.snapshot` / :meth:`Lineage.merge`
fold worker rings across processes exactly like the metrics registry
and audit log do.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
import zlib
from collections import deque
from typing import Any, Deque, Dict, List, Optional

from .metrics import MetricsRegistry, default_registry
from .paths import indexed_path
from .trace import default_tracer

__all__ = [
    "TraceContext",
    "Lineage",
    "STAGES",
    "TOP_STAGES",
    "current_correlation_id",
    "default_lineage",
    "start_lineage",
    "stop_lineage",
    "restart_in_child",
    "load_lineage",
    "export_chrome_trace",
]

SNAPSHOT_VERSION = 1

#: Disjoint top-level stages; the first three sum to ingest-to-verdict.
TOP_STAGES = (
    "ingest_enqueue",
    "queue_wait",
    "detect",
    "publish",
    "subscriber_delivery",
)
#: Sub-stages of ``detect``, captured from tracer spans.
SUB_STAGES = ("compare", "audit_write")
#: Every stage a trace may carry, waterfall order.
STAGES = TOP_STAGES[:3] + SUB_STAGES + TOP_STAGES[3:]

#: Tracer span name → lineage sub-stage.
_SPAN_STAGES = {"pairwise_dtw": "compare", "audit_write": "audit_write"}

#: Retention reasons, priority order (first match wins).
_REASONS = ("flagged", "near_miss", "slow", "shed_adjacent", "sampled")


class TraceContext:
    """One beacon's trace: correlation id plus monotonic stage stamps.

    Minted by :meth:`Lineage.mint` on the submit path; the timestamps
    are all from ``time.monotonic()`` so stage durations are cuts of
    one clock, never cross-clock skew.
    """

    __slots__ = (
        "correlation_id",
        "observer",
        "shard",
        "seq",
        "wall_submit",
        "t_submit",
        "t_enqueued",
        "t_dequeued",
        "t_detect_done",
        "stages",
    )

    def __init__(
        self, correlation_id: str, observer: str, shard: int
    ) -> None:
        self.correlation_id = correlation_id
        self.observer = observer
        self.shard = shard
        self.seq: Optional[int] = None
        self.wall_submit = time.time()
        self.t_submit = time.monotonic()
        self.t_enqueued: Optional[float] = None
        self.t_dequeued: Optional[float] = None
        self.t_detect_done: Optional[float] = None
        self.stages: Dict[str, float] = {}


class Lineage:
    """Bounded trace ring with tail-based retention.

    Args:
        capacity: Ring size in retained traces.
        sample: Probability an *uninteresting* verdict trace is kept
            anyway (interesting ones — flagged, near-miss, p99-slow,
            shed-adjacent — are always kept).
        shed_window_s: How long after a shed event completions count
            as shed-adjacent.
        registry: Metrics registry for the ``serve.stage.*_ms``
            histograms and trace counters (default: process-global).
        seed: Seed for the sampling RNG (deterministic retention on a
            deterministic workload).

    The instance doubles as a tracer span listener
    (:meth:`on_span_start` / :meth:`on_span_end`), folding
    ``pairwise_dtw`` / ``audit_write`` span durations into the bound
    context's ``compare`` / ``audit_write`` sub-stages.
    """

    def __init__(
        self,
        capacity: int = 512,
        sample: float = 0.01,
        shed_window_s: float = 5.0,
        registry: Optional[MetricsRegistry] = None,
        seed: int = 7,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if not 0.0 <= sample <= 1.0:
            raise ValueError(f"sample must be in [0, 1], got {sample}")
        self.capacity = int(capacity)
        self.sample = float(sample)
        self.shed_window_s = float(shed_window_s)
        self.seed = int(seed)
        self._registry = (
            registry if registry is not None else default_registry()
        )
        self._lock = threading.Lock()
        self._local = threading.local()
        self._cid_prefix = f"c{os.getpid():x}-"
        # Wall ≈ anchor + monotonic: lets _materialize() recover a
        # submit-time wall stamp without a per-beacon time.time() call.
        self._wall_anchor = time.time() - time.monotonic()
        self._ring: Deque[Dict[str, Any]] = deque(maxlen=self.capacity)
        self._rng = random.Random(seed)
        self._minted = 0
        self._completed = 0
        self._retained_total = 0
        self._sheds = 0
        self._shed_deadline = float("-inf")
        self._recent: Deque[float] = deque(maxlen=512)
        self._p99: Optional[float] = None
        self._c_retained = self._registry.counter("serve.traces.retained")
        self._c_dropped = self._registry.counter("serve.traces.dropped")
        self._h_stages = {
            stage: self._registry.histogram(f"serve.stage.{stage}_ms")
            for stage in STAGES
        }

    # -- hot path (serve threads) --------------------------------------
    def mint(self, observer: str, shard: int) -> TraceContext:
        """New context for one submitted beacon; stamps ``t_submit``."""
        with self._lock:
            self._minted += 1
            n = self._minted
        return TraceContext(
            self._cid_prefix + format(n, "x"), observer, shard
        )

    def register_worker(self, shard: int) -> List[Any]:
        """Hand a shard worker its per-thread hot-path cell.

        The cell is ``[queue_item, t_dequeued, ctx, shard]``.  Per
        dequeued beacon the worker writes slots 0–2 with plain C-level
        list stores — no method call, no allocation, under the GIL
        every per-beacon bytecode on *any* thread taxes ingest
        throughput.  A :class:`TraceContext` is only materialised
        lazily (:meth:`_materialize`) when something actually needs it:
        the span listener, the audit layer asking for the correlation
        id, or verdict completion.  Beacons that never trigger a
        detection — the overwhelming majority — pay three list stores
        and one clock read.

        The cell's ``queue_item`` slot may hold a stale item between
        beacons; only the owning worker thread reads it, and it
        overwrites the slot before every ``on_beacon`` call.
        """
        cell: List[Any] = [None, 0.0, None, shard]
        self._local.cell = cell
        return cell

    def _materialize(self, cell: List[Any]) -> TraceContext:
        """Build the context for the beacon currently in ``cell``."""
        item = cell[0]
        event = item[0]
        with self._lock:
            self._minted += 1
            n = self._minted
        ctx = TraceContext.__new__(TraceContext)
        ctx.correlation_id = self._cid_prefix + format(n, "x")
        ctx.observer = event.observer
        ctx.shard = cell[3]
        ctx.seq = None
        ctx.wall_submit = self._wall_anchor + item[1]
        ctx.t_submit = item[1]
        ctx.t_enqueued = item[2]
        ctx.t_dequeued = cell[1]
        ctx.t_detect_done = None
        ctx.stages = {}
        cell[2] = ctx
        return ctx

    def bind(self, ctx: TraceContext) -> None:
        """Make ``ctx`` this thread's current context (shard worker)."""
        self._local.ctx = ctx

    def unbind(self) -> None:
        """Clear this thread's current context."""
        self._local.ctx = None

    def current(self) -> Optional[TraceContext]:
        """The context bound to this thread, if any.

        On a shard worker thread this materialises the current
        beacon's context from the hot-path cell on first use; on any
        other thread it returns whatever :meth:`bind` installed.
        """
        cell = getattr(self._local, "cell", None)
        if cell is not None:
            ctx = cell[2]
            if ctx is None and cell[0] is not None:
                ctx = self._materialize(cell)
            return ctx
        return getattr(self._local, "ctx", None)

    def note_shed(self, observer: str, t: float, seq: int) -> None:
        """Record a shed event: arms the shed-adjacency window."""
        with self._lock:
            self._sheds += 1
            self._shed_deadline = time.monotonic() + self.shed_window_s

    # -- span listener (sub-stage capture) -----------------------------
    def on_span_start(self, span: Any) -> None:
        """Tracer listener hook (sub-stages only need the end)."""

    def on_span_end(self, span: Any) -> None:
        """Fold a finished ``pairwise_dtw``/``audit_write`` span into
        the bound context's sub-stage durations."""
        stage = _SPAN_STAGES.get(span.name)
        if stage is None:
            return
        ctx = self.current()
        if ctx is None or span.duration_ms is None:
            return
        ctx.stages[stage] = ctx.stages.get(stage, 0.0) + span.duration_ms

    # -- completion ----------------------------------------------------
    def complete(
        self, ctx: TraceContext, report: Any, latency_ms: float
    ) -> Optional[str]:
        """Finish a verdict trace: compute stages, observe histograms,
        decide retention.

        Returns:
            The retention reason, or None when the trace was sampled
            out (counted, not kept).
        """
        stages = ctx.stages
        if ctx.t_enqueued is not None:
            stages["ingest_enqueue"] = (
                ctx.t_enqueued - ctx.t_submit
            ) * 1000.0
            if ctx.t_dequeued is not None:
                stages["queue_wait"] = (
                    ctx.t_dequeued - ctx.t_enqueued
                ) * 1000.0
                if ctx.t_detect_done is not None:
                    stages["detect"] = (
                        ctx.t_detect_done - ctx.t_dequeued
                    ) * 1000.0
        for stage, duration in stages.items():
            hist = self._h_stages.get(stage)
            if hist is not None:
                hist.observe(duration)

        flagged = bool(report.sybil_pairs)
        epsilon = _near_miss_epsilon()
        near_miss = any(
            abs(margin) < epsilon for margin in report.margins.values()
        )
        now = time.monotonic()
        with self._lock:
            self._completed += 1
            self._recent.append(latency_ms)
            if self._completed % 64 == 0 and len(self._recent) >= 32:
                ordered = sorted(self._recent)
                self._p99 = ordered[
                    min(len(ordered) - 1, int(0.99 * len(ordered)))
                ]
            if flagged:
                reason: Optional[str] = "flagged"
            elif near_miss:
                reason = "near_miss"
            elif self._p99 is not None and latency_ms >= self._p99:
                reason = "slow"
            elif now <= self._shed_deadline:
                reason = "shed_adjacent"
            elif self._rng.random() < self.sample:
                reason = "sampled"
            else:
                reason = None
            if reason is None:
                self._c_dropped.inc()
                return None
            record = {
                "type": "trace",
                "correlation_id": ctx.correlation_id,
                "observer": ctx.observer,
                "seq": ctx.seq,
                "shard": ctx.shard,
                "reason": reason,
                "flagged": flagged,
                "near_miss": near_miss,
                "latency_ms": round(latency_ms, 3),
                "wall_submit": ctx.wall_submit,
                "t": float(report.timestamp),
                "sybil_ids": sorted(report.sybil_ids),
                "stages": {
                    stage: round(stages[stage], 3)
                    for stage in STAGES
                    if stage in stages
                },
            }
            self._ring.append(record)
            self._retained_total += 1
        self._c_retained.inc()
        return reason

    # -- introspection -------------------------------------------------
    @property
    def records(self) -> List[Dict[str, Any]]:
        """The ring's retained traces, oldest first."""
        with self._lock:
            return list(self._ring)

    def stats(self) -> Dict[str, int]:
        """Counters: minted / completed / retained / dropped / sheds."""
        with self._lock:
            return {
                "minted": self._minted,
                "completed": self._completed,
                "retained": len(self._ring),
                "retained_total": self._retained_total,
                "dropped": self._completed - self._retained_total,
                "sheds": self._sheds,
            }

    # -- cross-process folding (same shape as AuditLog) ----------------
    def snapshot(self) -> Dict[str, Any]:
        """Serializable copy of this ring's state for a parent to merge."""
        with self._lock:
            return {
                "version": SNAPSHOT_VERSION,
                "minted": self._minted,
                "completed": self._completed,
                "retained_total": self._retained_total,
                "sheds": self._sheds,
                "records": list(self._ring),
            }

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold a worker's snapshot in: records re-enter this ring
        (bound applies), counters track process-tree totals."""
        version = snapshot.get("version")
        if version != SNAPSHOT_VERSION:
            raise ValueError(
                f"cannot merge lineage snapshot version {version!r}"
            )
        with self._lock:
            self._minted += snapshot["minted"]
            self._completed += snapshot["completed"]
            self._retained_total += snapshot["retained_total"]
            self._sheds += snapshot["sheds"]
            for record in snapshot["records"]:
                self._ring.append(record)

    # -- persistence ---------------------------------------------------
    def dump_jsonl(self, out: str) -> str:
        """Write a header line plus one line per retained trace to a
        fresh :func:`~repro.obs.paths.indexed_path`; returns the path."""
        with self._lock:
            records = list(self._ring)
            header = {
                "type": "lineage",
                "version": SNAPSHOT_VERSION,
                "minted": self._minted,
                "completed": self._completed,
                "retained": len(records),
                "retained_total": self._retained_total,
                "sheds": self._sheds,
                "sample": self.sample,
                "capacity": self.capacity,
            }
        path = indexed_path(out)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(header) + "\n")
            for record in records:
                handle.write(
                    json.dumps(record, separators=(",", ":")) + "\n"
                )
        return path


def _near_miss_epsilon() -> float:
    # Late import: audit pulls in numpy; the lineage hot path must not
    # pay that import (or a cycle) at module load.
    from .audit import get_near_miss_epsilon

    return get_near_miss_epsilon()


# ----------------------------------------------------------------------
# Process-global lifecycle (mirrors the audit log's)
# ----------------------------------------------------------------------
_DEFAULT: Optional[Lineage] = None


def current_correlation_id() -> Optional[str]:
    """The correlation id of this thread's bound trace context, or
    None when lineage is off / nothing is bound.  Cheap enough for the
    detector's audit path: one global read and two ``None`` checks."""
    lineage = _DEFAULT
    if lineage is None:
        return None
    ctx = lineage.current()
    return None if ctx is None else ctx.correlation_id


def default_lineage() -> Optional[Lineage]:
    """The process-global lineage, or None while tracing is off."""
    return _DEFAULT


def start_lineage(
    capacity: int = 512,
    sample: float = 0.01,
    shed_window_s: float = 5.0,
    registry: Optional[MetricsRegistry] = None,
    seed: int = 7,
) -> Lineage:
    """Install (or return the already-installed) process-global
    lineage and register it as a span listener.

    Enables the process-global tracer if nothing else has — like the
    profiler, lineage needs spans to nest and time, but leaves any
    configured exporter untouched (no exporter ⇒ spans time without
    being written anywhere).
    """
    global _DEFAULT
    if _DEFAULT is not None:
        return _DEFAULT
    lineage = Lineage(
        capacity=capacity,
        sample=sample,
        shed_window_s=shed_window_s,
        registry=registry,
        seed=seed,
    )
    tracer = default_tracer()
    if not tracer.enabled:
        tracer.enable()
    tracer.add_span_listener(lineage)
    _DEFAULT = lineage
    return lineage


def stop_lineage() -> Optional[Lineage]:
    """Uninstall the global lineage (its ring stays readable); returns
    it, or None when lineage was off."""
    global _DEFAULT
    lineage = _DEFAULT
    _DEFAULT = None
    if lineage is not None:
        default_tracer().remove_span_listener(lineage)
    return lineage


def restart_in_child() -> Optional[Lineage]:
    """Replace a fork-inherited global lineage with a fresh ring.

    The inherited object is shared state with the parent in spirit
    (same ring, same counters); the child records into its own shard
    and ships a :meth:`~Lineage.snapshot` home for the parent to
    :meth:`~Lineage.merge` — the same discipline as the audit log.
    No-op (returns None) when the parent had lineage off.
    """
    global _DEFAULT
    inherited = _DEFAULT
    if inherited is None:
        return None
    tracer = default_tracer()
    tracer.remove_span_listener(inherited)
    _DEFAULT = Lineage(
        capacity=inherited.capacity,
        sample=inherited.sample,
        shed_window_s=inherited.shed_window_s,
        seed=inherited.seed,
    )
    tracer.add_span_listener(_DEFAULT)
    return _DEFAULT


# ----------------------------------------------------------------------
# Reading + export (the `repro trace` substrate)
# ----------------------------------------------------------------------
def load_lineage(path: str) -> List[Dict[str, Any]]:
    """Parse a :meth:`Lineage.dump_jsonl` file into its trace records.

    Raises:
        ValueError: The file is not a lineage dump.
    """
    records: List[Dict[str, Any]] = []
    with open(path, encoding="utf-8") as handle:
        for index, line in enumerate(handle):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{index + 1}: not JSON ({error})"
                ) from error
            kind = record.get("type")
            if index == 0:
                if kind != "lineage":
                    raise ValueError(
                        f"{path}: not a lineage dump (first record type "
                        f"{kind!r}; want 'lineage')"
                    )
                continue
            if kind == "trace":
                records.append(record)
    return records


def export_chrome_trace(
    records: List[Dict[str, Any]], out: str
) -> int:
    """Write trace records as Chrome-tracing / Perfetto JSON.

    One complete (``"ph": "X"``) event per stage, timestamps in
    microseconds anchored at each trace's wall-clock submit time; the
    ``compare`` / ``audit_write`` sub-stages are laid inside their
    ``detect`` window.  Each observer becomes a named thread row.

    Returns:
        The number of events written.
    """
    events: List[Dict[str, Any]] = []
    named: Dict[int, str] = {}
    for record in records:
        observer = str(record.get("observer", "?"))
        tid = zlib.crc32(observer.encode("utf-8")) & 0x7FFFFFFF
        if tid not in named:
            named[tid] = observer
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": tid,
                    "args": {"name": f"observer {observer}"},
                }
            )
        stages = record.get("stages", {})
        args = {
            "correlation_id": record.get("correlation_id"),
            "reason": record.get("reason"),
            "seq": record.get("seq"),
        }
        cursor = float(record.get("wall_submit", 0.0)) * 1e6
        detect_start = cursor
        for stage in TOP_STAGES:
            duration = stages.get(stage)
            if duration is None:
                continue
            if stage == "detect":
                detect_start = cursor
            events.append(
                {
                    "name": stage,
                    "cat": "serve",
                    "ph": "X",
                    "ts": cursor,
                    "dur": duration * 1000.0,
                    "pid": 1,
                    "tid": tid,
                    "args": args,
                }
            )
            cursor += duration * 1000.0
        sub_cursor = detect_start
        for stage in SUB_STAGES:
            duration = stages.get(stage)
            if duration is None:
                continue
            events.append(
                {
                    "name": stage,
                    "cat": "serve.detect",
                    "ph": "X",
                    "ts": sub_cursor,
                    "dur": duration * 1000.0,
                    "pid": 1,
                    "tid": tid,
                    "args": args,
                }
            )
            sub_cursor += duration * 1000.0
    with open(out, "w", encoding="utf-8") as handle:
        json.dump({"traceEvents": events}, handle)
    return len(events)
