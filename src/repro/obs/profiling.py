"""Phase-attributed profiling: sampling CPU profiler + memory attribution.

The telemetry layer can say *how long* a phase took (``phase.*_ms``
histograms); this module says *where the CPU and memory went inside
it*.  Two cooperating pieces, both off unless explicitly started:

* :class:`SamplingProfiler` — a background thread walks
  ``sys._current_frames()`` at a configurable rate and attributes each
  thread's Python stack to the **innermost open tracer span** on that
  thread (via :meth:`Tracer.open_span_names_by_thread`), folding span
  names onto the pipeline phases (collect / normalize / compare /
  confirm / sim / eval).  Samples whose innermost frame is a known
  blocking wait are counted as *idle* and excluded — a wall-clock
  sampler approximating CPU attribution must not bill blocked threads.
* **Memory attribution** (``memory=True``) — a span listener takes
  ``tracemalloc`` readings at span enter/exit and aggregates net and
  peak allocations per phase.  ``tracemalloc`` is started only when
  requested and stopped with the profiler.

Outputs: a collapsed-stack file (one ``phase;frame;frame count`` line,
directly consumable by flamegraph.pl and speedscope), a top-N hotspot
table, a per-phase breakdown, and a ``pipeline.profile.*`` gauge
family.  :meth:`SamplingProfiler.snapshot` / :meth:`merge` mirror
``MetricsRegistry.snapshot()/merge()`` so ``repro.eval.parallel``
workers ship their profiles home over the task pipe and the parent
folds them in — a sweep's profile covers every worker, serial or not.

Everything here costs nothing until started: no thread, no
``tracemalloc``, no span listeners.  The CLI's ``--profile`` /
``--profile-hz`` / ``--profile-out`` / ``--profile-memory`` flags are
the usual wiring (see README "Profiling").
"""

from __future__ import annotations

import sys
import threading
import time
import tracemalloc
from collections import Counter
from typing import Any, Dict, List, Optional, Tuple

from .metrics import MetricsRegistry, default_registry
from .paths import indexed_path
from .trace import Tracer, default_tracer

__all__ = [
    "DEFAULT_HZ",
    "PHASES",
    "SamplingProfiler",
    "phase_for_span",
    "indexed_path",
    "default_profiler",
    "start_default",
    "stop_default",
    "restart_in_child",
]

#: Default sampling rate.  99 Hz, not 100: a prime-ish rate avoids
#: phase-locking with 10 ms-periodic work (the classic profiler bias).
DEFAULT_HZ = 99.0

#: The pipeline phases samples are attributed to, in paper order.
PHASES = ("collect", "normalize", "compare", "confirm", "sim", "eval")

#: Span name -> phase.  The detector's phase markers (PR 1) carry the
#: attribution; the root ``detection`` span catches the between-child
#: slivers of Algorithm 1 and lands them in the comparison phase it
#: brackets.
_SPAN_PHASES: Dict[str, str] = {
    "collect": "collect",
    "normalise": "normalize",
    "pairwise_dtw": "compare",
    "minmax": "compare",
    "detection": "compare",
    "threshold": "confirm",
    "confirmation": "confirm",
    "sim": "sim",
    "eval": "eval",
}

#: Innermost-frame (filename suffix, function) pairs that mean the
#: thread is parked, not computing.  Matches how py-spy classifies
#: idle threads; the list only needs to cover stdlib blocking waits.
_IDLE_CALLS = (
    ("threading.py", "wait"),
    ("threading.py", "_wait_for_tstate_lock"),
    ("selectors.py", "select"),
    ("selectors.py", "poll"),
    ("socket.py", "accept"),
    ("socketserver.py", "serve_forever"),
    ("connection.py", "poll"),
    ("connection.py", "wait"),
    ("connection.py", "_poll"),
    ("popen_fork.py", "poll"),
    ("subprocess.py", "wait"),
)

#: Version stamped into :meth:`SamplingProfiler.snapshot` payloads.
SNAPSHOT_VERSION = 1

#: Cap on distinct (phase, stack) keys retained; past it, new stacks
#: collapse into a per-phase ``<truncated>`` bucket so a pathological
#: workload cannot grow the profile without bound.
_MAX_UNIQUE_STACKS = 65536


def phase_for_span(name: str) -> Optional[str]:
    """Map one span name onto a pipeline phase (None when unknown).

    Exact names first (the detector/pipeline/sim/eval markers), then a
    dotted prefix (``sim.highway`` -> ``sim``) so subsystem spans added
    later inherit their family's phase.
    """
    phase = _SPAN_PHASES.get(name)
    if phase is not None:
        return phase
    head = name.split(".", 1)[0]
    return _SPAN_PHASES.get(head) if head != name else None


def _frame_label(code: Any) -> str:
    """One collapsed-format frame: ``path/to/module.py:function``.

    Paths inside the ``repro`` package are shortened to their
    package-relative form so flamegraphs read the same on every host;
    separators the collapsed format reserves are replaced.
    """
    filename = code.co_filename.replace("\\", "/")
    marker = "/repro/"
    cut = filename.rfind(marker)
    if cut >= 0:
        filename = "repro/" + filename[cut + len(marker):]
    else:
        filename = filename.rsplit("/", 1)[-1]
    label = f"{filename}:{code.co_name}"
    return label.replace(";", ",").replace(" ", "_")


def _is_idle(frame: Any) -> bool:
    """Whether a sampled thread's innermost frame is a blocking wait."""
    code = frame.f_code
    filename = code.co_filename
    name = code.co_name
    for suffix, func in _IDLE_CALLS:
        if name == func and filename.endswith(suffix):
            return True
    return False


class _MemoryListener:
    """Span listener aggregating tracemalloc readings per phase.

    On span enter the current traced size is recorded and the peak
    reset; on exit the phase is billed the net growth and the peak
    above the entry level.  Nested phase spans reset the peak for their
    parent — the parent's peak is therefore a lower bound when children
    allocate inside it (documented in DESIGN 5d); net allocation is
    exact regardless of nesting.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._open: Dict[str, Tuple[str, int]] = {}
        self.per_phase: Dict[str, Dict[str, int]] = {}

    def on_span_start(self, span: Any) -> None:
        phase = phase_for_span(span.name)
        if phase is None or not tracemalloc.is_tracing():
            return
        current, _peak = tracemalloc.get_traced_memory()
        tracemalloc.reset_peak()
        with self._lock:
            self._open[span.span_id] = (phase, current)

    def on_span_end(self, span: Any) -> None:
        with self._lock:
            entry = self._open.pop(span.span_id, None)
        if entry is None or not tracemalloc.is_tracing():
            return
        phase, start = entry
        current, peak = tracemalloc.get_traced_memory()
        with self._lock:
            stats = self.per_phase.setdefault(
                phase, {"net_bytes": 0, "peak_bytes": 0, "spans": 0}
            )
            stats["net_bytes"] += current - start
            stats["peak_bytes"] = max(stats["peak_bytes"], peak - start)
            stats["spans"] += 1

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        with self._lock:
            return {phase: dict(stats) for phase, stats in self.per_phase.items()}


class SamplingProfiler:
    """Low-overhead sampling profiler attributed to tracer spans.

    Args:
        hz: Sampling rate; :data:`DEFAULT_HZ` keeps the overhead well
            under the benchmarked 5 % gate.
        tracer: Tracer whose open spans carry the phase attribution
            (default: the process-global one).  The tracer must be
            *enabled* for attribution — with it disabled every busy
            sample lands in the ``other`` bucket.
        memory: Also start ``tracemalloc`` and aggregate per-phase
            memory via a span listener.  Off by default — tracing
            allocations costs real time, unlike stack sampling.
        registry: Destination for :meth:`publish_gauges` (default: the
            process-global registry).
    """

    def __init__(
        self,
        hz: float = DEFAULT_HZ,
        tracer: Optional[Tracer] = None,
        memory: bool = False,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if hz <= 0:
            raise ValueError(f"sampling rate must be positive, got {hz}")
        self.hz = float(hz)
        self.memory_enabled = bool(memory)
        self._tracer = tracer if tracer is not None else default_tracer()
        self._registry = registry if registry is not None else default_registry()
        self._lock = threading.Lock()
        self._stacks: Counter = Counter()
        self._phase_counts: Counter = Counter()
        # Code-object -> rendered frame label.  Label rendering is the
        # expensive part of a sample (string surgery per frame); code
        # objects are long-lived and finite, so a plain dict amortises
        # it away after the first sighting.
        self._labels: Dict[Any, str] = {}
        self.samples_total = 0
        self.idle_samples = 0
        self.attributed_samples = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._memory: Optional[_MemoryListener] = None
        self._started_tracemalloc = False

    # -- lifecycle -------------------------------------------------------
    @property
    def running(self) -> bool:
        """Whether the sampling thread is currently alive."""
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "SamplingProfiler":
        """Start the sampling thread (and tracemalloc when requested)."""
        if self._thread is not None:
            return self
        if self.memory_enabled:
            self._memory = _MemoryListener()
            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._started_tracemalloc = True
            self._tracer.add_span_listener(self._memory)
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        """Stop sampling and detach the memory listener (idempotent)."""
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=5.0)
            self._thread = None
        if self._memory is not None:
            self._tracer.remove_span_listener(self._memory)
            if self._started_tracemalloc and tracemalloc.is_tracing():
                tracemalloc.stop()
                self._started_tracemalloc = False
        return self

    def _loop(self) -> None:
        interval = 1.0 / self.hz
        # Event.wait drifts by the sample cost; re-anchor on a deadline
        # so the configured rate holds over long runs.
        next_at = time.perf_counter() + interval
        while not self._stop.wait(max(0.0, next_at - time.perf_counter())):
            self.sample_once()
            next_at += interval
            now = time.perf_counter()
            if next_at < now:  # fell behind (suspended laptop, GC storm)
                next_at = now + interval

    # -- sampling --------------------------------------------------------
    def sample_once(self) -> None:
        """Take one sample of every thread (called by the loop; public
        for deterministic tests).

        Only the background sampler thread is excluded from its own
        samples — a direct call therefore samples the calling thread
        too, which is what deterministic tests want.
        """
        sampler = self._thread
        skip = sampler.ident if sampler is not None else None
        frames = sys._current_frames()
        span_stacks = self._tracer.open_span_names_by_thread()
        with self._lock:
            for ident, frame in frames.items():
                if ident == skip:
                    continue
                if _is_idle(frame):
                    self.idle_samples += 1
                    continue
                phase: Optional[str] = None
                names = span_stacks.get(ident)
                if names:
                    for name in reversed(names):  # innermost span wins
                        phase = phase_for_span(name)
                        if phase is not None:
                            break
                if phase is None:
                    phase = "other"
                else:
                    self.attributed_samples += 1
                self.samples_total += 1
                self._phase_counts[phase] += 1
                stack: List[str] = []
                depth = 0
                labels = self._labels
                while frame is not None and depth < 128:
                    code = frame.f_code
                    label = labels.get(code)
                    if label is None:
                        label = labels[code] = _frame_label(code)
                    stack.append(label)
                    frame = frame.f_back
                    depth += 1
                stack.reverse()  # outermost first, collapsed-stack order
                key = (phase, tuple(stack))
                if key not in self._stacks and len(self._stacks) >= _MAX_UNIQUE_STACKS:
                    key = (phase, ("<truncated>",))
                self._stacks[key] += 1

    # -- cross-process snapshot/merge --------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """JSON-serialisable dump, mergeable with :meth:`merge`.

        The wire format ``repro.eval.parallel`` workers use to ship
        their per-process profile back to the parent, exactly like
        ``MetricsRegistry.snapshot()``.
        """
        with self._lock:
            return {
                "version": SNAPSHOT_VERSION,
                "hz": self.hz,
                "samples": self.samples_total,
                "idle_samples": self.idle_samples,
                "attributed_samples": self.attributed_samples,
                "phases": dict(self._phase_counts),
                "stacks": [
                    [phase, list(frames), count]
                    for (phase, frames), count in self._stacks.items()
                ],
                "memory": (
                    self._memory.snapshot() if self._memory is not None else None
                ),
            }

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold another profiler's :meth:`snapshot` into this one.

        Sample counts add (so a sweep's total is the sum over every
        worker), per-phase memory adds net / maxes peak.
        """
        version = snapshot.get("version")
        if version != SNAPSHOT_VERSION:
            raise ValueError(
                f"unsupported profile snapshot version {version!r} "
                f"(expected {SNAPSHOT_VERSION})"
            )
        with self._lock:
            self.samples_total += int(snapshot.get("samples", 0))
            self.idle_samples += int(snapshot.get("idle_samples", 0))
            self.attributed_samples += int(snapshot.get("attributed_samples", 0))
            for phase, count in snapshot.get("phases", {}).items():
                self._phase_counts[phase] += int(count)
            for phase, frames, count in snapshot.get("stacks", []):
                key = (phase, tuple(frames))
                if key not in self._stacks and len(self._stacks) >= _MAX_UNIQUE_STACKS:
                    key = (phase, ("<truncated>",))
                self._stacks[key] += int(count)
        incoming = snapshot.get("memory")
        if incoming and self._memory is not None:
            with self._memory._lock:
                for phase, stats in incoming.items():
                    mine = self._memory.per_phase.setdefault(
                        phase, {"net_bytes": 0, "peak_bytes": 0, "spans": 0}
                    )
                    mine["net_bytes"] += int(stats["net_bytes"])
                    mine["peak_bytes"] = max(
                        mine["peak_bytes"], int(stats["peak_bytes"])
                    )
                    mine["spans"] += int(stats["spans"])

    # -- derived views -----------------------------------------------------
    @property
    def attributed_ratio(self) -> Optional[float]:
        """Fraction of busy samples attributed to a known phase."""
        if not self.samples_total:
            return None
        return self.attributed_samples / self.samples_total

    def phase_breakdown(self) -> Dict[str, int]:
        """Busy samples per phase, known phases in paper order first."""
        with self._lock:
            counts = dict(self._phase_counts)
        ordered: Dict[str, int] = {}
        for phase in PHASES:
            if phase in counts:
                ordered[phase] = counts.pop(phase)
        for phase in sorted(counts):
            ordered[phase] = counts[phase]
        return ordered

    def memory_breakdown(self) -> Optional[Dict[str, Dict[str, int]]]:
        """Per-phase memory stats, or None without ``memory=True``."""
        return self._memory.snapshot() if self._memory is not None else None

    def hotspots(self, top: int = 15) -> List[Dict[str, Any]]:
        """Top functions by self samples (the classic hotspot list).

        Each entry carries the frame label, self and total sample
        counts (total = stacks the frame appears anywhere in), and the
        frame's dominant phase.
        """
        self_counts: Counter = Counter()
        total_counts: Counter = Counter()
        phase_votes: Dict[str, Counter] = {}
        with self._lock:
            items = list(self._stacks.items())
        for (phase, frames), count in items:
            if not frames:
                continue
            leaf = frames[-1]
            self_counts[leaf] += count
            phase_votes.setdefault(leaf, Counter())[phase] += count
            for frame in set(frames):
                total_counts[frame] += count
        total = sum(self_counts.values())
        rows = []
        for frame, self_n in self_counts.most_common(top):
            rows.append(
                {
                    "function": frame,
                    "self": self_n,
                    "self_pct": (100.0 * self_n / total) if total else 0.0,
                    "total": total_counts[frame],
                    "phase": phase_votes[frame].most_common(1)[0][0],
                }
            )
        return rows

    # -- output --------------------------------------------------------
    def write_collapsed(self, path: str) -> int:
        """Write the collapsed-stack file; returns lines written.

        One line per distinct stack — ``phase;frame;...;frame count``
        — with the phase as the root frame, so a flamegraph shows one
        tower per pipeline phase.  Feed it to ``flamegraph.pl`` or drop
        it straight into https://speedscope.app.
        """
        with self._lock:
            items = sorted(self._stacks.items())
        with open(path, "w", encoding="utf-8") as handle:
            for (phase, frames), count in items:
                handle.write(";".join((phase,) + tuple(frames)) + f" {count}\n")
        return len(items)

    def write_memory_jsonl(self, path: str) -> int:
        """Write one JSON line per phase's memory stats; returns lines."""
        import json

        breakdown = self.memory_breakdown() or {}
        with open(path, "w", encoding="utf-8") as handle:
            for phase in sorted(breakdown):
                record = {"type": "memory", "phase": phase, **breakdown[phase]}
                handle.write(json.dumps(record) + "\n")
        return len(breakdown)

    def hotspot_table(self, top: int = 15) -> str:
        """The top-N hotspot list rendered via the repo's table style."""
        from ..eval.reporting import render_table  # lazy: avoids obs<->eval cycle

        rows = [
            (
                entry["function"],
                entry["phase"],
                entry["self"],
                f"{entry['self_pct']:.1f}%",
                entry["total"],
            )
            for entry in self.hotspots(top)
        ]
        return render_table(
            ["function", "phase", "self", "self%", "total"],
            rows,
            title=f"profile hotspots (top {len(rows)} of {self.samples_total} samples)",
        )

    def phase_table(self) -> str:
        """Per-phase CPU (and memory, when traced) breakdown table."""
        from ..eval.reporting import render_table  # lazy: avoids obs<->eval cycle

        breakdown = self.phase_breakdown()
        memory = self.memory_breakdown()
        total = sum(breakdown.values())
        rows = []
        for phase, count in breakdown.items():
            row = [phase, count, f"{100.0 * count / total:.1f}%" if total else "-"]
            if memory is not None:
                stats = memory.get(phase)
                row.append(
                    f"{stats['net_bytes'] / 1024.0:+.0f}" if stats else "-"
                )
                row.append(
                    f"{stats['peak_bytes'] / 1024.0:.0f}" if stats else "-"
                )
            rows.append(tuple(row))
        headers = ["phase", "samples", "cpu%"]
        if memory is not None:
            headers += ["net KiB", "peak KiB"]
        idle = self.idle_samples
        return render_table(
            headers,
            rows,
            title=f"profile phases ({total} busy / {idle} idle samples)",
        )

    def publish_gauges(self) -> None:
        """Publish the ``pipeline.profile.*`` gauge family."""
        registry = self._registry
        registry.gauge("pipeline.profile.samples").set(self.samples_total)
        registry.gauge("pipeline.profile.idle_samples").set(self.idle_samples)
        ratio = self.attributed_ratio
        if ratio is not None:
            registry.gauge("pipeline.profile.attributed_ratio").set(ratio)
        breakdown = self.phase_breakdown()
        total = sum(breakdown.values())
        for phase, count in breakdown.items():
            registry.gauge(f"pipeline.profile.phase_ratio.{phase}").set(
                count / total if total else 0.0
            )
        memory = self.memory_breakdown()
        if memory:
            for phase, stats in memory.items():
                registry.gauge(f"pipeline.profile.mem_peak_kb.{phase}").set(
                    stats["peak_bytes"] / 1024.0
                )


# ---------------------------------------------------------------------------
# Process-global profiler (the CLI's --profile, inherited by fork workers)
# ---------------------------------------------------------------------------
_DEFAULT: Optional[SamplingProfiler] = None


def default_profiler() -> Optional[SamplingProfiler]:
    """The process-global profiler, or None when profiling is off."""
    return _DEFAULT


def start_default(
    hz: float = DEFAULT_HZ, memory: bool = False
) -> SamplingProfiler:
    """Start (or return) the process-global profiler.

    Enables the process-global tracer if it is not already recording —
    span attribution is the whole point — leaving any configured
    exporter untouched.
    """
    global _DEFAULT
    if _DEFAULT is not None:
        return _DEFAULT
    tracer = default_tracer()
    if not tracer.enabled:
        tracer.enable()
    _DEFAULT = SamplingProfiler(hz=hz, memory=memory).start()
    return _DEFAULT


def stop_default() -> Optional[SamplingProfiler]:
    """Stop and detach the process-global profiler; returns it (its
    collected data stays readable) or None when profiling was off."""
    global _DEFAULT
    profiler = _DEFAULT
    _DEFAULT = None
    if profiler is not None:
        profiler.stop()
    return profiler


def restart_in_child() -> Optional[SamplingProfiler]:
    """Resume profiling inside a forked worker process.

    A fork inherits the parent's profiler *object* but not its sampling
    thread, and the inherited sample buffers belong to the parent.  A
    worker therefore swaps in a fresh profiler with the same settings
    (detaching the inherited memory listener first, so nothing records
    into the parent's buffers) and ships its own snapshot home, where
    ``run_tasks`` merges it — mirroring how worker metrics travel.
    Returns the fresh profiler, or None when profiling is off.
    """
    global _DEFAULT
    inherited = _DEFAULT
    if inherited is None:
        return None
    if inherited._memory is not None:
        inherited._tracer.remove_span_listener(inherited._memory)
    _DEFAULT = SamplingProfiler(
        hz=inherited.hz, memory=inherited.memory_enabled
    ).start()
    return _DEFAULT
