"""``repro.obs`` — metrics, span tracing, and structured logging.

One zero-dependency observability layer threaded through the detection
pipeline, the simulators, and the evaluation harness:

* :mod:`repro.obs.metrics` — thread-safe counters / gauges / histograms
  in a :class:`MetricsRegistry` with JSON-lines export.
* :mod:`repro.obs.timers` — :class:`Stopwatch`, a context-manager /
  decorator that records durations into histograms.
* :mod:`repro.obs.trace` — nested spans tracing one detection end to
  end (normalise → pairwise FastDTW → min-max → threshold), exported
  as JSONL.
* :mod:`repro.obs.logging` — structured ``key=value`` stdlib logging.

Everything is **off by default**: the process-global registry and
tracer start disabled, and disabled instruments drop calls after a
single boolean check, so library users who never call :func:`configure`
pay (almost) nothing.  Components also accept injected registries and
tracers for isolated observation in tests.

Typical wiring (what the CLI's ``--log-level`` / ``--metrics-out`` /
``--trace-out`` flags do)::

    from repro import obs

    obs.configure(log_level="INFO", metrics=True,
                  trace_exporter=obs.JsonlSpanExporter("trace.jsonl"))
    ... run detections ...
    obs.default_registry().write_jsonl("metrics.jsonl")
    obs.shutdown()
"""

from __future__ import annotations

from typing import Optional, Union

from .logging import KeyValueFormatter, configure as configure_logging, get_logger
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
)
from .timers import Stopwatch
from .trace import (
    InMemorySpanExporter,
    JsonlSpanExporter,
    Span,
    SpanExporter,
    Tracer,
    default_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Stopwatch",
    "Span",
    "SpanExporter",
    "InMemorySpanExporter",
    "JsonlSpanExporter",
    "Tracer",
    "KeyValueFormatter",
    "get_logger",
    "configure_logging",
    "default_registry",
    "default_tracer",
    "configure",
    "disable",
    "shutdown",
]


def configure(
    log_level: Optional[Union[int, str]] = None,
    metrics: bool = True,
    trace_exporter: Optional[SpanExporter] = None,
) -> None:
    """Switch process-global observability on.

    Args:
        log_level: When given, installs the structured handler on the
            ``repro`` logger at this level (see
            :func:`repro.obs.logging.configure`).
        metrics: Enable the process-global metrics registry.
        trace_exporter: When given, enables the process-global tracer
            and routes finished spans to this exporter.
    """
    if log_level is not None:
        configure_logging(level=log_level)
    if metrics:
        default_registry().enable()
    if trace_exporter is not None:
        default_tracer().enable(trace_exporter)


def disable() -> None:
    """Switch the process-global registry and tracer back off."""
    default_registry().disable()
    default_tracer().disable()


def shutdown() -> None:
    """Disable global observability and close the tracer's exporter."""
    disable()
    tracer = default_tracer()
    if tracer.exporter is not None:
        tracer.exporter.close()
        tracer.exporter = None
