"""``repro.obs`` — metrics, tracing, logging, and runtime telemetry.

One zero-dependency observability layer threaded through the detection
pipeline, the simulators, and the evaluation harness:

* :mod:`repro.obs.metrics` — thread-safe counters / gauges / histograms
  in a :class:`MetricsRegistry` with JSON-lines export (histograms take
  an optional reservoir cap for unbounded online runs).
* :mod:`repro.obs.timers` — :class:`Stopwatch`, a context-manager /
  decorator that records durations into histograms.
* :mod:`repro.obs.trace` — nested spans tracing one detection end to
  end (normalise → pairwise FastDTW → min-max → threshold), exported
  as JSONL; open spans are flushed as partial records on shutdown or
  an unhandled exception, so exports are never truncated.
* :mod:`repro.obs.logging` — structured ``key=value`` stdlib logging.
* :mod:`repro.obs.prometheus` — Prometheus text exposition of a
  registry snapshot.
* :mod:`repro.obs.telemetry` — the runtime consumers: a periodic
  :class:`Snapshotter` (counter deltas → rates, JSONL + ``rate.*``
  gauges), a :class:`SpanLatencyRecorder` (spans → per-phase latency
  histograms) and a background :class:`TelemetryServer` serving
  ``/metrics`` and ``/health``.
* :mod:`repro.obs.health` — a streaming :class:`HealthMonitor` for the
  online pipeline (staleness watchdog, latency / flag-rate / density
  sliding windows, threshold alerts).
* :mod:`repro.obs.flightrec` — a bounded :class:`FlightRecorder` ring
  of recent spans / logs / reports / shed events that dumps a
  post-mortem JSONL bundle when an alert or an unhandled exception
  fires.
* :mod:`repro.obs.lineage` — beacon-to-verdict causal tracing for the
  serve layer: a :class:`TraceContext` propagated through the ingest
  queues decomposes each verdict into ``serve.stage.*_ms`` stage
  histograms, a tail-sampled trace ring keeps the flagged / near-miss
  / slow / shed-adjacent paths, and a correlation id joins each trace
  to its audit bundle and flight-recorder rows (``repro trace``).
* :mod:`repro.obs.profiling` — a :class:`SamplingProfiler` attributing
  stack samples (and optionally tracemalloc memory) to the open tracer
  span's pipeline phase; collapsed-stack / hotspot-table export and
  cross-process snapshot merge.
* :mod:`repro.obs.audit` — a decision-provenance :class:`AuditLog`
  recording per-pair evidence (windows, normalisation stats, DTW
  distance, margin, prune/cache provenance, verdict) for every
  detection, with a bit-exact replay contract consumed by the
  ``repro explain`` forensics command (:mod:`repro.obs.explain`).
* :mod:`repro.obs.tsdb` — :class:`TimeSeriesDB`, a bounded-memory
  multi-resolution (RRD-style) ring store of the run's telemetry
  trajectory, fed per Snapshotter tick and served at ``/series``.
* :mod:`repro.obs.drift` — :class:`CusumDetector` /
  :class:`PageHinkleyDetector` change detection over the watched
  quality signals, plus declarative :class:`SLOSpec` objectives with
  multi-window error-budget burn-rate alerting
  (:class:`DriftMonitor`).
* :mod:`repro.obs.watch` / :mod:`repro.obs.report` — the
  ``repro watch`` terminal dashboard over a live endpoint or recorded
  run, and the static end-of-run HTML/markdown report
  (``--report-out``).

Everything is **off by default**: the process-global registry and
tracer start disabled, and disabled instruments drop calls after a
single boolean check, so library users who never call :func:`configure`
pay (almost) nothing.  Components also accept injected registries and
tracers for isolated observation in tests.

Typical wiring (what the CLI's ``--log-level`` / ``--metrics-out`` /
``--trace-out`` / ``--telemetry-port`` flags do)::

    from repro import obs

    obs.configure(log_level="INFO", metrics=True,
                  trace_exporter=obs.JsonlSpanExporter("trace.jsonl"))
    server = obs.TelemetryServer(port=9110).start()   # live /metrics
    ... run detections ...
    obs.default_registry().write_jsonl("metrics.jsonl")
    server.stop()
    obs.shutdown()
"""

from __future__ import annotations

import atexit
from typing import Optional, Union

from .logging import KeyValueFormatter, configure as configure_logging, get_logger
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
)
from .timers import Stopwatch
from .trace import (
    InMemorySpanExporter,
    JsonlSpanExporter,
    Span,
    SpanExporter,
    Tracer,
    default_tracer,
)
from .prometheus import render_prometheus, sanitize_metric_name
from .telemetry import Snapshotter, SpanLatencyRecorder, TelemetryServer
from .health import (
    Alert,
    HealthMonitor,
    HealthThresholds,
    default_monitor,
    set_default_monitor,
)
from .flightrec import (
    FlightRecorder,
    TeeSpanExporter,
    default_recorder,
    set_default_recorder,
)
from .lineage import (
    Lineage,
    TraceContext,
    current_correlation_id,
    default_lineage,
    export_chrome_trace,
    load_lineage,
    restart_in_child as restart_lineage_in_child,
    start_lineage,
    stop_lineage,
)
from .paths import counted_path, indexed_path
from .profiling import (
    SamplingProfiler,
    default_profiler,
    phase_for_span,
    restart_in_child,
    start_default as start_profiler,
    stop_default as stop_profiler,
)
from .tsdb import DEFAULT_RESOLUTIONS, Bucket, TimeSeriesDB
from .drift import (
    CusumDetector,
    DriftMonitor,
    PageHinkleyDetector,
    SLOSpec,
    default_slos,
)
from .watch import load_frame, render_dashboard, run_watch
from .report import build_report, write_report
from .audit import (
    AuditLog,
    default_audit_log,
    get_near_miss_epsilon,
    load_audit_log,
    set_audit_context,
    set_near_miss_epsilon,
    signed_margin,
    start_default as start_audit,
    stop_default as stop_audit,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Stopwatch",
    "Span",
    "SpanExporter",
    "InMemorySpanExporter",
    "JsonlSpanExporter",
    "TeeSpanExporter",
    "Tracer",
    "KeyValueFormatter",
    "get_logger",
    "configure_logging",
    "render_prometheus",
    "sanitize_metric_name",
    "Snapshotter",
    "SpanLatencyRecorder",
    "TelemetryServer",
    "Bucket",
    "TimeSeriesDB",
    "DEFAULT_RESOLUTIONS",
    "CusumDetector",
    "PageHinkleyDetector",
    "DriftMonitor",
    "SLOSpec",
    "default_slos",
    "load_frame",
    "render_dashboard",
    "run_watch",
    "build_report",
    "write_report",
    "Alert",
    "HealthMonitor",
    "HealthThresholds",
    "FlightRecorder",
    "default_recorder",
    "set_default_recorder",
    "Lineage",
    "TraceContext",
    "current_correlation_id",
    "default_lineage",
    "start_lineage",
    "stop_lineage",
    "restart_lineage_in_child",
    "load_lineage",
    "export_chrome_trace",
    "SamplingProfiler",
    "phase_for_span",
    "counted_path",
    "indexed_path",
    "default_profiler",
    "start_profiler",
    "stop_profiler",
    "restart_in_child",
    "AuditLog",
    "default_audit_log",
    "start_audit",
    "stop_audit",
    "set_audit_context",
    "get_near_miss_epsilon",
    "set_near_miss_epsilon",
    "signed_margin",
    "load_audit_log",
    "default_registry",
    "default_tracer",
    "default_monitor",
    "set_default_monitor",
    "configure",
    "disable",
    "shutdown",
]

_atexit_registered = False


def _atexit_close() -> None:
    """Last-chance flush so crashes never truncate span exports."""
    tracer = default_tracer()
    if tracer.exporter is not None:
        try:
            tracer.close(reason="atexit")
        except Exception:  # interpreter is going down; never raise here
            pass


def configure(
    log_level: Optional[Union[int, str]] = None,
    metrics: bool = True,
    trace_exporter: Optional[SpanExporter] = None,
) -> None:
    """Switch process-global observability on.

    Args:
        log_level: When given, installs the structured handler on the
            ``repro`` logger at this level (see
            :func:`repro.obs.logging.configure`).
        metrics: Enable the process-global metrics registry.
        trace_exporter: When given, enables the process-global tracer
            and routes finished spans to this exporter.  An atexit
            hook is registered (once) that flushes open spans and
            closes the exporter, so an unhandled exception still
            produces a complete JSONL stream.
    """
    global _atexit_registered
    if log_level is not None:
        configure_logging(level=log_level)
    if metrics:
        default_registry().enable()
    if trace_exporter is not None:
        default_tracer().enable(trace_exporter)
        if not _atexit_registered:
            atexit.register(_atexit_close)
            _atexit_registered = True


def disable() -> None:
    """Switch the process-global registry and tracer back off."""
    default_registry().disable()
    default_tracer().disable()


def shutdown() -> None:
    """Disable global observability and close the tracer's exporter.

    Open spans (if any survived — e.g. after an exception unwound past
    their owner) are exported as partial records first.
    """
    disable()
    tracer = default_tracer()
    if tracer.exporter is not None:
        tracer.close(reason="shutdown")
        tracer.exporter = None
