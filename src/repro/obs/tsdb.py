"""Multi-resolution in-memory time-series store for runtime telemetry.

The :class:`~repro.obs.telemetry.Snapshotter` turns the metrics
registry into per-tick deltas, but each tick overwrites the last — a
run retains no *trajectory*, so quality drift (the paper's Fig. 14
margin collapse, a density shift skewing Eq. 9 thresholds) is
invisible until accuracy has already degraded.  :class:`TimeSeriesDB`
keeps that trajectory with bounded memory, RRD-style: every recorded
``(name, t, value)`` sample is folded into one bucket per configured
resolution, and each resolution is a ring that retains only its most
recent ``capacity`` buckets::

    1 s  × 600  buckets  (last 10 minutes, fine)
    10 s × 720  buckets  (last 2 hours, medium)
    60 s × 1440 buckets  (last 24 hours, coarse)

A bucket is the classic consolidation tuple ``count / sum / min / max /
last`` (plus the timestamp of the *last* sample, so cross-process
merges can agree on ``last``).  Recording is O(#resolutions) per
sample, reads are sorted on demand, and the memory bound is
``series × Σ capacity`` buckets no matter how long the run lives.

Like :class:`~repro.obs.metrics.MetricsRegistry`, the store supports
``snapshot()`` / ``merge()`` so ``repro.eval.parallel`` workers can
fold their series into the parent — buckets merge exactly for
count/sum/min/max and by sample recency for ``last``, and out-of-order
ticks (a slow worker shipping old buckets late) land in the right
buckets as long as they are still within a ring's retention.  JSONL
persistence (:meth:`dump_jsonl` / :meth:`load_jsonl`) is what
``--watch-record`` writes and ``repro watch`` replays.

Everything is stdlib-only and constructed explicitly: nothing in the
library records into a TSDB unless one is wired into a Snapshotter.
"""

from __future__ import annotations

import json
import math
import threading
from typing import Any, Dict, IO, Iterable, List, Optional, Sequence, Tuple, Union

__all__ = ["Bucket", "TimeSeriesDB", "DEFAULT_RESOLUTIONS"]

#: (step seconds, ring capacity in buckets) — 10 min fine, 2 h medium,
#: 24 h coarse, mirroring classic RRD default archives.
DEFAULT_RESOLUTIONS: Tuple[Tuple[float, int], ...] = (
    (1.0, 600),
    (10.0, 720),
    (60.0, 1440),
)

# Bucket list layout (kept as a plain list for cheap JSON round-trips).
_COUNT, _SUM, _MIN, _MAX, _LAST, _LAST_T = range(6)


class Bucket:
    """Read view of one consolidated bucket (returned by :meth:`query`)."""

    __slots__ = ("t", "count", "sum", "min", "max", "last")

    def __init__(
        self,
        t: float,
        count: int,
        total: float,
        lo: float,
        hi: float,
        last: float,
    ) -> None:
        self.t = t
        self.count = count
        self.sum = total
        self.min = lo
        self.max = hi
        self.last = last

    @property
    def mean(self) -> float:
        """Average of the samples folded into this bucket."""
        return self.sum / self.count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Bucket(t={self.t}, count={self.count}, mean={self.mean:.4g})"
        )


class TimeSeriesDB:
    """Named series of multi-resolution ring-consolidated buckets.

    Args:
        resolutions: ``(step_s, capacity)`` pairs, finest first.  Every
            sample is folded into one bucket per resolution.
        max_series: Upper bound on distinct series names — a runaway
            metric namespace must not grow memory without bound; new
            names beyond the cap are counted in :attr:`dropped_series`
            and otherwise ignored.
    """

    #: Format version stamped into snapshots and JSONL headers.
    SNAPSHOT_VERSION = 1

    def __init__(
        self,
        resolutions: Sequence[Tuple[float, int]] = DEFAULT_RESOLUTIONS,
        max_series: int = 512,
    ) -> None:
        if not resolutions:
            raise ValueError("need at least one (step_s, capacity) pair")
        for step, capacity in resolutions:
            if step <= 0 or capacity < 1:
                raise ValueError(
                    f"bad resolution (step={step}, capacity={capacity})"
                )
        if max_series < 1:
            raise ValueError(f"max_series must be >= 1, got {max_series}")
        self.resolutions: Tuple[Tuple[float, int], ...] = tuple(
            (float(step), int(capacity)) for step, capacity in resolutions
        )
        self.max_series = int(max_series)
        self.dropped_series = 0
        self.samples = 0
        self._lock = threading.Lock()
        # name -> [dict bucket_index -> bucket list, one dict per resolution]
        self._series: Dict[str, List[Dict[int, List[float]]]] = {}

    # -- writing -------------------------------------------------------
    def record(self, name: str, value: float, t: float) -> None:
        """Fold one sample into every resolution's bucket at time ``t``."""
        value = float(value)
        if not math.isfinite(value):
            return
        with self._lock:
            rings = self._series.get(name)
            if rings is None:
                if len(self._series) >= self.max_series:
                    self.dropped_series += 1
                    return
                rings = [{} for _ in self.resolutions]
                self._series[name] = rings
            self.samples += 1
            for (step, capacity), ring in zip(self.resolutions, rings):
                index = int(t // step)
                bucket = ring.get(index)
                if bucket is None:
                    ring[index] = [1, value, value, value, value, t]
                    if len(ring) > capacity:
                        for stale in sorted(ring)[: len(ring) - capacity]:
                            del ring[stale]
                else:
                    bucket[_COUNT] += 1
                    bucket[_SUM] += value
                    if value < bucket[_MIN]:
                        bucket[_MIN] = value
                    if value > bucket[_MAX]:
                        bucket[_MAX] = value
                    if t >= bucket[_LAST_T]:
                        bucket[_LAST] = value
                        bucket[_LAST_T] = t

    def observe_snapshot(self, record: Dict[str, Any], t: float) -> None:
        """Fold one Snapshotter tick record into the store.

        Derived series, one sample each at tick time ``t``:

        * every counter with a computed rate → ``rate.<name>`` (per
          second, from this tick's delta);
        * every set gauge → its own name verbatim;
        * every histogram with new samples this tick →
          ``<name>.tick_mean`` (``sum_delta / count_delta`` — the
          windowed mean, which is what drift detection wants) plus the
          cumulative ``<name>.p50`` / ``<name>.p99`` quantiles.
        """
        for name, entry in record.get("counters", {}).items():
            rate = entry.get("rate")
            if rate is not None:
                self.record(f"rate.{name}", rate, t)
        for name, value in record.get("gauges", {}).items():
            if value is not None:
                self.record(name, value, t)
        for name, summary in record.get("histograms", {}).items():
            count_delta = summary.get("count_delta") or 0
            sum_delta = summary.get("sum_delta")
            if count_delta > 0 and sum_delta is not None:
                self.record(
                    f"{name}.tick_mean", sum_delta / count_delta, t
                )
            for quantile in ("p50", "p99"):
                value = summary.get(quantile)
                if value is not None:
                    self.record(f"{name}.{quantile}", value, t)

    # -- reading -------------------------------------------------------
    def series_names(self) -> List[str]:
        """Sorted names of every retained series."""
        with self._lock:
            return sorted(self._series)

    def query(
        self,
        name: str,
        step_s: Optional[float] = None,
        since: Optional[float] = None,
    ) -> List[Bucket]:
        """Time-ordered buckets of one series at one resolution.

        Args:
            name: Series name.
            step_s: Resolution to read (default: the finest).
            since: Drop buckets that start before this time.

        Returns:
            Buckets sorted by start time (empty for unknown names).
        """
        step = self.resolutions[0][0] if step_s is None else float(step_s)
        position = None
        for index, (candidate, _capacity) in enumerate(self.resolutions):
            if candidate == step:
                position = index
                break
        if position is None:
            raise ValueError(
                f"no {step}s resolution (have "
                f"{[s for s, _ in self.resolutions]})"
            )
        with self._lock:
            rings = self._series.get(name)
            if rings is None:
                return []
            items = sorted(rings[position].items())
        buckets = [
            Bucket(index * step, int(b[_COUNT]), b[_SUM], b[_MIN], b[_MAX], b[_LAST])
            for index, b in items
        ]
        if since is not None:
            buckets = [bucket for bucket in buckets if bucket.t >= since]
        return buckets

    def latest(self, name: str) -> Optional[float]:
        """Most recent ``last`` value of a series (finest resolution)."""
        buckets = self.query(name)
        return buckets[-1].last if buckets else None

    # -- cross-process folding -----------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Full JSON-serialisable dump (the :meth:`merge` wire format)."""
        with self._lock:
            series = {
                name: [
                    {str(index): list(bucket) for index, bucket in ring.items()}
                    for ring in rings
                ]
                for name, rings in sorted(self._series.items())
            }
            return {
                "version": self.SNAPSHOT_VERSION,
                "resolutions": [list(pair) for pair in self.resolutions],
                "samples": self.samples,
                "series": series,
            }

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold another store's :meth:`snapshot` into this one.

        Buckets combine exactly for count/sum/min/max; ``last`` goes to
        whichever side saw the later sample, so merging a worker's
        out-of-order (older) ticks cannot clobber newer parent data.
        Ring capacities re-apply after the merge.
        """
        version = snapshot.get("version")
        if version != self.SNAPSHOT_VERSION:
            raise ValueError(
                f"unsupported tsdb snapshot version {version!r} "
                f"(expected {self.SNAPSHOT_VERSION})"
            )
        resolutions = [
            (float(step), int(capacity))
            for step, capacity in snapshot.get("resolutions", [])
        ]
        if resolutions != list(self.resolutions):
            raise ValueError(
                f"resolution mismatch: snapshot has {resolutions}, "
                f"store has {list(self.resolutions)}"
            )
        with self._lock:
            for name, incoming_rings in snapshot.get("series", {}).items():
                rings = self._series.get(name)
                if rings is None:
                    if len(self._series) >= self.max_series:
                        self.dropped_series += 1
                        continue
                    rings = [{} for _ in self.resolutions]
                    self._series[name] = rings
                for (_step, capacity), ring, incoming in zip(
                    self.resolutions, rings, incoming_rings
                ):
                    for raw_index, payload in incoming.items():
                        index = int(raw_index)
                        bucket = ring.get(index)
                        if bucket is None:
                            ring[index] = [
                                int(payload[_COUNT]),
                                float(payload[_SUM]),
                                float(payload[_MIN]),
                                float(payload[_MAX]),
                                float(payload[_LAST]),
                                float(payload[_LAST_T]),
                            ]
                        else:
                            bucket[_COUNT] += int(payload[_COUNT])
                            bucket[_SUM] += float(payload[_SUM])
                            bucket[_MIN] = min(bucket[_MIN], float(payload[_MIN]))
                            bucket[_MAX] = max(bucket[_MAX], float(payload[_MAX]))
                            if float(payload[_LAST_T]) >= bucket[_LAST_T]:
                                bucket[_LAST] = float(payload[_LAST])
                                bucket[_LAST_T] = float(payload[_LAST_T])
                    if len(ring) > capacity:
                        for stale in sorted(ring)[: len(ring) - capacity]:
                            del ring[stale]
            self.samples += int(snapshot.get("samples", 0))

    # -- persistence ---------------------------------------------------
    def dump_jsonl(self, destination: Union[str, IO[str]]) -> int:
        """Write a header line plus one line per (series, resolution).

        Returns the number of series written.  This is the
        ``--watch-record`` file format; read it back with
        :meth:`load_jsonl` (or feed it to ``repro watch``).
        """
        snapshot = self.snapshot()
        lines: List[str] = [
            json.dumps(
                {
                    "type": "tsdb",
                    "version": snapshot["version"],
                    "resolutions": snapshot["resolutions"],
                    "samples": snapshot["samples"],
                }
            )
        ]
        for name, rings in snapshot["series"].items():
            for (step, _capacity), ring in zip(self.resolutions, rings):
                if ring:
                    lines.append(
                        json.dumps(
                            {
                                "type": "series",
                                "name": name,
                                "step_s": step,
                                "buckets": ring,
                            }
                        )
                    )
        text = "\n".join(lines) + "\n"
        if hasattr(destination, "write"):
            destination.write(text)  # type: ignore[union-attr]
        else:
            with open(destination, "w", encoding="utf-8") as handle:
                handle.write(text)
        return len(snapshot["series"])

    @classmethod
    def load_jsonl(cls, source: Union[str, Iterable[str]]) -> "TimeSeriesDB":
        """Reconstruct a store from a :meth:`dump_jsonl` file or lines."""
        if isinstance(source, str):
            with open(source, "r", encoding="utf-8") as handle:
                lines = [line for line in handle if line.strip()]
        else:
            lines = [line for line in source if line.strip()]
        if not lines:
            raise ValueError("empty tsdb dump")
        header = json.loads(lines[0])
        if header.get("type") != "tsdb":
            raise ValueError(
                f"not a tsdb dump (first record is {header.get('type')!r})"
            )
        store = cls(
            resolutions=[
                (float(step), int(capacity))
                for step, capacity in header["resolutions"]
            ]
        )
        step_position = {
            step: index for index, (step, _cap) in enumerate(store.resolutions)
        }
        for line in lines[1:]:
            record = json.loads(line)
            if record.get("type") != "series":
                continue
            name = record["name"]
            position = step_position[float(record["step_s"])]
            rings = store._series.get(name)
            if rings is None:
                rings = [{} for _ in store.resolutions]
                store._series[name] = rings
            for raw_index, payload in record["buckets"].items():
                rings[position][int(raw_index)] = [
                    int(payload[_COUNT]),
                    float(payload[_SUM]),
                    float(payload[_MIN]),
                    float(payload[_MAX]),
                    float(payload[_LAST]),
                    float(payload[_LAST_T]),
                ]
        store.samples = int(header.get("samples", 0))
        return store

    def to_payload(self) -> Dict[str, Any]:
        """The ``/series`` endpoint document: finest-resolution buckets
        per series as ``[t, count, sum, min, max, last]`` rows."""
        step = self.resolutions[0][0]
        return {
            "resolutions": [list(pair) for pair in self.resolutions],
            "step_s": step,
            "samples": self.samples,
            "series": {
                name: [
                    [b.t, b.count, b.sum, b.min, b.max, b.last]
                    for b in self.query(name)
                ]
                for name in self.series_names()
            },
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "TimeSeriesDB":
        """Rebuild a (finest-resolution) store from :meth:`to_payload`.

        What a live ``repro watch`` does with each ``/series`` poll;
        only the finest ring is populated since the payload carries
        only that resolution.
        """
        step = float(payload["step_s"])
        resolutions = [
            (float(s), int(c)) for s, c in payload.get("resolutions", [])
        ] or [(step, 600)]
        store = cls(resolutions=resolutions)
        for name, rows in payload.get("series", {}).items():
            rings = [{} for _ in store.resolutions]
            store._series[name] = rings
            for t, count, total, lo, hi, last in rows:
                rings[0][int(float(t) // step)] = [
                    int(count),
                    float(total),
                    float(lo),
                    float(hi),
                    float(last),
                    float(t),
                ]
        store.samples = int(payload.get("samples", 0))
        return store
