"""Non-clobbering output-path indexing shared across ``repro.obs``.

Several observability sinks write repeatedly to a user-supplied path —
flight-recorder post-mortem dumps, profiler exports, audit logs — and
all of them promise the same thing: a later write never overwrites an
earlier one.  Two variants of the ``out.N`` scheme exist, differing in
what they consult:

* :func:`indexed_path` — **filesystem-based**: the first path among
  ``base``, ``base.1``, ``base.2``, ... that does not exist yet.  Used
  when each *process run* writes once (profiler exports, audit logs):
  re-running the CLI appends an index instead of clobbering the
  previous run's file.
* :func:`counted_path` — **count-based**: the path for the N-th write
  of one live object (``base`` for the first, ``base.1`` for the
  second, ...).  Used when a single recorder dumps several times in
  one run (the flight recorder fires once per alert) and later dumps
  must overwrite their own earlier index on a re-triggered run, not
  probe the filesystem.
"""

from __future__ import annotations

import os

__all__ = ["counted_path", "indexed_path"]


def indexed_path(base: str) -> str:
    """First unused path in the FlightRecorder indexing scheme.

    ``base`` itself when free, else ``base.1``, ``base.2``, ... —
    repeated profiled runs never overwrite an earlier profile, exactly
    like repeated post-mortem dumps.
    """
    if not os.path.exists(base):
        return base
    index = 1
    while os.path.exists(f"{base}.{index}"):
        index += 1
    return f"{base}.{index}"


def counted_path(base: str, index: int) -> str:
    """Path for the ``index``-th (1-based) write in the dump sequence.

    The first write claims ``base`` itself; write N claims
    ``base.{N-1}``, mirroring :func:`indexed_path`'s on-disk layout.
    """
    if index < 1:
        raise ValueError(f"index must be >= 1, got {index}")
    return base if index == 1 else f"{base}.{index - 1}"
