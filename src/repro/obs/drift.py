"""Quality-drift detection and SLO burn-rate alerting.

Voiceprint's verdicts are threshold crossings on DTW distance, so the
detector degrades *silently* when the environment shifts: the paper's
Fig. 14 stop-at-traffic-light case is a margin-distribution drift that
shows up long before accuracy collapses.  This module watches the
Snapshotter's per-tick records for exactly that class of failure:

* :class:`CusumDetector` — two-sided standardized CUSUM.  A warmup
  window establishes the signal's reference mean/std; afterwards each
  sample's z-score feeds the classic ``g+ / g-`` accumulators and a
  persistent mean shift of a fraction of a sigma trips within a few
  ticks, while zero-mean noise never accumulates.
* :class:`PageHinkleyDetector` — the Page–Hinkley test on the same
  standardized stream; less reactive than CUSUM but robust to slow
  ramps that never produce a step.
* :class:`SLOSpec` / :class:`DriftMonitor` — declarative service-level
  objectives over any snapshot-derived value (a gauge, a counter rate,
  a histogram quantile) with Google-SRE-style **multi-window
  error-budget burn rates**: a tick violating the objective spends
  budget, ``burn = bad_fraction / budget``, and an alert needs both
  the short and the long window burning — transient noise cannot spend
  its way into an alert, a sustained breach cannot hide.

:class:`DriftMonitor.observe` consumes one Snapshotter tick record,
updates every detector and SLO, publishes ``drift.*`` / ``slo.*``
gauges into the metrics registry (and hence Prometheus), and routes
alerts through :meth:`HealthMonitor.notify` as the two new alert kinds
``metric_drift`` and ``slo_burn`` — so the flight recorder, the
``/health`` endpoint, and the end-of-run summary all see drift exactly
like any other health breach.  Nothing runs unless a monitor is
constructed and wired into a Snapshotter (``--watch-record`` does
both).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

from .metrics import MetricsRegistry, default_registry

__all__ = [
    "CusumDetector",
    "PageHinkleyDetector",
    "SLOSpec",
    "DriftMonitor",
    "default_slos",
    "WATCHED_SIGNALS",
]


class CusumDetector:
    """Two-sided standardized CUSUM change detector.

    Args:
        k: Slack per sample in sigmas — shifts smaller than ``k·σ``
           never accumulate (classic tuning: half the shift you care
           to catch).
        h: Decision threshold in accumulated sigmas.
        warmup: Samples used to estimate the reference mean/std before
            scoring starts (Welford, exact).
        min_std: Floor for the reference std so a constant warmup
            doesn't divide by zero (any later change then trips).
    """

    def __init__(
        self,
        k: float = 0.5,
        h: float = 6.0,
        warmup: int = 12,
        min_std: float = 1e-9,
    ) -> None:
        if warmup < 2:
            raise ValueError(f"warmup must be >= 2, got {warmup}")
        if k < 0 or h <= 0:
            raise ValueError(f"bad CUSUM tuning k={k}, h={h}")
        self.k = float(k)
        self.h = float(h)
        self.warmup = int(warmup)
        self.min_std = float(min_std)
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.g_pos = 0.0
        self.g_neg = 0.0
        self.trips = 0

    @property
    def mean(self) -> float:
        """Reference mean (frozen once warmup completes)."""
        return self._mean

    @property
    def std(self) -> float:
        """Reference std (floored; frozen once warmup completes)."""
        if self.n < 2:
            return self.min_std
        return max(math.sqrt(self._m2 / (self.n - 1)), self.min_std)

    @property
    def score(self) -> float:
        """Current evidence: ``max(g+, g-)`` in accumulated sigmas."""
        return max(self.g_pos, self.g_neg)

    def update(self, value: float) -> bool:
        """Feed one sample; True when the detector trips on it.

        A trip re-arms the accumulators (the reference stays frozen),
        so a persisting shift fires again after ``~h/|z|`` more ticks
        instead of alerting every tick.
        """
        value = float(value)
        if not math.isfinite(value):
            return False
        if self.n < self.warmup:
            self.n += 1
            delta = value - self._mean
            self._mean += delta / self.n
            self._m2 += delta * (value - self._mean)
            return False
        z = (value - self._mean) / self.std
        self.g_pos = max(0.0, self.g_pos + z - self.k)
        self.g_neg = max(0.0, self.g_neg - z - self.k)
        if self.g_pos > self.h or self.g_neg > self.h:
            self.trips += 1
            self.g_pos = 0.0
            self.g_neg = 0.0
            return True
        return False


class PageHinkleyDetector:
    """Two-sided Page–Hinkley test on the standardized stream.

    Args:
        delta: Tolerated drift per sample (sigmas).
        lambda_: Decision threshold (accumulated sigmas).
        warmup: Reference-estimation window, as in
            :class:`CusumDetector`.
    """

    def __init__(
        self,
        delta: float = 0.05,
        lambda_: float = 12.0,
        warmup: int = 12,
        min_std: float = 1e-9,
    ) -> None:
        if warmup < 2:
            raise ValueError(f"warmup must be >= 2, got {warmup}")
        if delta < 0 or lambda_ <= 0:
            raise ValueError(f"bad PH tuning delta={delta}, lambda={lambda_}")
        self.delta = float(delta)
        self.lambda_ = float(lambda_)
        self.warmup = int(warmup)
        self.min_std = float(min_std)
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._cum = 0.0
        self._cum_min = 0.0
        self._cum_max = 0.0
        self.trips = 0

    @property
    def std(self) -> float:
        if self.n < 2:
            return self.min_std
        return max(math.sqrt(self._m2 / (self.n - 1)), self.min_std)

    @property
    def score(self) -> float:
        """Current evidence: deviation from the running extremum."""
        return max(self._cum - self._cum_min, self._cum_max - self._cum)

    def update(self, value: float) -> bool:
        """Feed one sample; True when the test trips on it."""
        value = float(value)
        if not math.isfinite(value):
            return False
        if self.n < self.warmup:
            self.n += 1
            delta = value - self._mean
            self._mean += delta / self.n
            self._m2 += delta * (value - self._mean)
            return False
        z = (value - self._mean) / self.std
        self._cum += z - self.delta
        self._cum_min = min(self._cum_min, self._cum)
        self._cum_max = max(self._cum_max, self._cum)
        if self.score > self.lambda_:
            self.trips += 1
            self._cum = self._cum_min = self._cum_max = 0.0
            return True
        return False


# ----------------------------------------------------------------------
# Snapshot-record signal extraction
# ----------------------------------------------------------------------
def _gauge(record: Dict[str, Any], name: str) -> Optional[float]:
    return record.get("gauges", {}).get(name)


def _counter_rate(record: Dict[str, Any], name: str) -> Optional[float]:
    entry = record.get("counters", {}).get(name)
    return entry.get("rate") if entry else None


def _hist_tick_mean(record: Dict[str, Any], name: str) -> Optional[float]:
    summary = record.get("histograms", {}).get(name)
    if not summary:
        return None
    count_delta = summary.get("count_delta") or 0
    sum_delta = summary.get("sum_delta")
    if count_delta <= 0 or sum_delta is None:
        return None
    return sum_delta / count_delta


def _beacon_interarrival(record: Dict[str, Any]) -> Optional[float]:
    rate = _counter_rate(record, "detector.beacons_observed")
    if rate is None or rate <= 0:
        return None
    return 1.0 / rate


#: Signal name -> extractor over one Snapshotter tick record.  These
#: are the paper-grounded drift surfaces: the signed margin mean (the
#: Fig. 14 stop-at-light failure collapses it toward the threshold),
#: the near-miss rate (fragile verdicts), the pairwise cache hit rate
#: (a workload/identity-churn shift), and beacon inter-arrival (a
#: Collection-phase stall or flood).
WATCHED_SIGNALS = {
    "margin_mean": lambda record: _hist_tick_mean(
        record, "pipeline.margin.signed"
    ),
    "near_miss_rate": lambda record: _gauge(
        record, "rate.margin_near_miss_rate"
    ),
    "cache_hit_rate": lambda record: _gauge(
        record, "rate.pairwise_cache_hit_rate"
    ),
    "beacon_interarrival_s": _beacon_interarrival,
    # Serve-only (absent ⇒ skipped): queue wait is the first stage to
    # drift when shards fall behind the offered load — lineage's stage
    # decomposition makes it a first-class signal instead of a guess
    # from the end-to-end latency histogram.
    "serve_queue_wait_ms": lambda record: _hist_tick_mean(
        record, "serve.stage.queue_wait_ms"
    ),
}


# ----------------------------------------------------------------------
# SLOs with multi-window burn rates
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SLOSpec:
    """One declarative service-level objective.

    Attributes:
        name: Short identifier used in gauges and alerts.
        metric: Where the per-tick value comes from: a gauge name, a
            ``rate:<counter>`` counter rate, or a
            ``hist:<name>:<p50|p95|p99|tick_mean>`` histogram read.
        max_value: Objective ceiling (a tick above it spends budget).
        min_value: Objective floor (either bound may be set).
        budget: Allowed bad-tick fraction (the error budget).
        short_window: Fast-burn window, in ticks.
        long_window: Slow-burn window, in ticks.
        burn_threshold: Alert when *both* windows burn at or above
            this multiple of the budget.
    """

    name: str
    metric: str
    max_value: Optional[float] = None
    min_value: Optional[float] = None
    budget: float = 0.1
    short_window: int = 5
    long_window: int = 30
    burn_threshold: float = 1.0

    def __post_init__(self) -> None:
        if self.max_value is None and self.min_value is None:
            raise ValueError(f"SLO {self.name!r} needs max= or min=")
        if not 0.0 < self.budget <= 1.0:
            raise ValueError(
                f"SLO {self.name!r}: budget must be in (0, 1], "
                f"got {self.budget}"
            )
        if self.short_window < 1 or self.long_window < self.short_window:
            raise ValueError(
                f"SLO {self.name!r}: want 1 <= short <= long, got "
                f"{self.short_window}/{self.long_window}"
            )
        if self.burn_threshold <= 0:
            raise ValueError(
                f"SLO {self.name!r}: burn threshold must be positive"
            )

    #: CLI spelling -> field name for :meth:`from_spec`.
    _ALIASES = {
        "max": "max_value",
        "min": "min_value",
        "short": "short_window",
        "long": "long_window",
        "burn": "burn_threshold",
    }

    @classmethod
    def from_spec(cls, spec: str) -> "SLOSpec":
        """Parse a CLI spec like
        ``near_miss:metric=rate.margin_near_miss_rate,max=0.2,budget=0.1``.

        The part before the first ``:`` is the name; the rest is
        ``key=value`` pairs using the field names or the short aliases
        ``max``/``min``/``short``/``long``/``burn``.
        """
        name, separator, rest = spec.partition(":")
        name = name.strip()
        if not separator or not name:
            raise ValueError(
                f"bad SLO spec {spec!r} (want name:key=value,...)"
            )
        kwargs: Dict[str, Any] = {"name": name}
        ints = {"short_window", "long_window"}
        for part in rest.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(
                    f"bad SLO entry {part!r} in {spec!r} (want key=value)"
                )
            key, _, raw = part.partition("=")
            key = key.strip()
            field_name = cls._ALIASES.get(key, key)
            if field_name == "metric":
                kwargs["metric"] = raw.strip()
                continue
            if field_name not in {
                "max_value",
                "min_value",
                "budget",
                "short_window",
                "long_window",
                "burn_threshold",
            }:
                raise ValueError(f"unknown SLO key {key!r} in {spec!r}")
            try:
                kwargs[field_name] = (
                    int(raw) if field_name in ints else float(raw)
                )
            except ValueError as error:
                raise ValueError(
                    f"bad value for SLO key {key!r}: {raw!r}"
                ) from error
        if "metric" not in kwargs:
            raise ValueError(f"SLO spec {spec!r} needs metric=...")
        return cls(**kwargs)

    def read(self, record: Dict[str, Any]) -> Optional[float]:
        """Extract this SLO's per-tick value from a snapshot record."""
        if self.metric.startswith("rate:"):
            return _counter_rate(record, self.metric[len("rate:"):])
        if self.metric.startswith("hist:"):
            _, _, rest = self.metric.partition(":")
            name, _, stat = rest.rpartition(":")
            if not name:
                raise ValueError(
                    f"SLO {self.name!r}: bad histogram metric "
                    f"{self.metric!r} (want hist:<name>:<stat>)"
                )
            if stat == "tick_mean":
                return _hist_tick_mean(record, name)
            summary = record.get("histograms", {}).get(name)
            return summary.get(stat) if summary else None
        return _gauge(record, self.metric)

    def violated(self, value: float) -> bool:
        """Does one tick's value spend error budget?"""
        if self.max_value is not None and value > self.max_value:
            return True
        if self.min_value is not None and value < self.min_value:
            return True
        return False


def default_slos() -> Tuple[SLOSpec, ...]:
    """The stock objectives ``--watch-record`` arms when no ``--slo``
    is given: p99 detect latency, near-miss rate, flagged-pair rate,
    and (serve runs with lineage only — the metric is absent
    otherwise, so the objective self-disarms) p99 queue wait."""
    return (
        SLOSpec(
            name="detect_p99_ms",
            metric="hist:detector.detect_ms:p99",
            max_value=250.0,
        ),
        SLOSpec(
            name="near_miss_rate",
            metric="rate.margin_near_miss_rate",
            max_value=0.2,
        ),
        SLOSpec(
            name="flagged_pair_rate",
            metric="health.flagged_pair_rate",
            max_value=0.5,
        ),
        SLOSpec(
            name="serve_queue_wait_p99_ms",
            metric="hist:serve.stage.queue_wait_ms:p99",
            max_value=250.0,
        ),
    )


@dataclass
class _SLOState:
    spec: SLOSpec
    short: Deque[bool] = field(default_factory=deque)
    long: Deque[bool] = field(default_factory=deque)

    def __post_init__(self) -> None:
        self.short = deque(maxlen=self.spec.short_window)
        self.long = deque(maxlen=self.spec.long_window)

    def update(self, bad: bool) -> Tuple[float, float, bool]:
        """Returns ``(short burn, long burn, alerting)``."""
        self.short.append(bad)
        self.long.append(bad)
        burn_short = (
            sum(self.short) / len(self.short) / self.spec.budget
        )
        burn_long = sum(self.long) / len(self.long) / self.spec.budget
        alerting = (
            len(self.short) == self.spec.short_window
            and burn_short >= self.spec.burn_threshold
            and burn_long >= self.spec.burn_threshold
        )
        return burn_short, burn_long, alerting


class DriftMonitor:
    """Per-tick drift detectors + SLO burn rates over snapshot records.

    Args:
        registry: Registry the ``drift.*`` / ``slo.*`` gauges and the
            ``drift.trips`` / ``slo.burn_alerts`` counters live in
            (default: process-global).
        health: Optional :class:`~repro.obs.health.HealthMonitor`;
            trips and burns route through :meth:`~HealthMonitor.notify`
            as ``metric_drift`` / ``slo_burn`` alerts.
        signals: Signal name -> extractor map (default:
            :data:`WATCHED_SIGNALS`).
        slos: Objectives to evaluate (default: :func:`default_slos`).
        cusum: Template detector cloned per signal (tuning knobs).
        page_hinkley: Template detector cloned per signal; None
            disables the PH side.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        health: Optional[Any] = None,
        signals: Optional[Dict[str, Any]] = None,
        slos: Optional[Sequence[SLOSpec]] = None,
        cusum: Optional[CusumDetector] = None,
        page_hinkley: Optional[PageHinkleyDetector] = None,
    ) -> None:
        self._registry = (
            registry if registry is not None else default_registry()
        )
        self._health = health
        self._signals = dict(
            WATCHED_SIGNALS if signals is None else signals
        )
        self._cusum_template = cusum if cusum is not None else CusumDetector()
        self._ph_template = (
            page_hinkley if page_hinkley is not None else PageHinkleyDetector()
        )
        self._cusum: Dict[str, CusumDetector] = {}
        self._ph: Dict[str, PageHinkleyDetector] = {}
        self._slo_states = [
            _SLOState(spec)
            for spec in (default_slos() if slos is None else slos)
        ]
        self.ticks = 0
        self.alerts: List[Dict[str, Any]] = []
        self._c_trips = self._registry.counter("drift.trips")
        self._c_burns = self._registry.counter("slo.burn_alerts")

    @property
    def slos(self) -> Tuple[SLOSpec, ...]:
        """The objectives this monitor evaluates."""
        return tuple(state.spec for state in self._slo_states)

    def _clone_cusum(self) -> CusumDetector:
        template = self._cusum_template
        return CusumDetector(
            k=template.k,
            h=template.h,
            warmup=template.warmup,
            min_std=template.min_std,
        )

    def _clone_ph(self) -> PageHinkleyDetector:
        template = self._ph_template
        return PageHinkleyDetector(
            delta=template.delta,
            lambda_=template.lambda_,
            warmup=template.warmup,
            min_std=template.min_std,
        )

    def _emit(
        self, kind: str, message: str, t: float, value: float, threshold: float
    ) -> None:
        record = {
            "kind": kind,
            "message": message,
            "t": t,
            "value": value,
            "threshold": threshold,
        }
        self.alerts.append(record)
        if self._health is not None:
            self._health.notify(
                kind, message, t=t, value=value, threshold=threshold
            )

    def observe(self, record: Dict[str, Any], t: float) -> List[Dict[str, Any]]:
        """Fold one Snapshotter tick in; returns alerts fired on it."""
        fired_before = len(self.alerts)
        self.ticks += 1
        for signal, extract in self._signals.items():
            value = extract(record)
            if value is None:
                continue
            cusum = self._cusum.get(signal)
            if cusum is None:
                cusum = self._cusum[signal] = self._clone_cusum()
                self._ph[signal] = self._clone_ph()
            ph = self._ph[signal]
            cusum_tripped = cusum.update(value)
            ph_tripped = ph.update(value)
            self._registry.gauge(f"drift.{signal}.cusum").set(cusum.score)
            self._registry.gauge(f"drift.{signal}.page_hinkley").set(ph.score)
            if cusum_tripped:
                self._c_trips.inc()
                self._emit(
                    "metric_drift",
                    f"CUSUM drift on {signal}: value {value:.4g} vs "
                    f"reference {cusum.mean:.4g}±{cusum.std:.2g}",
                    t=t,
                    value=value,
                    threshold=cusum.h,
                )
            if ph_tripped:
                self._c_trips.inc()
                self._emit(
                    "metric_drift",
                    f"Page-Hinkley drift on {signal}: value {value:.4g} "
                    f"vs reference {ph._mean:.4g}±{ph.std:.2g}",
                    t=t,
                    value=value,
                    threshold=ph.lambda_,
                )
        for state in self._slo_states:
            spec = state.spec
            value = spec.read(record)
            if value is None:
                continue
            burn_short, burn_long, alerting = state.update(
                spec.violated(value)
            )
            self._registry.gauge(f"slo.{spec.name}.burn_short").set(burn_short)
            self._registry.gauge(f"slo.{spec.name}.burn_long").set(burn_long)
            if alerting:
                self._c_burns.inc()
                self._emit(
                    "slo_burn",
                    f"SLO {spec.name} burning {burn_short:.1f}x budget "
                    f"(short) / {burn_long:.1f}x (long) — latest "
                    f"{value:.4g} vs objective "
                    f"{spec.max_value if spec.max_value is not None else spec.min_value:g}",
                    t=t,
                    value=burn_short,
                    threshold=spec.burn_threshold,
                )
        return self.alerts[fired_before:]
