"""Static end-of-run report — HTML or markdown, zero dependencies.

``--report-out run.html`` turns one run's observability state into a
single self-contained artifact an operator can open after the fact (or
CI can archive): the :class:`~repro.obs.tsdb.TimeSeriesDB` trajectory
as inline SVG charts, the drift/SLO alert log, the declared objectives,
the profiler's per-phase CPU table, the audit log's nearest-miss
verdicts, and the committed benchmark-history trajectory from
``bench_compare --history``.

The pipeline is ``build_report`` (collect a JSON-able data document)
→ ``render_html`` / ``render_markdown`` (pure formatting) →
``write_report`` (format by extension, non-clobbering via
:func:`repro.obs.paths.indexed_path`).  Everything degrades section by
section: whatever source is absent simply doesn't render.
"""

from __future__ import annotations

import html
import json
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .explain import sparkline
from .paths import indexed_path
from .tsdb import TimeSeriesDB

__all__ = [
    "build_report",
    "render_html",
    "render_markdown",
    "write_report",
]

#: Series name prefixes charted in the report, in render order.  The
#: trailing-dot spellings keep e.g. ``rate.margin_near_miss_rate`` in
#: the verdict group rather than matching everything under ``rate.``.
_CHART_GROUPS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("Phase latency", ("phase.",)),
    (
        "Verdict health",
        (
            "pipeline.margin.signed.tick_mean",
            "rate.margin_near_miss_rate",
            "rate.pairwise_cache_hit_rate",
            "health.flagged_pair_rate",
            "health.fragile_verdict_rate",
        ),
    ),
    ("Throughput", ("rate.",)),
    ("Drift", ("drift.",)),
    ("SLO burn", ("slo.",)),
)

#: Most charts per group (a runaway namespace must not explode the file).
_MAX_CHARTS_PER_GROUP = 12


def _series_points(
    store: TimeSeriesDB, name: str
) -> List[Tuple[float, float]]:
    return [(bucket.t, bucket.last) for bucket in store.query(name)]


def _collect_series(store: TimeSeriesDB) -> List[Dict[str, Any]]:
    names = store.series_names()
    taken = set()
    groups: List[Dict[str, Any]] = []
    for title, prefixes in _CHART_GROUPS:
        members = [
            name
            for name in names
            if name not in taken
            and any(name == p or name.startswith(p) for p in prefixes)
        ]
        if not members:
            continue
        taken.update(members)
        charts = []
        for name in members[:_MAX_CHARTS_PER_GROUP]:
            points = _series_points(store, name)
            values = [value for _t, value in points]
            charts.append(
                {
                    "name": name,
                    "points": points,
                    "latest": values[-1] if values else None,
                    "min": min(values) if values else None,
                    "max": max(values) if values else None,
                }
            )
        groups.append(
            {
                "title": title,
                "charts": charts,
                "omitted": max(0, len(members) - _MAX_CHARTS_PER_GROUP),
            }
        )
    return groups


def _collect_near_misses(
    audit_bundles: Sequence[Dict[str, Any]], top: int = 5
) -> List[Dict[str, Any]]:
    from .explain import select_pair_records

    try:
        selected = select_pair_records(
            list(audit_bundles), near_misses=top
        )
    except ValueError:
        return []
    rows = []
    for bundle, record in selected:
        rows.append(
            {
                "pair": f"{record['a']} × {record['b']}",
                "t": bundle.get("timestamp"),
                "margin": record.get("margin"),
                "flagged": record.get("flagged"),
                "provenance": record.get("provenance"),
            }
        )
    return rows


def _collect_history(history_path: str) -> List[Dict[str, Any]]:
    """Per-artifact benchmark trajectories from a ``bench_compare
    --history`` JSONL file (see :mod:`repro.bench_compare`)."""
    try:
        with open(history_path, "r", encoding="utf-8") as handle:
            entries = [
                json.loads(line) for line in handle if line.strip()
            ]
    except OSError:
        return []
    by_artifact: Dict[str, Dict[str, List[float]]] = {}
    for entry in entries:
        artifact = entry.get("artifact")
        metrics = entry.get("metrics")
        if not artifact or not isinstance(metrics, dict):
            continue
        rows = by_artifact.setdefault(artifact, {})
        for leaf, value in metrics.items():
            rows.setdefault(leaf, []).append(float(value))
    return [
        {
            "artifact": artifact,
            "metrics": [
                {
                    "name": leaf,
                    "values": values,
                    "latest": values[-1],
                }
                for leaf, values in sorted(rows.items())
            ],
        }
        for artifact, rows in sorted(by_artifact.items())
    ]


def build_report(
    tsdb: Optional[TimeSeriesDB] = None,
    health: Optional[Any] = None,
    drift: Optional[Any] = None,
    profiler: Optional[Any] = None,
    audit_bundles: Optional[Sequence[Dict[str, Any]]] = None,
    history_path: Optional[str] = None,
    title: str = "repro run report",
) -> Dict[str, Any]:
    """Collect every available source into one JSON-able document."""
    doc: Dict[str, Any] = {
        "title": title,
        "generated": time.strftime("%Y-%m-%d %H:%M:%S"),
    }
    if tsdb is not None:
        doc["samples"] = tsdb.samples
        doc["series_groups"] = _collect_series(tsdb)
    alerts: List[Dict[str, Any]] = []
    if health is not None:
        status = health.status()
        doc["status"] = status["status"]
        alerts = list(status.get("alerts", []))
    elif drift is not None:
        alerts = list(drift.alerts)
        doc["status"] = "alert" if alerts else "ok"
    doc["alerts"] = alerts
    if drift is not None:
        doc["slos"] = [
            {
                "name": spec.name,
                "metric": spec.metric,
                "max": spec.max_value,
                "min": spec.min_value,
                "budget": spec.budget,
                "windows": f"{spec.short_window}/{spec.long_window}",
            }
            for spec in drift.slos
        ]
    if profiler is not None:
        doc["phase_table"] = profiler.phase_table()
        doc["hotspot_table"] = profiler.hotspot_table()
    if audit_bundles:
        doc["near_misses"] = _collect_near_misses(audit_bundles)
    if history_path is not None:
        doc["history"] = _collect_history(history_path)
    return doc


# ----------------------------------------------------------------------
# HTML rendering
# ----------------------------------------------------------------------
_CSS = """
body { font: 14px/1.5 system-ui, sans-serif; margin: 2em auto;
       max-width: 72em; color: #1a1a1a; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 2em;
     border-bottom: 1px solid #ddd; padding-bottom: .2em; }
table { border-collapse: collapse; margin: .5em 0; }
td, th { border: 1px solid #ccc; padding: .25em .6em; text-align: left; }
th { background: #f4f4f4; }
.charts { display: flex; flex-wrap: wrap; gap: 1em; }
.chart { border: 1px solid #e0e0e0; padding: .4em .6em; }
.chart .name { font-family: monospace; font-size: .85em; }
.alert { color: #a00; }
pre { background: #f8f8f8; padding: .6em; overflow-x: auto; }
svg polyline { fill: none; stroke: #2060c0; stroke-width: 1.5; }
"""


def _svg_chart(
    points: Sequence[Tuple[float, float]], width: int = 260, height: int = 56
) -> str:
    if not points:
        return "<svg></svg>"
    ts = np.asarray([t for t, _v in points], dtype=float)
    vs = np.asarray([v for _t, v in points], dtype=float)
    t_span = float(ts.max() - ts.min()) or 1.0
    v_span = float(vs.max() - vs.min()) or 1.0
    xs = (ts - ts.min()) / t_span * (width - 4) + 2
    ys = height - 2 - (vs - vs.min()) / v_span * (height - 4)
    coords = " ".join(f"{x:.1f},{y:.1f}" for x, y in zip(xs, ys))
    return (
        f'<svg width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}">'
        f'<polyline points="{coords}"/></svg>'
    )


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def render_html(doc: Dict[str, Any]) -> str:
    """The report document as one self-contained HTML page."""
    e = html.escape
    parts = [
        "<!doctype html><html><head><meta charset='utf-8'>",
        f"<title>{e(doc['title'])}</title><style>{_CSS}</style></head><body>",
        f"<h1>{e(doc['title'])}</h1>",
        f"<p>generated {e(doc['generated'])}"
        + (
            f" — status <strong>{e(doc['status'])}</strong>"
            if "status" in doc
            else ""
        )
        + (
            f" — {doc['samples']} samples"
            if "samples" in doc
            else ""
        )
        + "</p>",
    ]
    for group in doc.get("series_groups", []):
        parts.append(f"<h2>{e(group['title'])}</h2><div class='charts'>")
        for chart in group["charts"]:
            parts.append(
                "<div class='chart'>"
                f"<div class='name'>{e(chart['name'])}</div>"
                f"{_svg_chart(chart['points'])}"
                f"<div>latest {_fmt(chart['latest'])} · "
                f"min {_fmt(chart['min'])} · max {_fmt(chart['max'])}</div>"
                "</div>"
            )
        parts.append("</div>")
        if group["omitted"]:
            parts.append(
                f"<p>({group['omitted']} further series not charted)</p>"
            )
    alerts = doc.get("alerts", [])
    parts.append(f"<h2>Alerts ({len(alerts)})</h2>")
    if alerts:
        parts.append(
            "<table><tr><th>kind</th><th>t</th><th>value</th>"
            "<th>threshold</th><th>message</th></tr>"
        )
        for alert in alerts:
            parts.append(
                "<tr class='alert'>"
                f"<td>{e(str(alert.get('kind')))}</td>"
                f"<td>{_fmt(alert.get('t'))}</td>"
                f"<td>{_fmt(alert.get('value'))}</td>"
                f"<td>{_fmt(alert.get('threshold'))}</td>"
                f"<td>{e(str(alert.get('message', '')))}</td></tr>"
            )
        parts.append("</table>")
    else:
        parts.append("<p>none</p>")
    if doc.get("slos"):
        parts.append(
            "<h2>Objectives</h2><table><tr><th>SLO</th><th>metric</th>"
            "<th>bound</th><th>budget</th><th>windows</th></tr>"
        )
        for slo in doc["slos"]:
            bound = (
                f"&le; {_fmt(slo['max'])}"
                if slo["max"] is not None
                else f"&ge; {_fmt(slo['min'])}"
            )
            parts.append(
                f"<tr><td>{e(slo['name'])}</td><td>{e(slo['metric'])}</td>"
                f"<td>{bound}</td><td>{_fmt(slo['budget'])}</td>"
                f"<td>{e(slo['windows'])}</td></tr>"
            )
        parts.append("</table>")
    if doc.get("near_misses"):
        parts.append(
            "<h2>Nearest-miss verdicts</h2><table><tr><th>pair</th>"
            "<th>t</th><th>margin</th><th>flagged</th><th>provenance</th></tr>"
        )
        for row in doc["near_misses"]:
            parts.append(
                f"<tr><td>{e(row['pair'])}</td><td>{_fmt(row['t'])}</td>"
                f"<td>{_fmt(row['margin'])}</td>"
                f"<td>{_fmt(row['flagged'])}</td>"
                f"<td>{e(str(row['provenance']))}</td></tr>"
            )
        parts.append("</table>")
    if "phase_table" in doc:
        parts.append(
            f"<h2>Profile: phases</h2><pre>{e(doc['phase_table'])}</pre>"
        )
        parts.append(
            f"<h2>Profile: hotspots</h2><pre>{e(doc['hotspot_table'])}</pre>"
        )
    for artifact in doc.get("history", []):
        parts.append(
            f"<h2>Benchmark history: {e(artifact['artifact'])}</h2>"
            "<table><tr><th>metric</th><th>latest</th>"
            "<th>trajectory</th><th>runs</th></tr>"
        )
        for metric in artifact["metrics"]:
            parts.append(
                f"<tr><td>{e(metric['name'])}</td>"
                f"<td>{_fmt(metric['latest'])}</td>"
                f"<td><code>{e(sparkline(np.asarray(metric['values']), 24))}"
                f"</code></td><td>{len(metric['values'])}</td></tr>"
            )
        parts.append("</table>")
    parts.append("</body></html>")
    return "".join(parts)


# ----------------------------------------------------------------------
# Markdown rendering
# ----------------------------------------------------------------------
def render_markdown(doc: Dict[str, Any]) -> str:
    """The report document as GitHub-flavoured markdown."""
    lines = [f"# {doc['title']}", ""]
    meta = f"generated {doc['generated']}"
    if "status" in doc:
        meta += f" — status **{doc['status']}**"
    if "samples" in doc:
        meta += f" — {doc['samples']} samples"
    lines.extend([meta, ""])
    for group in doc.get("series_groups", []):
        lines.extend([f"## {group['title']}", ""])
        lines.append("| series | latest | min | max | trajectory |")
        lines.append("|---|---|---|---|---|")
        for chart in group["charts"]:
            values = np.asarray(
                [v for _t, v in chart["points"]], dtype=float
            )
            lines.append(
                f"| `{chart['name']}` | {_fmt(chart['latest'])} "
                f"| {_fmt(chart['min'])} | {_fmt(chart['max'])} "
                f"| `{sparkline(values, 24)}` |"
            )
        if group["omitted"]:
            lines.append(
                f"\n({group['omitted']} further series not shown)"
            )
        lines.append("")
    alerts = doc.get("alerts", [])
    lines.extend([f"## Alerts ({len(alerts)})", ""])
    if alerts:
        lines.append("| kind | t | value | threshold | message |")
        lines.append("|---|---|---|---|---|")
        for alert in alerts:
            lines.append(
                f"| {alert.get('kind')} | {_fmt(alert.get('t'))} "
                f"| {_fmt(alert.get('value'))} "
                f"| {_fmt(alert.get('threshold'))} "
                f"| {alert.get('message', '')} |"
            )
    else:
        lines.append("none")
    lines.append("")
    if doc.get("slos"):
        lines.extend(["## Objectives", ""])
        lines.append("| SLO | metric | bound | budget | windows |")
        lines.append("|---|---|---|---|---|")
        for slo in doc["slos"]:
            bound = (
                f"<= {_fmt(slo['max'])}"
                if slo["max"] is not None
                else f">= {_fmt(slo['min'])}"
            )
            lines.append(
                f"| {slo['name']} | `{slo['metric']}` | {bound} "
                f"| {_fmt(slo['budget'])} | {slo['windows']} |"
            )
        lines.append("")
    if doc.get("near_misses"):
        lines.extend(["## Nearest-miss verdicts", ""])
        lines.append("| pair | t | margin | flagged | provenance |")
        lines.append("|---|---|---|---|---|")
        for row in doc["near_misses"]:
            lines.append(
                f"| {row['pair']} | {_fmt(row['t'])} "
                f"| {_fmt(row['margin'])} | {_fmt(row['flagged'])} "
                f"| {row['provenance']} |"
            )
        lines.append("")
    if "phase_table" in doc:
        lines.extend(
            [
                "## Profile: phases",
                "",
                "```",
                doc["phase_table"],
                "```",
                "",
                "## Profile: hotspots",
                "",
                "```",
                doc["hotspot_table"],
                "```",
                "",
            ]
        )
    for artifact in doc.get("history", []):
        lines.extend(
            [f"## Benchmark history: {artifact['artifact']}", ""]
        )
        lines.append("| metric | latest | trajectory | runs |")
        lines.append("|---|---|---|---|")
        for metric in artifact["metrics"]:
            lines.append(
                f"| `{metric['name']}` | {_fmt(metric['latest'])} "
                f"| `{sparkline(np.asarray(metric['values']), 24)}` "
                f"| {len(metric['values'])} |"
            )
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def write_report(path: str, **sources: Any) -> str:
    """Build and write a report; returns the path actually written.

    The format follows the extension (``.html``/``.htm`` → HTML,
    anything else → markdown); an existing file is never clobbered
    (see :func:`repro.obs.paths.indexed_path`).  Keyword arguments are
    those of :func:`build_report`.
    """
    doc = build_report(**sources)
    lowered = path.lower()
    text = (
        render_html(doc)
        if lowered.endswith((".html", ".htm"))
        else render_markdown(doc)
    )
    target = indexed_path(path)
    with open(target, "w", encoding="utf-8") as handle:
        handle.write(text)
    return target
