"""Lightweight nested spans for tracing one detection end-to-end.

A :class:`Tracer` hands out :class:`Span` context managers; spans opened
while another span is active become its children, so the detector's
phases nest naturally::

    with tracer.span("detection", density=40.0):
        with tracer.span("normalise"): ...
        with tracer.span("pairwise_dtw"): ...
        with tracer.span("minmax"): ...
        with tracer.span("threshold"): ...

Each finished span is handed to the tracer's exporter as a flat dict
(name, trace/span/parent ids, wall-clock start, duration in ms,
attributes).  :class:`JsonlSpanExporter` appends one JSON line per span;
:class:`InMemorySpanExporter` collects them for tests.

The current-span stack is thread-local, so concurrent detectors on
worker threads trace independently.  A disabled tracer returns one
shared no-op span, keeping the off-by-default cost to a boolean check.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from typing import Any, Dict, IO, List, Optional, Tuple, Union

__all__ = [
    "Span",
    "Tracer",
    "SpanExporter",
    "InMemorySpanExporter",
    "JsonlSpanExporter",
    "default_tracer",
]

# Span ids are derived from a per-thread monotonic counter plus a
# globally unique per-thread epoch, so concurrent shard workers can
# never mint the same id: the epoch differs between threads (and
# between lifetimes of a reused thread ident), the counter differs
# within one.  A single shared ``itertools.count`` would rely on the
# GIL serialising ``next`` — an implementation detail free-threaded
# builds drop — and contends on one hot object from every worker.
_thread_epochs = itertools.count(1)
_id_state = threading.local()


def _next_span_id() -> str:
    state = _id_state
    count = getattr(state, "count", None)
    if count is None:
        state.epoch = next(_thread_epochs)
        count = 0
    count += 1
    state.count = count
    return f"{state.epoch:x}-{count:x}"


class SpanExporter:
    """Receives one record per finished span.  Subclass and override."""

    def export(self, record: Dict[str, Any]) -> None:
        """Handle one finished span's flat record."""
        raise NotImplementedError

    def flush(self) -> None:
        """Push buffered records to stable storage (default: nothing)."""

    def close(self) -> None:
        """Flush/release any underlying resource (default: nothing)."""


class InMemorySpanExporter(SpanExporter):
    """Keeps every exported record in a list (test helper)."""

    def __init__(self) -> None:
        self.records: List[Dict[str, Any]] = []

    def export(self, record: Dict[str, Any]) -> None:
        self.records.append(record)

    def roots(self) -> List[Dict[str, Any]]:
        """Exported records with no parent."""
        return [r for r in self.records if r["parent_id"] is None]

    def children_of(self, span_id: str) -> List[Dict[str, Any]]:
        """Exported records whose parent is ``span_id``."""
        return [r for r in self.records if r["parent_id"] == span_id]


class JsonlSpanExporter(SpanExporter):
    """Appends one JSON line per finished span to a file.

    Lines are written whole (one ``write`` per span), so a crash can at
    worst lose buffered lines, never interleave them; :meth:`flush`
    pushes the buffer to disk and is called by the crash-safe shutdown
    path (``Tracer.close`` / ``repro.obs.shutdown``).
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = threading.Lock()
        self._handle: Optional[IO[str]] = open(path, "w", encoding="utf-8")

    def export(self, record: Dict[str, Any]) -> None:
        with self._lock:
            if self._handle is None:
                raise ValueError(f"exporter for {self.path!r} is closed")
            self._handle.write(json.dumps(record) + "\n")

    def flush(self) -> None:
        """Flush buffered lines to the OS (no-op when closed)."""
        with self._lock:
            if self._handle is not None:
                self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


class Span:
    """One timed operation; context manager handed out by the tracer."""

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "attributes",
        "start_unix_s",
        "duration_ms",
        "_tracer",
        "_start",
        "_flushed",
    )

    def __init__(
        self,
        name: str,
        tracer: "Tracer",
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        attributes: Dict[str, Any],
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.attributes = attributes
        self.start_unix_s: Optional[float] = None
        self.duration_ms: Optional[float] = None
        self._tracer = tracer
        self._start: Optional[float] = None
        self._flushed = False

    def set_attribute(self, key: str, value: Any) -> None:
        """Attach one key/value to the span."""
        self.attributes[key] = value

    def __enter__(self) -> "Span":
        self.start_unix_s = time.time()
        self._start = time.perf_counter()
        self._tracer._push(self)
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        assert self._start is not None
        self.duration_ms = (time.perf_counter() - self._start) * 1000.0
        if exc_type is not None:
            self.attributes["error"] = getattr(exc_type, "__name__", str(exc_type))
        self._tracer._pop(self)

    def to_record(self) -> Dict[str, Any]:
        """Flat, JSON-serialisable view of the finished span."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_unix_s": self.start_unix_s,
            "duration_ms": self.duration_ms,
            "attributes": dict(self.attributes),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, id={self.span_id}, parent={self.parent_id})"


class _NullSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Hands out spans and routes finished ones to an exporter.

    Args:
        enabled: Disabled tracers hand out a shared no-op span.
        exporter: Destination for finished spans; without one, spans
            still nest and time but vanish on exit (use
            :class:`InMemorySpanExporter` to keep them).
    """

    def __init__(
        self, enabled: bool = True, exporter: Optional[SpanExporter] = None
    ) -> None:
        self._enabled = bool(enabled)
        self.exporter = exporter
        self._local = threading.local()
        # Every thread's span stack (keyed by thread ident), so open
        # spans can be flushed as partial records from the
        # crash/shutdown path (which runs on a different thread than
        # the spans it is rescuing) and so the sampling profiler can
        # ask "which span is thread N inside right now?".
        self._stacks_lock = threading.Lock()
        self._stacks: Dict[int, List[Span]] = {}
        # Span lifecycle listeners (e.g. the memory profiler); an empty
        # tuple keeps the no-listener fast path to one truthiness check.
        self._listeners: Tuple[Any, ...] = ()

    # -- lifecycle -----------------------------------------------------
    @property
    def enabled(self) -> bool:
        """Whether spans are currently being recorded."""
        return self._enabled

    def enable(self, exporter: Optional[SpanExporter] = None) -> None:
        """Start recording, optionally swapping in an exporter."""
        if exporter is not None:
            self.exporter = exporter
        self._enabled = True

    def disable(self) -> None:
        """Stop recording (the exporter is kept but not closed)."""
        self._enabled = False

    # -- span management -----------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
            with self._stacks_lock:
                # A reused thread ident simply replaces the dead
                # thread's (by then empty) stack.
                self._stacks[threading.get_ident()] = stack
        return stack

    @property
    def current_span(self) -> Optional[Span]:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def span(
        self, name: str, **attributes: Any
    ) -> Union[Span, _NullSpan]:
        """Create a span context manager; nests under the current span."""
        if not self._enabled:
            return _NULL_SPAN
        parent = self.current_span
        span_id = _next_span_id()
        if parent is None:
            trace_id, parent_id = f"t{span_id}", None
        else:
            trace_id, parent_id = parent.trace_id, parent.span_id
        return Span(
            name,
            tracer=self,
            trace_id=trace_id,
            span_id=span_id,
            parent_id=parent_id,
            attributes=dict(attributes),
        )

    def _push(self, span: Span) -> None:
        self._stack().append(span)
        if self._listeners:
            for listener in self._listeners:
                try:
                    listener.on_span_start(span)
                except Exception:  # a listener must never break the span
                    pass

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # unbalanced exits: drop down to the span
            while stack and stack[-1] is not span:
                stack.pop()
            if stack:
                stack.pop()
        if self._listeners:
            for listener in self._listeners:
                try:
                    listener.on_span_end(span)
                except Exception:  # a listener must never break the span
                    pass
        if self.exporter is not None and not span._flushed:
            self.exporter.export(span.to_record())

    # -- introspection hooks (profiler / listeners) ---------------------
    def add_span_listener(self, listener: Any) -> None:
        """Register an ``on_span_start(span)`` / ``on_span_end(span)``
        pair called around every span on its own thread.  Listener
        exceptions are swallowed — observability must never break the
        detection path."""
        with self._stacks_lock:
            self._listeners = self._listeners + (listener,)

    def remove_span_listener(self, listener: Any) -> None:
        """Detach a listener registered with :meth:`add_span_listener`."""
        with self._stacks_lock:
            self._listeners = tuple(
                entry for entry in self._listeners if entry is not listener
            )

    def open_span_names_by_thread(self) -> Dict[int, Tuple[str, ...]]:
        """Open span names per thread ident, outermost first.

        This is the sampling profiler's attribution hook: one
        dictionary lookup per sampled thread maps its stack of open
        spans onto a pipeline phase.  Returns only threads with at
        least one open span; empty when tracing is disabled.
        """
        if not self._enabled:
            return {}
        with self._stacks_lock:
            return {
                ident: tuple(span.name for span in stack)
                for ident, stack in self._stacks.items()
                if stack
            }

    # -- crash safety --------------------------------------------------
    def open_spans(self) -> List[Span]:
        """Spans currently open on any thread (innermost last)."""
        with self._stacks_lock:
            return [span for stack in self._stacks.values() for span in stack]

    def flush_open(self, reason: str = "shutdown") -> int:
        """Export every still-open span as a *partial* record.

        Called from the shutdown/atexit/excepthook path so that a crash
        (or a span held open across ``os.fork``-style teardown) never
        leaves its record truncated out of the JSONL stream.  Each
        rescued record carries ``partial=true`` and the duration up to
        now; a span flushed this way will not be exported a second time
        if its context manager later exits normally.

        Returns:
            The number of spans rescued.
        """
        spans = self.open_spans()
        if self.exporter is None:
            return 0
        flushed = 0
        now = time.perf_counter()
        for span in reversed(spans):  # innermost first, like normal exit
            if span._flushed:
                continue
            span._flushed = True
            if span.duration_ms is None and span._start is not None:
                span.duration_ms = (now - span._start) * 1000.0
            record = span.to_record()
            record["attributes"]["partial"] = True
            record["attributes"]["flush_reason"] = reason
            self.exporter.export(record)
            flushed += 1
        self.exporter.flush()
        return flushed

    def close(self, reason: str = "shutdown") -> None:
        """Flush open spans, then flush and close the exporter."""
        self.flush_open(reason=reason)
        if self.exporter is not None:
            self.exporter.close()

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close(
            reason="exception" if exc_type is not None else "shutdown"
        )


#: Process-global tracer; disabled until observability is configured.
_DEFAULT = Tracer(enabled=False)


def default_tracer() -> Tracer:
    """The process-global tracer (disabled until configured)."""
    return _DEFAULT
