"""Structured logging for the repro package.

Thin layer over the stdlib: :func:`get_logger` names loggers under the
``repro`` hierarchy, and :func:`configure` installs one stream handler
with a ``key=value`` formatter on the root ``repro`` logger.  Anything
passed via ``extra=`` shows up as trailing ``key=value`` pairs::

    log = get_logger("core.detector")
    log.info("detection complete", extra={"pairs": 28, "flagged": 2})
    # 2026-08-06T12:00:00 INFO repro.core.detector msg="detection complete" pairs=28 flagged=2

Until :func:`configure` is called the ``repro`` logger has no handler of
its own and follows normal stdlib propagation, so embedding applications
keep full control.
"""

from __future__ import annotations

import logging
import sys
from typing import IO, Optional, Union

__all__ = ["KeyValueFormatter", "get_logger", "configure"]

ROOT_LOGGER = "repro"

#: Attribute names every LogRecord carries; anything else came from
#: ``extra=`` and is rendered as a key=value pair.
_STANDARD_ATTRS = frozenset(
    vars(
        logging.LogRecord("x", logging.INFO, "x", 0, "x", None, None)
    )
) | {"message", "asctime", "taskName"}


class KeyValueFormatter(logging.Formatter):
    """``ts level logger msg="..." key=value ...`` single-line records."""

    default_time_format = "%Y-%m-%dT%H:%M:%S"

    def format(self, record: logging.LogRecord) -> str:
        message = record.getMessage()
        parts = [
            f"ts={self.formatTime(record)}",
            f"level={record.levelname}",
            f"logger={record.name}",
            f'msg="{message}"',
        ]
        for key in sorted(vars(record)):
            if key in _STANDARD_ATTRS or key.startswith("_"):
                continue
            value = getattr(record, key)
            if isinstance(value, float):
                rendered = f"{value:.6g}"
            elif isinstance(value, str) and (" " in value or not value):
                rendered = f'"{value}"'
            else:
                rendered = str(value)
            parts.append(f"{key}={rendered}")
        if record.exc_info:
            parts.append(f'exc="{self.formatException(record.exc_info)}"')
        return " ".join(parts)


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro`` hierarchy.

    ``get_logger("core.detector")`` and ``get_logger("repro.core.detector")``
    both return ``repro.core.detector``; the empty string returns the
    package root logger.
    """
    if not name:
        return logging.getLogger(ROOT_LOGGER)
    if name == ROOT_LOGGER or name.startswith(ROOT_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def configure(
    level: Union[int, str] = "INFO",
    stream: Optional[IO[str]] = None,
) -> logging.Logger:
    """Install the structured handler on the ``repro`` root logger.

    Safe to call repeatedly (e.g. once per CLI invocation): the
    previously installed handler is replaced, never duplicated.

    Args:
        level: Threshold for the whole ``repro`` hierarchy (name or
            numeric constant).
        stream: Destination stream; defaults to ``sys.stderr`` so
            log lines never pollute the CLI's stdout tables.

    Returns:
        The configured root ``repro`` logger.
    """
    if isinstance(level, str):
        parsed = logging.getLevelName(level.upper())
        if not isinstance(parsed, int):
            raise ValueError(f"unknown log level {level!r}")
        level = parsed
    root = logging.getLogger(ROOT_LOGGER)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(KeyValueFormatter())
    handler.set_name("repro-obs")
    for existing in list(root.handlers):
        if existing.get_name() == "repro-obs":
            root.removeHandler(existing)
    root.addHandler(handler)
    root.setLevel(level)
    root.propagate = False
    return root
